/**
 * @file
 * End-to-end model compression: load the pretrained tiny Llama-style
 * model (training it on first run), apply a Table-4-style rank-1
 * decomposition schedule, and compare benchmark accuracy, parameter
 * count and measured CPU inference latency before and after.
 */

#include <cstdio>

#include "dse/schedules.h"
#include "eval/evaluator.h"
#include "train/model_zoo.h"
#include "util/timer.h"

using namespace lrd;

namespace {

double
measureLatency(TransformerModel &model)
{
    Evaluator ev(model, defaultWorld(), EvalOptions{1, 1, false});
    const auto tasks =
        makeMcTasks(BenchmarkKind::ArcEasy, defaultWorld(), 40, 99);
    Timer timer;
    for (const McTask &t : tasks)
        (void)ev.pickChoiceCausal(t);
    return timer.elapsedSeconds();
}

} // namespace

int
main()
{
    std::printf("loading pretrained tiny-llama (trains on first run)\n");
    TransformerModel dense = pretrainedTinyLlama();
    const ModelConfig cfg = dense.config();

    // Target ~22% parameter reduction (two spread-apart layers).
    const DecompConfig gamma = scheduleForReduction(cfg, 0.22);
    std::printf("gamma: %s -> %.1f%% parameter reduction\n",
                gamma.describe().c_str(),
                gamma.parameterReduction(cfg) * 100.0);

    TransformerModel compressed =
        TransformerModel::deserialize(dense.serialize());
    if (!gamma.applyTo(compressed).ok())
        return 1;

    std::printf("\nparams: %lld -> %lld\n",
                static_cast<long long>(dense.paramCount()),
                static_cast<long long>(compressed.paramCount()));

    Evaluator evDense(dense, defaultWorld(), EvalOptions{100, 7, false});
    Evaluator evComp(compressed, defaultWorld(),
                     EvalOptions{100, 7, false});
    std::printf("\n%-16s %-10s %-10s %s\n", "benchmark", "dense",
                "compressed", "drop");
    for (BenchmarkKind kind : allBenchmarks()) {
        const double a = evDense.run(kind).accuracy;
        const double b = evComp.run(kind).accuracy;
        std::printf("%-16s %-10.3f %-10.3f %+.3f\n",
                    benchmarkName(kind).c_str(), a, b, a - b);
    }

    const double denseSec = measureLatency(dense);
    const double compSec = measureLatency(compressed);
    std::printf("\nmeasured CPU latency (40-task scoring): "
                "%.3fs -> %.3fs (%.2fx speedup)\n",
                denseSec, compSec, denseSec / compSec);
    return 0;
}
