/**
 * @file
 * Analytical latency / energy / memory profile of the real Llama2-7B
 * shape across the paper's Table 4 decomposition ladder, on A100 and
 * (what-if) H100 devices — the Figures 10-12 pipeline as a library
 * consumer would use it.
 */

#include <cstdio>

#include "dse/schedules.h"
#include "hw/roofline.h"

using namespace lrd;

namespace {

void
profileDevice(const DeviceSpec &dev, const ModelConfig &cfg,
              const GenerationWorkload &wl)
{
    std::printf("\n== %s (batch %lld, prompt %lld, decode %lld) ==\n",
                dev.name.c_str(), static_cast<long long>(wl.batch),
                static_cast<long long>(wl.promptLen),
                static_cast<long long>(wl.decodeTokens));
    std::printf("%-10s %-12s %-12s %-12s %-12s %s\n", "red%",
                "latency(s)", "tok/s", "energy(J)", "mem(GB)",
                "speedup");
    const InferenceEstimate base =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);
    std::printf("%-10.1f %-12.3f %-12.0f %-12.1f %-12.2f %s\n", 0.0,
                base.latencySec, base.tokensPerSec, base.energyJoules,
                base.memBytes / 1e9, "1.00x");
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        const InferenceEstimate est =
            estimateGeneration(cfg, gamma, dev, wl);
        std::printf("%-10.1f %-12.3f %-12.0f %-12.1f %-12.2f %.2fx\n",
                    gamma.parameterReduction(cfg) * 100.0,
                    est.latencySec, est.tokensPerSec, est.energyJoules,
                    est.memBytes / 1e9,
                    base.latencySec / est.latencySec);
    }
}

} // namespace

int
main()
{
    const ModelConfig cfg = llama2_7bConfig();
    GenerationWorkload wl;
    wl.batch = 32;
    wl.promptLen = 1024;
    wl.decodeTokens = 256;

    profileDevice(a100_80gb(), cfg, wl);
    profileDevice(h100_80gb(), cfg, wl);

    std::printf("\nNote: decode on both devices is memory-bound, so the "
                "speedup tracks the weight-traffic reduction — the "
                "paper's ~0.5%% latency per 1%% parameters.\n");
    return 0;
}
