/**
 * @file
 * The Definition-1 design-goal search as a command-line tool: given
 * an accuracy-drop tolerance tau, find the decomposition minimizing
 * the latency-energy product over the characterization-pruned space.
 *
 * Usage: design_space_explorer [tau]   (default tau = 0.05)
 */

#include <cstdio>
#include <cstdlib>

#include "dse/optimizer.h"
#include "train/model_zoo.h"

using namespace lrd;

int
main(int argc, char **argv)
{
    OptimizerOptions opts;
    if (argc > 1)
        opts.accuracyDropTolerance = std::atof(argv[1]);
    opts.evalTasks = 60;

    std::printf("Definition 1 search with tau = %.3f "
                "(aggregate accuracy drop tolerance)\n\n",
                opts.accuracyDropTolerance);

    const auto bytes = pretrainedTinyLlama().serialize();
    const OptimizerResult res =
        optimizeDecomposition(bytes, defaultWorld(), opts);

    std::printf("baseline: accuracy %.3f, EDP %.4f J*s\n\n",
                res.baselineAccuracy, res.baselineEdp);
    std::printf("%-44s %-8s %-8s %-10s %s\n", "candidate gamma",
                "red%", "acc", "EDP", "feasible");
    for (const CandidateRecord &rec : res.explored) {
        std::printf("%-44s %-8.1f %-8.3f %-10.4f %s\n",
                    rec.config.describe().c_str(), rec.reduction * 100.0,
                    rec.accuracy, rec.edp, rec.feasible ? "yes" : "no");
    }
    std::printf("\nchosen: %s\n  accuracy %.3f (drop %.3f), EDP "
                "improvement %.2fx, reduction %.1f%%\n",
                res.best.config.describe().c_str(), res.best.accuracy,
                res.baselineAccuracy - res.best.accuracy,
                res.baselineEdp / res.best.edp,
                res.best.reduction * 100.0);
    return 0;
}
