/**
 * @file
 * Quickstart: rank-pruned Tucker decomposition of a single weight
 * matrix, and swapping a dense Linear layer for its factorized form.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "decomp/tucker.h"
#include "model/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace lrd;

int
main()
{
    // A "weight matrix" with decaying spectrum, like trained weights.
    Rng rng(7);
    const int64_t h = 256, w = 128;
    Tensor u = Tensor::randn({h, 16}, rng, 1.0F);
    Tensor v = Tensor::randn({16, w}, rng, 1.0F);
    Tensor weight = add(matmul(u, v), Tensor::randn({h, w}, rng, 0.05F));

    std::printf("dense weight: %lld x %lld = %lld params\n",
                static_cast<long long>(h), static_cast<long long>(w),
                static_cast<long long>(denseParams(h, w)));

    // 1. Decompose at several pruned ranks (paper Section 2.3).
    for (int64_t pr : {1, 4, 16, 64}) {
        Tucker2d d = tucker2dDecompose(weight, pr);
        std::printf(
            "  pr=%-3lld params=%-6lld compression=%6.1fx  rel.err=%.4f\n",
            static_cast<long long>(pr),
            static_cast<long long>(d.paramCount()),
            compressionRatio(h, w, pr),
            relativeError(weight, d.reconstruct()));
    }
    std::printf("break-even rank for %lldx%lld: %lld\n",
                static_cast<long long>(h), static_cast<long long>(w),
                static_cast<long long>(breakEvenRank(h, w)));

    // 2. The same thing at the layer level: a Linear swaps its dense
    //    weight for three chained factor matmuls in place.
    Rng lrng(9);
    Linear layer(static_cast<int64_t>(h), static_cast<int64_t>(w), false,
                 "demo", lrng);
    layer.weight().value = weight; // install the structured weight
    Tensor x = Tensor::randn({4, w}, lrng);
    Tensor before = layer.forward(x);
    const int64_t denseCount = layer.paramCount();
    if (!layer.factorize(16).ok())
        return 1;
    Tensor after = layer.forward(x);
    std::printf("\nLinear layer factorized at pr=16: params %lld -> %lld, "
                "output rel.err=%.4f\n",
                static_cast<long long>(denseCount),
                static_cast<long long>(layer.paramCount()),
                relativeError(before, after));

    // 3. Full Tucker (order-3) via HOI, Algorithm 1.
    Tensor t3 = Tensor::randn({16, 12, 10}, rng);
    TuckerResult tk = hooi(t3, {4, 4, 4});
    std::printf("\norder-3 HOI Tucker at rank (4,4,4): %lld -> %lld "
                "params, rel.err=%.4f\n",
                static_cast<long long>(t3.size()),
                static_cast<long long>(tk.paramCount()),
                relativeError(t3, tk.reconstruct()));
    return 0;
}
