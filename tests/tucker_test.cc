/**
 * @file
 * Tests for Tucker decomposition: HOSVD, HOI (Algorithm 1), the 2D
 * three-factor weight form, and the compression-ratio arithmetic of
 * Section 2.3.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "decomp/tucker.h"
#include "linalg/linalg.h"
#include "tensor/ops.h"
#include "tensor/unfold.h"
#include "util/rng.h"

namespace lrd {
namespace {

/** Build an exactly low-multilinear-rank tensor core x_i U_i. */
Tensor
makeLowRankTensor(const Shape &shape, const std::vector<int64_t> &ranks,
                  Rng &rng)
{
    Tensor core = Tensor::randn(ranks, rng);
    Tensor t = core;
    for (size_t m = 0; m < shape.size(); ++m) {
        Tensor u = randomOrthonormal(shape[m], ranks[m],
                                     rng);
        t = modeProduct(t, u, static_cast<int64_t>(m));
    }
    return t;
}

TEST(Hosvd, ExactForLowMultilinearRank)
{
    Rng rng(1);
    Tensor t = makeLowRankTensor({8, 7, 6}, {2, 3, 2}, rng);
    TuckerResult r = hosvd(t, {2, 3, 2});
    EXPECT_LT(relativeError(t, r.reconstruct()), 1e-4);
}

TEST(Hosvd, CoreShapeMatchesRanks)
{
    Rng rng(2);
    Tensor t = Tensor::randn({5, 6, 4}, rng);
    TuckerResult r = hosvd(t, {2, 3, 4});
    EXPECT_EQ(r.core.shape(), (Shape{2, 3, 4}));
    ASSERT_EQ(r.factors.size(), 3U);
    EXPECT_EQ(r.factors[0].shape(), (Shape{5, 2}));
    EXPECT_EQ(r.factors[1].shape(), (Shape{6, 3}));
    EXPECT_EQ(r.factors[2].shape(), (Shape{4, 4}));
}

TEST(Hosvd, FactorsAreOrthonormal)
{
    Rng rng(3);
    Tensor t = Tensor::randn({6, 5, 4}, rng);
    TuckerResult r = hosvd(t, {3, 2, 2});
    for (const auto &f : r.factors)
        EXPECT_LT(orthonormalityError(f), 1e-4);
}

TEST(Hosvd, FullRankIsExact)
{
    Rng rng(4);
    Tensor t = Tensor::randn({4, 5, 3}, rng);
    TuckerResult r = hosvd(t, {4, 5, 3});
    EXPECT_LT(relativeError(t, r.reconstruct()), 1e-4);
}

TEST(Hooi, ImprovesOrMatchesHosvd)
{
    Rng rng(5);
    Tensor t = Tensor::randn({8, 8, 8}, rng);
    const std::vector<int64_t> ranks = {3, 3, 3};
    TuckerResult h = hosvd(t, ranks);
    TuckerResult o = hooi(t, ranks);
    const double hErr = relativeError(t, h.reconstruct());
    const double oErr = relativeError(t, o.reconstruct());
    EXPECT_LE(oErr, hErr + 1e-6);
}

TEST(Hooi, ExactForLowMultilinearRank)
{
    Rng rng(6);
    Tensor t = makeLowRankTensor({7, 6, 5}, {2, 2, 3}, rng);
    TuckerResult r = hooi(t, {2, 2, 3});
    EXPECT_LT(relativeError(t, r.reconstruct()), 1e-4);
}

TEST(Hooi, RandomInitConvergesToo)
{
    Rng rng(7);
    Tensor t = makeLowRankTensor({6, 6, 6}, {2, 2, 2}, rng);
    HoiOptions opts;
    opts.hosvdInit = false;
    opts.maxIters = 50;
    TuckerResult r = hooi(t, {2, 2, 2}, opts);
    EXPECT_LT(relativeError(t, r.reconstruct()), 1e-3);
}

TEST(Hooi, WorksOnMatricesAndMatchesSvd)
{
    Rng rng(8);
    Tensor a = Tensor::randn({10, 8}, rng);
    const int64_t k = 3;
    TuckerResult r = hooi(a, {k, k});
    SvdResult s = truncatedSvd(a, k);
    // 2D Tucker at equal ranks is exactly the truncated SVD subspace.
    EXPECT_NEAR(relativeError(a, r.reconstruct()),
                relativeError(a, s.reconstruct()), 1e-4);
}

TEST(Hooi, RejectsInvalidRanks)
{
    Tensor t({4, 4, 4});
    EXPECT_THROW(hooi(t, {0, 2, 2}), std::runtime_error);
    EXPECT_THROW(hooi(t, {5, 2, 2}), std::runtime_error);
    EXPECT_THROW(hooi(t, {2, 2}), std::runtime_error);
}

TEST(Hooi, ErrorMonotonicInRank)
{
    Rng rng(9);
    Tensor t = Tensor::randn({8, 8, 8}, rng);
    double prev = 1e9;
    for (int64_t k : {1, 2, 4, 8}) {
        TuckerResult r = hooi(t, {k, k, k});
        const double err = relativeError(t, r.reconstruct());
        EXPECT_LE(err, prev + 1e-6) << "rank " << k;
        prev = err;
    }
}

TEST(Tucker2d, ShapesAndDiagonalCore)
{
    Rng rng(10);
    Tensor w = Tensor::randn({12, 9}, rng);
    Tucker2d d = tucker2dDecompose(w, 4);
    EXPECT_EQ(d.u1.shape(), (Shape{12, 4}));
    EXPECT_EQ(d.core.shape(), (Shape{4, 4}));
    EXPECT_EQ(d.u2.shape(), (Shape{4, 9}));
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 4; ++j)
            if (i != j) {
                EXPECT_FLOAT_EQ(d.core(i, j), 0.0F);
            }
    // Core diagonal holds descending singular values.
    for (int64_t i = 1; i < 4; ++i)
        EXPECT_GE(d.core(i - 1, i - 1), d.core(i, i) - 1e-6F);
}

TEST(Tucker2d, ReconstructionMatchesTruncatedSvd)
{
    Rng rng(11);
    Tensor w = Tensor::randn({16, 10}, rng);
    for (int64_t pr : {1, 3, 8}) {
        Tucker2d d = tucker2dDecompose(w, pr);
        SvdResult s = truncatedSvd(w, pr);
        EXPECT_LT(relativeError(d.reconstruct(), s.reconstruct()), 1e-5)
            << "pr " << pr;
    }
}

TEST(Tucker2d, ParamCountMatchesFormula)
{
    Rng rng(12);
    Tensor w = Tensor::randn({20, 14}, rng);
    Tucker2d d = tucker2dDecompose(w, 3);
    EXPECT_EQ(d.paramCount(), decomposedParams(20, 14, 3));
}

TEST(Tucker2d, InvalidRankThrows)
{
    Tensor w({4, 6});
    EXPECT_THROW(tucker2dDecompose(w, 0), std::runtime_error);
    EXPECT_THROW(tucker2dDecompose(w, 5), std::runtime_error);
}

TEST(Compression, RatioFormula)
{
    // H=W=4096, pr=1: ratio = 4096^2 / (4096 + 1 + 4096).
    const double r = compressionRatio(4096, 4096, 1);
    EXPECT_NEAR(r, 4096.0 * 4096.0 / 8193.0, 1e-6);
    EXPECT_GT(r, 2000.0);
}

TEST(Compression, BreakEvenRankShrinksParams)
{
    for (auto [h, w] : {std::pair<int64_t, int64_t>{4096, 4096},
                        {4096, 11008}, {768, 3072}, {16, 16}}) {
        const int64_t pr = breakEvenRank(h, w);
        EXPECT_GT(pr, 0);
        EXPECT_LT(decomposedParams(h, w, pr), denseParams(h, w))
            << h << "x" << w;
        EXPECT_GE(decomposedParams(h, w, pr + 1), denseParams(h, w))
            << h << "x" << w;
    }
}

TEST(Compression, SquareBreakEvenNearHalf)
{
    // For H=W=n, the break-even rank is (sqrt(8)-2)/2 * n ~= 0.414 n.
    const int64_t pr = breakEvenRank(1000, 1000);
    EXPECT_NEAR(static_cast<double>(pr), 413.0, 2.0);
}

TEST(TuckerResult, ParamCountSumsCoreAndFactors)
{
    Rng rng(13);
    Tensor t = Tensor::randn({5, 6, 7}, rng);
    TuckerResult r = hosvd(t, {2, 3, 2});
    EXPECT_EQ(r.paramCount(), 2 * 3 * 2 + 5 * 2 + 6 * 3 + 7 * 2);
}

/** Property: rank-pruned 2D decomposition error equals the optimal
 *  (Eckart-Young) error for every rank. */
class Tucker2dOptimal : public ::testing::TestWithParam<int> {};

TEST_P(Tucker2dOptimal, MatchesEckartYoung)
{
    Rng rng(static_cast<uint64_t>(400 + GetParam()));
    const int64_t h = 5 + static_cast<int64_t>(rng.uniformInt(10));
    const int64_t w = 5 + static_cast<int64_t>(rng.uniformInt(10));
    Tensor a = Tensor::randn({h, w}, rng);
    SvdResult full = svd(a);
    const int64_t pr =
        1 + static_cast<int64_t>(rng.uniformInt(
                static_cast<uint64_t>(std::min(h, w))));
    Tucker2d d = tucker2dDecompose(a, pr);
    double tail = 0.0;
    for (size_t i = static_cast<size_t>(pr); i < full.s.size(); ++i)
        tail += full.s[i] * full.s[i];
    const Tensor diff = sub(a, d.reconstruct());
    EXPECT_NEAR(diff.norm(), std::sqrt(tail), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, Tucker2dOptimal,
                         ::testing::Range(0, 12));

} // namespace
} // namespace lrd
