/**
 * @file
 * Tests for the hardware model: MAC/byte counting against published
 * numbers (Table 1 cross-check), decomposition effects on counts,
 * roofline properties, and the memory/energy models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/schedules.h"
#include "hw/device.h"
#include "hw/opcount.h"
#include "hw/roofline.h"

namespace lrd {
namespace {

TEST(OpCount, Resnet50MatchesPublishedScale)
{
    // ResNet-50: 25.5-25.6M params, ~4.1 GMACs at 224x224.
    const double params = static_cast<double>(resnet50Params());
    EXPECT_GT(params, 25.0e6);
    EXPECT_LT(params, 26.2e6);
    const double macs = static_cast<double>(resnet50Macs());
    EXPECT_GT(macs, 3.8e9);
    EXPECT_LT(macs, 4.4e9);
}

TEST(OpCount, BertBaseMacsMatchTable1)
{
    // Paper Table 1: BERT-Base at batch 1, seq 128 -> 11.2 B MACs,
    // 219 MB FP16. Our config carries an untied LM head, so compare
    // the encoder-layer MACs with modest tolerance.
    const ModelConfig cfg = bertBaseConfig();
    WorkloadParams wl;
    wl.batch = 1;
    wl.seqLen = 128;
    const double macs = static_cast<double>(
        transformerMacs(cfg, DecompConfig::identity(), wl));
    EXPECT_GT(macs, 10.0e9);
    EXPECT_LT(macs, 15.0e9);
    const double bytes = static_cast<double>(
        transformerWeightBytes(cfg, DecompConfig::identity(), 2));
    EXPECT_GT(bytes, 200e6);
    EXPECT_LT(bytes, 280e6);
}

TEST(OpCount, Llama7bMacsMatchTable1)
{
    // Paper Table 1: Llama2-7B at batch 1, seq 128 -> 850 B MACs,
    // 13.4 GB FP16.
    const ModelConfig cfg = llama2_7bConfig();
    WorkloadParams wl;
    wl.batch = 1;
    wl.seqLen = 128;
    const double macs = static_cast<double>(
        transformerMacs(cfg, DecompConfig::identity(), wl));
    EXPECT_GT(macs, 800e9);
    EXPECT_LT(macs, 950e9);
    const double bytes = static_cast<double>(
        transformerWeightBytes(cfg, DecompConfig::identity(), 2));
    EXPECT_GT(bytes, 13.0e9);
    EXPECT_LT(bytes, 14.2e9);
}

TEST(OpCount, ComputeToModelSizeRatioOrdering)
{
    // Table 1's headline: the CNN has a higher compute-to-size ratio
    // than the language models. (The paper reports 160.7 for ResNet50
    // because its 8.21B count is FLOPs = 2x MACs; with MACs counted
    // uniformly the gap narrows but the ordering holds.)
    const double resnetRatio = static_cast<double>(resnet50Macs())
                               / (resnet50Params() * 2.0);
    WorkloadParams wl;
    wl.batch = 1;
    wl.seqLen = 128;
    const ModelConfig bert = bertBaseConfig();
    const double bertRatio =
        static_cast<double>(
            transformerMacs(bert, DecompConfig::identity(), wl))
        / transformerWeightBytes(bert, DecompConfig::identity(), 2);
    EXPECT_GT(resnetRatio, 1.2 * bertRatio);
    const ModelConfig llama = llama2_7bConfig();
    const double llamaRatio =
        static_cast<double>(
            transformerMacs(llama, DecompConfig::identity(), wl))
        / transformerWeightBytes(llama, DecompConfig::identity(), 2);
    EXPECT_GT(resnetRatio, llamaRatio);
    // Paper Table 1 ratios for the language models: 51.1 and 63.4.
    EXPECT_NEAR(bertRatio, 51.1, 8.0);
    EXPECT_NEAR(llamaRatio, 63.4, 8.0);
}

TEST(OpCount, DecompositionReducesMacsAndBytes)
{
    const ModelConfig cfg = llama2_7bConfig();
    WorkloadParams wl;
    const DecompConfig id = DecompConfig::identity();
    const DecompConfig gamma =
        DecompConfig::allTensors(cfg, {2, 9, 17, 25}, 1);
    EXPECT_LT(transformerMacs(cfg, gamma, wl),
              transformerMacs(cfg, id, wl));
    EXPECT_LT(transformerWeightBytes(cfg, gamma),
              transformerWeightBytes(cfg, id));
    // Byte reduction equals the parameter reduction exactly.
    const double reduction =
        1.0
        - static_cast<double>(transformerWeightBytes(cfg, gamma))
              / transformerWeightBytes(cfg, id);
    EXPECT_NEAR(reduction,
                gamma.paramsBefore(cfg) > 0
                    ? static_cast<double>(gamma.paramsBefore(cfg)
                                          - gamma.paramsAfter(cfg))
                          / cfg.totalParams()
                    : 0.0,
                1e-9);
}

TEST(OpCount, ProfileNamesEveryLayerTensor)
{
    const ModelConfig cfg = testLlamaConfig();
    WorkloadParams wl;
    wl.seqLen = 8;
    const auto ops =
        profileTransformer(cfg, DecompConfig::identity(), wl);
    int linears = 0, bmms = 0;
    for (const OpProfile &op : ops) {
        if (op.name.find(".W") != std::string::npos
            || op.name.find(".bmm") != std::string::npos)
            ++bmms;
        if (op.name.find("Wq") != std::string::npos)
            ++linears;
    }
    EXPECT_EQ(linears, cfg.nLayers);
    // MAC totals must be consistent with the summed profile.
    int64_t sum = 0;
    for (const OpProfile &op : ops)
        sum += op.macs;
    EXPECT_EQ(sum, transformerMacs(cfg, DecompConfig::identity(), wl));
}

TEST(OpCount, DecodeMacsScaleWithContext)
{
    const ModelConfig cfg = llama2_7bConfig();
    const DecompConfig id = DecompConfig::identity();
    const int64_t a = transformerDecodeMacs(cfg, id, 1, 128);
    const int64_t b = transformerDecodeMacs(cfg, id, 1, 2048);
    EXPECT_GT(b, a);
    // Linear-layer term dominates at short context.
    EXPECT_LT(static_cast<double>(b) / a, 1.5);
}

TEST(OpCount, KvBytesPerTokenFormula)
{
    const ModelConfig cfg = llama2_7bConfig();
    // 2 (K+V) * layers * dModel * 2 bytes.
    EXPECT_EQ(kvCacheBytesPerToken(cfg, 2), 2 * 32 * 4096 * 2);
}

TEST(OpCount, GqaShrinksKvCacheAndWeights)
{
    // Llama2-70B uses 8 KV heads of 128 dims: kvDim = 1024.
    const ModelConfig cfg = llama2_70bConfig();
    EXPECT_EQ(cfg.kvDim(), 1024);
    EXPECT_EQ(kvCacheBytesPerToken(cfg, 2), 2 * 80 * 1024 * 2);
    // ~69B params -> ~138 GB FP16.
    const double bytes = static_cast<double>(
        transformerWeightBytes(cfg, DecompConfig::identity(), 2));
    EXPECT_GT(bytes, 132e9);
    EXPECT_LT(bytes, 144e9);
    // The grouped K/V tensors are rectangular; their break-even rank
    // and decomposition arithmetic must follow the (1024, 8192) shape.
    DecompConfig gamma =
        DecompConfig::oneTensor(WeightKind::Key, {10}, 1);
    EXPECT_TRUE(gamma.valid(cfg));
    EXPECT_EQ(gamma.paramsBefore(cfg), 1024 * 8192);
    EXPECT_EQ(gamma.paramsAfter(cfg), 1024 + 1 + 8192);
}

TEST(Roofline, PicksTheBindingResource)
{
    const DeviceSpec dev = a100_80gb();
    // Huge compute, tiny bytes -> compute bound.
    RooflineResult c = roofline(int64_t{1} << 50, 1024, dev);
    EXPECT_FALSE(c.memoryBound);
    EXPECT_DOUBLE_EQ(c.latencySec, c.computeSec);
    // Tiny compute, huge bytes -> memory bound.
    RooflineResult m = roofline(1024, int64_t{1} << 45, dev);
    EXPECT_TRUE(m.memoryBound);
    EXPECT_DOUBLE_EQ(m.latencySec, m.memorySec);
}

TEST(Roofline, DecodeIsMemoryBoundOnA100)
{
    // The paper's core observation: LLM decode is memory-bound.
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    const int64_t macs =
        transformerDecodeMacs(cfg, DecompConfig::identity(), 1, 512);
    const int64_t bytes =
        transformerWeightBytes(cfg, DecompConfig::identity(), 2);
    EXPECT_TRUE(roofline(macs, bytes, dev).memoryBound);
}

TEST(Roofline, GenerationEstimateMonotoneInReduction)
{
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    GenerationWorkload wl;
    double prevLatency = 1e30, prevEnergy = 1e30, prevMem = 1e30;
    for (int count : {0, 4, 12, 24, 32}) {
        DecompConfig gamma =
            count == 0 ? DecompConfig::identity()
                       : DecompConfig::allTensors(
                             cfg, spreadSchedule(32, count), 1);
        const InferenceEstimate est =
            estimateGeneration(cfg, gamma, dev, wl);
        EXPECT_LT(est.latencySec, prevLatency + 1e-12);
        EXPECT_LT(est.energyJoules, prevEnergy + 1e-12);
        EXPECT_LT(est.memBytes, prevMem + 1e-12);
        EXPECT_GT(est.tokensPerSec, 0.0);
        prevLatency = est.latencySec;
        prevEnergy = est.energyJoules;
        prevMem = est.memBytes;
    }
}

TEST(Roofline, EnergyIsPowerTimesLatency)
{
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    GenerationWorkload wl;
    const InferenceEstimate est =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);
    EXPECT_NEAR(est.energyJoules, est.latencySec * dev.powerWatts, 1e-9);
}

TEST(Roofline, MemoryFootprintWithinDeviceForPaperWorkload)
{
    const ModelConfig cfg = llama2_7bConfig();
    GenerationWorkload wl; // batch 16, 512 prompt + 128 decode
    const double mem = memoryFootprintBytes(
        cfg, DecompConfig::identity(), wl);
    EXPECT_GT(mem, 15e9); // weights alone are 13.4 GB
    EXPECT_LT(mem, 80e9);
}

TEST(Roofline, SlopesMatchPaperObservations)
{
    // Paper Section 4.4: ~0.5% latency and energy per 1% params,
    // ~0.4% memory per 1% params. Verify the model lands in that
    // regime (generous band: 0.2-1.1).
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    GenerationWorkload wl;
    wl.batch = 16;
    wl.promptLen = 512;
    wl.decodeTokens = 256;

    const InferenceEstimate base =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);
    const DecompConfig gamma = scheduleForReduction(cfg, 0.21);
    const double reduction = gamma.parameterReduction(cfg);
    const InferenceEstimate dec = estimateGeneration(cfg, gamma, dev, wl);

    const double latencySlope =
        (1.0 - dec.latencySec / base.latencySec) / reduction;
    const double memSlope = (1.0 - dec.memBytes / base.memBytes) / reduction;
    EXPECT_GT(latencySlope, 0.2);
    EXPECT_LT(latencySlope, 1.1);
    EXPECT_GT(memSlope, 0.2);
    EXPECT_LT(memSlope, 1.1);
}

TEST(Roofline, MultiGpuScalesThroughputNotLatency)
{
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    GenerationWorkload wl;
    const MultiGpuEstimate four = estimateGenerationMultiGpu(
        cfg, DecompConfig::identity(), dev, wl, 4);
    const InferenceEstimate one =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);
    EXPECT_DOUBLE_EQ(four.perGpu.latencySec, one.latencySec);
    EXPECT_NEAR(four.aggregateTokensPerSec, 4 * one.tokensPerSec, 1e-6);
    EXPECT_NEAR(four.totalEnergyJoules, 4 * one.energyJoules, 1e-6);
    EXPECT_THROW(estimateGenerationMultiGpu(
                     cfg, DecompConfig::identity(), dev, wl, 0),
                 std::runtime_error);
}

TEST(Device, SpecsAreSane)
{
    for (const DeviceSpec &d : {a100_80gb(), h100_80gb(), cpuCore()}) {
        EXPECT_GT(d.peakMacsPerSec, 0.0) << d.name;
        EXPECT_GT(d.memBandwidthBps, 0.0) << d.name;
        EXPECT_GT(d.powerWatts, 0.0) << d.name;
        EXPECT_GT(d.computeEfficiency, 0.0);
        EXPECT_LE(d.computeEfficiency, 1.0);
    }
    // A100 arithmetic-intensity ridge ~ 76 MACs/byte.
    const DeviceSpec a = a100_80gb();
    EXPECT_NEAR(a.peakMacsPerSec / a.memBandwidthBps, 76.5, 1.0);
}

} // namespace
} // namespace lrd
