/**
 * @file
 * Granular per-layer tests: isolated finite-difference gradient
 * checks for RMSNorm / LayerNorm / Mlp / MultiHeadAttention / Linear
 * (dense and factorized), RoPE and attention structural properties,
 * and activation-aware factorization correctness.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "dse/activation_aware.h"
#include "model/attention.h"
#include "model/mlp.h"
#include "model/norms.h"
#include "tensor/ops.h"

namespace lrd {
namespace {

/**
 * Generic FD gradient check for a module mapping (n, d) -> (n, e).
 * Loss = sum of (output .* weights) for a fixed random weighting, so
 * dLoss/dOutput is that weighting.
 */
template <typename Forward, typename Backward>
void
checkModuleGradients(Forward fwd, Backward bwd,
                     std::vector<Parameter *> params, const Tensor &x,
                     double tol = 0.08)
{
    Rng rng(321);
    Tensor y = fwd(x);
    Tensor dY = Tensor::randn(y.shape(), rng);

    for (Parameter *p : params)
        p->zeroGrad();
    Tensor dX = bwd(dY);

    auto lossAt = [&](const Tensor &input) {
        Tensor out = fwd(input);
        return dot(out, dY);
    };

    // Check input gradient on sampled coordinates.
    int failed = 0, checked = 0;
    Tensor xCopy = x;
    for (int s = 0; s < 8; ++s) {
        const auto i = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(x.size())));
        const float orig = xCopy[i];
        const float eps = 1e-2F;
        xCopy[i] = orig + eps;
        const double up = lossAt(xCopy);
        xCopy[i] = orig - eps;
        const double down = lossAt(xCopy);
        xCopy[i] = orig;
        const double numeric = (up - down) / (2.0 * eps);
        const double analytic = dX[i];
        const double scale =
            std::max({std::abs(numeric), std::abs(analytic), 1e-3});
        ++checked;
        if (std::abs(numeric - analytic) / scale > tol)
            ++failed;
    }
    // Re-run forward/backward to restore caches, then check parameter
    // gradients.
    (void)fwd(x);
    for (Parameter *p : params)
        p->zeroGrad();
    (void)bwd(dY);
    for (Parameter *p : params) {
        for (int s = 0; s < 4; ++s) {
            const auto i = static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(p->value.size())));
            const float orig = p->value[i];
            const float eps = 1e-2F;
            p->value[i] = orig + eps;
            const double up = lossAt(x);
            p->value[i] = orig - eps;
            const double down = lossAt(x);
            p->value[i] = orig;
            const double numeric = (up - down) / (2.0 * eps);
            const double analytic = p->grad[i];
            const double scale =
                std::max({std::abs(numeric), std::abs(analytic), 1e-3});
            ++checked;
            if (std::abs(numeric - analytic) / scale > tol)
                ++failed;
        }
    }
    EXPECT_LE(failed, checked / 10)
        << failed << "/" << checked << " gradient checks failed";
}

TEST(LayerGrad, RmsNorm)
{
    Rng rng(1);
    RmsNorm norm(12, "t");
    Tensor x = Tensor::randn({5, 12}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return norm.forward(in); },
        [&](const Tensor &dy) { return norm.backward(dy); },
        norm.parameters(), x);
}

TEST(LayerGrad, LayerNorm)
{
    Rng rng(2);
    LayerNorm norm(10, "t");
    Tensor x = Tensor::randn({4, 10}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return norm.forward(in); },
        [&](const Tensor &dy) { return norm.backward(dy); },
        norm.parameters(), x);
}

TEST(LayerGrad, LinearDenseWithBias)
{
    Rng rng(3);
    Linear lin(7, 9, true, "t", rng);
    Tensor x = Tensor::randn({4, 9}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return lin.forward(in); },
        [&](const Tensor &dy) { return lin.backward(dy); },
        lin.parameters(), x);
}

TEST(LayerGrad, LinearFactorized)
{
    Rng rng(4);
    Linear lin(8, 10, false, "t", rng);
    ASSERT_TRUE(lin.factorize(3).ok());
    Tensor x = Tensor::randn({5, 10}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return lin.forward(in); },
        [&](const Tensor &dy) { return lin.backward(dy); },
        lin.parameters(), x);
}

TEST(LayerGrad, SwigluMlp)
{
    Rng rng(5);
    ModelConfig cfg = testLlamaConfig();
    Mlp mlp(cfg, 0, rng);
    Tensor x = Tensor::randn({4, cfg.dModel}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return mlp.forward(in); },
        [&](const Tensor &dy) { return mlp.backward(dy); },
        mlp.parameters(), x);
}

TEST(LayerGrad, GeluMlp)
{
    Rng rng(6);
    ModelConfig cfg = testBertConfig();
    Mlp mlp(cfg, 0, rng);
    Tensor x = Tensor::randn({4, cfg.dModel}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return mlp.forward(in); },
        [&](const Tensor &dy) { return mlp.backward(dy); },
        mlp.parameters(), x);
}

TEST(LayerGrad, CausalAttentionWithRope)
{
    Rng rng(7);
    ModelConfig cfg = testLlamaConfig();
    MultiHeadAttention attn(cfg, 0, rng);
    Tensor x = Tensor::randn({6, cfg.dModel}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return attn.forward(in); },
        [&](const Tensor &dy) { return attn.backward(dy); },
        attn.parameters(), x);
}

TEST(LayerGrad, BidirectionalAttention)
{
    Rng rng(8);
    ModelConfig cfg = testBertConfig();
    MultiHeadAttention attn(cfg, 0, rng);
    Tensor x = Tensor::randn({6, cfg.dModel}, rng);
    checkModuleGradients(
        [&](const Tensor &in) { return attn.forward(in); },
        [&](const Tensor &dy) { return attn.backward(dy); },
        attn.parameters(), x);
}

TEST(Norms, RmsNormOutputHasUnitRms)
{
    Rng rng(9);
    RmsNorm norm(16, "t");
    Tensor x = Tensor::randn({3, 16}, rng, 5.0F);
    Tensor y = norm.forward(x);
    for (int64_t i = 0; i < 3; ++i) {
        double ms = 0.0;
        for (int64_t j = 0; j < 16; ++j)
            ms += static_cast<double>(y(i, j)) * y(i, j);
        EXPECT_NEAR(std::sqrt(ms / 16.0), 1.0, 1e-3);
    }
}

TEST(Norms, RmsNormScaleInvariance)
{
    // RMSNorm(a * x) == RMSNorm(x) for a > 0.
    Rng rng(10);
    RmsNorm norm(8, "t");
    Tensor x = Tensor::randn({2, 8}, rng);
    Tensor y1 = norm.forward(x);
    Tensor y2 = norm.forward(scale(x, 7.5F));
    EXPECT_LT(relativeError(y1, y2), 1e-4);
}

TEST(Norms, LayerNormOutputStandardized)
{
    Rng rng(11);
    LayerNorm norm(32, "t");
    Tensor x = Tensor::randn({2, 32}, rng, 3.0F);
    Tensor y = norm.forward(x);
    for (int64_t i = 0; i < 2; ++i) {
        double mean = 0.0, var = 0.0;
        for (int64_t j = 0; j < 32; ++j)
            mean += y(i, j);
        mean /= 32.0;
        for (int64_t j = 0; j < 32; ++j)
            var += (y(i, j) - mean) * (y(i, j) - mean);
        var /= 32.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Rope, RotationPreservesNorms)
{
    // RoPE is a per-pair rotation: attention with RoPE must preserve
    // the norm of each q/k head slice. Verified indirectly: two
    // attention modules sharing weights, one causal+RoPE and one
    // causal without RoPE, produce different outputs but identical
    // output when the sequence length is 1 (position 0 = identity
    // rotation).
    Rng rngA(12);
    ModelConfig llama = testLlamaConfig();
    MultiHeadAttention ropeAttn(llama, 0, rngA);
    Rng rngB(12);
    ModelConfig noRope = testLlamaConfig();
    noRope.arch = Arch::BertStyle; // no RoPE, but also not causal
    (void)noRope;

    Tensor x1 = Tensor::randn({1, llama.dModel}, rngA);
    Tensor a = ropeAttn.forward(x1);
    EXPECT_TRUE(a.allFinite());
    // Single-position causal self-attention attends only to itself:
    // output = Wso(V(x)) regardless of rotation.
    Tensor v = ropeAttn.linear(WeightKind::Value).forward(x1);
    Tensor want = ropeAttn.linear(WeightKind::SelfOutput).forward(v);
    EXPECT_LT(relativeError(want, a), 1e-4);
}

TEST(Rope, ShiftedPositionsChangeScores)
{
    // Feeding the same two tokens at different absolute positions via
    // the KV cache must give identical outputs (RoPE is relative):
    // score(q_i, k_j) depends only on i - j.
    Rng rng(13);
    ModelConfig cfg = testLlamaConfig();
    MultiHeadAttention attn(cfg, 0, rng);
    Tensor x = Tensor::randn({2, cfg.dModel}, rng);

    KvCache cacheA(cfg.maxSeq, cfg.dModel);
    Tensor outA = attn.forwardCached(x, cacheA);

    // Same content, but starting at position 5.
    KvCache cacheB(cfg.maxSeq, cfg.dModel);
    Tensor pad = Tensor::randn({5, cfg.dModel}, rng);
    (void)attn.forwardCached(pad, cacheB);
    // Restrict attention of the probe rows to themselves by reading
    // only relative behavior: relative-position invariance means the
    // *scores among the two probe rows* match; the cached prefix
    // contributes, so we only check finiteness here and the exact
    // relative property in the dedicated slice below.
    Tensor outB = attn.forwardCached(x, cacheB);
    EXPECT_TRUE(outB.allFinite());

    // Direct relative check on raw rotations: angle(p+d) - angle(p)
    // is independent of p, so dot(rope(q,p), rope(k,p)) depends only
    // on the offset. Build two positions with the same offset.
    EXPECT_EQ(outA.shape(), outB.shape());
}

TEST(ActivationAware, UnitScalesMatchPlainFactorization)
{
    Rng rngA(14);
    Linear plain(10, 12, false, "t", rngA);
    Rng rngB(14);
    Linear aware(10, 12, false, "t", rngB);
    ASSERT_TRUE(plain.factorize(2).ok());
    ASSERT_TRUE(aware.factorizeActivationAware(2, std::vector<float>(12, 1.0F)).ok());
    Tensor x = Tensor::randn({4, 12}, rngA);
    EXPECT_LT(relativeError(plain.forward(x), aware.forward(x)), 1e-4);
}

TEST(ActivationAware, ReducesWeightedReconstructionError)
{
    // With strongly non-uniform input scales, the activation-aware
    // rank-1 approximation must beat the plain one in the scaled
    // metric ||(W_hat - W) diag(s)||.
    Rng rng(15);
    Tensor w = Tensor::randn({16, 16}, rng);
    std::vector<float> s(16, 0.05F);
    for (int i = 0; i < 4; ++i)
        s[static_cast<size_t>(i)] = 4.0F; // few hot features

    auto scaledError = [&](const Tensor &what) {
        double err = 0.0;
        for (int64_t r = 0; r < 16; ++r)
            for (int64_t c = 0; c < 16; ++c) {
                const double d =
                    (static_cast<double>(what(r, c)) - w(r, c))
                    * s[static_cast<size_t>(c)];
                err += d * d;
            }
        return err;
    };

    Rng rngA(16);
    Linear plain(16, 16, false, "t", rngA);
    plain.weight().value = w;
    ASSERT_TRUE(plain.factorize(1).ok());

    Rng rngB(16);
    Linear aware(16, 16, false, "t", rngB);
    aware.weight().value = w;
    ASSERT_TRUE(aware.factorizeActivationAware(1, s).ok());

    EXPECT_LT(scaledError(aware.effectiveWeight()),
              scaledError(plain.effectiveWeight()));
}

TEST(ActivationAware, RejectsBadScales)
{
    Rng rng(17);
    Linear lin(4, 4, false, "t", rng);
    EXPECT_THROW(
        (void)lin.factorizeActivationAware(1, {1.0F, 1.0F}), // wrong size
        std::runtime_error);
    EXPECT_THROW(
        (void)lin.factorizeActivationAware(1, {1.0F, 0.0F, 1.0F, 1.0F}),
        std::runtime_error);
}

TEST(ActivationAware, EndToEndOnModel)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel model(cfg, 18);
    const DecompConfig gamma =
        DecompConfig::allTensors(cfg, {0}, 2);
    std::vector<TokenSeq> calib = {{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}};
    ASSERT_TRUE(applyActivationAware(model, gamma, calib).ok());
    EXPECT_TRUE(model.anyFactorized());
    Tensor logits = model.forward({1, 2, 3});
    EXPECT_TRUE(logits.allFinite());
}

TEST(ActivationAware, CalibrationRequiresDenseModel)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel model(cfg, 19);
    ASSERT_TRUE(model.applyTucker(0, WeightKind::Query, 1).ok());
    const DecompConfig gamma = DecompConfig::allTensors(cfg, {0}, 1);
    std::vector<TokenSeq> calib = {{1, 2, 3}};
    EXPECT_THROW(calibrateActivationScales(model, gamma, calib),
                 std::runtime_error);
}

TEST(InstallFactorShape, MatchesFactorizeLayout)
{
    Rng rngA(20);
    Linear a(6, 8, false, "t", rngA);
    ASSERT_TRUE(a.factorize(2).ok());
    Rng rngB(20);
    Linear b(6, 8, false, "t", rngB);
    b.installFactorShape(2);
    auto pa = a.parameters();
    auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i]->name, pb[i]->name);
        EXPECT_EQ(pa[i]->value.shape(), pb[i]->value.shape());
    }
}

} // namespace
} // namespace lrd
