/**
 * @file
 * Tests for the serving layer: bounded MPMC queue semantics plus a
 * multi-threaded contention storm, deterministic admission control
 * with retry-after hints, the graceful-degradation ladder's
 * hysteresis, workload generation/loading, end-to-end server runs
 * (exactly-once settlement, deadline excision, bitwise determinism
 * across thread-pool sizes), client-side backoff, and a chaos sweep
 * over every serve.* fault site and kind.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread> // lrd-lint: allow(thread-outside-parallel) storm test
#include <vector>

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/retry.h"
#include "robust/signal.h"
#include "serve/admission.h"
#include "serve/load_control.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "serve/workload.h"

using namespace lrd;
namespace fs = std::filesystem;

namespace {

/** Disarms faults / cancel state around each fault-driving test. */
struct ServeGuard
{
    ServeGuard() { reset(); }
    ~ServeGuard() { reset(); }

    static void reset()
    {
        clearFaults();
        clearCancelRequest();
        clearDeadline();
        resetSignalsForTest();
    }
};

ModelConfig
serveConfig()
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = 64;
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 2;
    cfg.maxSeq = 48;
    return cfg;
}

WorkloadOptions
smallWorkload(int n)
{
    WorkloadOptions w;
    w.numRequests = n;
    w.maxContextLen = 6;
    w.maxContinuationLen = 3;
    w.deadlineTicks = 256;
    return w;
}

/** Outcome counts must partition the workload exactly. */
void
expectExactlyOnce(const ServeReport &r, size_t n)
{
    ASSERT_EQ(r.responses.size(), n);
    int64_t settled = 0;
    for (size_t i = 0; i < r.responses.size(); ++i) {
        const ServeResponse &resp = r.responses[i];
        EXPECT_EQ(resp.id, static_cast<int64_t>(i));
        EXPECT_TRUE(serveOutcomeTerminal(resp.outcome))
            << "request " << i << " never settled";
        ++settled;
    }
    const ServeStats &s = r.stats;
    EXPECT_EQ(s.responded + s.shed + s.deadlineMissed + s.cancelled +
                  s.unavailable,
              settled);
}

} // namespace

// ---------------------------------------------------------------------
// BoundedMpmcQueue

TEST(ServeQueue, FifoAndBounded)
{
    BoundedMpmcQueue<int> q(3);
    EXPECT_EQ(q.capacity(), 3);
    EXPECT_FALSE(q.tryPop().has_value());
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4)) << "push past capacity must shed";
    EXPECT_EQ(q.size(), 3);
    EXPECT_EQ(q.tryPop().value(), 1);
    EXPECT_TRUE(q.tryPush(4)) << "pop frees a slot";
    EXPECT_EQ(q.tryPop().value(), 2);
    EXPECT_EQ(q.tryPop().value(), 3);
    EXPECT_EQ(q.tryPop().value(), 4);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(ServeQueue, CloseRejectsPushesAndDrainsPops)
{
    BoundedMpmcQueue<int> q(4);
    EXPECT_TRUE(q.tryPush(7));
    EXPECT_TRUE(q.tryPush(8));
    q.close();
    q.close(); // idempotent
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(9)) << "a closed queue admits nothing";
    // Residual items drain in order, then popWait reports closure.
    EXPECT_EQ(q.popWait().value(), 7);
    EXPECT_EQ(q.popWait().value(), 8);
    EXPECT_FALSE(q.popWait().has_value());
}

TEST(ServeQueue, ContentionStormLosesNothing)
{
    // MPMC storm: every pushed item is popped exactly once, and
    // popWait consumers exit exactly when the queue is closed and
    // drained. Run under both TSan and ASan via scripts/verify.sh.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 200;

    BoundedMpmcQueue<int> q(8);
    std::atomic<int64_t> popCount{0};
    std::atomic<int64_t> popSum{0};

    std::vector<std::thread> threads; // lrd-lint: allow(thread-outside-parallel) raw threads exercise the queue's MPMC contract directly
    threads.reserve(kProducers + kConsumers);
    for (int c = 0; c < kConsumers; ++c)
        threads.emplace_back([&] {
            while (auto item = q.popWait()) {
                popCount.fetch_add(1, std::memory_order_relaxed);
                popSum.fetch_add(*item, std::memory_order_relaxed);
            }
        });
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int item = p * kPerProducer + i;
                while (!q.tryPush(item)) {
                    // Full queue: the producer owns the retry (spin;
                    // real clients back off through the server).
                    std::this_thread::yield();
                }
            }
        });
    for (int p = 0; p < kProducers; ++p)
        threads[static_cast<size_t>(kConsumers + p)].join();
    q.close();
    for (int c = 0; c < kConsumers; ++c)
        threads[static_cast<size_t>(c)].join();

    const int64_t n = kProducers * kPerProducer;
    EXPECT_EQ(popCount.load(), n);
    EXPECT_EQ(popSum.load(), n * (n - 1) / 2)
        << "sum mismatch: an item was lost or duplicated";
}

// ---------------------------------------------------------------------
// Admission control

TEST(ServeAdmission, AdmitsBelowCapacityShedsAtCapacity)
{
    ServeGuard guard;
    AdmissionController ac(4, 2);
    for (int64_t depth = 0; depth < 4; ++depth)
        EXPECT_TRUE(ac.offer(depth).admitted) << "depth " << depth;

    const AdmitDecision shed = ac.offer(4);
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.status.code(), StatusCode::ResourceExhausted);
    // Retry-after is the backlog drained at full batch rate:
    // ceil(4 / 2) = 2 ticks.
    EXPECT_EQ(shed.retryAfterTicks, 2);
    // Determinism: the same depth always gets the same decision.
    const AdmitDecision again = ac.offer(4);
    EXPECT_FALSE(again.admitted);
    EXPECT_EQ(again.retryAfterTicks, shed.retryAfterTicks);
}

TEST(ServeAdmission, InjectedAllocFaultShedsLikeOverload)
{
    ServeGuard guard;
    AdmissionController ac(16, 4);
    setFault(FaultSpec{"serve.admit", FaultKind::Alloc, 1});
    const AdmitDecision shed = ac.offer(0); // empty queue, still shed
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.status.code(), StatusCode::ResourceExhausted);
    EXPECT_GE(shed.retryAfterTicks, 1);
    clearFaults();
    EXPECT_TRUE(ac.offer(0).admitted);
}

// ---------------------------------------------------------------------
// Degradation ladder

TEST(ServeLadder, HysteresisStepsUpAndDown)
{
    LoadController lc(LoadControlOptions{});
    EXPECT_EQ(lc.update(0, 16), ServiceLevel::Normal);
    EXPECT_EQ(lc.update(7, 16), ServiceLevel::Normal); // below 0.5
    EXPECT_EQ(lc.update(8, 16), ServiceLevel::BatchShrink);
    // Inside the hysteresis band: no flap.
    EXPECT_EQ(lc.update(7, 16), ServiceLevel::BatchShrink);
    EXPECT_EQ(lc.update(12, 16), ServiceLevel::BatchShrink); // below 0.8
    EXPECT_EQ(lc.update(13, 16), ServiceLevel::RankFallback);
    EXPECT_TRUE(lc.useFallbackModel());
    // Must fall below fallbackLow (0.5) to leave RankFallback.
    EXPECT_EQ(lc.update(8, 16), ServiceLevel::RankFallback);
    EXPECT_EQ(lc.update(7, 16), ServiceLevel::BatchShrink);
    // And below shrinkLow (0.25) to return to Normal.
    EXPECT_EQ(lc.update(4, 16), ServiceLevel::BatchShrink);
    EXPECT_EQ(lc.update(3, 16), ServiceLevel::Normal);
    EXPECT_EQ(lc.transitions(), 4);
}

TEST(ServeLadder, BatchCeilingHalvesUnderShrink)
{
    LoadController lc(LoadControlOptions{});
    EXPECT_EQ(lc.maxBatch(8), 8);
    lc.update(8, 16); // -> BatchShrink
    EXPECT_EQ(lc.maxBatch(8), 4);
    EXPECT_EQ(lc.maxBatch(1), 1) << "ceiling never drops below 1";
    lc.update(16, 16); // -> RankFallback
    EXPECT_EQ(lc.maxBatch(8), 4);
}

TEST(ServeLadder, LevelNamesAreStable)
{
    EXPECT_STREQ(serviceLevelName(ServiceLevel::Normal), "normal");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::BatchShrink),
                 "batch-shrink");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::RankFallback),
                 "rank-fallback");
}

// ---------------------------------------------------------------------
// Client-side backoff

TEST(ServeBackoff, ExponentialAndCapped)
{
    EXPECT_EQ(backoffTicks(2, 0), 2);
    EXPECT_EQ(backoffTicks(2, 1), 4);
    EXPECT_EQ(backoffTicks(2, 3), 16);
    EXPECT_EQ(backoffTicks(2, 40, 1024), 1024) << "cap applies";
    EXPECT_EQ(backoffTicks(0, 5), 0) << "zero base disables backoff";
}

// ---------------------------------------------------------------------
// Workloads

TEST(ServeWorkload, SyntheticIsDeterministicAndWellFormed)
{
    const ModelConfig cfg = serveConfig();
    WorkloadOptions opts = smallWorkload(16);
    opts.maxArrivalGapTicks = 3;
    const std::vector<ServeRequest> a = makeSyntheticWorkload(cfg, opts);
    const std::vector<ServeRequest> b = makeSyntheticWorkload(cfg, opts);
    ASSERT_EQ(a.size(), 16u);
    int64_t lastArrival = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_EQ(a[i].context, b[i].context);
        EXPECT_EQ(a[i].continuation, b[i].continuation);
        EXPECT_EQ(a[i].arrivalTick, b[i].arrivalTick);
        EXPECT_GE(a[i].arrivalTick, lastArrival);
        lastArrival = a[i].arrivalTick;
        EXPECT_EQ(a[i].deadlineTick,
                  a[i].arrivalTick + opts.deadlineTicks);
        EXPECT_FALSE(a[i].context.empty());
        EXPECT_FALSE(a[i].continuation.empty());
        for (int tok : a[i].context)
            EXPECT_LT(tok, cfg.vocabSize);
    }
}

TEST(ServeWorkload, JsonlLoaderParsesAndValidates)
{
    const fs::path path =
        fs::temp_directory_path() / "lrd_serve_workload.jsonl";
    {
        std::ofstream out(path);
        out << R"({"context": [1, 2, 3], "continuation": [4]})" << "\n"
            << R"({"context": [5], "continuation": [6, 7],)"
            << R"( "tenant": 2, "arrival": 3, "deadline": 40})" << "\n";
    }
    const Result<std::vector<ServeRequest>> r =
        loadWorkloadFile(path.string(), 10);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    ASSERT_EQ(r.value().size(), 2u);
    EXPECT_EQ(r.value()[0].context, (TokenSeq{1, 2, 3}));
    EXPECT_EQ(r.value()[0].deadlineTick, 10); // arrival 0 + default
    EXPECT_EQ(r.value()[1].tenant, 2);
    EXPECT_EQ(r.value()[1].arrivalTick, 3);
    EXPECT_EQ(r.value()[1].deadlineTick, 40);

    {
        std::ofstream out(path);
        out << R"({"context": [], "continuation": [1]})" << "\n";
    }
    const Result<std::vector<ServeRequest>> bad =
        loadWorkloadFile(path.string(), 10);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);

    const Result<std::vector<ServeRequest>> missing =
        loadWorkloadFile((fs::temp_directory_path() /
                          "lrd_serve_no_such_file.jsonl")
                             .string(),
                         10);
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::NotFound);
    fs::remove(path);
}

// ---------------------------------------------------------------------
// Server end-to-end

TEST(Server, ServesEveryRequestExactlyOnce)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 8;
    opts.maxBatch = 4;
    Server server(model, opts);
    const ServeReport r =
        server.run(makeSyntheticWorkload(serveConfig(), smallWorkload(12)));
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    expectExactlyOnce(r, 12);
    EXPECT_EQ(r.stats.responded, 12);
    EXPECT_EQ(r.stats.shed, 0);
    for (const ServeResponse &resp : r.responses) {
        EXPECT_EQ(resp.outcome, ServeOutcome::Responded);
        EXPECT_TRUE(std::isfinite(resp.score));
        EXPECT_FALSE(resp.degraded);
    }
}

TEST(Server, OverloadShedsTerminallyWithRetryAfter)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 2;
    opts.maxBatch = 1;
    opts.maxClientAttempts = 1; // no backoff: shed is immediate
    Server server(model, opts);
    const ServeReport r = server.run(
        makeSyntheticWorkload(serveConfig(), smallWorkload(12)));
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    expectExactlyOnce(r, 12);
    EXPECT_GT(r.stats.shed, 0) << "a 2-deep queue must shed a 12-burst";
    EXPECT_GT(r.stats.responded, 0);
    for (const ServeResponse &resp : r.responses)
        if (resp.outcome == ServeOutcome::Shed) {
            EXPECT_EQ(resp.status.code(), StatusCode::ResourceExhausted);
            EXPECT_GE(resp.retryAfterTicks, 1);
        }
}

TEST(Server, ClientBackoffRecoversAdmission)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 2;
    opts.maxBatch = 2;
    opts.maxClientAttempts = 8;
    opts.retryBackoffBaseTicks = 1;
    Server server(model, opts);
    const ServeReport r = server.run(
        makeSyntheticWorkload(serveConfig(), smallWorkload(12)));
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    expectExactlyOnce(r, 12);
    EXPECT_GT(r.stats.clientRetries, 0);
    EXPECT_EQ(r.stats.responded, 12)
        << "with enough attempts every request eventually lands";
}

TEST(Server, ExpiredDeadlinesAreExcisedNotScored)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 32;
    opts.maxBatch = 1; // one per tick: the burst's tail must expire
    opts.maxClientAttempts = 1;
    Server server(model, opts);
    WorkloadOptions wl = smallWorkload(10);
    wl.deadlineTicks = 3;
    const ServeReport r =
        server.run(makeSyntheticWorkload(serveConfig(), wl));
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    expectExactlyOnce(r, 10);
    EXPECT_GT(r.stats.deadlineMissed, 0);
    EXPECT_GT(r.stats.responded, 0);
    for (const ServeResponse &resp : r.responses) {
        if (resp.outcome == ServeOutcome::DeadlineMissed) {
            EXPECT_EQ(resp.status.code(), StatusCode::DeadlineExceeded);
        }
    }
}

TEST(Server, DegradationLadderEngagesUnderBurst)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 8;
    opts.maxBatch = 4;
    opts.fallbackRank = 2;
    opts.maxClientAttempts = 8;
    Server server(model, opts);
    ASSERT_TRUE(server.hasFallbackModel());
    const ServeReport r = server.run(
        makeSyntheticWorkload(serveConfig(), smallWorkload(24)));
    ASSERT_TRUE(r.status.ok()) << r.status.toString();
    expectExactlyOnce(r, 24);
    EXPECT_EQ(r.stats.maxServiceLevel,
              static_cast<int64_t>(ServiceLevel::RankFallback))
        << "a 24-burst into an 8-deep queue must reach rank fallback";
    EXPECT_GT(r.stats.degradedResponses, 0)
        << "some requests must be scored by the fallback variant";
    bool sawDegraded = false;
    for (const ServeResponse &resp : r.responses)
        sawDegraded = sawDegraded || resp.degraded;
    EXPECT_TRUE(sawDegraded);
}

TEST(Server, ResponsesBitwiseIdenticalAcrossThreadCounts)
{
    ServeGuard guard;
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 8;
    opts.maxBatch = 4;
    opts.fallbackRank = 2;
    opts.maxClientAttempts = 8;
    WorkloadOptions wl = smallWorkload(24);
    wl.maxArrivalGapTicks = 1;

    std::vector<ServeResponse> baseline;
    for (const int threads : {1, 4, 8}) {
        ThreadPool::instance().resize(threads);
        Server server(model, opts);
        const ServeReport r =
            server.run(makeSyntheticWorkload(serveConfig(), wl));
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
        expectExactlyOnce(r, 24);
        if (baseline.empty()) {
            baseline = r.responses;
            continue;
        }
        for (size_t i = 0; i < baseline.size(); ++i) {
            SCOPED_TRACE("request " + std::to_string(i) + " at " +
                         std::to_string(threads) + " threads");
            EXPECT_EQ(r.responses[i].outcome, baseline[i].outcome);
            // Bitwise, not approximate: the replica-per-worker
            // batcher guarantees the same floating-point result.
            EXPECT_EQ(r.responses[i].score, baseline[i].score);
            EXPECT_EQ(r.responses[i].degraded, baseline[i].degraded);
            EXPECT_EQ(r.responses[i].settledTick,
                      baseline[i].settledTick);
        }
    }
    ThreadPool::instance().resize(1);
}

TEST(Server, ItemsBudgetTruncatesAndWindsDown)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 32;
    opts.maxBatch = 4;
    Server server(model, opts);
    Deadline d;
    d.kind = DeadlineKind::Items;
    d.budget = 6;
    setDeadline(d);
    const ServeReport r = server.run(
        makeSyntheticWorkload(serveConfig(), smallWorkload(16)));
    clearDeadline();
    EXPECT_EQ(r.status.code(), StatusCode::DeadlineExceeded)
        << r.status.toString();
    expectExactlyOnce(r, 16);
    EXPECT_EQ(r.stats.responded, 6) << "budget admits exactly 6 items";
    EXPECT_EQ(r.stats.cancelled, 10)
        << "the truncated tail drains as Cancelled";
}

// ---------------------------------------------------------------------
// Chaos: every serve.* site and kind, including mid-batch cancel

TEST(ServeChaos, EverySiteAndKindDrainsWithoutLosingRequests)
{
    ServeGuard guard;
    ThreadPool::instance().resize(2);
    TransformerModel model(serveConfig(), 42);

    struct ChaosCase
    {
        std::string site;
        FaultKind kind;
    };
    const std::vector<ChaosCase> cases = {
        {"serve.admit", FaultKind::Alloc},
        {"serve.admit", FaultKind::Cancel},
        {"serve.batch", FaultKind::Nan},
        {"serve.batch", FaultKind::Cancel},
        {"serve.respond", FaultKind::Alloc},
        {"serve.respond", FaultKind::Cancel},
    };

    for (const ChaosCase &c : cases) {
        SCOPED_TRACE(std::string(c.site) + " kind " +
                     std::to_string(static_cast<int>(c.kind)));
        ServeGuard::reset();
        ServeOptions opts;
        opts.queueCapacity = 8;
        opts.maxBatch = 2;
        opts.maxClientAttempts = 2;
        opts.responderAttempts = 1; // alloc fault -> Unavailable
        Server server(model, opts);
        setFault(FaultSpec{c.site, c.kind, 2});
        const ServeReport r = server.run(
            makeSyntheticWorkload(serveConfig(), smallWorkload(10)));
        // The invariant under ANY injected fault: the run terminates
        // (no deadlock — this test finishing is the assertion), every
        // request settles exactly once, and the report is coherent.
        expectExactlyOnce(r, 10);
        if (c.kind == FaultKind::Cancel) {
            EXPECT_EQ(r.status.code(), StatusCode::Cancelled);
            EXPECT_GT(r.stats.cancelled, 0);
        } else {
            ASSERT_TRUE(r.status.ok()) << r.status.toString();
        }
        if (c.site == "serve.respond" && c.kind == FaultKind::Alloc) {
            EXPECT_EQ(r.stats.unavailable, 1);
            EXPECT_EQ(exitCodeForStatus(Status(StatusCode::Unavailable,
                                               "serve.respond", "")),
                      kExitUnavailable);
        }
        if (c.site == "serve.batch" && c.kind == FaultKind::Nan) {
            // The poisoned item settles as Responded with a NonFinite
            // status; nothing downstream consumes the NaN.
            int64_t poisoned = 0;
            for (const ServeResponse &resp : r.responses)
                poisoned += resp.status.code() == StatusCode::NonFinite;
            EXPECT_EQ(poisoned, 1);
        }
    }
    ThreadPool::instance().resize(1);
}

TEST(ServeChaos, SigintMidRunDrainsAsCancelled)
{
    ServeGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(serveConfig(), 42);
    ServeOptions opts;
    opts.queueCapacity = 16;
    opts.maxBatch = 2;
    Server server(model, opts);
    // Simulate the first SIGINT mid-run via the cancel token (the
    // handler itself is exercised by scripts/serve_chaos.sh with a
    // real `timeout -s INT`).
    setFault(FaultSpec{"serve.batch", FaultKind::Cancel, 3});
    const ServeReport r = server.run(
        makeSyntheticWorkload(serveConfig(), smallWorkload(16)));
    EXPECT_EQ(r.status.code(), StatusCode::Cancelled);
    expectExactlyOnce(r, 16);
    EXPECT_GT(r.stats.responded, 0)
        << "batches accepted before the signal still respond";
    EXPECT_GT(r.stats.cancelled, 0);
    EXPECT_EQ(exitCodeForStatus(r.status), kExitCancelled);
}

TEST(ServeChaos, OutcomeNamesAreStable)
{
    // These strings are CLI surface (`lrdtool serve` outcome table)
    // and chaos-script grep targets.
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::Pending), "pending");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::Responded), "responded");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::Shed), "shed");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::DeadlineMissed),
                 "deadline-missed");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::Cancelled), "cancelled");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::Unavailable),
                 "unavailable");
}

TEST(ServeChaos, RegistryListsEveryServeSite)
{
    // `lrdtool faults` documents what chaos runs can target; a serve
    // site missing here would make scripts/serve_chaos.sh rot.
    std::set<std::string> sites;
    for (const FaultSiteInfo &info : registeredFaultSites())
        sites.insert(info.site);
    for (const char *site : {"serve.admit", "serve.batch", "serve.respond"})
        EXPECT_TRUE(sites.count(site)) << site << " not registered";
}
