/**
 * @file
 * Tests for mode-n unfolding/folding and mode-n products, including
 * the Kolda-Bader identities used by Tucker decomposition.
 */

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/unfold.h"
#include "util/rng.h"

namespace lrd {
namespace {

TEST(Unfold, Mode0OfMatrixIsIdentity)
{
    Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
    Tensor u = unfold(t, 0);
    EXPECT_EQ(u.shape(), (Shape{2, 3}));
    EXPECT_LT(relativeError(t, u), 1e-7);
}

TEST(Unfold, Mode1OfMatrixIsTranspose)
{
    Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
    Tensor u = unfold(t, 1);
    EXPECT_EQ(u.shape(), (Shape{3, 2}));
    EXPECT_LT(relativeError(transpose2d(t), u), 1e-7);
}

TEST(Unfold, KoldaBaderWorkedExample)
{
    // Kolda & Bader (2009), Example 2.1: X in R^{3x4x2} with
    // X(:,:,1) = [1 4 7 10; 2 5 8 11; 3 6 9 12],
    // X(:,:,2) = [13 16 19 22; 14 17 20 23; 15 18 21 24].
    Tensor x({3, 4, 2});
    int v = 1;
    for (int64_t k = 0; k < 2; ++k)
        for (int64_t j = 0; j < 4; ++j)
            for (int64_t i = 0; i < 3; ++i)
                x.at({i, j, k}) = static_cast<float>(v++);

    // X_(0) = [1 4 7 10 13 ...; 2 5 ...; 3 6 ...] with columns ordered
    // j (fast) then k (slow).
    Tensor u0 = unfold(x, 0);
    EXPECT_EQ(u0.shape(), (Shape{3, 8}));
    EXPECT_FLOAT_EQ(u0(0, 0), 1.0F);
    EXPECT_FLOAT_EQ(u0(0, 1), 4.0F);
    EXPECT_FLOAT_EQ(u0(0, 4), 13.0F);
    EXPECT_FLOAT_EQ(u0(2, 7), 24.0F);

    // X_(1): rows are j, columns ordered i (fast) then k (slow).
    Tensor u1 = unfold(x, 1);
    EXPECT_EQ(u1.shape(), (Shape{4, 6}));
    EXPECT_FLOAT_EQ(u1(0, 0), 1.0F);
    EXPECT_FLOAT_EQ(u1(0, 1), 2.0F);
    EXPECT_FLOAT_EQ(u1(0, 3), 13.0F);
    EXPECT_FLOAT_EQ(u1(3, 5), 24.0F);

    // X_(2): rows are k, columns ordered i (fast) then j.
    Tensor u2 = unfold(x, 2);
    EXPECT_EQ(u2.shape(), (Shape{2, 12}));
    EXPECT_FLOAT_EQ(u2(0, 0), 1.0F);
    EXPECT_FLOAT_EQ(u2(1, 0), 13.0F);
    EXPECT_FLOAT_EQ(u2(0, 11), 12.0F);
}

TEST(Unfold, InvalidModeThrows)
{
    Tensor t({2, 2});
    EXPECT_THROW(unfold(t, 2), std::runtime_error);
    EXPECT_THROW(unfold(t, -1), std::runtime_error);
}

TEST(Fold, RejectsBadShapes)
{
    Tensor m({2, 6});
    EXPECT_THROW(fold(m, 0, {3, 4}), std::runtime_error);   // wrong lead
    EXPECT_THROW(fold(m, 0, {2, 5}), std::runtime_error);   // wrong count
    EXPECT_THROW(fold(m, 3, {2, 3, 2}), std::runtime_error); // bad mode
}

/** Property: fold(unfold(T, m), m) == T for every mode of random
 *  tensors of orders 1..4. */
class UnfoldRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UnfoldRoundTrip, FoldInvertsUnfold)
{
    Rng rng(static_cast<uint64_t>(100 + GetParam()));
    const int order = 1 + GetParam() % 4;
    Shape shape;
    for (int i = 0; i < order; ++i)
        shape.push_back(2 + static_cast<int64_t>(rng.uniformInt(4)));
    Tensor t = Tensor::randn(shape, rng);
    for (int64_t m = 0; m < t.rank(); ++m) {
        Tensor u = unfold(t, m);
        Tensor back = fold(u, m, shape);
        EXPECT_LT(relativeError(t, back), 1e-7)
            << "order " << order << " mode " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, UnfoldRoundTrip, ::testing::Range(0, 12));

TEST(ModeProduct, MatrixModeProductsMatchMatmul)
{
    Rng rng(7);
    Tensor t = Tensor::randn({4, 5}, rng);
    Tensor m0 = Tensor::randn({3, 4}, rng);
    Tensor m1 = Tensor::randn({2, 5}, rng);
    // T x_0 M0 == M0 * T; T x_1 M1 == T * M1^T.
    EXPECT_LT(relativeError(modeProduct(t, m0, 0), matmul(m0, t)), 1e-6);
    EXPECT_LT(relativeError(modeProduct(t, m1, 1), matmulTransB(t, m1)),
              1e-6);
}

TEST(ModeProduct, ChangesOnlyTargetMode)
{
    Rng rng(8);
    Tensor t = Tensor::randn({3, 4, 5}, rng);
    Tensor m = Tensor::randn({2, 4}, rng);
    Tensor y = modeProduct(t, m, 1);
    EXPECT_EQ(y.shape(), (Shape{3, 2, 5}));
}

TEST(ModeProduct, IncompatibleFactorThrows)
{
    Tensor t({3, 4});
    Tensor m({2, 5});
    EXPECT_THROW(modeProduct(t, m, 1), std::runtime_error);
}

TEST(ModeProduct, IdentityIsNoop)
{
    Rng rng(9);
    Tensor t = Tensor::randn({3, 4, 2}, rng);
    for (int64_t m = 0; m < 3; ++m) {
        Tensor i = Tensor::eye(t.dim(m));
        EXPECT_LT(relativeError(t, modeProduct(t, i, m)), 1e-7);
    }
}

/** Property: mode products on distinct modes commute. */
class ModeProductCommute : public ::testing::TestWithParam<int> {};

TEST_P(ModeProductCommute, DistinctModesCommute)
{
    Rng rng(static_cast<uint64_t>(200 + GetParam()));
    Tensor t = Tensor::randn({3, 4, 5}, rng);
    Tensor a = Tensor::randn({2, 3}, rng);
    Tensor b = Tensor::randn({6, 5}, rng);
    Tensor ab = modeProduct(modeProduct(t, a, 0), b, 2);
    Tensor ba = modeProduct(modeProduct(t, b, 2), a, 0);
    EXPECT_LT(relativeError(ab, ba), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Random, ModeProductCommute, ::testing::Range(0, 8));

TEST(ModeProduct, SameModeComposes)
{
    // (T x_m A) x_m B == T x_m (B A).
    Rng rng(10);
    Tensor t = Tensor::randn({4, 3}, rng);
    Tensor a = Tensor::randn({5, 4}, rng);
    Tensor b = Tensor::randn({2, 5}, rng);
    Tensor lhs = modeProduct(modeProduct(t, a, 0), b, 0);
    Tensor rhs = modeProduct(t, matmul(b, a), 0);
    EXPECT_LT(relativeError(lhs, rhs), 1e-5);
}

} // namespace
} // namespace lrd
