/**
 * @file
 * Tests for cooperative cancellation, deadlines, signal handling, and
 * the stall watchdog: token semantics (first cause wins), LRD_DEADLINE
 * parsing, serial-point work-budget accounting and its determinism at
 * any thread count, pool drain on cancel, the real SIGINT handler path
 * (including the second-signal force-exit), trainer/evaluator/DSE
 * deadline truncation, and report-only stall detection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "dse/optimizer.h"
#include "eval/evaluator.h"
#include "model/transformer.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "train/trainer.h"

namespace lrd {
namespace {

/** Clears the process-wide cancel state around each test. */
struct CancelGuard
{
    CancelGuard() { reset(); }
    ~CancelGuard() { reset(); }

    static void reset()
    {
        clearFaults();
        setRobustPolicy(RobustPolicy{});
        (void)takeNumericFault();
        clearCancelRequest();
        clearDeadline();
        resetSignalsForTest();
        stopWatchdog();
    }
};

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 7;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

ModelConfig
smallConfig()
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = smallWorld().vocabSize();
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 4;
    cfg.maxSeq = 48;
    return cfg;
}

TrainOptions
smallTrainOptions(int steps)
{
    TrainOptions t;
    t.steps = steps;
    t.batchSeqs = 4;
    t.seqLen = 24;
    t.warmupSteps = 2;
    t.logEvery = 0;
    return t;
}

// Run before any other suite (gtest schedules *DeathTest suites
// first), while no pool threads complicate the fork.
TEST(SignalDeathTest, SecondSignalForceExitsWith128PlusSigno)
{
    CancelGuard guard;
    EXPECT_EXIT(
        {
            installSignalHandlers();
            resetSignalsForTest();
            std::raise(SIGINT); // First: cooperative request.
            std::raise(SIGINT); // Second: _exit(130).
        },
        testing::ExitedWithCode(128 + SIGINT), "");
}

TEST(Cancel, TokenFirstCauseWinsAndClears)
{
    CancelGuard guard;
    EXPECT_FALSE(cancelRequested());
    EXPECT_EQ(cancelCause(), CancelCause::None);
    EXPECT_TRUE(cancelStatus("test.site").ok());

    requestCancel(CancelCause::Test, "first.site");
    requestCancel(CancelCause::Signal, "second.site"); // Loses.
    EXPECT_TRUE(cancelRequested());
    EXPECT_EQ(cancelCause(), CancelCause::Test);
    EXPECT_STREQ(cancelSite(), "first.site");

    const Status s = cancelStatus("observer");
    EXPECT_EQ(s.code(), StatusCode::Cancelled);
    EXPECT_NE(s.toString().find("first.site"), std::string::npos);

    clearCancelRequest();
    EXPECT_FALSE(cancelRequested());
    EXPECT_EQ(cancelCause(), CancelCause::None);
}

TEST(Cancel, CauseNamesAreStable)
{
    EXPECT_STREQ(cancelCauseName(CancelCause::None), "none");
    EXPECT_STREQ(cancelCauseName(CancelCause::Signal), "signal");
    EXPECT_STREQ(cancelCauseName(CancelCause::Deadline), "deadline");
    EXPECT_STREQ(cancelCauseName(CancelCause::Watchdog), "watchdog");
    EXPECT_STREQ(cancelCauseName(CancelCause::Test), "test");
}

TEST(Deadline, ParsesAllThreeFlavors)
{
    Result<Deadline> r = parseDeadline("steps:5");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kind, DeadlineKind::Steps);
    EXPECT_EQ(r.value().budget, 5);

    r = parseDeadline("items:120");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kind, DeadlineKind::Items);
    EXPECT_EQ(r.value().budget, 120);

    r = parseDeadline("wall:1.5");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kind, DeadlineKind::Wall);
    EXPECT_DOUBLE_EQ(r.value().wallSeconds, 1.5);
}

TEST(Deadline, CurrentReflectsArmAndClear)
{
    Result<Deadline> r = parseDeadline("steps:5");
    ASSERT_TRUE(r.ok());
    setDeadline(r.value());
    EXPECT_EQ(currentDeadline().kind, DeadlineKind::Steps);
    EXPECT_EQ(currentDeadline().budget, 5);
    clearDeadline();
    EXPECT_EQ(currentDeadline().kind, DeadlineKind::None);
}

TEST(Deadline, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseDeadline("").ok());
    EXPECT_FALSE(parseDeadline("steps").ok());
    EXPECT_FALSE(parseDeadline("steps:").ok());
    EXPECT_FALSE(parseDeadline("steps:0").ok());
    EXPECT_FALSE(parseDeadline("steps:-3").ok());
    EXPECT_FALSE(parseDeadline("steps:2x").ok());
    EXPECT_FALSE(parseDeadline("wall:0").ok());
    EXPECT_FALSE(parseDeadline("wall:nope").ok());
    EXPECT_FALSE(parseDeadline("epochs:4").ok());
}

TEST(Deadline, WorkBudgetAdmitsSeriallyAndExpires)
{
    CancelGuard guard;
    Deadline d;
    d.kind = DeadlineKind::Steps;
    d.budget = 5;
    setDeadline(d);

    EXPECT_EQ(consumeWorkBudget("steps", 3), 3);
    EXPECT_EQ(consumeWorkBudget("items", 9), 9); // Other unit: untouched.
    EXPECT_EQ(consumeWorkBudget("steps", 3), 2); // Partial admit.
    EXPECT_EQ(consumeWorkBudget("steps", 3), 0); // Dry.
    EXPECT_FALSE(cancelRequested()); // Consuming never cancels itself.

    expireDeadline("test.expiry");
    EXPECT_TRUE(cancelRequested());
    EXPECT_EQ(cancelCause(), CancelCause::Deadline);
    EXPECT_EQ(cancelStatus("test.expiry").code(),
              StatusCode::DeadlineExceeded);

    clearCancelRequest();
    clearDeadline();
    EXPECT_EQ(consumeWorkBudget("steps", 3), 3); // Disarmed: admit-all.
}

TEST(Deadline, WorkBudgetIgnoresParallelRegions)
{
    CancelGuard guard;
    ThreadPool::instance().resize(4);
    Deadline d;
    d.kind = DeadlineKind::Steps;
    d.budget = 1;
    setDeadline(d);

    // Inside chunk bodies every call admit-alls: nested consumers (a
    // DSE candidate's evaluator, say) must not drain the outer budget
    // in pool-schedule order.
    std::atomic<int64_t> admitted{0};
    parallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            admitted.fetch_add(consumeWorkBudget("steps", 1));
    });
    EXPECT_EQ(admitted.load(), 8);

    // The serial-point budget is untouched by all of that.
    EXPECT_EQ(consumeWorkBudget("steps", 1), 1);
    EXPECT_EQ(consumeWorkBudget("steps", 1), 0);
    ThreadPool::instance().resize(1);
}

TEST(Cancel, PoolDrainsUnclaimedChunksOnCancel)
{
    CancelGuard guard;
    for (int nThreads : {1, 4}) {
        ThreadPool::instance().resize(nThreads);

        requestCancel(CancelCause::Test, "test.drain");
        std::atomic<int64_t> ran{0};
        parallelFor(0, 64, 1,
                    [&](int64_t lo, int64_t hi) { ran += hi - lo; });
        EXPECT_EQ(ran.load(), 0) << "threads=" << nThreads;

        clearCancelRequest();
        parallelFor(0, 64, 1,
                    [&](int64_t lo, int64_t hi) { ran += hi - lo; });
        EXPECT_EQ(ran.load(), 64) << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Cancel, SignalHandlerRequestsCancellation)
{
    CancelGuard guard;
    installSignalHandlers();
    EXPECT_TRUE(signalHandlersInstalled());
    resetSignalsForTest();
    clearCancelRequest();

    std::raise(SIGINT);
    EXPECT_TRUE(cancelRequested());
    EXPECT_EQ(cancelCause(), CancelCause::Signal);
    EXPECT_EQ(signalsSeen(), 1);
    EXPECT_EQ(cancelStatus("after.signal").code(), StatusCode::Cancelled);
}

TEST(Cancel, ExitCodesMapEveryDocumentedOutcome)
{
    EXPECT_EQ(exitCodeForStatus(Status()), kExitOk);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::ResourceExhausted,
                                       "s", "m")),
              kExitDegraded);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::Cancelled, "s", "m")),
              kExitCancelled);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::DeadlineExceeded,
                                       "s", "m")),
              kExitDeadline);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::DataLoss, "s", "m")),
              kExitCorruptCheckpoint);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::NonConvergence,
                                       "s", "m")),
              kExitNonConvergence);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::Unavailable, "s", "m")),
              kExitUnavailable);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::Internal, "s", "m")),
              kExitError);
    EXPECT_EQ(exitCodeForStatus(Status(StatusCode::InvalidArgument,
                                       "s", "m")),
              kExitError);
}

TEST(Deadline, TrainerStepsBudgetIsBitwiseDeterministicAcrossThreads)
{
    CancelGuard guard;
    std::vector<uint8_t> reference;
    for (int nThreads : {1, 4, 8}) {
        ThreadPool::instance().resize(nThreads);
        Deadline d;
        d.kind = DeadlineKind::Steps;
        d.budget = 5;
        setDeadline(d);

        TransformerModel model(smallConfig(), 31);
        Trainer trainer(model, smallWorld(), smallTrainOptions(10));
        trainer.run();
        clearDeadline();
        clearCancelRequest();

        EXPECT_EQ(trainer.runStatus().code(), StatusCode::DeadlineExceeded)
            << "threads=" << nThreads;
        // The same five optimizer steps ran, whatever the thread
        // count: the budget is only consumed at the serial top of a
        // step, so expiry lands on the same step everywhere.
        if (reference.empty())
            reference = model.serialize();
        else
            EXPECT_EQ(model.serialize(), reference)
                << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Deadline, EvaluatorItemsBudgetIsDeterministicAcrossThreads)
{
    CancelGuard guard;
    TransformerModel model(smallConfig(), 42);
    Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});

    int referenceCorrect = -1;
    for (int nThreads : {1, 4, 8}) {
        ThreadPool::instance().resize(nThreads);
        Deadline d;
        d.kind = DeadlineKind::Items;
        d.budget = 5;
        setDeadline(d);

        const EvalResult r = ev.run(BenchmarkKind::ArcEasy);
        clearDeadline();
        clearCancelRequest();

        EXPECT_EQ(r.numTasks, 12) << "threads=" << nThreads;
        EXPECT_EQ(r.numSkipped, 7) << "threads=" << nThreads;
        EXPECT_TRUE(r.partial());
        EXPECT_EQ(r.status.code(), StatusCode::DeadlineExceeded)
            << "threads=" << nThreads;
        // The admitted prefix is always items [0, 5): the scored set
        // (and so the accuracy) cannot depend on the thread count.
        if (referenceCorrect < 0)
            referenceCorrect = r.numCorrect;
        else
            EXPECT_EQ(r.numCorrect, referenceCorrect)
                << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Deadline, DseStepsBudgetTruncatesTheSweep)
{
    CancelGuard guard;
    ThreadPool::instance().resize(4);
    const std::vector<uint8_t> bytes = [] {
        TransformerModel model(smallConfig(), 17);
        return model.serialize();
    }();

    OptimizerOptions opts;
    opts.evalTasks = 6;
    opts.accuracyDropTolerance = 1.1;

    Deadline d;
    d.kind = DeadlineKind::Steps;
    d.budget = 2;
    setDeadline(d);
    const OptimizerResult r =
        optimizeDecomposition(bytes, smallWorld(), opts);
    clearDeadline();
    clearCancelRequest();

    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(r.explored.size(), 2U); // Exactly the admitted prefix.
    ThreadPool::instance().resize(1);
}

TEST(Watchdog, ReportsAStalledSectionAndStopsCleanly)
{
    CancelGuard guard;
    EXPECT_FALSE(watchdogRunning());
    startWatchdog(0.05);
    EXPECT_TRUE(watchdogRunning());

    const int64_t before = watchdogStallCount();
    {
        WatchdogSection section("test.stall");
        // Hold the section open well past the stall threshold without
        // a single progress heartbeat.
        std::this_thread::sleep_for( // lrd-lint: allow(blocking-sleep)
            std::chrono::milliseconds(300));
    }
    EXPECT_GT(watchdogStallCount(), before);
    EXPECT_FALSE(cancelRequested()); // Report-only: never cancels.

    stopWatchdog();
    EXPECT_FALSE(watchdogRunning());
    stopWatchdog(); // Idempotent.
}

TEST(Watchdog, ProgressHeartbeatSuppressesStallReports)
{
    CancelGuard guard;
    startWatchdog(10.0); // Threshold far beyond the test's runtime.
    const int64_t before = watchdogStallCount();
    {
        WatchdogSection section("test.busy");
        for (int i = 0; i < 100; ++i)
            noteProgress("test.busy");
    }
    EXPECT_EQ(watchdogStallCount(), before);
    stopWatchdog();
}

TEST(Watchdog, ServeLoopHeartbeatsAndAWedgedBatcherIsReported)
{
    CancelGuard guard;
    ThreadPool::instance().resize(1);

    // A healthy serve run under the watchdog: the per-tick heartbeat
    // keeps the stall count flat.
    startWatchdog(10.0);
    const int64_t before = watchdogStallCount();
    {
        ModelConfig cfg = testLlamaConfig();
        cfg.vocabSize = 64;
        cfg.dModel = 32;
        cfg.nHeads = 4;
        cfg.dFf = 64;
        cfg.nLayers = 2;
        cfg.maxSeq = 48;
        TransformerModel model(cfg, 42);
        ServeOptions opts;
        opts.queueCapacity = 8;
        WorkloadOptions wl;
        wl.numRequests = 6;
        wl.maxContextLen = 6;
        wl.maxContinuationLen = 3;
        wl.deadlineTicks = 256;
        Server server(model, opts);
        const ServeReport r = server.run(makeSyntheticWorkload(cfg, wl));
        EXPECT_TRUE(r.status.ok()) << r.status.toString();
    }
    EXPECT_EQ(watchdogStallCount(), before);
    stopWatchdog();

    // A wedged batcher — the serve section open with no heartbeat —
    // is reported (and only reported: the run is never killed).
    startWatchdog(0.05);
    const int64_t stalled = watchdogStallCount();
    {
        WatchdogSection section("serve");
        std::this_thread::sleep_for( // lrd-lint: allow(blocking-sleep)
            std::chrono::milliseconds(300));
    }
    EXPECT_GT(watchdogStallCount(), stalled);
    EXPECT_FALSE(cancelRequested());
    stopWatchdog();
}

} // namespace
} // namespace lrd
