/**
 * @file
 * Tests for the design-space module: gamma validity (Prop 3.1),
 * parameter-reduction arithmetic, Theorem 3.2 vs brute-force
 * enumeration, Table 4 consistency against the paper's own reduction
 * percentages, and the spread-schedule generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "model/decomp_config.h"
#include "dse/design_space.h"
#include "dse/schedules.h"

namespace lrd {
namespace {

TEST(DecompConfig, IdentityIsValidEverywhere)
{
    const DecompConfig id = DecompConfig::identity();
    for (const ModelConfig &cfg :
         {testLlamaConfig(), testBertConfig(), llama2_7bConfig()}) {
        EXPECT_TRUE(id.valid(cfg));
        EXPECT_DOUBLE_EQ(id.parameterReduction(cfg), 0.0);
    }
}

TEST(DecompConfig, ValidityCatchesEachViolation)
{
    const ModelConfig cfg = testLlamaConfig(); // 2 layers, d=16
    std::string why;

    DecompConfig badLayer = DecompConfig::allTensors(cfg, {0, 5});
    EXPECT_FALSE(badLayer.valid(cfg, &why));
    EXPECT_NE(why.find("layer 5"), std::string::npos);

    DecompConfig dupLayer = DecompConfig::allTensors(cfg, {1, 1});
    EXPECT_FALSE(dupLayer.valid(cfg, &why));

    DecompConfig badTensor =
        DecompConfig::oneTensor(WeightKind::Intermediate, {0});
    EXPECT_FALSE(badTensor.valid(cfg, &why));
    EXPECT_NE(why.find("Wint"), std::string::npos);

    DecompConfig badRank = DecompConfig::allTensors(cfg, {0}, 17);
    EXPECT_FALSE(badRank.valid(cfg, &why)); // d = 16 caps the rank

    DecompConfig zeroRank = DecompConfig::allTensors(cfg, {0}, 0);
    EXPECT_FALSE(zeroRank.valid(cfg, &why));

    DecompConfig halfEmpty;
    halfEmpty.layers = {0};
    EXPECT_FALSE(halfEmpty.valid(cfg, &why));

    DecompConfig strayOverride = DecompConfig::allTensors(cfg, {0});
    strayOverride.rankOverrides[{1, static_cast<int>(WeightKind::Query)}] =
        1;
    EXPECT_FALSE(strayOverride.valid(cfg, &why));
    EXPECT_NE(why.find("override"), std::string::npos);
}

TEST(DecompConfig, PrunedRanksFollowDefinition3)
{
    const ModelConfig cfg = testLlamaConfig();
    DecompConfig c = DecompConfig::allTensors(cfg, {0, 1}, 2);
    c.rankOverrides[{1, static_cast<int>(WeightKind::Gate)}] = 3;
    const auto prs = c.prunedRanks();
    // |PR| = |layers| x |tensors|.
    EXPECT_EQ(prs.size(), 2U * 7U);
    for (const PrunedRankEntry &e : prs) {
        if (e.layer == 1 && e.kind == WeightKind::Gate)
            EXPECT_EQ(e.rank, 3);
        else
            EXPECT_EQ(e.rank, 2);
    }
}

TEST(DecompConfig, ParamArithmeticMatchesModel)
{
    // parameterReduction must equal the live model's param drop.
    const ModelConfig cfg = testLlamaConfig();
    DecompConfig gamma = DecompConfig::allTensors(cfg, {0}, 1);
    TransformerModel model(cfg, 3);
    const int64_t before = model.paramCount();
    ASSERT_TRUE(gamma.applyTo(model).ok());
    const int64_t after = model.paramCount();
    EXPECT_EQ(before - after,
              gamma.paramsBefore(cfg) - gamma.paramsAfter(cfg));
    EXPECT_NEAR(gamma.parameterReduction(cfg),
                static_cast<double>(before - after) / before, 1e-12);
}

TEST(DecompConfig, ApplyInvalidConfigIsFatal)
{
    const ModelConfig cfg = testLlamaConfig();
    TransformerModel model(cfg, 3);
    DecompConfig bad = DecompConfig::allTensors(cfg, {7});
    EXPECT_THROW(bad.applyTo(model), std::runtime_error);
}

TEST(DesignSpace, Theorem32MatchesBruteForceEnumeration)
{
    // Enumerate a tiny model and compare against the closed form.
    ModelConfig cfg = testLlamaConfig(); // 2 layers, 7 tensors
    for (int64_t rank : {1, 2, 3}) {
        const auto all = enumerateUniformConfigs(cfg, rank);
        // Uniqueness of configurations.
        std::set<std::string> keys;
        for (const DecompConfig &c : all) {
            std::string key = c.describe();
            EXPECT_TRUE(keys.insert(key).second) << key;
            EXPECT_TRUE(c.valid(cfg)) << key;
        }
        EXPECT_EQ(all.size(),
                  designSpaceSizeExact(cfg.nLayers,
                                       cfg.numDecomposableTensors(),
                                       rank));
    }
}

TEST(DesignSpace, ClosedFormKnownValues)
{
    // (2^2 - 1)(2^2 - 1) * 1 + 1 = 10.
    EXPECT_EQ(designSpaceSizeExact(2, 2, 1), 10U);
    // (2^3 - 1)(2^1 - 1) * 4 + 1 = 29.
    EXPECT_EQ(designSpaceSizeExact(3, 1, 4), 29U);
}

TEST(DesignSpace, Log2MatchesPaperTable2)
{
    // Paper Table 2 scales (using its own layer/tensor counts):
    // BERT-Base (12, 6) -> O(2^18); BERT-Large (24, 6) -> O(2^30);
    // Llama2-7B (32, 5) -> O(2^37); Llama2-70B (80, 5) -> O(2^85).
    EXPECT_NEAR(designSpaceSizeLog2(12, 6, 1), 18.0, 0.1);
    EXPECT_NEAR(designSpaceSizeLog2(24, 6, 1), 30.0, 0.1);
    EXPECT_NEAR(designSpaceSizeLog2(32, 5, 1), 37.0, 0.1);
    EXPECT_NEAR(designSpaceSizeLog2(80, 5, 1), 85.0, 0.1);
}

TEST(DesignSpace, Log2ConsistentWithExactForSmallDims)
{
    for (int64_t l : {2, 5, 10})
        for (int64_t t : {1, 3, 6})
            for (int64_t r : {1, 7}) {
                const double exact = std::log2(
                    static_cast<double>(designSpaceSizeExact(l, t, r)));
                EXPECT_NEAR(designSpaceSizeLog2(l, t, r), exact, 0.01)
                    << l << " " << t << " " << r;
            }
}

TEST(Schedules, PaperTable4ReductionsMatchItsOwnPercentages)
{
    // Applying each Table 4 row to the real Llama2-7B shape must
    // reproduce the paper's reduction column (7 tensors per layer,
    // rank 1) within rounding.
    const ModelConfig cfg = llama2_7bConfig();
    for (const Table4Row &row : paperTable4()) {
        DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        ASSERT_TRUE(gamma.valid(cfg));
        const double reduction = gamma.parameterReduction(cfg) * 100.0;
        EXPECT_NEAR(reduction, row.reductionPercent, 1.6)
            << "row " << row.reductionPercent << "%";
    }
}

TEST(Schedules, Table4LayerListsAreSortedUniqueInRange)
{
    for (const Table4Row &row : paperTable4()) {
        auto layers = table4Layers0Based(row);
        EXPECT_TRUE(std::is_sorted(layers.begin(), layers.end()));
        EXPECT_EQ(std::adjacent_find(layers.begin(), layers.end()),
                  layers.end());
        for (int l : layers) {
            EXPECT_GE(l, 0);
            EXPECT_LT(l, 32);
        }
    }
}

TEST(Schedules, SpreadScheduleBasicProperties)
{
    for (int n : {1, 2, 3, 8, 12, 32}) {
        for (int count = 0; count <= n; ++count) {
            const auto s = spreadSchedule(n, count);
            EXPECT_EQ(static_cast<int>(s.size()), count);
            EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
            EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
            for (int l : s) {
                EXPECT_GE(l, 0);
                EXPECT_LT(l, n);
            }
            // Insight: the sensitive layers only appear when forced.
            if (count <= n - 3) {
                EXPECT_EQ(std::count(s.begin(), s.end(), 0), 0);
                EXPECT_EQ(std::count(s.begin(), s.end(), 1), 0);
                EXPECT_EQ(std::count(s.begin(), s.end(), n - 1), 0);
            }
        }
    }
    EXPECT_THROW(spreadSchedule(4, 5), std::runtime_error);
}

TEST(Schedules, SpreadScheduleSpacesLayersApart)
{
    // For few layers the minimum gap must be large (insight: spread).
    const auto s = spreadSchedule(32, 4);
    int minGap = 100;
    for (size_t i = 1; i < s.size(); ++i)
        minGap = std::min(minGap, s[i] - s[i - 1]);
    EXPECT_GE(minGap, 5);
}

TEST(Schedules, ScheduleForReductionHitsTarget)
{
    const ModelConfig cfg = llama2_7bConfig();
    for (double target : {0.06, 0.21, 0.48, 0.90}) {
        const DecompConfig gamma = scheduleForReduction(cfg, target);
        EXPECT_TRUE(gamma.valid(cfg));
        // Per-layer granularity is ~3%, so allow half a layer slack.
        EXPECT_NEAR(gamma.parameterReduction(cfg), target, 0.016)
            << "target " << target;
    }
    EXPECT_TRUE(scheduleForReduction(cfg, 0.0).empty());
}

TEST(Schedules, CaseStudyTargetsAreMonotoneLadder)
{
    const ModelConfig cfg = tinyLlamaConfig();
    const auto targets = caseStudyReductionTargets(cfg);
    EXPECT_EQ(targets.size(), static_cast<size_t>(cfg.nLayers));
    for (size_t i = 1; i < targets.size(); ++i)
        EXPECT_GT(targets[i], targets[i - 1]);
    EXPECT_LT(targets.back(), 1.0);
}

} // namespace
} // namespace lrd
