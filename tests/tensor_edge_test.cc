/**
 * @file
 * Edge-case and stress tests for the tensor core: scalars, rank-1
 * tensors, high-order unfold/fold/modeProduct, degenerate extents,
 * and numeric boundary behavior.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/unfold.h"
#include "util/rng.h"

namespace lrd {
namespace {

TEST(TensorEdge, ScalarTensorBehaves)
{
    Tensor s;
    EXPECT_EQ(numElements(s.shape()), 1);
    s[0] = 4.0F;
    EXPECT_DOUBLE_EQ(s.sum(), 4.0);
    EXPECT_DOUBLE_EQ(s.norm(), 4.0);
    Tensor r = s.reshaped({1, 1});
    EXPECT_FLOAT_EQ(r(0, 0), 4.0F);
}

TEST(TensorEdge, SizeOneExtents)
{
    Tensor t({1, 5, 1});
    t.at({0, 3, 0}) = 2.0F;
    EXPECT_FLOAT_EQ(t.at({0, 3, 0}), 2.0F);
    for (int64_t m = 0; m < 3; ++m) {
        Tensor u = unfold(t, m);
        Tensor back = fold(u, m, t.shape());
        EXPECT_LT(relativeError(t, back), 1e-7) << "mode " << m;
    }
}

TEST(TensorEdge, NegativeExtentRejected)
{
    EXPECT_THROW(numElements({2, -1}), std::runtime_error);
}

TEST(TensorEdge, ZeroExtentTensor)
{
    Tensor t({0, 4});
    EXPECT_EQ(t.size(), 0);
    EXPECT_DOUBLE_EQ(t.sum(), 0.0);
    EXPECT_TRUE(t.allFinite());
    EXPECT_THROW(t.minValue(), std::runtime_error);
}

TEST(TensorEdge, Rank1MatvecAndOps)
{
    Tensor v({4}, {1, 2, 3, 4});
    Tensor m = Tensor::eye(4);
    Tensor y = matvec(m, v);
    EXPECT_LT(relativeError(v, y), 1e-7);
    Tensor sm = softmaxLastDim(v);
    double sum = 0.0;
    for (int64_t i = 0; i < 4; ++i)
        sum += sm[i];
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(TensorEdge, Order5UnfoldRoundTrip)
{
    Rng rng(1);
    Tensor t = Tensor::randn({2, 3, 2, 3, 2}, rng);
    for (int64_t m = 0; m < 5; ++m) {
        Tensor u = unfold(t, m);
        EXPECT_EQ(u.dim(0), t.dim(m));
        EXPECT_EQ(u.size(), t.size());
        EXPECT_LT(relativeError(t, fold(u, m, t.shape())), 1e-7);
    }
}

TEST(TensorEdge, Order5ModeProductChain)
{
    Rng rng(2);
    Tensor t = Tensor::randn({2, 3, 2, 3, 2}, rng);
    Tensor p = t;
    Shape want = t.shape();
    for (int64_t m = 0; m < 5; ++m) {
        Tensor f = Tensor::randn({4, t.dim(m)}, rng);
        p = modeProduct(p, f, m);
        want[static_cast<size_t>(m)] = 4;
        EXPECT_EQ(p.shape(), want);
    }
    EXPECT_TRUE(p.allFinite());
}

TEST(TensorEdge, ReshapeChainPreservesRowMajorOrder)
{
    Tensor t({2, 3, 4});
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    Tensor r = t.reshaped({4, 6}).reshaped({24}).reshaped({3, 2, 4});
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
}

TEST(TensorEdge, SoftmaxSingleColumn)
{
    Tensor t({3, 1}, {5.0F, -2.0F, 0.0F});
    Tensor p = softmaxLastDim(t);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(p[i], 1.0F);
}

TEST(TensorEdge, LogSoftmaxExtremeLogits)
{
    Tensor t({1, 3}, {-1e30F, 0.0F, 1e4F});
    Tensor lp = logSoftmaxLastDim(t);
    EXPECT_TRUE(std::isfinite(lp[2]));
    EXPECT_NEAR(lp[2], 0.0F, 1e-3);
    EXPECT_LT(lp[0], lp[1]);
}

TEST(TensorEdge, RelativeErrorInfinityWhenReferenceZero)
{
    Tensor zero({2});
    Tensor nonzero({2}, {1, 0});
    EXPECT_TRUE(std::isinf(relativeError(zero, nonzero)));
}

TEST(TensorEdge, MatmulDegenerateInnerDim)
{
    // (3 x 1) * (1 x 2) outer product.
    Tensor a({3, 1}, {1, 2, 3});
    Tensor b({1, 2}, {4, 5});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(2, 1), 15.0F);
}

TEST(TensorEdge, FullRankEyeModeProductIdentityOrder4)
{
    Rng rng(3);
    Tensor t = Tensor::randn({3, 4, 2, 5}, rng);
    Tensor p = t;
    for (int64_t m = 0; m < 4; ++m)
        p = modeProduct(p, Tensor::eye(t.dim(m)), m);
    EXPECT_LT(relativeError(t, p), 1e-6);
}

} // namespace
} // namespace lrd
