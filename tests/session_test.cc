/**
 * @file
 * Tests for InferenceSession lifecycle and evaluator options:
 * reset/reuse, copy independence (the shared-context scoring trick),
 * overflow handling, stop tokens, and length normalization.
 */

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "tensor/ops.h"
#include "train/world.h"

namespace lrd {
namespace {

ModelConfig
cfgWithVocab(int vocab)
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = vocab;
    cfg.maxSeq = 24;
    return cfg;
}

TEST(Session, ResetRestartsAtPositionZero)
{
    TransformerModel m(cfgWithVocab(32), 1);
    InferenceSession s(m);
    Tensor first = s.append({1, 2, 3});
    EXPECT_EQ(s.length(), 3);
    s.reset();
    EXPECT_EQ(s.length(), 0);
    Tensor again = s.append({1, 2, 3});
    EXPECT_LT(relativeError(first, again), 1e-6);
}

TEST(Session, CopyDivergesIndependently)
{
    TransformerModel m(cfgWithVocab(32), 2);
    InferenceSession a(m);
    (void)a.append({1, 2, 3});
    InferenceSession b = a; // copy shares nothing mutable
    Tensor la = a.append({4});
    Tensor lb = b.append({5});
    EXPECT_EQ(a.length(), 4);
    EXPECT_EQ(b.length(), 4);
    // Different continuations must give different logits.
    EXPECT_GT(relativeError(la, lb), 1e-6);
    // And each must match a fresh full-context run.
    InferenceSession fresh(m);
    Tensor want = fresh.append({1, 2, 3, 4});
    for (int64_t j = 0; j < want.dim(0); ++j)
        EXPECT_NEAR(la[j], want[j], 2e-3);
}

TEST(Session, OverflowingMaxSeqThrows)
{
    ModelConfig cfg = cfgWithVocab(32);
    TransformerModel m(cfg, 3);
    InferenceSession s(m);
    TokenSeq fill(static_cast<size_t>(cfg.maxSeq), 1);
    (void)s.append(fill);
    EXPECT_THROW(s.append({1}), std::runtime_error);
}

TEST(Session, EmptyAppendThrows)
{
    TransformerModel m(cfgWithVocab(32), 4);
    InferenceSession s(m);
    EXPECT_THROW(s.append({}), std::runtime_error);
}

TEST(Session, BertModelsAreRejected)
{
    TransformerModel m(testBertConfig(), 5);
    EXPECT_THROW(InferenceSession{m}, std::runtime_error);
}

TEST(Generate, StopsAtStopToken)
{
    TransformerModel m(cfgWithVocab(32), 6);
    // Find what the model would emit first, then use it as the stop
    // token: the result must be empty.
    const TokenSeq unbounded = greedyGenerate(m, {1, 2}, 1, -1);
    ASSERT_EQ(unbounded.size(), 1U);
    const TokenSeq stopped = greedyGenerate(m, {1, 2}, 8, unbounded[0]);
    EXPECT_TRUE(stopped.empty());
}

TEST(Generate, RespectsMaxSeqBound)
{
    ModelConfig cfg = cfgWithVocab(32);
    TransformerModel m(cfg, 7);
    const TokenSeq out = greedyGenerate(m, {1, 2, 3}, 1000, -1);
    EXPECT_LE(static_cast<int64_t>(out.size() + 3), cfg.maxSeq);
}

TEST(EvalOptions, LengthNormalizationChangesScoring)
{
    // A task whose choices have very different lengths: without
    // normalization longer choices accumulate more negative log
    // probability and are disfavored; with normalization the
    // per-token average decides. Verify the two scoring modes can
    // disagree on at least one random model/task combination.
    const WorldSpec spec = [] {
        WorldSpec s;
        s.numEntities = 8;
        s.numColors = 4;
        s.numCategories = 4;
        s.numPlaces = 4;
        s.numNumbers = 12;
        s.numVerbs = 2;
        s.numPatternSymbols = 5;
        return s;
    }();
    World world(spec);
    ModelConfig cfg = cfgWithVocab(world.vocabSize());
    bool disagreed = false;
    for (uint64_t seed = 0; seed < 10 && !disagreed; ++seed) {
        TransformerModel m(cfg, 100 + seed);
        Evaluator plain(m, world, EvalOptions{1, 1, false});
        Evaluator norm(m, world, EvalOptions{1, 1, true});
        McTask task;
        task.context = {world.bosToken(), world.entityToken(0)};
        task.choices = {{world.colorToken(0)},
                        {world.colorToken(1), world.colorToken(2),
                         world.colorToken(3)}};
        task.gold = 0;
        disagreed = plain.pickChoiceCausal(task)
                    != norm.pickChoiceCausal(task);
    }
    EXPECT_TRUE(disagreed);
}

TEST(EvalOptions, SeedChangesTasksButNotProtocol)
{
    WorldSpec spec;
    spec.numEntities = 10;
    spec.numColors = 4;
    spec.numCategories = 4;
    spec.numPlaces = 4;
    spec.numNumbers = 12;
    spec.numVerbs = 2;
    spec.numPatternSymbols = 5;
    World world(spec);
    ModelConfig cfg = cfgWithVocab(world.vocabSize());
    TransformerModel m(cfg, 9);
    Evaluator a(m, world, EvalOptions{30, 1, false});
    Evaluator b(m, world, EvalOptions{30, 2, false});
    const EvalResult ra = a.run(BenchmarkKind::ArcEasy);
    const EvalResult rb = b.run(BenchmarkKind::ArcEasy);
    EXPECT_EQ(ra.numTasks, rb.numTasks);
    // Accuracy on an untrained model is near chance for both seeds.
    EXPECT_NEAR(ra.accuracy, rb.accuracy, 0.35);
}

} // namespace
} // namespace lrd
