/**
 * @file
 * Tests for the train module: World vocabulary layout and ground
 * truth, CorpusGenerator sentence structure, AdamW dynamics, the
 * LR schedule, and a short end-to-end training smoke run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "train/adam.h"
#include "train/corpus.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "train/world.h"

namespace lrd {
namespace {

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 10;
    s.numColors = 4;
    s.numCategories = 4;
    s.numPlaces = 4;
    s.numNumbers = 12;
    s.numVerbs = 2;
    s.numPatternSymbols = 5;
    s.seed = 42;
    return s;
}

TEST(World, TokenRangesAreDisjointAndCoverVocab)
{
    World w(smallSpec());
    std::set<int> seen;
    auto check = [&](int tok) {
        ASSERT_GE(tok, 0);
        ASSERT_LT(tok, w.vocabSize());
        ASSERT_TRUE(seen.insert(tok).second)
            << "token " << tok << " assigned twice";
    };
    for (int t : {w.padToken(), w.bosToken(), w.sepToken(), w.maskToken(),
                  w.hasColorToken(), w.isAToken(), w.livesInToken(),
                  w.plusToken(), w.equalsToken(), w.rumorToken(),
                  w.becauseToken()})
        check(t);
    const WorldSpec &s = w.spec();
    for (int i = 0; i < s.numEntities; ++i)
        check(w.entityToken(i));
    for (int i = 0; i < s.numColors; ++i)
        check(w.colorToken(i));
    for (int i = 0; i < s.numCategories; ++i)
        check(w.categoryToken(i));
    for (int i = 0; i < s.numPlaces; ++i)
        check(w.placeToken(i));
    for (int i = 0; i < s.numNumbers; ++i)
        check(w.numberToken(i));
    for (int i = 0; i < s.numVerbs; ++i)
        check(w.verbToken(i));
    check(w.pronounToken(0));
    check(w.pronounToken(1));
    for (int i = 0; i < s.numPatternSymbols; ++i)
        check(w.patternToken(i));
    EXPECT_EQ(static_cast<int>(seen.size()), w.vocabSize());
}

TEST(World, GroundTruthIsDeterministicAndStable)
{
    World a(smallSpec());
    World b(smallSpec());
    for (int e = 0; e < a.spec().numEntities; ++e) {
        EXPECT_EQ(a.colorOf(e), b.colorOf(e));
        EXPECT_EQ(a.categoryOf(e), b.categoryOf(e));
        EXPECT_EQ(a.placeOf(e), b.placeOf(e));
        EXPECT_EQ(a.genderOf(e), b.genderOf(e));
        EXPECT_EQ(a.mythColorOf(e), b.mythColorOf(e));
        EXPECT_EQ(a.mythDominant(e), b.mythDominant(e));
    }
}

TEST(World, MythColorAlwaysDiffersFromTruth)
{
    World w(smallSpec());
    for (int e = 0; e < w.spec().numEntities; ++e)
        EXPECT_NE(w.colorOf(e), w.mythColorOf(e)) << "entity " << e;
}

TEST(World, ZipfSamplingFavorsHeadEntities)
{
    World w(smallSpec());
    Rng rng(5);
    std::vector<int> counts(static_cast<size_t>(w.spec().numEntities), 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[static_cast<size_t>(w.sampleEntityZipf(rng))];
    EXPECT_GT(counts[0], counts[4]);
    EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(World, TokenNamesAreUnique)
{
    World w(smallSpec());
    std::set<std::string> names;
    for (int t = 0; t < w.vocabSize(); ++t)
        EXPECT_TRUE(names.insert(w.tokenName(t)).second) << t;
}

TEST(World, BadIndicesAreFatal)
{
    World w(smallSpec());
    EXPECT_THROW(w.entityToken(-1), std::runtime_error);
    EXPECT_THROW(w.entityToken(w.spec().numEntities), std::runtime_error);
    EXPECT_THROW(w.colorOf(w.spec().numEntities), std::runtime_error);
    EXPECT_THROW(w.pronounToken(2), std::runtime_error);
}

TEST(Corpus, FactSentencesEncodeGroundTruth)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 1);
    const TokenSeq s = gen.colorFact(3);
    ASSERT_EQ(s.size(), 4U);
    EXPECT_EQ(s[0], w.entityToken(3));
    EXPECT_EQ(s[1], w.hasColorToken());
    EXPECT_EQ(s[2], w.colorToken(w.colorOf(3)));
    EXPECT_EQ(s[3], w.sepToken());

    const TokenSeq r = gen.rumorSentence(3);
    ASSERT_EQ(r.size(), 5U);
    EXPECT_EQ(r[0], w.rumorToken());
    EXPECT_EQ(r[3], w.colorToken(w.mythColorOf(3)));
}

TEST(Corpus, AdditionFactsAreCorrect)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 2);
    const TokenSeq s = gen.additionFact(3, 5);
    EXPECT_EQ(s[4], w.numberToken(8));
    EXPECT_THROW(gen.additionFact(10, 10), std::runtime_error);
    const TokenSeq c = gen.additionChain(2, 3, 4);
    EXPECT_EQ(c[6], w.numberToken(9));
}

TEST(Corpus, PatternFamiliesProduceExpectedShapes)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 3);
    const TokenSeq alt =
        gen.patternSentence(PatternFamily::Alternation, 0, 1);
    ASSERT_EQ(alt.size(), 9U);
    EXPECT_EQ(alt[0], w.patternToken(0));
    EXPECT_EQ(alt[1], w.patternToken(1));
    EXPECT_EQ(alt[6], w.patternToken(0));

    const TokenSeq rep =
        gen.patternSentence(PatternFamily::Repetition, 2, 0);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rep[static_cast<size_t>(i)], w.patternToken(2));

    const TokenSeq cnt = gen.patternSentence(PatternFamily::Counting, 1, 0);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(cnt[static_cast<size_t>(i)],
                  cnt[static_cast<size_t>(i - 1)] + 1);

    const TokenSeq dwn =
        gen.patternSentence(PatternFamily::Countdown, 1, 0);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(dwn[static_cast<size_t>(i)],
                  dwn[static_cast<size_t>(i - 1)] - 1);

    const TokenSeq p3 =
        gen.patternSentence(PatternFamily::PeriodThree, 0, 1);
    EXPECT_EQ(p3[0], w.patternToken(0));
    EXPECT_EQ(p3[1], w.patternToken(0));
    EXPECT_EQ(p3[2], w.patternToken(1));
    EXPECT_EQ(p3[5], w.patternToken(1));
}

TEST(Corpus, MythDominanceShapesSampledColorSentences)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 4);
    Rng rng(9);
    // Find one myth-dominant and one truth-dominant entity.
    int mythE = -1, truthE = -1;
    for (int e = 0; e < w.spec().numEntities; ++e) {
        if (w.mythDominant(e) && mythE < 0)
            mythE = e;
        if (!w.mythDominant(e) && truthE < 0)
            truthE = e;
    }
    auto mythFraction = [&](int entity) {
        int myth = 0;
        const int n = 2000;
        for (int i = 0; i < n; ++i) {
            const TokenSeq s = gen.colorSentenceSampled(entity, rng);
            myth += s[2] == w.colorToken(w.mythColorOf(entity));
        }
        return static_cast<double>(myth) / n;
    };
    if (mythE >= 0) {
        EXPECT_GT(mythFraction(mythE), 0.55);
    }
    if (truthE >= 0) {
        EXPECT_LT(mythFraction(truthE), 0.25);
    }
}

TEST(Corpus, DocumentsStartWithBosAndHaveExactLength)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 5);
    for (int len : {8, 32, 64}) {
        const TokenSeq d = gen.document(len);
        EXPECT_EQ(static_cast<int>(d.size()), len);
        EXPECT_EQ(d[0], w.bosToken());
        for (int t : d) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, w.vocabSize());
        }
    }
}

TEST(Corpus, SentenceMixtureCoversAllKinds)
{
    World w(smallSpec());
    CorpusGenerator gen(w, 6);
    bool sawRumor = false, sawPlus = false, sawPattern = false,
         sawPronoun = false;
    for (int i = 0; i < 500; ++i) {
        const TokenSeq s = gen.sentence();
        for (int t : s) {
            sawRumor |= t == w.rumorToken();
            sawPlus |= t == w.plusToken();
            sawPattern |= t >= w.patternToken(0);
            sawPronoun |=
                t == w.pronounToken(0) || t == w.pronounToken(1);
        }
    }
    EXPECT_TRUE(sawRumor);
    EXPECT_TRUE(sawPlus);
    EXPECT_TRUE(sawPattern);
    EXPECT_TRUE(sawPronoun);
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize ||x - c||^2 with gradients fed manually.
    Parameter p("x", Tensor({4}));
    const std::vector<float> target = {1.0F, -2.0F, 0.5F, 3.0F};
    AdamOptions opts;
    opts.lr = 0.05;
    opts.weightDecay = 0.0;
    AdamW adam({&p}, opts);
    EXPECT_EQ(adam.stepCount(), 0);
    for (int step = 0; step < 400; ++step) {
        p.zeroGrad();
        for (int64_t i = 0; i < 4; ++i)
            p.grad[i] = 2.0F * (p.value[i] - target[static_cast<size_t>(i)]);
        adam.step();
    }
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(p.value[i], target[static_cast<size_t>(i)], 0.05);
    EXPECT_EQ(adam.stepCount(), 400);
}

TEST(ModelZoo, UnknownPresetIsFatal)
{
    EXPECT_THROW(pretrainedModel("llama2-7b"), std::runtime_error);
}

TEST(Adam, ClippingBoundsUpdateMagnitude)
{
    Parameter p("x", Tensor({1}));
    AdamOptions opts;
    opts.clipNorm = 1.0;
    AdamW adam({&p}, opts);
    p.grad[0] = 1e6F;
    adam.step();
    EXPECT_GT(adam.lastGradNorm(), 1e5);
    EXPECT_LT(std::abs(p.value[0]), 0.1F); // one lr-scale step at most
}

TEST(Adam, EmptyParamsAreFatal)
{
    EXPECT_THROW(AdamW({}, AdamOptions{}), std::runtime_error);
}

TEST(Schedule, WarmupThenDecayToMinScale)
{
    EXPECT_NEAR(cosineSchedule(0, 10, 100), 0.1, 1e-9);
    EXPECT_NEAR(cosineSchedule(9, 10, 100), 1.0, 1e-9);
    EXPECT_NEAR(cosineSchedule(10, 10, 100), 1.0, 1e-6);
    EXPECT_NEAR(cosineSchedule(100, 10, 100), 0.1, 1e-6);
    // Monotone decreasing after warmup.
    double prev = 2.0;
    for (int64_t s = 10; s <= 100; s += 10) {
        const double v = cosineSchedule(s, 10, 100);
        EXPECT_LE(v, prev + 1e-9);
        prev = v;
    }
}

TEST(Trainer, ShortRunReducesLossForBothArchs)
{
    World w(smallSpec());
    for (bool llama : {true, false}) {
        ModelConfig cfg = llama ? testLlamaConfig() : testBertConfig();
        cfg.vocabSize = w.vocabSize();
        cfg.maxSeq = 32;
        TransformerModel model(cfg, 5);
        TrainOptions t;
        t.steps = 25;
        t.batchSeqs = 2;
        t.seqLen = 24;
        t.warmupSteps = 5;
        t.logEvery = 0;
        Trainer trainer(model, w, t);
        const double before = trainer.evalLoss(5);
        trainer.run();
        const double after = trainer.evalLoss(5);
        EXPECT_LT(after, before - 0.2) << (llama ? "llama" : "bert");
    }
}

TEST(Trainer, RejectsOverlongSeqAndForeignVocab)
{
    World w(smallSpec());
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = w.vocabSize();
    TransformerModel model(cfg, 5);
    TrainOptions t;
    t.seqLen = cfg.maxSeq + 1;
    EXPECT_THROW(Trainer(model, w, t), std::runtime_error);

    ModelConfig tiny = testLlamaConfig(); // vocab 32 < world vocab
    TransformerModel m2(tiny, 5);
    TrainOptions t2;
    t2.seqLen = 16;
    EXPECT_THROW(Trainer(m2, w, t2), std::runtime_error);
}

} // namespace
} // namespace lrd
