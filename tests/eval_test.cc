/**
 * @file
 * Tests for the eval module: benchmark generator invariants (gold
 * correctness, determinism, choice structure) and evaluator behavior
 * (oracle and anti-oracle accuracy, KV-cache vs full-forward
 * agreement, PLL scoring).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/evaluator.h"
#include "tensor/ops.h"
#include "train/world.h"

namespace lrd {
namespace {

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 77;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

TEST(Benchmarks, AllKindsListedInPaperOrder)
{
    const auto &all = allBenchmarks();
    ASSERT_EQ(all.size(), 7U);
    EXPECT_EQ(benchmarkName(all.front()), "ARC Easy");
    EXPECT_EQ(benchmarkName(all.back()), "GSM8K");
}

TEST(Benchmarks, GenerationIsDeterministicInSeed)
{
    const auto a =
        makeMcTasks(BenchmarkKind::Mmlu, smallWorld(), 20, 123);
    const auto b =
        makeMcTasks(BenchmarkKind::Mmlu, smallWorld(), 20, 123);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].context, b[i].context);
        EXPECT_EQ(a[i].gold, b[i].gold);
        ASSERT_EQ(a[i].choices.size(), b[i].choices.size());
        for (size_t c = 0; c < a[i].choices.size(); ++c)
            EXPECT_EQ(a[i].choices[c], b[i].choices[c]);
    }
    const auto c =
        makeMcTasks(BenchmarkKind::Mmlu, smallWorld(), 20, 124);
    bool anyDiff = false;
    for (size_t i = 0; i < a.size(); ++i)
        anyDiff |= a[i].context != c[i].context;
    EXPECT_TRUE(anyDiff);
}

TEST(Benchmarks, StructureInvariants)
{
    const World &w = smallWorld();
    for (BenchmarkKind kind : allBenchmarks()) {
        if (kind == BenchmarkKind::Gsm8k)
            continue;
        const auto tasks = makeMcTasks(kind, w, 30, 7);
        ASSERT_EQ(tasks.size(), 30U);
        for (const McTask &t : tasks) {
            EXPECT_EQ(static_cast<int>(t.choices.size()),
                      benchmarkNumChoices(kind))
                << benchmarkName(kind);
            ASSERT_GE(t.gold, 0);
            ASSERT_LT(t.gold, static_cast<int>(t.choices.size()));
            EXPECT_EQ(t.context.front(), w.bosToken());
            // Choices must be unique.
            for (size_t i = 0; i < t.choices.size(); ++i)
                for (size_t j = i + 1; j < t.choices.size(); ++j)
                    EXPECT_NE(t.choices[i], t.choices[j])
                        << benchmarkName(kind);
        }
    }
}

TEST(Benchmarks, GoldAnswersMatchGroundTruth)
{
    const World &w = smallWorld();
    // TruthfulQA gold must be the *true* color, with the myth among
    // the distractors.
    const auto tq =
        makeMcTasks(BenchmarkKind::TruthfulQa, w, 25, 11);
    for (const McTask &t : tq) {
        const int entityTok = t.context[1];
        int entity = -1;
        for (int e = 0; e < w.spec().numEntities; ++e)
            if (w.entityToken(e) == entityTok)
                entity = e;
        ASSERT_GE(entity, 0);
        EXPECT_EQ(t.choices[static_cast<size_t>(t.gold)][0],
                  w.colorToken(w.colorOf(entity)));
        bool hasMyth = false;
        for (const TokenSeq &c : t.choices)
            hasMyth |= c[0] == w.colorToken(w.mythColorOf(entity));
        EXPECT_TRUE(hasMyth);
    }
    // WinoGrande gold must match the entity's gender.
    const auto wg =
        makeMcTasks(BenchmarkKind::WinoGrande, w, 25, 13);
    for (const McTask &t : wg) {
        const int entityTok = t.context[1];
        for (int e = 0; e < w.spec().numEntities; ++e) {
            if (w.entityToken(e) == entityTok) {
                EXPECT_EQ(t.gold, w.genderOf(e));
            }
        }
    }
}

TEST(Benchmarks, Gsm8kExpectedAnswersAreCorrectSums)
{
    const World &w = smallWorld();
    const auto tasks = makeGsm8kTasks(w, 30, 17);
    for (const GenTask &t : tasks) {
        ASSERT_EQ(t.expected.size(), 1U);
        // Parse the query tail: ... EQUALS is last; the numbers
        // before it separated by PLUS.
        ASSERT_GE(t.prompt.size(), 5U);
        EXPECT_EQ(t.prompt.back(), w.equalsToken());
        int sum = 0;
        // Walk backwards collecting number tokens until the <sep> of
        // the last few-shot example.
        for (auto it = t.prompt.rbegin() + 1; it != t.prompt.rend();
             ++it) {
            if (*it == w.sepToken())
                break;
            if (*it == w.plusToken())
                continue;
            sum += *it - w.numberToken(0);
        }
        EXPECT_EQ(t.expected[0], w.numberToken(sum));
    }
}

TEST(Benchmarks, McTasksForGsm8kAreFatal)
{
    EXPECT_THROW(makeMcTasks(BenchmarkKind::Gsm8k, smallWorld(), 5, 1),
                 std::runtime_error);
}

/**
 * Oracle model check: a model whose LM head strongly prefers the gold
 * token given the context would score 100%; an untrained random model
 * must land near chance. We verify the evaluator near chance with an
 * untrained model (binomial tolerance).
 */
TEST(Evaluator, UntrainedModelScoresNearChance)
{
    const World &w = smallWorld();
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = w.vocabSize();
    cfg.maxSeq = 64;
    TransformerModel model(cfg, 12345);
    Evaluator ev(model, w, EvalOptions{120, 5, false});
    const EvalResult arc = ev.run(BenchmarkKind::ArcChallenge);
    EXPECT_GT(arc.accuracy, 0.10);
    EXPECT_LT(arc.accuracy, 0.45);
    const EvalResult wino = ev.run(BenchmarkKind::WinoGrande);
    EXPECT_GT(wino.accuracy, 0.30);
    EXPECT_LT(wino.accuracy, 0.70);
}

TEST(Evaluator, CausalChoiceMatchesExplicitScoring)
{
    // pickChoiceCausal must agree with brute-force scoreContinuation.
    const World &w = smallWorld();
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = w.vocabSize();
    cfg.maxSeq = 64;
    TransformerModel model(cfg, 777);
    Evaluator ev(model, w, EvalOptions{1, 5, false});
    const auto tasks =
        makeMcTasks(BenchmarkKind::HellaSwag, w, 10, 21);
    for (const McTask &t : tasks) {
        double best = -1e30;
        int want = -1;
        for (size_t c = 0; c < t.choices.size(); ++c) {
            const double ll =
                scoreContinuation(model, t.context, t.choices[c]);
            if (ll > best) {
                best = ll;
                want = static_cast<int>(c);
            }
        }
        EXPECT_EQ(ev.pickChoiceCausal(t), want);
    }
}

TEST(Evaluator, BertPathRunsAndIsDeterministic)
{
    const World &w = smallWorld();
    ModelConfig cfg = testBertConfig();
    cfg.vocabSize = w.vocabSize();
    cfg.maxSeq = 64;
    TransformerModel model(cfg, 31);
    Evaluator ev(model, w, EvalOptions{15, 5, false});
    const EvalResult a = ev.run(BenchmarkKind::ArcEasy);
    const EvalResult b = ev.run(BenchmarkKind::ArcEasy);
    EXPECT_EQ(a.numCorrect, b.numCorrect);
    EXPECT_EQ(a.numTasks, 15);

    // The per-item PLL entry point must be deterministic too and pick
    // a valid choice index.
    const auto tasks = makeMcTasks(BenchmarkKind::ArcEasy, w, 5, 21);
    for (const McTask &t : tasks) {
        const int pick = ev.pickChoiceBert(t);
        EXPECT_GE(pick, 0);
        EXPECT_LT(pick, static_cast<int>(t.choices.size()));
        EXPECT_EQ(ev.pickChoiceBert(t), pick);
    }
}

TEST(Evaluator, RunAllCoversEveryBenchmark)
{
    const World &w = smallWorld();
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = w.vocabSize();
    cfg.maxSeq = 64;
    TransformerModel model(cfg, 99);
    Evaluator ev(model, w, EvalOptions{5, 5, false});
    const auto all = ev.runAll();
    EXPECT_EQ(all.size(), allBenchmarks().size());
    const double agg = ev.aggregateAccuracy();
    EXPECT_GE(agg, 0.0);
    EXPECT_LE(agg, 1.0);
}

TEST(Evaluator, AccuracyCountsAreConsistent)
{
    const World &w = smallWorld();
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = w.vocabSize();
    cfg.maxSeq = 64;
    TransformerModel model(cfg, 55);
    Evaluator ev(model, w, EvalOptions{40, 5, false});
    const EvalResult r = ev.run(BenchmarkKind::Mmlu);
    EXPECT_EQ(r.numTasks, 40);
    EXPECT_NEAR(r.accuracy,
                static_cast<double>(r.numCorrect) / r.numTasks, 1e-12);
}

} // namespace
} // namespace lrd
