/**
 * @file
 * Cross-module integration tests: train -> decompose -> evaluate
 * pipelines, the Definition-1 optimizer, factorized fine-tuning
 * (the paper's future-work accuracy recovery), and cache round-trips
 * through serialization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/optimizer.h"
#include "dse/schedules.h"
#include "eval/evaluator.h"
#include "hw/opcount.h"
#include "train/trainer.h"

namespace lrd {
namespace {

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 7;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

/** A briefly-trained small decoder shared by the heavier tests. */
const std::vector<uint8_t> &
trainedBytes()
{
    static const std::vector<uint8_t> bytes = [] {
        ModelConfig cfg = testLlamaConfig();
        cfg.vocabSize = smallWorld().vocabSize();
        cfg.dModel = 32;
        cfg.nHeads = 4;
        cfg.dFf = 64;
        cfg.nLayers = 4;
        cfg.maxSeq = 48;
        TransformerModel model(cfg, 17);
        TrainOptions t;
        t.steps = 150;
        t.batchSeqs = 4;
        t.seqLen = 40;
        t.warmupSteps = 10;
        t.logEvery = 0;
        Trainer trainer(model, smallWorld(), t);
        trainer.run();
        return model.serialize();
    }();
    return bytes;
}

TEST(Integration, TrainingImprovesModelOverUntrained)
{
    TransformerModel trained =
        TransformerModel::deserialize(trainedBytes());
    TransformerModel untrained(trained.config(), 999);
    // Held-out LM loss must improve decisively...
    TrainOptions t;
    t.seqLen = 40;
    Trainer probeT(trained, smallWorld(), t);
    Trainer probeU(untrained, smallWorld(), t);
    EXPECT_LT(probeT.evalLoss(10), probeU.evalLoss(10) - 0.5);
    // ...and aggregate benchmark accuracy must be higher.
    Evaluator evT(trained, smallWorld(), EvalOptions{40, 3, false});
    Evaluator evU(untrained, smallWorld(), EvalOptions{40, 3, false});
    EXPECT_GT(evT.aggregateAccuracy(), evU.aggregateAccuracy() + 0.05);
}

TEST(Integration, DecompositionAtFullRankPreservesAccuracy)
{
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    const ModelConfig cfg = model.config();
    Evaluator ev(model, smallWorld(), EvalOptions{50, 5, false});
    const double before = ev.run(BenchmarkKind::ArcEasy).accuracy;
    // Full-rank factorization is (numerically) lossless.
    DecompConfig gamma =
        DecompConfig::allTensors(cfg, {1, 2}, cfg.dModel);
    ASSERT_TRUE(gamma.applyTo(model).ok());
    const double after = ev.run(BenchmarkKind::ArcEasy).accuracy;
    EXPECT_NEAR(before, after, 0.05);
}

TEST(Integration, Rank1EverythingDegradesTowardChance)
{
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    const ModelConfig cfg = model.config();
    std::vector<int> all;
    for (int l = 0; l < cfg.nLayers; ++l)
        all.push_back(l);
    TransformerModel dense =
        TransformerModel::deserialize(trainedBytes());
    ASSERT_TRUE(DecompConfig::allTensors(cfg, all, 1).applyTo(model).ok());
    // Rank-1 everywhere must cost real language-model quality. (On
    // this deliberately tiny test world the MC accuracies are too
    // coarse to be a reliable probe, so held-out loss is the signal.)
    TrainOptions t;
    t.seqLen = 40;
    Trainer probeDense(dense, smallWorld(), t);
    Trainer probeDec(model, smallWorld(), t);
    EXPECT_GT(probeDec.evalLoss(10), probeDense.evalLoss(10) + 0.1);
}

TEST(Integration, DecomposedModelStillGeneratesAndScores)
{
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    ASSERT_TRUE(DecompConfig::allTensors(model.config(), {0, 2}, 2).applyTo(model).ok());
    const TokenSeq out = greedyGenerate(model, {1, 12, 4}, 5, -1);
    EXPECT_LE(out.size(), 5U);
    const double ll = scoreContinuation(model, {1, 12}, {4});
    EXPECT_LT(ll, 0.0);
    EXPECT_TRUE(std::isfinite(ll));
}

TEST(Integration, OptimizerRespectsTolerance)
{
    OptimizerOptions opts;
    opts.evalTasks = 20;
    opts.accuracyDropTolerance = 1.1; // everything feasible
    const OptimizerResult loose =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    EXPECT_FALSE(loose.explored.empty());
    // With an always-satisfied constraint the minimum-EDP candidate
    // is the deepest decomposition.
    double minEdp = 1e30;
    for (const CandidateRecord &r : loose.explored)
        minEdp = std::min(minEdp, r.edp);
    EXPECT_NEAR(loose.best.edp, minEdp, 1e-12);
    EXPECT_LT(loose.best.edp, loose.baselineEdp);

    opts.accuracyDropTolerance = 0.0; // nothing feasible (drop >= 0)
    const OptimizerResult strict =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    EXPECT_TRUE(strict.best.config.empty());
}

TEST(Integration, OptimizerExploresWholeLadder)
{
    OptimizerOptions opts;
    opts.evalTasks = 10;
    const OptimizerResult res =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    EXPECT_EQ(res.explored.size(),
              static_cast<size_t>(model.config().nLayers)
                  * opts.candidateRanks.size());
    for (const CandidateRecord &r : res.explored) {
        EXPECT_GT(r.reduction, 0.0);
        EXPECT_GT(r.latencySec, 0.0);
        EXPECT_GT(r.energyJ, 0.0);
    }
}

TEST(Integration, FineTuningRecoversFactorizedAccuracy)
{
    // The paper's future-work experiment: decompose, then fine-tune
    // *through the factors* to recover quality. We verify the loss
    // recovers measurably after a short factorized fine-tune.
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    TrainOptions t;
    t.steps = 40;
    t.batchSeqs = 4;
    t.seqLen = 40;
    t.warmupSteps = 5;
    t.lr = 1e-3;
    t.logEvery = 0;
    Trainer probe(model, smallWorld(), t);
    const double denseLoss = probe.evalLoss(8);

    ASSERT_TRUE(DecompConfig::allTensors(model.config(), {1, 2}, 2).applyTo(model).ok());
    const double decomposedLoss = probe.evalLoss(8);
    EXPECT_GT(decomposedLoss, denseLoss); // decomposition hurts

    Trainer recover(model, smallWorld(), t);
    recover.run(); // trains the u1/core/u2 factors too
    const double recoveredLoss = recover.evalLoss(8);
    EXPECT_LT(recoveredLoss, decomposedLoss - 0.02);
}

TEST(Integration, OpCountMatchesLiveModelForDecomposedConfig)
{
    // The analytical weight-byte model must agree with the live
    // parameter count of a decomposed model (FP32 here, 4 bytes).
    TransformerModel model =
        TransformerModel::deserialize(trainedBytes());
    const ModelConfig cfg = model.config();
    const DecompConfig gamma = DecompConfig::allTensors(cfg, {0, 3}, 1);
    ASSERT_TRUE(gamma.applyTo(model).ok());
    EXPECT_EQ(transformerWeightBytes(cfg, gamma, 4),
              model.paramCount() * 4);
}

TEST(Integration, EvalIsDeterministicAcrossProcessesViaSerialization)
{
    TransformerModel a = TransformerModel::deserialize(trainedBytes());
    TransformerModel b = TransformerModel::deserialize(trainedBytes());
    Evaluator evA(a, smallWorld(), EvalOptions{40, 9, false});
    Evaluator evB(b, smallWorld(), EvalOptions{40, 9, false});
    for (BenchmarkKind kind :
         {BenchmarkKind::ArcEasy, BenchmarkKind::Gsm8k}) {
        EXPECT_EQ(evA.run(kind).numCorrect, evB.run(kind).numCorrect)
            << benchmarkName(kind);
    }
}

} // namespace
} // namespace lrd
