/**
 * @file
 * End-to-end fault-tolerance tests: trainer and DSE kill-and-resume
 * (an injected cancellation mid-run, then a resumed run that must be
 * bitwise identical to the uninterrupted one at every thread count),
 * evaluator failure budgets under poisoned activations, retry-based
 * healing, and recovery-policy behavior of the factorization path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dse/optimizer.h"
#include "eval/evaluator.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "train/trainer.h"

namespace lrd {
namespace {

namespace fs = std::filesystem;

/** Restores the default policy and disarms faults around each test. */
struct RobustGuard
{
    RobustGuard() { reset(); }
    ~RobustGuard() { reset(); }

    static void reset()
    {
        clearFaults();
        setRobustPolicy(RobustPolicy{});
        (void)takeNumericFault();
        // The cancel token is process-wide: a leftover request or
        // armed deadline would abort every later test immediately.
        clearCancelRequest();
        clearDeadline();
        resetSignalsForTest();
    }
};

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 7;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

ModelConfig
smallConfig()
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = smallWorld().vocabSize();
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 4;
    cfg.maxSeq = 48;
    return cfg;
}

/** A briefly-trained small decoder shared by the DSE tests. */
const std::vector<uint8_t> &
trainedBytes()
{
    static const std::vector<uint8_t> bytes = [] {
        TransformerModel model(smallConfig(), 17);
        TrainOptions t;
        t.steps = 60;
        t.batchSeqs = 4;
        t.seqLen = 40;
        t.warmupSteps = 10;
        t.logEvery = 0;
        Trainer trainer(model, smallWorld(), t);
        trainer.run();
        return model.serialize();
    }();
    return bytes;
}

/** Fresh checkpoint path (primary, .prev and .tmp all removed). */
std::string
ckptPath(const std::string &name)
{
    const fs::path p = fs::temp_directory_path() / name;
    fs::remove(p);
    fs::remove(p.string() + ".prev");
    fs::remove(checkpointTmpPath(p.string()));
    return p.string();
}

TrainOptions
resumableTrainOptions()
{
    TrainOptions t;
    t.steps = 10;
    t.batchSeqs = 4;
    t.seqLen = 24;
    t.warmupSteps = 2;
    t.logEvery = 0;
    return t;
}

TEST(Resume, TrainerKillAndResumeIsBitwiseIdentical)
{
    RobustGuard guard;
    for (int nThreads : {1, 4, 8}) {
        ThreadPool::instance().resize(nThreads);

        // Uninterrupted reference run (no checkpointing).
        TrainOptions clean = resumableTrainOptions();
        TransformerModel refModel(smallConfig(), 777);
        Trainer ref(refModel, smallWorld(), clean);
        const double refLoss = ref.run();
        const std::vector<uint8_t> refBytes = refModel.serialize();

        // Interrupted run: an injected cancellation kills the loop
        // before step 7; the step-4 checkpoint is the resume point.
        TrainOptions opts = resumableTrainOptions();
        opts.checkpointPath =
            ckptPath("lrd_resume_train_" + std::to_string(nThreads)
                     + ".bin");
        opts.checkpointEvery = 4;
        {
            TransformerModel model(smallConfig(), 777);
            Trainer trainer(model, smallWorld(), opts);
            setFault(FaultSpec{"train.step", FaultKind::Cancel, 8});
            trainer.run();
            clearFaults();
            clearCancelRequest();
            ASSERT_EQ(trainer.runStatus().code(), StatusCode::Cancelled)
                << "threads=" << nThreads;
        }

        // Resumed run: picks up at the checkpoint and must land on
        // bitwise the same weights and loss as the reference.
        opts.resume = true;
        TransformerModel model(smallConfig(), 777);
        Trainer trainer(model, smallWorld(), opts);
        const double loss = trainer.run();
        EXPECT_TRUE(trainer.runStatus().ok());
        EXPECT_EQ(loss, refLoss) << "threads=" << nThreads;
        EXPECT_EQ(model.serialize(), refBytes) << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Resume, TrainerSigintKillAndResumeIsBitwiseIdentical)
{
    RobustGuard guard;
    // Real handler path: the injected cancel fault raises an actual
    // SIGINT, which travels through the async-signal-safe handler into
    // the cooperative token — exactly what an operator's Ctrl-C does.
    installSignalHandlers();
    for (int nThreads : {1, 4, 8}) {
        ThreadPool::instance().resize(nThreads);

        TrainOptions clean = resumableTrainOptions();
        TransformerModel refModel(smallConfig(), 777);
        Trainer ref(refModel, smallWorld(), clean);
        const double refLoss = ref.run();
        const std::vector<uint8_t> refBytes = refModel.serialize();

        TrainOptions opts = resumableTrainOptions();
        opts.checkpointPath =
            ckptPath("lrd_sigint_train_" + std::to_string(nThreads)
                     + ".bin");
        opts.checkpointEvery = 4;
        {
            TransformerModel model(smallConfig(), 777);
            Trainer trainer(model, smallWorld(), opts);
            resetSignalsForTest();
            setFault(FaultSpec{"train.step", FaultKind::Cancel, 8});
            trainer.run();
            clearFaults();
            ASSERT_EQ(trainer.runStatus().code(), StatusCode::Cancelled)
                << "threads=" << nThreads;
            EXPECT_EQ(cancelCause(), CancelCause::Signal);
            EXPECT_EQ(signalsSeen(), 1);
            clearCancelRequest();
            resetSignalsForTest();
        }

        opts.resume = true;
        TransformerModel model(smallConfig(), 777);
        Trainer trainer(model, smallWorld(), opts);
        const double loss = trainer.run();
        EXPECT_TRUE(trainer.runStatus().ok());
        EXPECT_EQ(loss, refLoss) << "threads=" << nThreads;
        EXPECT_EQ(model.serialize(), refBytes) << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Resume, TrainerResumeWithoutCheckpointStartsFresh)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    TrainOptions opts = resumableTrainOptions();
    opts.steps = 2;
    opts.checkpointPath = ckptPath("lrd_resume_train_fresh.bin");
    opts.checkpointEvery = 1;
    opts.resume = true; // Nothing on disk yet: fresh start, no error.

    TransformerModel model(smallConfig(), 777);
    Trainer trainer(model, smallWorld(), opts);
    trainer.run();
    EXPECT_TRUE(trainer.runStatus().ok());
    EXPECT_TRUE(fs::exists(opts.checkpointPath));
}

void
expectSameRecords(const std::vector<CandidateRecord> &a,
                  const std::vector<CandidateRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].config.describe(), b[i].config.describe()) << i;
        EXPECT_EQ(a[i].accuracy, b[i].accuracy) << i;
        EXPECT_EQ(a[i].latencySec, b[i].latencySec) << i;
        EXPECT_EQ(a[i].energyJ, b[i].energyJ) << i;
        EXPECT_EQ(a[i].edp, b[i].edp) << i;
        EXPECT_EQ(a[i].reduction, b[i].reduction) << i;
        EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
        EXPECT_EQ(a[i].failed, b[i].failed) << i;
    }
}

TEST(Resume, DseKillAndResumeMatchesUninterruptedSweep)
{
    RobustGuard guard;
    ThreadPool::instance().resize(4);

    OptimizerOptions opts;
    opts.evalTasks = 10;
    opts.accuracyDropTolerance = 1.1;

    // Uninterrupted reference sweep.
    const OptimizerResult ref =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(ref.cancelled);

    // Interrupted sweep: the cancel fires at the start of the second
    // batch, so only the first checkpointEvery candidates complete.
    opts.checkpointPath = ckptPath("lrd_resume_dse.bin");
    opts.checkpointEvery = 2;
    setFault(FaultSpec{"dse.batch", FaultKind::Cancel, 2});
    const OptimizerResult cut =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    clearFaults();
    clearCancelRequest();
    ASSERT_TRUE(cut.cancelled);
    EXPECT_EQ(cut.status.code(), StatusCode::Cancelled);
    EXPECT_EQ(cut.explored.size(), 2U);
    ASSERT_TRUE(fs::exists(opts.checkpointPath));

    // Resumed sweep: restores the baseline and the completed prefix
    // from the checkpoint and must reproduce the reference bitwise.
    opts.resume = true;
    const OptimizerResult resumed =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(resumed.cancelled);
    EXPECT_EQ(resumed.baselineAccuracy, ref.baselineAccuracy);
    EXPECT_EQ(resumed.baselineEdp, ref.baselineEdp);
    expectSameRecords(resumed.explored, ref.explored);
    EXPECT_EQ(resumed.best.config.describe(), ref.best.config.describe());
    EXPECT_EQ(resumed.best.edp, ref.best.edp);
    ThreadPool::instance().resize(1);
}

TEST(Resume, DseSigintKillAndResumeMatchesUninterruptedSweep)
{
    RobustGuard guard;
    installSignalHandlers();
    ThreadPool::instance().resize(4);

    OptimizerOptions opts;
    opts.evalTasks = 10;
    opts.accuracyDropTolerance = 1.1;

    const OptimizerResult ref =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(ref.cancelled);

    // A real SIGINT at the start of the second batch: the sweep
    // checkpoints the completed prefix and stops as Cancelled.
    opts.checkpointPath = ckptPath("lrd_sigint_dse.bin");
    opts.checkpointEvery = 2;
    resetSignalsForTest();
    setFault(FaultSpec{"dse.batch", FaultKind::Cancel, 2});
    const OptimizerResult cut =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    clearFaults();
    ASSERT_TRUE(cut.cancelled);
    EXPECT_EQ(cut.status.code(), StatusCode::Cancelled);
    EXPECT_EQ(cancelCause(), CancelCause::Signal);
    EXPECT_EQ(signalsSeen(), 1);
    clearCancelRequest();
    resetSignalsForTest();
    ASSERT_TRUE(fs::exists(opts.checkpointPath));

    opts.resume = true;
    const OptimizerResult resumed =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(resumed.cancelled);
    EXPECT_EQ(resumed.baselineAccuracy, ref.baselineAccuracy);
    EXPECT_EQ(resumed.baselineEdp, ref.baselineEdp);
    expectSameRecords(resumed.explored, ref.explored);
    EXPECT_EQ(resumed.best.config.describe(), ref.best.config.describe());
    EXPECT_EQ(resumed.best.edp, ref.best.edp);
    ThreadPool::instance().resize(1);
}

TEST(Resume, EvaluatorDegradesPoisonedItemsWithinBudget)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    RobustPolicy degrade;
    degrade.mode = RobustMode::Degrade;
    degrade.failureBudget = 0.5;
    setRobustPolicy(degrade);

    TransformerModel model(smallConfig(), 42);
    Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});

    // One poisoned activation: exactly one item fails, the sweep
    // completes, and the failure is reported in the result.
    setFault(FaultSpec{"model.block", FaultKind::Nan, 1});
    const EvalResult r = ev.run(BenchmarkKind::ArcEasy);
    clearFaults();
    EXPECT_EQ(r.numFailed, 1);
    EXPECT_EQ(r.numTasks, 12);

    // With a zero budget the same poisoned run is fatal.
    degrade.failureBudget = 0.0;
    setRobustPolicy(degrade);
    setFault(FaultSpec{"model.block", FaultKind::Nan, 1});
    EXPECT_THROW(ev.run(BenchmarkKind::ArcEasy), std::runtime_error);
    clearFaults();
}

TEST(Resume, EvaluatorDegradesInjectedAllocFailure)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    RobustPolicy degrade;
    degrade.mode = RobustMode::Degrade;
    degrade.failureBudget = 0.5;
    setRobustPolicy(degrade);

    TransformerModel model(smallConfig(), 42);
    Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});
    setFault(FaultSpec{"eval.item", FaultKind::Alloc, 3});
    const EvalResult r = ev.run(BenchmarkKind::ArcEasy);
    clearFaults();
    EXPECT_EQ(r.numFailed, 1);
    EXPECT_EQ(r.numTasks, 12);
}

TEST(Resume, RetryHealsAPoisonedItemAtEveryThreadCount)
{
    RobustGuard guard;
    TransformerModel model(smallConfig(), 42);
    Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});
    ThreadPool::instance().resize(1);
    const EvalResult clean = ev.run(BenchmarkKind::ArcEasy);

    RobustPolicy retry;
    retry.mode = RobustMode::Retry;
    retry.maxRetries = 2;
    retry.failureBudget = 0.0; // Any unhealed failure would be fatal.
    setRobustPolicy(retry);
    for (int nThreads : {1, 4, 8}) {
        ThreadPool::instance().resize(nThreads);
        setFault(FaultSpec{"model.block", FaultKind::Nan, 1});
        const EvalResult healed = ev.run(BenchmarkKind::ArcEasy);
        clearFaults();
        // The injected NaN is consumed by its occurrence counter, so
        // the bounded retry re-scores the item cleanly: zero failures
        // and the exact clean result, whichever worker hit the fault.
        EXPECT_EQ(healed.numFailed, 0) << "threads=" << nThreads;
        EXPECT_EQ(healed.numCorrect, clean.numCorrect)
            << "threads=" << nThreads;
    }
    ThreadPool::instance().resize(1);
}

TEST(Resume, FactorizeDegradeKeepsDenseOnNonConvergence)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    TransformerModel model(smallConfig(), 42);
    const int64_t denseParams = model.paramCount();

    setFault(FaultSpec{"jacobi", FaultKind::NonConverge, 1});
    const Status s = model.applyTucker(0, WeightKind::Query, 2);
    clearFaults();
    EXPECT_EQ(s.code(), StatusCode::NonConvergence);
    // Degrade keeps the dense weight: the model is untouched and
    // usable.
    EXPECT_FALSE(model.linear(0, WeightKind::Query).isFactorized());
    EXPECT_EQ(model.paramCount(), denseParams);
}

TEST(Resume, FactorizeRetryHealsForcedNonConvergence)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    RobustPolicy retry;
    retry.mode = RobustMode::Retry;
    retry.maxRetries = 2;
    setRobustPolicy(retry);

    TransformerModel model(smallConfig(), 42);
    setFault(FaultSpec{"jacobi", FaultKind::NonConverge, 1});
    const Status s = model.applyTucker(0, WeightKind::Query, 2);
    clearFaults();
    // The forced non-convergence fires once; the retry factorizes.
    EXPECT_TRUE(s.ok()) << s.toString();
    EXPECT_TRUE(model.linear(0, WeightKind::Query).isFactorized());
}

TEST(Resume, StrictPolicyFailsFastOnNonConvergence)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    RobustPolicy strict;
    strict.mode = RobustMode::Strict;
    setRobustPolicy(strict);

    TransformerModel model(smallConfig(), 42);
    setFault(FaultSpec{"jacobi", FaultKind::NonConverge, 1});
    EXPECT_THROW(model.applyTucker(0, WeightKind::Query, 2),
                 std::runtime_error);
    clearFaults();
}

/** A kill-and-resume DSE sweep with the fused factorized forward
 *  enabled (the default): the sweep's factorized eval forwards must
 *  actually take the fused path, and the resumed sweep must still
 *  reproduce the uninterrupted one bitwise. */
TEST(Resume, DseKillAndResumeIsBitwiseWithFusedPathEngaged)
{
    RobustGuard guard;
    ThreadPool::instance().resize(2);
    MetricsRegistry::instance().setEnabled(true);
    Counter *fused = MetricsRegistry::instance().counter(
        "model.linear.fusedForwards");
    const int64_t fusedBefore = fused->total();
    ASSERT_TRUE(Linear::fusedForwardEnabled());

    OptimizerOptions opts;
    opts.evalTasks = 6;
    opts.accuracyDropTolerance = 1.1;
    const OptimizerResult ref =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(ref.cancelled);
    EXPECT_GT(fused->total(), fusedBefore)
        << "factorized eval forwards bypassed the fused path";

    opts.checkpointPath = ckptPath("lrd_resume_dse_fused.bin");
    opts.checkpointEvery = 2;
    setFault(FaultSpec{"dse.batch", FaultKind::Cancel, 2});
    const OptimizerResult cut =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    clearFaults();
    clearCancelRequest();
    ASSERT_TRUE(cut.cancelled);

    opts.resume = true;
    const OptimizerResult resumed =
        optimizeDecomposition(trainedBytes(), smallWorld(), opts);
    ASSERT_FALSE(resumed.cancelled);
    expectSameRecords(resumed.explored, ref.explored);
    EXPECT_EQ(resumed.best.edp, ref.best.edp);
    MetricsRegistry::instance().setEnabled(false);
    ThreadPool::instance().resize(1);
}

} // namespace
} // namespace lrd
