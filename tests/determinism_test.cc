/**
 * @file
 * Bitwise determinism of every parallelized path across thread
 * counts: the pool's fixed chunk partitioning must make matmul (all
 * transpose variants), truncatedSvd, the evaluator, and the trainer
 * produce identical bits at LRD_THREADS=1 and LRD_THREADS=8.
 *
 * This suite is the one the verify script re-runs under
 * -DLRD_SANITIZE=thread: it exercises the pool from a single posting
 * thread across resize cycles, which is exactly the usage TSan must
 * see clean.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "eval/evaluator.h"
#include "linalg/linalg.h"
#include "model/config.h"
#include "model/linear.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

namespace lrd {
namespace {

constexpr int kManyThreads = 8;

// The whole suite runs with metrics recording on: the instrumented
// hot paths must not perturb numeric results at any thread count.
const bool kMetricsOn = [] {
    MetricsRegistry::instance().setEnabled(true);
    return true;
}();

/** Run fn with the pool at n threads, restoring nothing: each test
 *  sets the count it needs explicitly. */
template <class Fn>
auto
withThreads(int n, Fn fn)
{
    ThreadPool::instance().resize(n);
    return fn();
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
           && std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float))
                  == 0;
}

TEST(Determinism, MatmulAllVariantsAcrossThreadCounts)
{
    Rng rng(42);
    // Odd shapes that straddle the register-tile and row-chunk
    // boundaries of the blocked kernel.
    const Tensor a = Tensor::randn({150, 97}, rng);
    const Tensor b = Tensor::randn({97, 201}, rng);
    const Tensor bt = Tensor::randn({201, 97}, rng);
    const Tensor at = Tensor::randn({150, 201}, rng);

    const Tensor c1 = withThreads(1, [&] { return matmul(a, b); });
    const Tensor d1 = withThreads(1, [&] { return matmulTransB(a, bt); });
    const Tensor e1 = withThreads(1, [&] { return matmulTransA(a, at); });
    const Tensor cN =
        withThreads(kManyThreads, [&] { return matmul(a, b); });
    const Tensor dN =
        withThreads(kManyThreads, [&] { return matmulTransB(a, bt); });
    const Tensor eN =
        withThreads(kManyThreads, [&] { return matmulTransA(a, at); });

    EXPECT_TRUE(bitwiseEqual(c1, cN));
    EXPECT_TRUE(bitwiseEqual(d1, dN));
    EXPECT_TRUE(bitwiseEqual(e1, eN));
}

TEST(Determinism, TruncatedSvdAcrossThreadCounts)
{
    Rng rng(43);
    const Tensor a = Tensor::randn({70, 50}, rng);
    const SvdResult s1 =
        withThreads(1, [&] { return truncatedSvd(a, 8); });
    const SvdResult sN =
        withThreads(kManyThreads, [&] { return truncatedSvd(a, 8); });
    EXPECT_TRUE(bitwiseEqual(s1.u, sN.u));
    EXPECT_TRUE(bitwiseEqual(s1.v, sN.v));
    ASSERT_EQ(s1.s.size(), sN.s.size());
    for (size_t i = 0; i < s1.s.size(); ++i)
        EXPECT_EQ(s1.s[i], sN.s[i]) << "singular value " << i;
}

TEST(Determinism, EvaluatorAcrossThreadCounts)
{
    const World &world = defaultWorld();
    const auto evalOnce = [&] {
        TransformerModel model(tinyLlamaConfig(), 1234);
        Evaluator ev(model, world, EvalOptions{16, 999, false});
        return ev.run(allBenchmarks().front());
    };
    const EvalResult r1 = withThreads(1, evalOnce);
    const EvalResult rN = withThreads(kManyThreads, evalOnce);
    EXPECT_EQ(r1.numCorrect, rN.numCorrect);
    EXPECT_EQ(r1.numTasks, rN.numTasks);
    EXPECT_EQ(r1.accuracy, rN.accuracy);
}

TEST(Determinism, TrainerAcrossThreadCounts)
{
    const World &world = defaultWorld();
    TrainOptions topts;
    topts.steps = 4;
    topts.batchSeqs = 4;
    topts.seqLen = 24;
    topts.warmupSteps = 2;
    topts.logEvery = 0;
    const auto trainOnce = [&] {
        TransformerModel model(tinyLlamaConfig(), 777);
        Trainer trainer(model, world, topts);
        const double loss = trainer.run();
        return std::make_pair(loss, model.serialize());
    };
    const auto [loss1, bytes1] = withThreads(1, trainOnce);
    const auto [lossN, bytesN] = withThreads(kManyThreads, trainOnce);
    EXPECT_EQ(loss1, lossN);
    EXPECT_EQ(bytes1, bytesN);
}

TEST(Determinism, GemmSkinnyFallbackAcrossThreadCounts)
{
    Rng rng(44);
    // Shapes below the blocked-path threshold take the fallback
    // kernels, which parallelize over columns / output rows.
    const Tensor a = Tensor::randn({1, 3000}, rng);
    const Tensor b = Tensor::randn({3000, 700}, rng);
    const Tensor bt = Tensor::randn({700, 3000}, rng);
    const Tensor c1 = withThreads(1, [&] { return matmul(a, b); });
    const Tensor cN =
        withThreads(kManyThreads, [&] { return matmul(a, b); });
    const Tensor d1 = withThreads(1, [&] { return matmulTransB(a, bt); });
    const Tensor dN =
        withThreads(kManyThreads, [&] { return matmulTransB(a, bt); });
    EXPECT_TRUE(bitwiseEqual(c1, cN));
    EXPECT_TRUE(bitwiseEqual(d1, dN));
}

/** The bitwise thread-count contract must hold at every microkernel
 *  level this host can run, not just the startup choice: each level
 *  assigns every C element to exactly one fixed row chunk and visits
 *  k-slabs in a fixed serial order. */
TEST(Determinism, MatmulAcrossThreadCountsAtEverySimdLevel)
{
    Rng rng(31);
    const Tensor a = Tensor::randn({65, 130}, rng);
    const Tensor b = Tensor::randn({130, 53}, rng);
    const Tensor bt = Tensor::randn({53, 130}, rng);
    const Tensor at = Tensor::randn({65, 96}, rng);

    const simd::Level restore = simd::activeLevel();
    for (const simd::Level level : simd::availableLevels()) {
        simd::setActiveLevel(level);
        const Tensor c1 = withThreads(1, [&] { return matmul(a, b); });
        const Tensor c4 = withThreads(4, [&] { return matmul(a, b); });
        const Tensor cN =
            withThreads(kManyThreads, [&] { return matmul(a, b); });
        EXPECT_TRUE(bitwiseEqual(c1, c4)) << simd::levelName(level);
        EXPECT_TRUE(bitwiseEqual(c1, cN)) << simd::levelName(level);

        const Tensor d1 =
            withThreads(1, [&] { return matmulTransB(a, bt); });
        const Tensor dN = withThreads(kManyThreads,
                                      [&] { return matmulTransB(a, bt); });
        EXPECT_TRUE(bitwiseEqual(d1, dN)) << simd::levelName(level);

        const Tensor e1 =
            withThreads(1, [&] { return matmulTransA(a, at); });
        const Tensor eN = withThreads(kManyThreads,
                                      [&] { return matmulTransA(a, at); });
        EXPECT_TRUE(bitwiseEqual(e1, eN)) << simd::levelName(level);
    }
    simd::setActiveLevel(restore);
}

/** The fused factorized forward shares the contract: both its panel
 *  mode (small factors) and stage mode (large factors) chunk rows
 *  identically regardless of thread count. */
TEST(Determinism, FusedFactorizedForwardAcrossThreadCounts)
{
    Rng rng(32);
    // rank 24 of 96 stays in panel mode; rank 200 of 256 crosses the
    // packed-weight threshold into stage mode.
    for (const auto &[dim, rank] :
         {std::pair<int64_t, int64_t>{96, 24}, {256, 200}}) {
        Linear l(dim, dim, /*hasBias=*/true, "dettest.fused", rng);
        l.installFactorShape(rank);
        for (Parameter *p : l.parameters())
            p->value = Tensor::randn(p->value.shape(), rng);
        const Tensor x = Tensor::randn({96, dim}, rng);

        Linear::setFusedForwardEnabled(true);
        const Tensor y1 = withThreads(1, [&] { return l.forward(x); });
        const Tensor y4 = withThreads(4, [&] { return l.forward(x); });
        const Tensor yN =
            withThreads(kManyThreads, [&] { return l.forward(x); });
        EXPECT_TRUE(bitwiseEqual(y1, y4)) << dim << "/" << rank;
        EXPECT_TRUE(bitwiseEqual(y1, yN)) << dim << "/" << rank;
    }
}

} // namespace
} // namespace lrd
