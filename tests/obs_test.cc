/**
 * @file
 * Observability subsystem tests: metric merge determinism across
 * thread counts, trace JSON well-formedness (parsed back with a
 * minimal JSON validator), disabled-path no-ops, and the logging
 * satellite (level filtering, LRD_LOG parsing, prefixes).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace lrd {
namespace {

/**
 * Minimal recursive-descent JSON validator (no external JSON library
 * in this repo): accepts exactly the RFC 8259 grammar the exporters
 * are supposed to emit.
 */
class JsonValidator
{
  public:
    static bool
    valid(const std::string &text)
    {
        JsonValidator v(text);
        v.skipWs();
        if (!v.value())
            return false;
        v.skipWs();
        return v.p_ == v.end_;
    }

  private:
    explicit JsonValidator(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    const char *p_;
    const char *end_;

    void
    skipWs()
    {
        while (p_ != end_
               && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n'
                   || *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *lit)
    {
        for (; *lit; ++lit, ++p_)
            if (p_ == end_ || *p_ != *lit)
                return false;
        return true;
    }

    bool
    string()
    {
        if (p_ == end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    return false;
            }
            ++p_;
        }
        if (p_ == end_)
            return false;
        ++p_; // Closing quote.
        return true;
    }

    bool
    number()
    {
        const char *start = p_;
        if (p_ != end_ && *p_ == '-')
            ++p_;
        while (p_ != end_
               && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e'
                   || *p_ == 'E' || *p_ == '+' || *p_ == '-'))
            ++p_;
        return p_ != start;
    }

    bool
    value()
    {
        skipWs();
        if (p_ == end_)
            return false;
        switch (*p_) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return false;
            ++p_;
            if (!value())
                return false;
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            if (*p_ != ',')
                return false;
            ++p_;
        }
    }

    bool
    array()
    {
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            if (*p_ != ',')
                return false;
            ++p_;
        }
    }
};

int64_t
counterValue(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &[n, v] : snap.counters)
        if (n == name)
            return v;
    return -1;
}

const HistogramSnapshot *
histogramValue(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &[n, h] : snap.histograms)
        if (n == name)
            return &h;
    return nullptr;
}

/** Restores metrics/trace enablement and the 1-thread pool on exit. */
struct ObsStateGuard
{
    ~ObsStateGuard()
    {
        MetricsRegistry::instance().setEnabled(false);
        Tracer::instance().setEnabled(false);
        ThreadPool::instance().resize(1);
        setLogLevel(LogLevel::Info);
        setLogTimestamps(false);
    }
};

TEST(Metrics, MergeIsIdenticalAcrossThreadCounts)
{
    ObsStateGuard guard;
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.setEnabled(true);
    Counter *items = reg.counter("test.merge.items");
    Histogram *sizes = reg.histogram("test.merge.sizes");

    auto run = [&](int threads) {
        ThreadPool::instance().resize(threads);
        reg.reset();
        parallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                items->add(i);
                sizes->record(i);
            }
        });
        return reg.snapshot();
    };

    const MetricsSnapshot one = run(1);
    const MetricsSnapshot many = run(8);

    EXPECT_EQ(counterValue(one, "test.merge.items"), 999 * 1000 / 2);
    EXPECT_EQ(counterValue(one, "test.merge.items"),
              counterValue(many, "test.merge.items"));

    const HistogramSnapshot *h1 = histogramValue(one, "test.merge.sizes");
    const HistogramSnapshot *h8 = histogramValue(many, "test.merge.sizes");
    ASSERT_NE(h1, nullptr);
    ASSERT_NE(h8, nullptr);
    EXPECT_EQ(h1->count, 1000);
    EXPECT_EQ(h1->count, h8->count);
    EXPECT_EQ(h1->sum, h8->sum);
    for (int b = 0; b < obsdetail::kHistBuckets; ++b)
        EXPECT_EQ(h1->buckets[static_cast<size_t>(b)],
                  h8->buckets[static_cast<size_t>(b)])
            << "bucket " << b;
}

TEST(Metrics, PerLaneBreakdownSumsToTotal)
{
    ObsStateGuard guard;
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.setEnabled(true);
    Counter *chunks = reg.counter("test.perlane.chunks", /*perLane=*/true);

    ThreadPool::instance().resize(8);
    reg.reset();
    parallelFor(0, 64, 1, [&](int64_t, int64_t) { chunks->inc(); });

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(counterValue(snap, "test.perlane.chunks"), 64);
    bool found = false;
    for (const auto &[name, lanes] : snap.perLaneCounters) {
        if (name != "test.perlane.chunks")
            continue;
        found = true;
        int64_t sum = 0;
        for (int64_t v : lanes)
            sum += v;
        EXPECT_EQ(sum, 64);
    }
    EXPECT_TRUE(found);
}

TEST(Metrics, PoolChunkCounterMatchesPartitioning)
{
    ObsStateGuard guard;
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.setEnabled(true);

    for (int threads : {1, 8}) {
        ThreadPool::instance().resize(threads);
        reg.reset();
        parallelFor(0, 100, 10, [&](int64_t, int64_t) {});
        EXPECT_EQ(counterValue(reg.snapshot(), "pool.chunks"), 10)
            << "threads=" << threads;
    }
}

TEST(Metrics, DisabledRecordingIsANoOp)
{
    ObsStateGuard guard;
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.setEnabled(true);
    Counter *c = reg.counter("test.disabled.counter");
    reg.reset();
    c->add(5);
    reg.setEnabled(false);
    c->add(1000);
    EXPECT_EQ(c->total(), 5);
}

TEST(Metrics, JsonExportIsWellFormed)
{
    ObsStateGuard guard;
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.setEnabled(true);
    reg.counter("test.json.counter")->add(3);
    reg.gauge("test.json.gauge")->set(2.5);
    reg.histogram("test.json.hist")->record(100);

    const std::string json = reg.toJson();
    EXPECT_TRUE(JsonValidator::valid(json)) << json;
    EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(-5), 0);
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    EXPECT_EQ(Histogram::bucketOf(1023), 10);
    EXPECT_EQ(Histogram::bucketOf(1024), 11);
    EXPECT_EQ(Histogram::bucketOf(std::numeric_limits<int64_t>::max()),
              obsdetail::kHistBuckets - 1);
    EXPECT_EQ(Histogram::bucketLowerBound(0), 0);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1);
    EXPECT_EQ(Histogram::bucketLowerBound(3), 4);
}

TEST(Trace, ChromeJsonIsWellFormedAndHasWorkerLanes)
{
    ObsStateGuard guard;
    Tracer &tracer = Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);

    // Respawn workers with tracing on so each emits its lane marker.
    ThreadPool::instance().resize(1);
    ThreadPool::instance().resize(8);

    {
        LRD_TRACE_SPAN("test.outer");
        LRD_TRACE_SPAN("test.withArg", 3.25);
        parallelFor(0, 64, 1, [&](int64_t, int64_t) {
            LRD_TRACE_SPAN("test.body");
        });
    }
    tracer.setEnabled(false);

    const std::string json = tracer.toChromeJson();
    EXPECT_TRUE(JsonValidator::valid(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test.withArg\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"v\": 3.25}"), std::string::npos);
    // Every worker spawned while tracing was on gets a named lane.
    for (int lane = 1; lane <= 7; ++lane)
        EXPECT_NE(json.find("\"worker-" + std::to_string(lane) + "\""),
                  std::string::npos)
            << "missing lane " << lane;

    const std::string csv = tracer.toCsv();
    EXPECT_NE(csv.find("name,count,total_us,min_us,max_us,mean_us"),
              std::string::npos);
    EXPECT_NE(csv.find("test.body,64,"), std::string::npos);
}

TEST(Trace, DisabledSpansRecordNothing)
{
    ObsStateGuard guard;
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(false);
    tracer.clear();
    {
        LRD_TRACE_SPAN("test.shouldNotAppear");
    }
    EXPECT_EQ(tracer.toChromeJson().find("test.shouldNotAppear"),
              std::string::npos);
    EXPECT_EQ(tracer.droppedEvents(), 0);
}

TEST(Logging, LevelFilteringAndPrefixes)
{
    ObsStateGuard guard;

    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    inform("should be filtered");
    debug("also filtered");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(out.empty()) << out;

    testing::internal::CaptureStderr();
    warn("should appear");
    out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("should appear"), std::string::npos);
    EXPECT_EQ(out.find(" w0] "), std::string::npos);

    // "+ts" adds an elapsed-seconds + worker-lane prefix.
    setLogTimestamps(true);
    testing::internal::CaptureStderr();
    warn("stamped");
    out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("s w0] "), std::string::npos) << out;
    EXPECT_NE(out.find("stamped"), std::string::npos);
}

TEST(Logging, TimestampToggleRoundTrips)
{
    const bool before = logTimestamps();
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestamps());
    setLogTimestamps(false);
    EXPECT_FALSE(logTimestamps());
    setLogTimestamps(before);
}

TEST(Logging, ParseLogSpec)
{
    LogSpec spec = parseLogSpec("debug");
    EXPECT_EQ(spec.level, LogLevel::Debug);
    EXPECT_FALSE(spec.timestamps);

    spec = parseLogSpec("warn+ts");
    EXPECT_EQ(spec.level, LogLevel::Warn);
    EXPECT_TRUE(spec.timestamps);

    EXPECT_THROW(parseLogSpec("verbose"), std::runtime_error);
    EXPECT_THROW(parseLogSpec("info+color"), std::runtime_error);
    EXPECT_THROW(parseLogSpec(""), std::runtime_error);
}

/**
 * The exact pattern that used to race: pool workers read the log
 * level while another thread adjusts it. With the level stored in a
 * plain global, the TSan run of this suite flags it; the atomic makes
 * it clean.
 */
TEST(Logging, ConcurrentLevelAccessIsRaceFree)
{
    ObsStateGuard guard;
    setLogLevel(LogLevel::Error); // Filter everything: no stderr spam.
    ThreadPool::instance().resize(4);

    std::atomic<bool> stop{false};
    // The raw thread is the point of this test: an external,
    // non-pool thread racing the pool workers on the log level.
    std::thread flipper([&] { // lrd-lint: allow(thread-outside-parallel)
        while (!stop.load(std::memory_order_relaxed)) {
            setLogLevel(LogLevel::Warn);
            setLogLevel(LogLevel::Error);
        }
    });
    parallelFor(0, 2000, 1, [&](int64_t, int64_t) {
        debug("never printed"); // Reads the level on a pool worker.
    });
    stop.store(true);
    flipper.join();
}

TEST(Logging, StrCatMixesTypes)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strCat(), "");
    EXPECT_EQ(strCat(std::string("x"), 'y'), "xy");
}

} // namespace
} // namespace lrd
