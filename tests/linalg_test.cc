/**
 * @file
 * Tests for QR, symmetric eigendecomposition, SVD (full, truncated,
 * randomized), including Eckart-Young optimality properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.h"
#include "robust/fault.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace lrd {
namespace {

TEST(Qr, ReconstructsInput)
{
    Rng rng(1);
    for (auto [m, n] : {std::pair<int64_t, int64_t>{6, 4}, {4, 6}, {5, 5}}) {
        Tensor a = Tensor::randn({m, n}, rng);
        QrResult qr = qrDecompose(a);
        EXPECT_LT(relativeError(a, matmul(qr.q, qr.r)), 1e-5);
        EXPECT_LT(orthonormalityError(qr.q), 1e-5);
    }
}

TEST(Qr, RIsUpperTriangular)
{
    Rng rng(2);
    Tensor a = Tensor::randn({5, 5}, rng);
    QrResult qr = qrDecompose(a);
    for (int64_t i = 1; i < 5; ++i)
        for (int64_t j = 0; j < i; ++j)
            EXPECT_FLOAT_EQ(qr.r(i, j), 0.0F);
}

TEST(Qr, HandlesRankDeficientInput)
{
    // Two identical columns: still must satisfy A = Q R.
    Tensor a({3, 2}, {1, 1, 2, 2, 3, 3});
    QrResult qr = qrDecompose(a);
    EXPECT_LT(relativeError(a, matmul(qr.q, qr.r)), 1e-5);
}

TEST(Qr, ZeroMatrix)
{
    Tensor a({3, 2});
    QrResult qr = qrDecompose(a);
    EXPECT_LT(matmul(qr.q, qr.r).norm(), 1e-6);
}

TEST(Eigen, DiagonalMatrix)
{
    Tensor d({3, 3});
    d(0, 0) = 1.0F;
    d(1, 1) = 5.0F;
    d(2, 2) = 3.0F;
    EigenResult e = symmetricEigen(d);
    EXPECT_NEAR(e.values[0], 5.0, 1e-8);
    EXPECT_NEAR(e.values[1], 3.0, 1e-8);
    EXPECT_NEAR(e.values[2], 1.0, 1e-8);
}

TEST(Eigen, ReconstructsSymmetricMatrix)
{
    Rng rng(3);
    Tensor g = Tensor::randn({6, 6}, rng);
    Tensor s = add(g, transpose2d(g)); // symmetric
    EigenResult e = symmetricEigen(s);
    // Rebuild V diag(w) V^T.
    Tensor vw = e.vectors;
    for (int64_t i = 0; i < 6; ++i)
        for (int64_t j = 0; j < 6; ++j)
            vw(i, j) *= static_cast<float>(e.values[static_cast<size_t>(j)]);
    Tensor rec = matmulTransB(vw, e.vectors);
    EXPECT_LT(relativeError(s, rec), 1e-5);
    EXPECT_LT(orthonormalityError(e.vectors), 1e-5);
}

TEST(Eigen, RejectsNonSquare)
{
    EXPECT_THROW(symmetricEigen(Tensor({2, 3})), std::runtime_error);
}

TEST(Svd, ReconstructsRandomMatrices)
{
    Rng rng(4);
    for (auto [m, n] : {std::pair<int64_t, int64_t>{8, 5}, {5, 8}, {6, 6}}) {
        Tensor a = Tensor::randn({m, n}, rng);
        SvdResult s = svd(a);
        EXPECT_LT(relativeError(a, s.reconstruct()), 1e-4)
            << m << "x" << n;
        EXPECT_LT(orthonormalityError(s.u), 1e-4);
        // Singular values descending and non-negative.
        for (size_t i = 1; i < s.s.size(); ++i)
            EXPECT_GE(s.s[i - 1], s.s[i] - 1e-9);
        EXPECT_GE(s.s.back(), -1e-12);
    }
}

TEST(Svd, SingularValuesOfKnownMatrix)
{
    // A = diag(3, 2) embedded in a 2x2.
    Tensor a({2, 2}, {3, 0, 0, 2});
    SvdResult s = svd(a);
    EXPECT_NEAR(s.s[0], 3.0, 1e-8);
    EXPECT_NEAR(s.s[1], 2.0, 1e-8);
}

TEST(Svd, FrobeniusNormMatchesSingularValues)
{
    Rng rng(5);
    Tensor a = Tensor::randn({7, 4}, rng);
    SvdResult s = svd(a);
    double sum2 = 0.0;
    for (double v : s.s)
        sum2 += v * v;
    EXPECT_NEAR(std::sqrt(sum2), a.norm(), 1e-5);
}

TEST(TruncatedSvd, ExactForLowRankMatrix)
{
    // Build an exactly rank-2 matrix; rank-2 truncation must be exact.
    Rng rng(6);
    Tensor u = Tensor::randn({8, 2}, rng);
    Tensor v = Tensor::randn({2, 6}, rng);
    Tensor a = matmul(u, v);
    SvdResult s = truncatedSvd(a, 2);
    EXPECT_LT(relativeError(a, s.reconstruct()), 1e-4);
}

TEST(TruncatedSvd, ErrorDecreasesWithRank)
{
    Rng rng(7);
    Tensor a = Tensor::randn({10, 10}, rng);
    double prev = 1e9;
    for (int64_t k : {1, 3, 5, 8, 10}) {
        SvdResult s = truncatedSvd(a, k);
        const double err = relativeError(a, s.reconstruct());
        EXPECT_LE(err, prev + 1e-9) << "rank " << k;
        prev = err;
    }
    EXPECT_LT(prev, 1e-4); // full rank is exact
}

TEST(TruncatedSvd, ErrorEqualsTailSingularValues)
{
    // Eckart-Young: ||A - A_k||_F^2 = sum_{i>k} sigma_i^2.
    Rng rng(8);
    Tensor a = Tensor::randn({9, 6}, rng);
    SvdResult full = svd(a);
    for (int64_t k : {1, 2, 4}) {
        SvdResult trunc = truncatedSvd(a, k);
        double tail = 0.0;
        for (size_t i = static_cast<size_t>(k); i < full.s.size(); ++i)
            tail += full.s[i] * full.s[i];
        const Tensor diff = sub(a, trunc.reconstruct());
        EXPECT_NEAR(diff.norm(), std::sqrt(tail), 1e-4);
    }
}

TEST(TruncatedSvd, BeatsRandomProjection)
{
    // Eckart-Young optimality vs an arbitrary rank-k projector.
    Rng rng(9);
    Tensor a = Tensor::randn({12, 12}, rng);
    const int64_t k = 3;
    SvdResult s = truncatedSvd(a, k);
    const double svdErr = relativeError(a, s.reconstruct());
    Tensor q = randomOrthonormal(12, k, rng);
    Tensor proj = matmul(q, matmulTransA(q, a));
    EXPECT_LT(svdErr, relativeError(a, proj));
}

TEST(TruncatedSvd, InvalidRankThrows)
{
    Tensor a({4, 3});
    EXPECT_THROW(truncatedSvd(a, 0), std::runtime_error);
    EXPECT_THROW(truncatedSvd(a, 4), std::runtime_error);
}

TEST(LeftSingularVectors, SpanMatchesTruncatedSvd)
{
    Rng rng(10);
    Tensor a = Tensor::randn({6, 9}, rng);
    const int64_t k = 3;
    Tensor u = leftSingularVectors(a, k);
    EXPECT_EQ(u.shape(), (Shape{6, 3}));
    EXPECT_LT(orthonormalityError(u), 1e-4);
    // Projection of A onto span(U) must capture the same energy as
    // the rank-k SVD reconstruction.
    Tensor proj = matmul(u, matmulTransA(u, a));
    SvdResult s = truncatedSvd(a, k);
    EXPECT_NEAR(relativeError(a, proj), relativeError(a, s.reconstruct()),
                1e-4);
}

TEST(RandomizedSvd, CloseToExactOnDecayingSpectrum)
{
    Rng rng(11);
    // Matrix with fast-decaying spectrum: randomized SVD is accurate.
    const int64_t n = 30;
    Tensor u = randomOrthonormal(n, n, rng);
    Tensor v = randomOrthonormal(n, n, rng);
    Tensor us = u;
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < n; ++j)
            us(i, j) *= std::pow(0.5F, static_cast<float>(j));
    Tensor a = matmulTransB(us, v);

    const int64_t k = 5;
    SvdResult exact = truncatedSvd(a, k);
    SvdResult approx = randomizedSvd(a, k, rng);
    const double exactErr = relativeError(a, exact.reconstruct());
    const double approxErr = relativeError(a, approx.reconstruct());
    EXPECT_LT(approxErr, exactErr * 1.5 + 1e-3);
}

TEST(RandomOrthonormal, ProducesOrthonormalColumns)
{
    Rng rng(12);
    Tensor q = randomOrthonormal(10, 4, rng);
    EXPECT_EQ(q.shape(), (Shape{10, 4}));
    EXPECT_LT(orthonormalityError(q), 1e-5);
    EXPECT_THROW(randomOrthonormal(3, 5, rng), std::runtime_error);
}

/** Property sweep: SVD reconstructs random matrices of random shape. */
class SvdProperty : public ::testing::TestWithParam<int> {};

TEST_P(SvdProperty, ReconstructionAndOrdering)
{
    Rng rng(static_cast<uint64_t>(300 + GetParam()));
    const int64_t m = 2 + static_cast<int64_t>(rng.uniformInt(12));
    const int64_t n = 2 + static_cast<int64_t>(rng.uniformInt(12));
    Tensor a = Tensor::randn({m, n}, rng);
    SvdResult s = svd(a);
    EXPECT_LT(relativeError(a, s.reconstruct()), 1e-3)
        << m << "x" << n;
    for (size_t i = 1; i < s.s.size(); ++i)
        EXPECT_GE(s.s[i - 1], s.s[i] - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, SvdProperty, ::testing::Range(0, 16));

TEST(Eigen, ConvergedDecompositionReportsOkStatus)
{
    Rng rng(55);
    Tensor b = Tensor::randn({6, 6}, rng);
    Tensor a = matmulTransB(b, b); // symmetric PSD
    const EigenResult e = symmetricEigen(a);
    EXPECT_TRUE(e.status.ok());
    EXPECT_GT(e.sweeps, 0);
}

TEST(Eigen, InjectedNonConvergenceIsReportedNotSilent)
{
    clearFaults();
    Rng rng(56);
    Tensor b = Tensor::randn({6, 6}, rng);
    Tensor a = matmulTransB(b, b);

    setFault(FaultSpec{"jacobi", FaultKind::NonConverge, 1});
    const EigenResult e = symmetricEigen(a);
    clearFaults();
    EXPECT_EQ(e.status.code(), StatusCode::NonConvergence);
    EXPECT_STREQ(e.status.site(), "jacobi");

    // The status propagates through the SVD wrappers.
    setFault(FaultSpec{"jacobi", FaultKind::NonConverge, 1});
    const SvdResult s = truncatedSvd(Tensor::randn({8, 5}, rng), 3);
    clearFaults();
    EXPECT_EQ(s.status.code(), StatusCode::NonConvergence);
}

} // namespace
} // namespace lrd
