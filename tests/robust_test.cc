/**
 * @file
 * Unit tests for the fault-tolerance layer: Status/Result semantics,
 * the fault-injection harness, CRC-protected checkpoints (including
 * injected truncation/bit-flip/allocation failures), numeric-fault
 * detection, the failure budget, retry-with-reseed determinism, and a
 * parametrized cancel-kill pass over every registered fault site.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dse/coordinator.h"
#include "dse/optimizer.h"
#include "eval/evaluator.h"
#include "model/transformer.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/retry.h"
#include "robust/signal.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "train/trainer.h"
#include "util/status.h"

using namespace lrd;
namespace fs = std::filesystem;

namespace {

/** Restores the default policy and disarms faults on scope exit. */
struct RobustGuard
{
    RobustGuard() { reset(); }
    ~RobustGuard() { reset(); }

    static void reset()
    {
        clearFaults();
        setRobustPolicy(RobustPolicy{});
        (void)takeNumericFault();
        // The cancel token is process-wide: a leftover request or
        // armed deadline would abort every later test immediately.
        clearCancelRequest();
        clearDeadline();
        resetSignalsForTest();
    }
};

/** Fresh checkpoint path (primary, .prev and .tmp all removed). */
std::string
ckptPath(const std::string &name)
{
    const fs::path p = fs::temp_directory_path() / name;
    fs::remove(p);
    fs::remove(p.string() + ".prev");
    fs::remove(checkpointTmpPath(p.string()));
    return p.string();
}

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 7;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

ModelConfig
smallConfig()
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = smallWorld().vocabSize();
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 4;
    cfg.maxSeq = 48;
    return cfg;
}

} // namespace

TEST(Status, DefaultIsOkAndHeapFree)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, ToStringCarriesCodeSiteAndMessage)
{
    const Status s(StatusCode::NonConvergence, "jacobi", "stuck");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.toString(), "non-convergence at jacobi: stuck");
    EXPECT_STREQ(statusCodeName(StatusCode::DataLoss), "data-loss");
}

TEST(Result, HoldsValueOrStatus)
{
    const Result<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(7), 42);

    const Result<int> bad(Status(StatusCode::NotFound, "cache.read", "x"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
    EXPECT_EQ(bad.valueOr(7), 7);
    EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(FaultSpec, ParsesSiteKindAndNth)
{
    Result<FaultSpec> r = parseFaultSpec("jacobi:nonconv");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().site, "jacobi");
    EXPECT_EQ(r.value().kind, FaultKind::NonConverge);
    EXPECT_EQ(r.value().nth, 1);

    r = parseFaultSpec("ckpt.write:bitflip:3");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kind, FaultKind::BitFlip);
    EXPECT_EQ(r.value().nth, 3);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseFaultSpec("no-colon").ok());
    EXPECT_FALSE(parseFaultSpec(":nan").ok());
    EXPECT_FALSE(parseFaultSpec("site:frobnicate").ok());
    EXPECT_FALSE(parseFaultSpec("site:nan:0").ok());
    EXPECT_FALSE(parseFaultSpec("site:nan:x").ok());
}

TEST(FaultAt, FiresExactlyOnNthOccurrence)
{
    RobustGuard guard;
    setFault(FaultSpec{"test.site", FaultKind::Nan, 2});
    EXPECT_FALSE(faultAt("test.site", FaultKind::Nan));  // 1st
    EXPECT_FALSE(faultAt("test.site", FaultKind::Alloc)); // other kind
    EXPECT_FALSE(faultAt("other.site", FaultKind::Nan));  // other site
    EXPECT_TRUE(faultAt("test.site", FaultKind::Nan));    // 2nd: fires
    EXPECT_FALSE(faultAt("test.site", FaultKind::Nan));   // 3rd
    clearFaults();
    EXPECT_FALSE(faultInjectionEnabled());
    EXPECT_FALSE(faultAt("test.site", FaultKind::Nan));
}

TEST(RobustPolicyParse, AcceptsAllThreeModes)
{
    Result<RobustPolicy> r = parseRobustPolicy("strict");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().mode, RobustMode::Strict);

    r = parseRobustPolicy("degrade:0.25");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().mode, RobustMode::Degrade);
    EXPECT_DOUBLE_EQ(r.value().failureBudget, 0.25);

    r = parseRobustPolicy("retry:5:0.5");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().mode, RobustMode::Retry);
    EXPECT_EQ(r.value().maxRetries, 5);
    EXPECT_DOUBLE_EQ(r.value().failureBudget, 0.5);
}

TEST(RobustPolicyParse, RejectsBadValues)
{
    EXPECT_FALSE(parseRobustPolicy("").ok());
    EXPECT_FALSE(parseRobustPolicy("lenient").ok());
    EXPECT_FALSE(parseRobustPolicy("strict:0.5").ok());
    EXPECT_FALSE(parseRobustPolicy("degrade:1.5").ok());
    EXPECT_FALSE(parseRobustPolicy("retry:0").ok());
    EXPECT_FALSE(parseRobustPolicy("retry:2:nope").ok());
}

TEST(Crc32, MatchesTheIeeeTestVector)
{
    const std::string check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const uint8_t *>(check.data()),
                    check.size()),
              0xCBF43926U);
    EXPECT_EQ(crc32(nullptr, 0), 0U);
}

TEST(Checkpoint, RoundTripsPayloadAndVersion)
{
    const std::string path = ckptPath("lrd_robust_ckpt_rt.bin");
    const std::vector<uint8_t> payload = {0, 1, 2, 3, 254, 255, 7};
    ASSERT_TRUE(writeCheckpoint(path, 3, payload).ok());

    Result<std::vector<uint8_t>> r = readCheckpoint(path, 3);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), payload);

    r = readCheckpoint(path, 4); // version mismatch
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
}

TEST(Checkpoint, MissingFileIsNotFound)
{
    const std::string path = ckptPath("lrd_robust_ckpt_missing.bin");
    const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
}

TEST(Checkpoint, DetectsManualTruncation)
{
    const std::string path = ckptPath("lrd_robust_ckpt_trunc.bin");
    const std::vector<uint8_t> payload(100, 0x5A);
    ASSERT_TRUE(writeCheckpoint(path, 1, payload).ok());
    fs::resize_file(path, fs::file_size(path) / 2);

    const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::DataLoss);
}

TEST(Checkpoint, DetectsManualBitFlip)
{
    const std::string path = ckptPath("lrd_robust_ckpt_flip.bin");
    const std::vector<uint8_t> payload(64, 0x11);
    ASSERT_TRUE(writeCheckpoint(path, 1, payload).ok());
    {
        std::fstream f(path, std::ios::in | std::ios::out
                                 | std::ios::binary);
        f.seekp(40); // Well inside the payload.
        const char flipped = 0x10;
        f.write(&flipped, 1);
    }
    const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::DataLoss);
}

TEST(Checkpoint, InjectedTruncationFallsBackToPreviousGood)
{
    RobustGuard guard;
    const std::string path = ckptPath("lrd_robust_ckpt_fb1.bin");
    const std::vector<uint8_t> first = {1, 1, 1, 1, 1, 1, 1, 1};
    const std::vector<uint8_t> second = {2, 2, 2, 2, 2, 2, 2, 2};
    ASSERT_TRUE(writeCheckpoint(path, 1, first).ok());

    setFault(FaultSpec{"ckpt.write", FaultKind::Truncate, 1});
    ASSERT_TRUE(writeCheckpoint(path, 1, second).ok());
    clearFaults();

    // The damaged primary is detected; the rotated previous-good
    // checkpoint (the first write) supplies the payload.
    ASSERT_FALSE(readCheckpoint(path, 1).ok());
    bool usedFallback = false;
    const Result<std::vector<uint8_t>> r =
        readCheckpointWithFallback(path, 1, &usedFallback);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(usedFallback);
    EXPECT_EQ(r.value(), first);
}

TEST(Checkpoint, InjectedBitFlipFallsBackToPreviousGood)
{
    RobustGuard guard;
    const std::string path = ckptPath("lrd_robust_ckpt_fb2.bin");
    const std::vector<uint8_t> first(32, 0xAA);
    const std::vector<uint8_t> second(32, 0xBB);
    ASSERT_TRUE(writeCheckpoint(path, 1, first).ok());

    setFault(FaultSpec{"ckpt.write", FaultKind::BitFlip, 1});
    ASSERT_TRUE(writeCheckpoint(path, 1, second).ok());
    clearFaults();

    bool usedFallback = false;
    const Result<std::vector<uint8_t>> r =
        readCheckpointWithFallback(path, 1, &usedFallback);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(usedFallback);
    EXPECT_EQ(r.value(), first);
}

TEST(Checkpoint, InjectedAllocFailureLeavesPrimaryIntact)
{
    RobustGuard guard;
    const std::string path = ckptPath("lrd_robust_ckpt_alloc.bin");
    const std::vector<uint8_t> first = {4, 5, 6};
    ASSERT_TRUE(writeCheckpoint(path, 1, first).ok());

    setFault(FaultSpec{"ckpt.write", FaultKind::Alloc, 1});
    const Status s = writeCheckpoint(path, 1, {9, 9, 9});
    clearFaults();
    EXPECT_EQ(s.code(), StatusCode::ResourceExhausted);

    const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), first);
}

TEST(NumericGuards, FirstNonFiniteFindsTheFirstBadElement)
{
    std::vector<float> v(100, 0.5F);
    EXPECT_EQ(firstNonFinite(v.data(), static_cast<int64_t>(v.size())),
              -1);
    v[63] = std::numeric_limits<float>::infinity();
    v[80] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(firstNonFinite(v.data(), static_cast<int64_t>(v.size())),
              63);
    EXPECT_EQ(firstNonFinite(v.data(), 0), -1);
}

TEST(NumericGuards, NoteAndTakeSlotFirstWinsAndClears)
{
    RobustGuard guard;
    EXPECT_FALSE(numericFaultPending());
    noteNumericFault(Status(StatusCode::NonFinite, "model.block", "a"));
    noteNumericFault(Status(StatusCode::NonFinite, "model.block", "b"));
    EXPECT_TRUE(numericFaultPending());
    const Status s = takeNumericFault();
    EXPECT_EQ(s.message(), "a"); // First note wins.
    EXPECT_FALSE(numericFaultPending());
    EXPECT_TRUE(takeNumericFault().ok());
}

TEST(NumericGuards, ReportNonFiniteIsFatalUnderStrict)
{
    RobustGuard guard;
    RobustPolicy strict;
    strict.mode = RobustMode::Strict;
    setRobustPolicy(strict);
    EXPECT_THROW(reportNonFinite("model.block", 3, 17),
                 std::runtime_error);

    RobustGuard::reset(); // Degrade: noted, not thrown.
    reportNonFinite("model.block", 3, 17);
    const Status s = takeNumericFault();
    EXPECT_EQ(s.code(), StatusCode::NonFinite);
    EXPECT_NE(s.message().find("layer 3"), std::string::npos);
    EXPECT_NE(s.message().find("index 17"), std::string::npos);
}

TEST(FailureBudget, WithinBudgetWarnsAndOverBudgetIsFatal)
{
    RobustGuard guard;
    RobustPolicy p;
    p.mode = RobustMode::Degrade;
    p.failureBudget = 0.25;
    setRobustPolicy(p);

    EXPECT_EQ(failureBudgetItems(p, 8), 2);
    enforceFailureBudget("test", 0, 8, Status());
    enforceFailureBudget("test", 2, 8,
                         Status(StatusCode::NonFinite, "x", "y"));
    EXPECT_THROW(enforceFailureBudget(
                     "test", 3, 8,
                     Status(StatusCode::NonFinite, "x", "y")),
                 std::runtime_error);

    p.failureBudget = 0.0; // Zero budget: any failure is fatal.
    setRobustPolicy(p);
    EXPECT_THROW(enforceFailureBudget(
                     "test", 1, 8,
                     Status(StatusCode::NonFinite, "x", "y")),
                 std::runtime_error);
}

TEST(Retry, ReseedsDeterministicallyAndStopsAtFirstOk)
{
    RobustGuard guard;
    std::vector<uint64_t> draws1, draws2;
    const auto runOnce = [](std::vector<uint64_t> &draws) {
        return retryWithReseed(1234, 4, [&](Rng &rng, int attempt) {
            draws.push_back(rng.next());
            return attempt < 2 ? Status(StatusCode::NonConvergence,
                                        "test", "not yet")
                               : Status();
        });
    };
    EXPECT_TRUE(runOnce(draws1).ok());
    EXPECT_TRUE(runOnce(draws2).ok());
    ASSERT_EQ(draws1.size(), 3U); // Attempts 0, 1, 2; stopped at ok.
    EXPECT_EQ(draws1, draws2);    // Bitwise-identical retry streams.
    EXPECT_NE(draws1[0], draws1[1]); // Each attempt is reseeded.
}

TEST(Retry, ExhaustedAttemptsReturnTheLastFailure)
{
    RobustGuard guard;
    int calls = 0;
    const Status s = retryWithReseed(7, 3, [&](Rng &, int) {
        ++calls;
        return Status(StatusCode::NonConvergence, "test", "never");
    });
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(s.code(), StatusCode::NonConvergence);
}

TEST(Checkpoint, SweepsAStaleTmpFileBeforeWriting)
{
    RobustGuard guard;
    const std::string path = ckptPath("lrd_robust_ckpt_sweep.bin");
    {
        // An interrupted earlier write of our own: junk at our
        // pid-unique <path>.<pid>.tmp, never renamed.
        std::ofstream f(checkpointTmpPath(path), std::ios::binary);
        f << "half-written garbage";
    }
    ASSERT_TRUE(fs::exists(checkpointTmpPath(path)));

    const std::vector<uint8_t> payload = {3, 1, 4, 1, 5};
    ASSERT_TRUE(writeCheckpoint(path, 1, payload).ok());
    // Swept, then reused.
    EXPECT_FALSE(fs::exists(checkpointTmpPath(path)));
    const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), payload);
}

/**
 * The .prev fallback must hold up when the damage comes from a
 * DIFFERENT process: a sibling scribbles over the primary and dies,
 * leaving its own pid-unique temp file orphaned. The reader falls
 * back to the rotated previous-good file, and the orphan sweep
 * reclaims only the dead writer's temp — never a live sibling's.
 */
TEST(Checkpoint, PrevFallbackSurvivesForeignProcessCorruption)
{
    RobustGuard guard;
    const fs::path dir = fs::temp_directory_path() / "lrd_robust_xproc";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "ckpt.bin").string();
    ASSERT_TRUE(writeCheckpoint(path, 1, {1, 2, 3}).ok());
    // The second write rotates {1,2,3} into .prev.
    ASSERT_TRUE(writeCheckpoint(path, 1, {4, 5, 6}).ok());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: corrupt the primary in place and leave a
        // half-written temp under the CHILD's pid, then die.
        {
            std::ofstream f(path, std::ios::binary | std::ios::trunc);
            f << "scribbled over by another process";
        }
        {
            std::ofstream f(checkpointTmpPath(path), std::ios::binary);
            f << "orphaned half-write";
        }
        _exit(0);
    }
    int waitStatus = 0;
    ASSERT_EQ(waitpid(child, &waitStatus, 0), child);
    ASSERT_TRUE(WIFEXITED(waitStatus) && WEXITSTATUS(waitStatus) == 0);

    bool usedFallback = false;
    const Result<std::vector<uint8_t>> r =
        readCheckpointWithFallback(path, 1, &usedFallback);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_TRUE(usedFallback);
    EXPECT_EQ(r.value(), (std::vector<uint8_t>{1, 2, 3}));

    // The dead child's temp is sweepable; a live writer's is not.
    const std::string liveTmp =
        path + "." + std::to_string(getppid()) + ".tmp";
    {
        std::ofstream f(liveTmp, std::ios::binary);
        f << "live sibling's in-flight write";
    }
    EXPECT_EQ(sweepOrphanCheckpointTmps(dir.string()), 1);
    EXPECT_TRUE(fs::exists(liveTmp));
    fs::remove_all(dir);
}

/**
 * The supervisor relaunches a crashed shard with backoff, and a shard
 * that keeps dying exhausts its bounded retry budget and surfaces the
 * dedicated "dse.shard.retry" status (exit code 8 in lrdtool).
 */
TEST(Supervisor, RetriesCrashedShardThenFailsPastBudget)
{
    RobustGuard guard;
    const fs::path dir =
        fs::temp_directory_path() / "lrd_robust_sup_retry";
    fs::remove_all(dir);
    SupervisorOptions sup;
    sup.shards = 1;
    sup.dir = dir.string();
    sup.maxRetries = 1;
    sup.backoffBaseTicks = 1;
    sup.childArgs = {"/bin/sh", "-c", "exit 1"};
    const SupervisorReport rep = superviseDse(sup);
    EXPECT_EQ(rep.status.code(), StatusCode::Internal)
        << rep.status.toString();
    EXPECT_STREQ(rep.status.site(), "dse.shard.retry");
    EXPECT_EQ(rep.launched, 2); // First try + one bounded retry.
    EXPECT_EQ(rep.retried, 1);
    EXPECT_EQ(rep.failed, 1);
    fs::remove_all(dir);
}

/** A launch that never produced a child (injected spawn failure)
 *  consumes the same retry budget as a crashed one. */
TEST(Supervisor, SpawnFaultConsumesRetryBudget)
{
    RobustGuard guard;
    const fs::path dir =
        fs::temp_directory_path() / "lrd_robust_sup_spawnfail";
    fs::remove_all(dir);
    SupervisorOptions sup;
    sup.shards = 1;
    sup.dir = dir.string();
    sup.maxRetries = 0;
    sup.backoffBaseTicks = 1;
    sup.childArgs = {"/bin/sh", "-c", "exit 0"};
    setFault(FaultSpec{"dse.shard.spawn", FaultKind::Alloc, 1});
    const SupervisorReport rep = superviseDse(sup);
    EXPECT_EQ(rep.status.code(), StatusCode::Internal)
        << rep.status.toString();
    EXPECT_STREQ(rep.status.site(), "dse.shard.retry");
    EXPECT_EQ(rep.launched, 0);
    EXPECT_EQ(rep.failed, 1);
    fs::remove_all(dir);
}

/** A shard exiting 0 without having written its result file is a
 *  failure, not a success — the supervisor must not merge a hole. */
TEST(Supervisor, CleanExitWithoutResultFileCountsAsFailure)
{
    RobustGuard guard;
    const fs::path dir =
        fs::temp_directory_path() / "lrd_robust_sup_noresult";
    fs::remove_all(dir);
    SupervisorOptions sup;
    sup.shards = 1;
    sup.dir = dir.string();
    sup.maxRetries = 0;
    sup.backoffBaseTicks = 1;
    sup.childArgs = {"/bin/sh", "-c", "exit 0"};
    const SupervisorReport rep = superviseDse(sup);
    EXPECT_EQ(rep.status.code(), StatusCode::Internal)
        << rep.status.toString();
    EXPECT_STREQ(rep.status.site(), "dse.shard.retry");
    EXPECT_EQ(rep.launched, 1);
    fs::remove_all(dir);
}

/**
 * Every registered fault site must support an injected cancel kill and
 * wind down with a Cancelled status. A site in the registry with no
 * driver here fails the test, so the table and the coverage cannot
 * drift apart.
 */
TEST(FaultSites, EveryRegisteredSiteSupportsCancelKill)
{
    RobustGuard guard;
    ThreadPool::instance().resize(1);
    ASSERT_FALSE(registeredFaultSites().empty());
    for (const FaultSiteInfo &info : registeredFaultSites()) {
        SCOPED_TRACE(info.site);
        const std::string site = info.site;
        EXPECT_NE(std::string(info.kinds).find("cancel"),
                  std::string::npos)
            << "every site must list the cancel kind";

        if (site == "jacobi") {
            TransformerModel model(smallConfig(), 42);
            setFault(FaultSpec{"jacobi", FaultKind::Cancel, 1});
            const Status s = model.applyTucker(0, WeightKind::Query, 2);
            EXPECT_EQ(s.code(), StatusCode::Cancelled) << s.toString();
            // The kill never commits a partially rotated factor.
            EXPECT_FALSE(
                model.linear(0, WeightKind::Query).isFactorized());
        } else if (site == "model.block") {
            TransformerModel model(smallConfig(), 42);
            Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});
            setFault(FaultSpec{"model.block", FaultKind::Cancel, 1});
            const EvalResult r = ev.run(BenchmarkKind::ArcEasy);
            EXPECT_TRUE(r.partial());
            EXPECT_EQ(r.status.code(), StatusCode::Cancelled);
        } else if (site == "eval.item") {
            TransformerModel model(smallConfig(), 42);
            Evaluator ev(model, smallWorld(), EvalOptions{12, 5, false});
            setFault(FaultSpec{"eval.item", FaultKind::Cancel, 3});
            const EvalResult r = ev.run(BenchmarkKind::ArcEasy);
            EXPECT_TRUE(r.partial());
            EXPECT_EQ(r.status.code(), StatusCode::Cancelled);
            EXPECT_EQ(r.numTasks, 12);
        } else if (site == "train.step") {
            TransformerModel model(smallConfig(), 7);
            TrainOptions t;
            t.steps = 4;
            t.batchSeqs = 2;
            t.seqLen = 16;
            t.warmupSteps = 1;
            t.logEvery = 0;
            Trainer trainer(model, smallWorld(), t);
            setFault(FaultSpec{"train.step", FaultKind::Cancel, 2});
            trainer.run();
            EXPECT_EQ(trainer.runStatus().code(), StatusCode::Cancelled);
        } else if (site == "dse.batch") {
            const std::vector<uint8_t> bytes = [] {
                TransformerModel model(smallConfig(), 17);
                return model.serialize();
            }();
            OptimizerOptions opts;
            opts.evalTasks = 6;
            opts.accuracyDropTolerance = 1.1;
            setFault(FaultSpec{"dse.batch", FaultKind::Cancel, 1});
            const OptimizerResult r =
                optimizeDecomposition(bytes, smallWorld(), opts);
            EXPECT_TRUE(r.cancelled);
            EXPECT_EQ(r.status.code(), StatusCode::Cancelled);
        } else if (site == "ckpt.write") {
            const std::string path = ckptPath("lrd_robust_site_w.bin");
            setFault(FaultSpec{"ckpt.write", FaultKind::Cancel, 1});
            const Status s = writeCheckpoint(path, 1, {1, 2, 3});
            EXPECT_EQ(s.code(), StatusCode::Cancelled);
            // The kill leaves the half-written pid-unique .tmp, never
            // the primary; the next write sweeps the leftover.
            EXPECT_TRUE(fs::exists(checkpointTmpPath(path)));
            EXPECT_FALSE(fs::exists(path));
            clearFaults();
            ASSERT_TRUE(writeCheckpoint(path, 1, {1, 2, 3}).ok());
            EXPECT_FALSE(fs::exists(checkpointTmpPath(path)));
        } else if (site == "ckpt.read") {
            const std::string path = ckptPath("lrd_robust_site_r.bin");
            ASSERT_TRUE(writeCheckpoint(path, 1, {9}).ok());
            setFault(FaultSpec{"ckpt.read", FaultKind::Cancel, 1});
            const Result<std::vector<uint8_t>> r = readCheckpoint(path, 1);
            ASSERT_FALSE(r.ok());
            EXPECT_EQ(r.status().code(), StatusCode::Cancelled);
        } else if (site == "serve.admit" || site == "serve.batch" ||
                   site == "serve.respond") {
            TransformerModel model(smallConfig(), 42);
            ServeOptions opts;
            opts.queueCapacity = 4;
            opts.maxBatch = 2;
            WorkloadOptions wl;
            wl.numRequests = 8;
            wl.deadlineTicks = 256;
            Server server(model, opts);
            setFault(FaultSpec{site, FaultKind::Cancel, 2});
            const ServeReport r =
                server.run(makeSyntheticWorkload(smallConfig(), wl));
            EXPECT_EQ(r.status.code(), StatusCode::Cancelled)
                << r.status.toString();
            // The kill drains: every request still settles exactly
            // once, the unscored remainder as Cancelled.
            ASSERT_EQ(r.responses.size(), 8u);
            int64_t cancelled = 0;
            for (const ServeResponse &resp : r.responses) {
                EXPECT_TRUE(serveOutcomeTerminal(resp.outcome));
                cancelled += resp.outcome == ServeOutcome::Cancelled;
            }
            EXPECT_GT(cancelled, 0);
            EXPECT_EQ(cancelled, r.stats.cancelled);
        } else if (site == "dse.shard.spawn") {
            const fs::path dir =
                fs::temp_directory_path() / "lrd_robust_spawn_site";
            fs::remove_all(dir);
            SupervisorOptions sup;
            sup.shards = 1;
            sup.dir = dir.string();
            sup.childArgs = {"/bin/sh", "-c", "exit 0"};
            setFault(FaultSpec{"dse.shard.spawn", FaultKind::Cancel, 1});
            const SupervisorReport rep = superviseDse(sup);
            EXPECT_EQ(rep.status.code(), StatusCode::Cancelled)
                << rep.status.toString();
            // The kill lands before the fork: no child ever spawned.
            EXPECT_EQ(rep.launched, 0);
            fs::remove_all(dir);
        } else if (site == "dse.shard.merge") {
            const fs::path dir =
                fs::temp_directory_path() / "lrd_robust_merge_site";
            fs::remove_all(dir);
            fs::create_directories(dir);
            setFault(FaultSpec{"dse.shard.merge", FaultKind::Cancel, 1});
            const Result<MergeReport> m =
                mergeShardResults(dir.string(), 1, 0.05);
            ASSERT_FALSE(m.ok());
            EXPECT_EQ(m.status().code(), StatusCode::Cancelled);
            fs::remove_all(dir);
        } else {
            FAIL() << "registered fault site '" << site
                   << "' has no cancel-kill driver in this test; add one";
        }
        RobustGuard::reset();
    }
}
