/**
 * @file
 * Fixture-snippet coverage for every lrd-lint rule: one positive hit
 * per rule, the suppression comment, exemption paths, layering
 * back-edge detection, and include-cycle path printing.
 *
 * The fixtures feed (path, content) pairs straight into the lint
 * library, so the tests exercise exactly the code the CLI runs on
 * the real tree.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache.h"
#include "lint.h"
#include "output.h"
#include "parser.h"

namespace lrd::lint {
namespace {

std::vector<Diagnostic>
lintSnippet(const std::string &path, const std::string &content)
{
    return lintFile(SourceFile{path, content});
}

bool
hasRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic &d) { return d.rule == rule; });
}

const Diagnostic *
findRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    for (const Diagnostic &d : diags)
        if (d.rule == rule)
            return &d;
    return nullptr;
}

// ---------------------------------------------------------------- random

TEST(LintRandom, FlagsRandAndRandomDevice)
{
    const auto diags = lintSnippet("src/linalg/linalg.cc", R"(
        int noisy() { return rand(); }
        int seedy() { std::random_device rd; return rd(); }
    )");
    ASSERT_TRUE(hasRule(diags, kRuleBannedRandom));
    EXPECT_EQ(2u, diags.size());
}

TEST(LintRandom, RngModuleIsExempt)
{
    const auto diags = lintSnippet("src/util/rng.cc", R"(
        unsigned seed() { std::random_device rd; return rd(); }
    )");
    EXPECT_FALSE(hasRule(diags, kRuleBannedRandom));
}

TEST(LintRandom, StringAndCommentOccurrencesIgnored)
{
    const auto diags = lintSnippet("src/eval/evaluator.cc", R"__(
        // rand() would break determinism here.
        const char *kMsg = "never call srand()";
    )__");
    EXPECT_TRUE(diags.empty());
}

TEST(LintRandom, SuppressionCommentSilencesTheLine)
{
    const auto diags = lintSnippet("src/eval/evaluator.cc", R"(
        void f() {
            int a = rand(); // lrd-lint: allow(banned-random)
            // lrd-lint: allow(banned-random)
            int b = rand();
            int c = rand();
        }
    )");
    ASSERT_EQ(1u, diags.size()); // only 'c' survives
    EXPECT_EQ(kRuleBannedRandom, diags[0].rule);
}

// ------------------------------------------------------------- wall clock

TEST(LintWallClock, FlagsSystemClockAndTimeCalls)
{
    const auto diags = lintSnippet("src/train/trainer.cc", R"(
        void f() {
            auto t0 = std::chrono::system_clock::now();
            long t1 = time(nullptr);
        }
    )");
    EXPECT_EQ(2u, diags.size());
    EXPECT_TRUE(hasRule(diags, kRuleWallClock));
}

TEST(LintWallClock, SteadyClockAndMemberTimeAreFine)
{
    const auto diags = lintSnippet("src/train/trainer.cc", R"(
        void f() {
            auto t0 = std::chrono::steady_clock::now();
            double t1 = timer.time();
        }
    )");
    EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------- unordered containers

TEST(LintUnordered, FlaggedInNumericCoreModules)
{
    const auto diags = lintSnippet("src/tensor/ops.cc", R"(
        std::unordered_map<int, double> partials;
    )");
    ASSERT_TRUE(hasRule(diags, kRuleUnordered));
}

TEST(LintUnordered, AllowedOutsideTheNumericCore)
{
    const auto diags = lintSnippet("src/eval/evaluator.cc", R"(
        std::unordered_map<int, double> lookupOnly;
    )");
    EXPECT_FALSE(hasRule(diags, kRuleUnordered));
}

// -------------------------------------------------------------- threading

TEST(LintThread, FlagsStdThreadAsyncAndPthread)
{
    const auto diags = lintSnippet("src/eval/evaluator.cc", R"(
        void spawn() {
            std::thread t([] {});
            auto f = std::async([] { return 1; });
            pthread_create(nullptr, nullptr, nullptr, nullptr);
            t.join();
        }
    )");
    EXPECT_EQ(3u, diags.size());
    EXPECT_TRUE(hasRule(diags, kRuleThread));
}

TEST(LintThread, PoolAndWorkerLaneAreExempt)
{
    const std::string snippet = "void f() { std::thread worker; }";
    EXPECT_TRUE(lintSnippet("src/parallel/thread_pool.cc", snippet).empty());
    EXPECT_TRUE(lintSnippet("src/util/worker_lane.cc", snippet).empty());
    EXPECT_FALSE(lintSnippet("src/model/linear.cc", snippet).empty());
}

TEST(LintThread, TelemetrySamplerNeedsExplicitAnnotation)
{
    // The flight-recorder sampler thread lives in src/obs/, which is
    // NOT a threading-exempt module: without the allow annotation the
    // rule fires, so every sampler-style thread remains a reviewed,
    // documented exception rather than a blanket exemption.
    const auto flagged = lintSnippet("src/obs/sampler.cc", R"(
        void start() { std::thread worker(samplerMain); }
    )");
    ASSERT_TRUE(hasRule(flagged, kRuleThread));

    const auto annotated = lintSnippet("src/obs/sampler.cc", R"(
        void start() {
            // lrd-lint: allow(thread-outside-parallel)
            std::thread worker(samplerMain);
        }
    )");
    EXPECT_FALSE(hasRule(annotated, kRuleThread));
}

// ---------------------------------------------------------------- globals

TEST(LintGlobals, FlagsMutableNamespaceScopeVariable)
{
    const auto diags = lintSnippet("src/obs/obs.cc", R"(
        namespace lrd {
        namespace {
        std::string g_path;
        } // namespace
        } // namespace lrd
    )");
    const Diagnostic *d = findRule(diags, kRuleNonconstGlobal);
    ASSERT_NE(nullptr, d);
    EXPECT_NE(std::string::npos, d->message.find("g_path"));
}

TEST(LintGlobals, ConstAtomicMutexAndThreadLocalAreFine)
{
    const auto diags = lintSnippet("src/obs/obs.cc", R"(
        namespace lrd {
        const int kLimit = 3;
        constexpr double kEps = 1e-6;
        std::atomic<int> g_count{0};
        std::mutex g_mu;
        thread_local int t_lane = 0;
        // lrd-lint: mutex(g_mu)
        std::string g_guarded;
        } // namespace lrd
    )");
    EXPECT_TRUE(diags.empty());
}

TEST(LintGlobals, FunctionBodiesAndDeclarationsAreNotGlobals)
{
    const auto diags = lintSnippet("src/obs/obs.cc", R"(
        namespace lrd {
        int add(int a, int b);
        int add(int a, int b) {
            int localMutable = a;
            static int functionLocal = 0;
            return localMutable + b + functionLocal;
        }
        struct Holder { int mutableMember = 0; };
        using Alias = int;
        } // namespace lrd
    )");
    EXPECT_TRUE(diags.empty());
}

// ------------------------------------------------------------ naked throw

TEST(LintThrow, FlaggedOutsideUtilAndSuppressible)
{
    const auto diags = lintSnippet("src/linalg/linalg.cc", R"(
        void f() { throw std::runtime_error("late"); }
    )");
    const Diagnostic *d = findRule(diags, kRuleNakedThrow);
    ASSERT_NE(nullptr, d);
    EXPECT_NE(std::string::npos, d->message.find("Status"));

    const auto ok = lintSnippet("src/linalg/linalg.cc", R"(
        void f() {
            throw std::runtime_error("x"); // lrd-lint: allow(naked-throw)
        }
    )");
    EXPECT_FALSE(hasRule(ok, kRuleNakedThrow));
}

TEST(LintThrow, UtilAndNonSrcTreesAreExempt)
{
    const std::string snippet = "void f() { throw 1; }";
    EXPECT_FALSE(
        hasRule(lintSnippet("src/util/logging.cc", snippet),
                kRuleNakedThrow));
    EXPECT_FALSE(hasRule(lintSnippet("tests/some_test.cc", snippet),
                         kRuleNakedThrow));
    EXPECT_TRUE(hasRule(lintSnippet("src/robust/fault.cc", snippet),
                        kRuleNakedThrow));
    EXPECT_TRUE(hasRule(lintSnippet("src/train/trainer.cc", snippet),
                        kRuleNakedThrow));
}

// --------------------------------------------------------- blocking sleep

TEST(LintSleep, FlaggedInPipelineCodeAndSuppressible)
{
    const auto diags = lintSnippet("src/train/trainer.cc", R"(
        void f() {
            std::this_thread::sleep_for(std::chrono::seconds(1));
        }
    )");
    const Diagnostic *d = findRule(diags, kRuleBlockingSleep);
    ASSERT_NE(nullptr, d);
    EXPECT_NE(std::string::npos, d->message.find("robust"));

    const auto ok = lintSnippet("src/train/trainer.cc", R"(
        void f() {
            std::this_thread::sleep_for( // lrd-lint: allow(blocking-sleep)
                std::chrono::seconds(1));
        }
    )");
    EXPECT_FALSE(hasRule(ok, kRuleBlockingSleep));
}

TEST(LintSleep, WatchdogAndToolsAreExempt)
{
    const std::string snippet =
        "void f() { std::this_thread::sleep_for(t); }";
    EXPECT_FALSE(hasRule(lintSnippet("src/robust/cancel.cc", snippet),
                         kRuleBlockingSleep));
    EXPECT_FALSE(hasRule(lintSnippet("tools/lrdtool.cc", snippet),
                         kRuleBlockingSleep));
    EXPECT_TRUE(hasRule(lintSnippet("src/eval/evaluator.cc", snippet),
                        kRuleBlockingSleep));
    EXPECT_TRUE(hasRule(lintSnippet("src/parallel/thread_pool.cc",
                                    snippet),
                        kRuleBlockingSleep));
    EXPECT_TRUE(hasRule(lintSnippet("tests/some_test.cc", snippet),
                        kRuleBlockingSleep));
    EXPECT_TRUE(hasRule(lintSnippet("src/robust_adjacent/x.cc", snippet),
                        kRuleBlockingSleep));
}

TEST(LintSleep, CoversEveryBlockingPrimitive)
{
    for (const char *call : {"usleep(100)", "nanosleep(&ts, nullptr)",
                             "std::this_thread::sleep_until(tp)"}) {
        const std::string snippet =
            "void f() { " + std::string(call) + "; }";
        EXPECT_TRUE(hasRule(lintSnippet("src/linalg/linalg.cc", snippet),
                            kRuleBlockingSleep))
            << call;
    }
}

// ----------------------------------------------------------- header rules

TEST(LintHeader, MissingGuardFlagged)
{
    const auto diags = lintSnippet("src/util/fresh.h", "int f();\n");
    EXPECT_TRUE(hasRule(diags, kRuleHeaderGuard));
}

TEST(LintHeader, PragmaOnceAndIfndefGuardAccepted)
{
    EXPECT_TRUE(lintSnippet("src/util/a.h", "#pragma once\nint f();\n")
                    .empty());
    EXPECT_TRUE(lintSnippet("src/util/b.h",
                            "#ifndef LRD_B_H\n#define LRD_B_H\n"
                            "int f();\n#endif\n")
                    .empty());
}

TEST(LintHeader, UsingNamespaceInHeaderFlagged)
{
    const std::string snippet = "#pragma once\nusing namespace std;\n";
    EXPECT_TRUE(hasRule(lintSnippet("src/util/a.h", snippet),
                        kRuleUsingNamespace));
    // Same construct in a .cc file is style, not a lint error.
    EXPECT_FALSE(hasRule(lintSnippet("src/util/a.cc",
                                     "using namespace std;\n"),
                         kRuleUsingNamespace));
}

// -------------------------------------------------------- include layering

TEST(LintLayering, BackEdgeFromLowerToHigherLayerFlagged)
{
    // util (layer 0) must never include obs (layer 1).
    const std::vector<SourceFile> tree = {
        {"src/util/logging.cc",
         "#include \"obs/metrics.h\"\n"},
        {"src/obs/metrics.h", "#pragma once\n"},
    };
    const auto diags = checkIncludeGraph(tree);
    const Diagnostic *d = findRule(diags, kRuleLayering);
    ASSERT_NE(nullptr, d);
    EXPECT_EQ("src/util/logging.cc", d->file);
    EXPECT_NE(std::string::npos, d->message.find("back-edge"));
    EXPECT_NE(std::string::npos, d->message.find("'obs'"));
}

TEST(LintLayering, ForwardEdgesAreClean)
{
    const std::vector<SourceFile> tree = {
        {"src/linalg/linalg.cc", "#include \"tensor/tensor.h\"\n"
                                 "#include \"util/logging.h\"\n"},
        {"src/tensor/tensor.h", "#pragma once\n"},
        {"src/util/logging.h", "#pragma once\n"},
    };
    EXPECT_TRUE(checkIncludeGraph(tree).empty());
}

TEST(LintLayering, IntraLayerModuleCycleFlagged)
{
    // model <-> decomp are the same layer; an edge each way is a
    // module cycle even though no single file pair forms one.
    const std::vector<SourceFile> tree = {
        {"src/model/linear.h", "#pragma once\n#include \"decomp/tucker.h\"\n"},
        {"src/decomp/tucker.h", "#pragma once\n"},
        {"src/decomp/hosvd.cc", "#include \"model/config.h\"\n"},
        {"src/model/config.h", "#pragma once\n"},
    };
    const auto diags = checkIncludeGraph(tree);
    const Diagnostic *d = findRule(diags, kRuleCycle);
    ASSERT_NE(nullptr, d);
    EXPECT_NE(std::string::npos, d->message.find("module dependency cycle"));
    EXPECT_NE(std::string::npos, d->message.find("model"));
    EXPECT_NE(std::string::npos, d->message.find("decomp"));
}

TEST(LintLayering, FileIncludeCyclePrintsThePath)
{
    const std::vector<SourceFile> tree = {
        {"src/tensor/a.h", "#pragma once\n#include \"b.h\"\n"},
        {"src/tensor/b.h", "#pragma once\n#include \"c.h\"\n"},
        {"src/tensor/c.h", "#pragma once\n#include \"a.h\"\n"},
    };
    const auto diags = checkIncludeGraph(tree);
    const Diagnostic *d = findRule(diags, kRuleCycle);
    ASSERT_NE(nullptr, d);
    EXPECT_NE(std::string::npos,
              d->message.find("src/tensor/a.h -> src/tensor/b.h -> "
                              "src/tensor/c.h -> src/tensor/a.h"));
}

TEST(LintLayering, RobustSitsBetweenObsAndParallel)
{
    // robust (layer 2) may use obs, but not the pool above it.
    const std::vector<SourceFile> ok = {
        {"src/robust/fault.cc", "#include \"obs/metrics.h\"\n"},
        {"src/obs/metrics.h", "#pragma once\n"},
        {"src/linalg/linalg.cc", "#include \"robust/fault.h\"\n"},
        {"src/robust/fault.h", "#pragma once\n"},
    };
    EXPECT_TRUE(checkIncludeGraph(ok).empty());

    const std::vector<SourceFile> bad = {
        {"src/robust/recovery.cc",
         "#include \"parallel/thread_pool.h\"\n"},
        {"src/parallel/thread_pool.h", "#pragma once\n"},
    };
    EXPECT_TRUE(hasRule(checkIncludeGraph(bad), kRuleLayering));
}

TEST(LintLayering, SystemIncludesAreOutsideTheGraph)
{
    const std::vector<SourceFile> tree = {
        {"src/util/logging.cc", "#include <thread>\n#include <vector>\n"},
    };
    EXPECT_TRUE(checkIncludeGraph(tree).empty());
}

// ------------------------------------------------------------- formatting

TEST(LintFormat, HumanAndFixListFormats)
{
    const Diagnostic d{"src/a.cc", 7, "banned-random", "no rand()", ""};
    EXPECT_EQ("src/a.cc:7: [banned-random] no rand()", formatDiagnostic(d));
    EXPECT_EQ("src/a.cc\t7\tbanned-random\tno rand()", formatFixList(d));
}

TEST(LintFormat, LintFilesSortsAndMergesGraphRules)
{
    const std::vector<SourceFile> tree = {
        {"src/util/z.cc", "int tick = time(nullptr);\n"},
        {"src/util/a.cc", "#include \"obs/metrics.h\"\n"},
        {"src/obs/metrics.h", "#pragma once\n"},
    };
    const auto diags = lintFiles(tree);
    ASSERT_EQ(3u, diags.size()); // layering + wall-clock + nonconst-global
    EXPECT_EQ("src/util/a.cc", diags[0].file);
    EXPECT_EQ("src/util/z.cc", diags[1].file);
}

TEST(LintIntrinsics, FlagsIntrinsicsHeaderOutsideSimd)
{
    const auto diags = lintSnippet("src/model/linear.cc", R"(
#include <immintrin.h>
void f();
)");
    EXPECT_TRUE(hasRule(diags, kRuleIntrinsics));
}

TEST(LintIntrinsics, FlagsNeonHeaderAndOpsOutsideSimd)
{
    const auto diags = lintSnippet("src/tensor/ops.cc", R"(
#include <arm_neon.h>
void f(const float *p) {
    float32x4_t v = vld1q_f32(p);
    (void)v;
}
)");
    EXPECT_TRUE(hasRule(diags, kRuleIntrinsics));
}

TEST(LintIntrinsics, FlagsMmIdentifierWithoutHeader)
{
    const auto diags = lintSnippet("src/linalg/linalg.cc", R"(
void f(float *c, const float *a) {
    auto v = _mm256_loadu_ps(a);
    _mm256_storeu_ps(c, v);
}
)");
    EXPECT_TRUE(hasRule(diags, kRuleIntrinsics));
}

TEST(LintIntrinsics, AllowsIntrinsicsInsideSimdDirectory)
{
    const auto diags = lintSnippet("src/tensor/simd/kernel_avx2.cc", R"(
#include <immintrin.h>
void f(float *c, const float *a) {
    __m256 v = _mm256_loadu_ps(a);
    _mm256_storeu_ps(c, v);
}
)");
    EXPECT_FALSE(hasRule(diags, kRuleIntrinsics));
}

TEST(LintIntrinsics, IgnoresOrdinaryIdentifiers)
{
    const auto diags = lintSnippet("src/model/linear.cc", R"(
void f() {
    int value = 0;
    int visit = value;
    float vmax_norm = 0.0F;
    (void)visit;
    (void)vmax_norm;
}
)");
    EXPECT_FALSE(hasRule(diags, kRuleIntrinsics));
}

// ---------------------------------------------------------- hot-path-alloc

TEST(LintHotPath, TransitiveAllocationFromFusedForwardPrintsPath)
{
    const std::vector<SourceFile> tree = {
        {"src/model/fuse.cc", R"(
namespace lrd {
void growScratch(std::vector<float> &v) { v.push_back(0.0F); }
void fusedFactorizedForward(std::vector<float> &v) { growScratch(v); }
} // namespace lrd
)"},
    };
    const auto diags = lintFiles(tree);
    const Diagnostic *d = findRule(diags, kRuleHotPathAlloc);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ("src/model/fuse.cc", d->file);
    EXPECT_NE(d->message.find("reachable via:"), std::string::npos);
    EXPECT_NE(d->message.find("growScratch"), std::string::npos);
    EXPECT_NE(d->message.find("fusedFactorizedForward"),
              std::string::npos);
}

TEST(LintHotPath, ChunkBodyAllocationIsFlagged)
{
    const auto diags = lintFiles({{"src/eval/items.cc", R"(
namespace lrd {
void scoreAll(long n) {
    parallelFor(0, n, 1, [&](long lo, long hi) {
        float *scratch = new float[8];
        delete[] scratch;
    });
}
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleHotPathAlloc);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("new"), std::string::npos);
}

TEST(LintHotPath, ConduitMakesCallbackCallersHot)
{
    // forEachItem feeds its parameter into a chunk body, so a lambda
    // handed to forEachItem from another file runs hot too.
    const std::vector<SourceFile> tree = {
        {"src/eval/driver.cc", R"(
namespace lrd {
template <class Fn>
void forEachItem(long n, const Fn &fn) {
    parallelFor(0, n, 1, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i)
            fn(i);
    });
}
} // namespace lrd
)"},
        {"src/eval/user.cc", R"(
namespace lrd {
void runAll(std::vector<int> &sink) {
    forEachItem(8, [&](long i) { sink.push_back(static_cast<int>(i)); });
}
} // namespace lrd
)"},
    };
    const auto diags = lintFiles(tree);
    const Diagnostic *d = findRule(diags, kRuleHotPathAlloc);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ("src/eval/user.cc", d->file);
    // The reachability chain crosses into the conduit's file.
    EXPECT_NE(d->message.find("reachable via:"), std::string::npos);
    EXPECT_NE(d->message.find("src/eval/driver.cc"), std::string::npos);
}

TEST(LintHotPath, AllowCommentAndColdCodeAreClean)
{
    // The allow() escape on the preceding line suppresses the hit,
    // and an allocating function nobody hot calls is not flagged.
    const auto diags = lintFiles({{"src/eval/items.cc", R"(
namespace lrd {
void scoreAll(long n) {
    parallelFor(0, n, 1, [&](long lo, long hi) {
        // lrd-lint: allow(hot-path-alloc) test fixture
        float *scratch = new float[8];
        delete[] scratch;
    });
}
void coldSetup(std::vector<float> &v) { v.reserve(64); }
} // namespace lrd
)"}});
    EXPECT_FALSE(hasRule(diags, kRuleHotPathAlloc));
}

// --------------------------------------------------------- lock-discipline

TEST(LintLock, UnknownMutexNameInAnnotationIsFlagged)
{
    const auto diags = lintFiles({{"src/obs/state.cc", R"(
namespace lrd {
namespace {
// lrd-lint: mutex(ghostMu)
int gCount = 0;
} // namespace
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleLockDiscipline);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("ghostMu"), std::string::npos);
    EXPECT_NE(d->message.find("not declared"), std::string::npos);
}

TEST(LintLock, WriteWithoutHoldingAnnotatedMutexIsFlagged)
{
    const auto diags = lintFiles({{"src/obs/state.cc", R"(
namespace lrd {
namespace {
std::mutex gMu;
// lrd-lint: mutex(gMu)
int gCount = 0;
} // namespace
void bumpGuarded() {
    std::lock_guard<std::mutex> l(gMu);
    gCount = 1;
}
void bumpRacy() { gCount = 2; }
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleLockDiscipline);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("bumpRacy"), std::string::npos);
    EXPECT_NE(d->message.find("without acquiring"), std::string::npos);
    // The guarded writer must not be reported.
    for (const Diagnostic &x : diags) {
        if (x.rule == kRuleLockDiscipline) {
            EXPECT_EQ(x.message.find("bumpGuarded"), std::string::npos);
        }
    }
}

TEST(LintLock, OppositeAcquisitionOrdersFormACycle)
{
    const std::vector<SourceFile> tree = {
        {"src/obs/a.cc", R"(
namespace lrd {
namespace {
std::mutex muA;
std::mutex muB;
} // namespace
void lockForward() {
    std::lock_guard<std::mutex> la(muA);
    std::lock_guard<std::mutex> lb(muB);
}
} // namespace lrd
)"},
        {"src/obs/b.cc", R"(
namespace lrd {
namespace {
std::mutex muA;
std::mutex muB;
} // namespace
void lockBackward() {
    std::lock_guard<std::mutex> lb(muB);
    std::lock_guard<std::mutex> la(muA);
}
} // namespace lrd
)"},
    };
    // Identical names in two files are distinct internal-linkage
    // mutexes, so a cycle needs same-file opposing orders.
    EXPECT_FALSE(hasRule(lintFiles(tree), kRuleLockDiscipline));

    const auto diags = lintFiles({{"src/obs/a.cc", R"(
namespace lrd {
namespace {
std::mutex muA;
std::mutex muB;
} // namespace
void lockForward() {
    std::lock_guard<std::mutex> la(muA);
    std::lock_guard<std::mutex> lb(muB);
}
void lockBackward() {
    std::lock_guard<std::mutex> lb(muB);
    std::lock_guard<std::mutex> la(muA);
}
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleLockDiscipline);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("lock acquisition order cycle"),
              std::string::npos);

    // Acquisition order is statement order, not line order: two
    // guards on one line still form the edge.
    const auto oneLine = lintFiles({{"src/obs/a.cc", R"(
namespace lrd {
namespace {
std::mutex muA;
std::mutex muB;
} // namespace
void fwd() { std::lock_guard<std::mutex> a(muA); std::lock_guard<std::mutex> b(muB); }
void bwd() { std::lock_guard<std::mutex> b(muB); std::lock_guard<std::mutex> a(muA); }
} // namespace lrd
)"}});
    const Diagnostic *o = findRule(oneLine, kRuleLockDiscipline);
    ASSERT_NE(o, nullptr);
    EXPECT_NE(o->message.find("lock acquisition order cycle"),
              std::string::npos);
}

TEST(LintLock, ConsistentOrderIsClean)
{
    const auto diags = lintFiles({{"src/obs/a.cc", R"(
namespace lrd {
namespace {
std::mutex muA;
std::mutex muB;
} // namespace
void first() {
    std::lock_guard<std::mutex> la(muA);
    std::lock_guard<std::mutex> lb(muB);
}
void second() {
    std::lock_guard<std::mutex> la(muA);
    std::lock_guard<std::mutex> lb(muB);
}
} // namespace lrd
)"}});
    EXPECT_FALSE(hasRule(diags, kRuleLockDiscipline));
}

// -------------------------------------------------------- unchecked-result

TEST(LintUnchecked, DiscardedStatusReturnIsFlagged)
{
    const auto diags = lintFiles({{"src/decomp/apply.cc", R"(
namespace lrd {
Status applyStep(int k) { return Status(); }
void run() { applyStep(3); }
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleUncheckedResult);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("applyStep"), std::string::npos);
    EXPECT_NE(d->message.find("discarded"), std::string::npos);
}

TEST(LintUnchecked, CheckedAndVoidCastCallsAreClean)
{
    const auto diags = lintFiles({{"src/decomp/apply.cc", R"(
namespace lrd {
Status applyStep(int k) { return Status(); }
int plainValue() { return 4; }
void run() {
    const Status st = applyStep(3);
    if (!st.ok())
        return;
    (void)applyStep(4);
    plainValue();
}
} // namespace lrd
)"}});
    EXPECT_FALSE(hasRule(diags, kRuleUncheckedResult));
}

// --------------------------------------------------------------- fp-order

TEST(LintFpOrder, CapturedAccumulationInChunkBodyIsFlagged)
{
    const auto diags = lintFiles({{"src/eval/reduce.cc", R"(
namespace lrd {
double sumAll(long n) {
    double total = 0.0;
    parallelFor(0, n, 1, [&](long lo, long hi) {
        total += 1.0;
    });
    return total;
}
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleFpOrder);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("total"), std::string::npos);
    EXPECT_NE(d->message.find("reorders"), std::string::npos);
}

TEST(LintFpOrder, ChunkLocalAndBlessedHelperAreClean)
{
    // A chunk-local accumulator is serial within its chunk, and the
    // fixed-order reducers under src/parallel/ are exempt wholesale.
    const std::string body = R"(
namespace lrd {
double sumAll(long n) {
    double total = 0.0;
    parallelFor(0, n, 1, [&](long lo, long hi) {
        double part = 0.0;
        for (long i = lo; i < hi; ++i)
            part += 1.0;
        consumePart(part);
    });
    return total;
}
} // namespace lrd
)";
    EXPECT_FALSE(hasRule(lintFiles({{"src/eval/reduce.cc", body}}),
                         kRuleFpOrder));

    const std::string captured = R"(
namespace lrd {
double sumAll(long n) {
    double total = 0.0;
    parallelFor(0, n, 1, [&](long lo, long hi) {
        total += 1.0;
    });
    return total;
}
} // namespace lrd
)";
    EXPECT_FALSE(hasRule(lintFiles({{"src/parallel/reduce.cc", captured}}),
                         kRuleFpOrder));
}

// ------------------------------------------------------------ dead-symbol

TEST(LintDead, UnreferencedPublicFunctionIsFlagged)
{
    const auto diags = lintFiles({{"src/util/extra.cc", R"(
namespace lrd {
int orphanHelper() { return 1; }
} // namespace lrd
)"}});
    const Diagnostic *d = findRule(diags, kRuleDeadSymbol);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("orphanHelper"), std::string::npos);
}

TEST(LintDead, ReferenceFromTestsCountsAsLive)
{
    const std::vector<SourceFile> tree = {
        {"src/util/extra.cc", R"(
namespace lrd {
int orphanHelper() { return 1; }
} // namespace lrd
)"},
        {"tests/extra_test.cc", R"(
#include <gtest/gtest.h>
TEST(Extra, Helper) { EXPECT_EQ(1, lrd::orphanHelper()); }
)"},
    };
    EXPECT_FALSE(hasRule(lintFiles(tree), kRuleDeadSymbol));
}

// --------------------------------------------------- cache and reporters

TEST(LintCache, SummaryRoundTripsThroughSerialization)
{
    const FileSummary sum = parseFile(
        SourceFile{"src/obs/state.cc", R"(
namespace lrd {
namespace {
std::mutex gMu;
// lrd-lint: mutex(gMu)
int gCount = 0;
} // namespace
Status bump() {
    std::lock_guard<std::mutex> l(gMu);
    gCount += 1;
    return Status();
}
void all(long n) {
    parallelFor(0, n, 1, [&](long lo, long hi) { bump(); });
}
} // namespace lrd
)"},
        "feedcafe");
    const std::string wire = serializeSummary(sum);
    FileSummary back;
    ASSERT_TRUE(deserializeSummary(wire, back));
    // Round-tripped summaries must analyze identically, which the
    // re-serialization equality pins down field by field.
    EXPECT_EQ(wire, serializeSummary(back));
    EXPECT_EQ(sum.path, back.path);
    EXPECT_EQ(sum.functions.size(), back.functions.size());
}

TEST(LintCache, DeserializeRejectsCorruptPayload)
{
    FileSummary out;
    EXPECT_FALSE(deserializeSummary("not a summary", out));
    EXPECT_FALSE(deserializeSummary("", out));
}

TEST(LintOutput, SarifAndJsonAreDeterministic)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 7, kRuleHotPathAlloc, "allocation (new) on the hot path", "f"},
        {"src/b.cc", 9, kRuleDeadSymbol, "'g' has no in-tree reference", "g"},
    };
    const std::string sarif = toSarif(diags);
    EXPECT_EQ(sarif, toSarif(diags));
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find(kRuleHotPathAlloc), std::string::npos);
    const std::string json = toJson(diags);
    EXPECT_EQ(json, toJson(diags));
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

} // namespace
} // namespace lrd::lint
