/**
 * @file
 * Tests for the quantization and magnitude-pruning baselines.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/prune.h"
#include "quant/quantize.h"
#include "tensor/ops.h"

namespace lrd {
namespace {

TEST(Quantize, RoundTripErrorShrinksWithBits)
{
    Rng rng(1);
    Tensor w = Tensor::randn({32, 48}, rng);
    double prev = 1e9;
    for (int bits : {2, 3, 4, 6, 8}) {
        const double err = relativeError(w, fakeQuantize(w, bits));
        EXPECT_LT(err, prev) << bits << " bits";
        prev = err;
    }
    EXPECT_LT(prev, 0.01); // 8-bit is near-lossless
}

TEST(Quantize, CodesRespectBitRange)
{
    Rng rng(2);
    Tensor w = Tensor::randn({8, 16}, rng, 3.0F);
    for (int bits : {2, 4, 8}) {
        const QuantizedTensor q = quantizeWeight(w, bits);
        const int32_t qmax = (1 << (bits - 1)) - 1;
        for (int32_t code : q.q) {
            EXPECT_LE(code, qmax);
            EXPECT_GE(code, -qmax - 1);
        }
    }
}

TEST(Quantize, ZeroRowIsStable)
{
    Tensor w({2, 4});
    w(1, 0) = 1.0F;
    const Tensor back = fakeQuantize(w, 4);
    EXPECT_FLOAT_EQ(back(0, 0), 0.0F);
    EXPECT_NEAR(back(1, 0), 1.0F, 0.2F);
}

TEST(Quantize, InvalidBitsAreFatal)
{
    Tensor w({2, 2});
    EXPECT_THROW(quantizeWeight(w, 1), std::runtime_error);
    EXPECT_THROW(quantizeWeight(w, 9), std::runtime_error);
}

TEST(Quantize, StorageBytesFormula)
{
    QuantizedTensor q;
    q.bits = 4;
    q.rows = 8;
    q.cols = 16;
    // 8*16*4 bits = 64 bytes + 8 rows * 2B scales.
    EXPECT_EQ(q.storageBytes(), 64 + 16);
}

TEST(Quantize, ModelBytesDecreaseWithBits)
{
    const ModelConfig cfg = llama2_7bConfig();
    const int64_t fp16 = cfg.totalParams() * 2;
    const int64_t int8 = quantizedModelBytes(cfg, 8);
    const int64_t int4 = quantizedModelBytes(cfg, 4);
    EXPECT_LT(int8, fp16);
    EXPECT_LT(int4, int8);
    // Decomposable tensors are ~96% of Llama params: int4 should be
    // a bit over a quarter of FP16.
    EXPECT_NEAR(static_cast<double>(int4) / fp16, 0.28, 0.04);
}

TEST(Quantize, ApplyToModelKeepsItFunctional)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg, 5);
    TokenSeq toks = {1, 2, 3, 4};
    Tensor before = m.forward(toks);
    applyFakeQuantization(m, 8);
    Tensor after = m.forward(toks);
    EXPECT_TRUE(after.allFinite());
    // 8-bit is near-lossless on logits.
    EXPECT_LT(relativeError(before, after), 0.15);
}

TEST(Quantize, FactorizedLayerRejected)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg, 5);
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Query, 1).ok());
    EXPECT_THROW(applyFakeQuantization(m, 8), std::runtime_error);
}

TEST(Prune, ExactSparsityAchieved)
{
    Rng rng(3);
    Tensor w = Tensor::randn({20, 30}, rng);
    for (double s : {0.0, 0.25, 0.5, 0.9}) {
        const Tensor p = magnitudePrune(w, s);
        EXPECT_NEAR(sparsityOf(p), s, 1.0 / w.size()) << s;
    }
    EXPECT_THROW(magnitudePrune(w, 1.5), std::runtime_error);
}

TEST(Prune, KeepsLargestMagnitudes)
{
    Tensor w({1, 4}, {0.1F, -5.0F, 0.2F, 3.0F});
    const Tensor p = magnitudePrune(w, 0.5);
    EXPECT_FLOAT_EQ(p[0], 0.0F);
    EXPECT_FLOAT_EQ(p[1], -5.0F);
    EXPECT_FLOAT_EQ(p[2], 0.0F);
    EXPECT_FLOAT_EQ(p[3], 3.0F);
}

TEST(Prune, PruningErrorGrowsWithSparsity)
{
    Rng rng(4);
    Tensor w = Tensor::randn({16, 16}, rng);
    double prev = -1.0;
    for (double s : {0.1, 0.3, 0.6, 0.9}) {
        const double err = relativeError(w, magnitudePrune(w, s));
        EXPECT_GT(err, prev);
        prev = err;
    }
}

TEST(Prune, SparseBytesMonotoneInSparsity)
{
    const int64_t dense = sparseMatrixBytes(64, 64, 0.0);
    const int64_t half = sparseMatrixBytes(64, 64, 0.5);
    const int64_t most = sparseMatrixBytes(64, 64, 0.95);
    EXPECT_GT(dense, half);
    EXPECT_GT(half, most);
    const ModelConfig cfg = llama2_7bConfig();
    EXPECT_LT(prunedModelBytes(cfg, 0.8),
              prunedModelBytes(cfg, 0.5));
}

TEST(Prune, ModelStaysFunctionalAndDegradesGracefully)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg, 6);
    TokenSeq toks = {1, 2, 3, 4};
    Tensor before = m.forward(toks);
    applyMagnitudePruning(m, 0.2);
    Tensor after = m.forward(toks);
    EXPECT_TRUE(after.allFinite());
    const double err20 = relativeError(before, after);
    applyMagnitudePruning(m, 0.8);
    const double err80 = relativeError(before, m.forward(toks));
    EXPECT_GT(err80, err20);
}

} // namespace
} // namespace lrd
