/**
 * @file
 * Unit tests for the util module: Rng determinism and distribution
 * sanity, logging levels, TablePrinter formatting, cache round-trips,
 * and ByteWriter/ByteReader serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cache.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace lrd {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRangeAndCoverage)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10U);
}

TEST(Rng, UniformIntZeroThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng rng(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalMeanStddev)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(23);
    std::vector<double> w = {1.0, 3.0};
    int ones = 0;
    for (int i = 0; i < 10000; ++i)
        ones += rng.categorical(w) == 1;
    EXPECT_NEAR(ones / 10000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights)
{
    Rng rng(29);
    EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.categorical({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::vector<int> back = v;
    std::sort(back.begin(), back.end());
    EXPECT_EQ(back, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(41);
    Rng child = a.split();
    // The child stream must not replay the parent stream.
    Rng parentCopy(41);
    (void)parentCopy.next(); // consumed by split()
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child.next() == parentCopy.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, StateRoundTripResumesTheDrawSequence)
{
    Rng a(77);
    (void)a.normal(); // Leave a cached Box-Muller second value live.
    const RngState snap = a.state();

    std::vector<double> expected;
    for (int i = 0; i < 8; ++i)
        expected.push_back(a.normal());

    Rng b(1); // Different seed; fully overwritten by setState.
    b.setState(snap);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(b.normal(), expected[static_cast<size_t>(i)]);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("boom"), std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug"), std::logic_error);
}

TEST(Logging, RequirePassesAndFails)
{
    EXPECT_NO_THROW(require(true, "ok"));
    EXPECT_THROW(require(false, "bad"), std::runtime_error);
}

TEST(Logging, StrCatConcatenatesMixedTypes)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(Table, MarkdownContainsHeaderAndRows)
{
    TablePrinter t("demo");
    t.setHeader({"x", "value"});
    t.addRow({"a", "1"});
    t.addRow({"b", "2"});
    const std::string md = t.toMarkdown();
    EXPECT_NE(md.find("demo"), std::string::npos);
    EXPECT_NE(md.find("| x "), std::string::npos);
    EXPECT_NE(md.find("| b "), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2U);
}

TEST(Table, RowWidthMismatchIsFatal)
{
    TablePrinter t("demo");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(Table, CsvQuotingHandlesCommasAndQuotes)
{
    TablePrinter t("demo");
    t.setHeader({"a"});
    t.addRow({"x,y"});
    t.addRow({"he said \"hi\""});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(Cache, WriteReadRoundTrip)
{
    const std::string name = "util_test_blob.bin";
    std::vector<uint8_t> payload = {1, 2, 3, 250, 255};
    cacheWrite(name, payload);
    EXPECT_TRUE(cacheHas(name));
    const Result<std::vector<uint8_t>> got = cacheRead(name);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), payload);
    cacheErase(name);
    EXPECT_FALSE(cacheHas(name));
}

TEST(Cache, ReadMissingEntryReturnsNotFound)
{
    const Result<std::vector<uint8_t>> r =
        cacheRead("definitely_missing_entry.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    EXPECT_EQ(r.valueOr({0xAB}), std::vector<uint8_t>{0xAB});
    EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(Bytes, RoundTripAllTypes)
{
    ByteWriter w;
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEFULL);
    w.putF32(3.25F);
    w.putF64(-1.0e-300);
    w.putString("hello");
    w.putFloats({1.0F, -2.5F, 0.0F});
    w.putBytes({9, 8, 7});

    ByteReader r(w.bytes());
    EXPECT_EQ(r.getU32(), 0xDEADBEEF);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFULL);
    EXPECT_FLOAT_EQ(r.getF32(), 3.25F);
    EXPECT_EQ(r.getF64(), -1.0e-300);
    EXPECT_EQ(r.getString(), "hello");
    EXPECT_EQ(r.getFloats(), (std::vector<float>{1.0F, -2.5F, 0.0F}));
    EXPECT_EQ(r.getBytes(), (std::vector<uint8_t>{9, 8, 7}));
    EXPECT_TRUE(r.atEnd());
}

TEST(Bytes, TruncatedStreamIsFatal)
{
    ByteWriter w;
    w.putU32(7);
    ByteReader r(w.bytes());
    (void)r.getU32();
    EXPECT_THROW(r.getU64(), std::runtime_error);
}

TEST(Status, ServingCodesRoundTripThroughNameAndToString)
{
    // The serving layer leans on these two codes for its admission
    // (shed) and delivery-failure contracts; their names are part of
    // the CLI surface (lrdtool exit-code table, shed reports).
    EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
                 "resource-exhausted");
    EXPECT_STREQ(statusCodeName(StatusCode::Unavailable), "unavailable");

    const Status shed(StatusCode::ResourceExhausted, "serve.admit",
                      "queue at capacity");
    EXPECT_FALSE(shed.ok());
    EXPECT_EQ(shed.code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(shed.toString(),
              "resource-exhausted at serve.admit: queue at capacity");

    const Status undeliverable(StatusCode::Unavailable, "serve.respond",
                               "delivery failed");
    EXPECT_FALSE(undeliverable.ok());
    EXPECT_EQ(undeliverable.code(), StatusCode::Unavailable);
    EXPECT_EQ(undeliverable.toString(),
              "unavailable at serve.respond: delivery failed");
}

TEST(Timer, MeasuresNonNegativeElapsed)
{
    Timer t;
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i)
        x = x + 1.0;
    EXPECT_GE(t.elapsedSeconds(), 0.0);
    EXPECT_GE(t.elapsedMillis(), t.elapsedSeconds() * 1e3 - 1e-9);
}

} // namespace
} // namespace lrd
