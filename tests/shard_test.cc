/**
 * @file
 * Sharded-DSE protocol tests: the deterministic candidate partition,
 * lease and result-file round-trips, merge validation (holes,
 * duplicates, baseline disagreement), and the headline guarantee —
 * an in-process sharded sweep, including one that is cancelled
 * mid-shard and resumed, merges to a result file byte-identical to
 * the serial sweep's, with recomputed work accounted exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "dse/coordinator.h"
#include "model/transformer.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "train/trainer.h"

namespace lrd {
namespace {

namespace fs = std::filesystem;

/** Restores the default policy and disarms faults around each test. */
struct RobustGuard
{
    RobustGuard() { reset(); }
    ~RobustGuard() { reset(); }

    static void reset()
    {
        clearFaults();
        setRobustPolicy(RobustPolicy{});
        (void)takeNumericFault();
        clearCancelRequest();
        clearDeadline();
        resetSignalsForTest();
    }
};

WorldSpec
smallSpec()
{
    WorldSpec s;
    s.numEntities = 12;
    s.numColors = 5;
    s.numCategories = 5;
    s.numPlaces = 5;
    s.numNumbers = 14;
    s.numVerbs = 3;
    s.numPatternSymbols = 6;
    s.seed = 7;
    return s;
}

const World &
smallWorld()
{
    static World w(smallSpec());
    return w;
}

ModelConfig
smallConfig()
{
    ModelConfig cfg = testLlamaConfig();
    cfg.vocabSize = smallWorld().vocabSize();
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 4;
    cfg.maxSeq = 48;
    return cfg;
}

/** A briefly-trained small decoder shared by the sweep tests. */
const std::vector<uint8_t> &
trainedBytes()
{
    static const std::vector<uint8_t> bytes = [] {
        TransformerModel model(smallConfig(), 17);
        TrainOptions t;
        t.steps = 60;
        t.batchSeqs = 4;
        t.seqLen = 40;
        t.warmupSteps = 10;
        t.logEvery = 0;
        Trainer trainer(model, smallWorld(), t);
        trainer.run();
        return model.serialize();
    }();
    return bytes;
}

/** Fresh per-test scratch directory under the system temp dir. */
std::string
freshDir(const std::string &name)
{
    const fs::path p = fs::temp_directory_path() / name;
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(f),
                                std::istreambuf_iterator<char>());
}

OptimizerOptions
sweepOptions()
{
    OptimizerOptions opts;
    opts.evalTasks = 6;
    opts.accuracyDropTolerance = 1.1; // Everything feasible: fast sweep.
    opts.checkpointEvery = 1;
    return opts;
}

TEST(ShardSpecParse, AcceptsValidSpecs)
{
    for (const auto &[text, index, count] :
         std::vector<std::tuple<std::string, int, int>>{
             {"0/1", 0, 1}, {"3/4", 3, 4}, {"0/8", 0, 8},
             {"7/8", 7, 8}}) {
        SCOPED_TRACE(text);
        const Result<ShardSpec> r = parseShardSpec(text);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        EXPECT_EQ(r.value().index, index);
        EXPECT_EQ(r.value().count, count);
    }
}

TEST(ShardSpecParse, RejectsMalformedSpecs)
{
    for (const char *text :
         {"4/4", "5/4", "0/0", "x/y", "1/", "/4", "-1/4", "", "1",
          "1/2/3", "2/99999", "00x/4", "1 /4"}) {
        SCOPED_TRACE(text);
        const Result<ShardSpec> r = parseShardSpec(text);
        ASSERT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
    }
}

TEST(ShardPartition, CoversEveryCandidateExactlyOnceAndIsStable)
{
    for (const int shardCount : {1, 2, 3, 8}) {
        SCOPED_TRACE(shardCount);
        for (int64_t rank = 1; rank <= 4; ++rank) {
            for (int count = 1; count <= 8; ++count) {
                const uint64_t key = candidateShardKey(rank, count);
                const int shard = shardOfKey(key, shardCount);
                ASSERT_GE(shard, 0);
                ASSERT_LT(shard, shardCount);
                // Stable: the same coordinates always land on the
                // same shard (the partition never consults global
                // state, thread counts, or timing).
                EXPECT_EQ(shard,
                          shardOfKey(candidateShardKey(rank, count),
                                     shardCount));
            }
        }
    }
    // The mix actually spreads work: 32 candidates over 8 shards
    // should touch more than one shard.
    std::set<int> touched;
    for (int64_t rank = 1; rank <= 4; ++rank)
        for (int count = 1; count <= 8; ++count)
            touched.insert(shardOfKey(candidateShardKey(rank, count), 8));
    EXPECT_GT(touched.size(), 1u);
}

TEST(ShardLeaseFile, RoundTripsAndReportsMissing)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_lease");
    const std::string path = shardLeasePath(dir, 3);
    EXPECT_EQ(readShardLease(path).status().code(), StatusCode::NotFound);
    EXPECT_LT(shardLeaseAgeSeconds(path), 0.0);

    const ShardLease lease{static_cast<int64_t>(::getpid()), 17};
    ASSERT_TRUE(writeShardLease(path, lease).ok());
    const Result<ShardLease> r = readShardLease(path);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().pid, lease.pid);
    EXPECT_EQ(r.value().evalsEver, 17);
    EXPECT_GE(shardLeaseAgeSeconds(path), 0.0);
    fs::remove_all(dir);
}

TEST(ShardResultFileIo, RoundTripsRecords)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_resultio");
    ShardResultFile file;
    file.shard = ShardSpec{1, 2};
    file.gridSize = 4;
    file.evalsEver = 3;
    file.baselineAccuracy = 0.75;
    file.baselineEdp = 123.5;
    CandidateRecord rec;
    rec.gridIndex = 2;
    rec.accuracy = 0.7;
    rec.latencySec = 0.5;
    rec.energyJ = 2.0;
    rec.edp = 1.0;
    rec.reduction = 0.25;
    rec.feasible = true;
    file.records.push_back(rec);
    const std::string path = shardResultPath(dir, 1);
    ASSERT_TRUE(writeShardResultFile(path, file).ok());

    const Result<ShardResultFile> r = readShardResultFile(path);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().shard.index, 1);
    EXPECT_EQ(r.value().shard.count, 2);
    EXPECT_EQ(r.value().gridSize, 4u);
    EXPECT_EQ(r.value().evalsEver, 3);
    ASSERT_EQ(r.value().records.size(), 1u);
    EXPECT_EQ(r.value().records[0].gridIndex, 2);
    EXPECT_EQ(r.value().records[0].accuracy, 0.7);
    EXPECT_TRUE(r.value().records[0].feasible);
    fs::remove_all(dir);
}

/** Hand-build one shard result file covering `indices`. */
void
putShardFile(const std::string &dir, int index, int count,
             uint64_t gridSize, const std::vector<int64_t> &indices)
{
    ShardResultFile file;
    file.shard = ShardSpec{index, count};
    file.gridSize = gridSize;
    file.evalsEver = static_cast<int64_t>(indices.size());
    file.baselineAccuracy = 0.5;
    file.baselineEdp = 10.0;
    for (const int64_t i : indices) {
        CandidateRecord rec;
        rec.gridIndex = i;
        rec.accuracy = 0.5;
        rec.edp = 5.0 + static_cast<double>(i);
        rec.feasible = true;
        file.records.push_back(rec);
    }
    ASSERT_TRUE(
        writeShardResultFile(shardResultPath(dir, index), file).ok());
}

TEST(MergeValidation, RejectsMissingHolesAndDuplicates)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_mergeval");

    // Missing shard file: shard 1 of 2 never completed.
    putShardFile(dir, 0, 2, 4, {0, 1});
    EXPECT_EQ(mergeShardResults(dir, 2, 0.05).status().code(),
              StatusCode::NotFound);

    // Hole: slot 2 covered by nobody.
    putShardFile(dir, 1, 2, 4, {3});
    EXPECT_EQ(mergeShardResults(dir, 2, 0.05).status().code(),
              StatusCode::DataLoss);

    // Duplicate: slot 1 covered twice.
    putShardFile(dir, 1, 2, 4, {1, 2, 3});
    EXPECT_EQ(mergeShardResults(dir, 2, 0.05).status().code(),
              StatusCode::DataLoss);

    // Exact cover merges, picking the min-EDP feasible slot.
    putShardFile(dir, 1, 2, 4, {2, 3});
    const Result<MergeReport> ok = mergeShardResults(dir, 2, 0.05);
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    EXPECT_EQ(ok.value().shardsMerged, 2);
    EXPECT_EQ(ok.value().result.explored.size(), 4u);
    EXPECT_EQ(ok.value().result.best.gridIndex, 0);
    EXPECT_EQ(ok.value().recomputed, 0);
    fs::remove_all(dir);
}

TEST(MergeValidation, RejectsBaselineDisagreement)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_mergebase");
    putShardFile(dir, 0, 2, 2, {0});
    // Shard 1 claims a bitwise-different baseline: a symptom of
    // non-deterministic shard runs, which would silently poison the
    // serial-identity guarantee if merged.
    ShardResultFile file;
    file.shard = ShardSpec{1, 2};
    file.gridSize = 2;
    file.evalsEver = 1;
    file.baselineAccuracy = 0.5000001;
    file.baselineEdp = 10.0;
    CandidateRecord rec;
    rec.gridIndex = 1;
    rec.feasible = true;
    rec.edp = 1.0;
    file.records.push_back(rec);
    ASSERT_TRUE(writeShardResultFile(shardResultPath(dir, 1), file).ok());
    EXPECT_EQ(mergeShardResults(dir, 2, 0.05).status().code(),
              StatusCode::DataLoss);
    fs::remove_all(dir);
}

TEST(RunDseShard, RefusesALeaseHeldByALiveProcess)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_livelease");
    // pid 1 is always alive (and never ours to signal: EPERM counts
    // as alive), so the shard must refuse to double-run.
    ASSERT_TRUE(
        writeShardLease(shardLeasePath(dir, 0), ShardLease{1, 5}).ok());
    const Result<OptimizerResult> r = runDseShard(
        trainedBytes(), smallWorld(), sweepOptions(), ShardSpec{0, 2},
        dir);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
    fs::remove_all(dir);
}

/**
 * The headline guarantee, in-process: shards swept independently
 * (one of them killed mid-sweep and resumed) merge to a result file
 * byte-identical to the serial sweep's, with every candidate
 * evaluated exactly once and recomputed work reported exactly.
 */
TEST(ShardedSweep, MergesByteIdenticalToSerialAcrossCancelAndResume)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_e2e");
    const OptimizerOptions base = sweepOptions();

    // Serial reference (no checkpointing, no sharding).
    OptimizerResult serial = optimizeDecomposition(
        trainedBytes(), smallWorld(), base);
    ASSERT_TRUE(serial.status.ok()) << serial.status.toString();
    const std::string serialPath = dir + "/serial.bin";
    ASSERT_TRUE(writeDseResultFile(serialPath, serial).ok());
    const auto gridSize = static_cast<uint64_t>(serial.gridSize);
    ASSERT_GT(gridSize, 0u);

    // Shard 0: killed at the second batch boundary, then resumed.
    setFault(FaultSpec{"dse.batch", FaultKind::Cancel, 2});
    const Result<OptimizerResult> killed = runDseShard(
        trainedBytes(), smallWorld(), base, ShardSpec{0, 2}, dir);
    clearFaults();
    clearCancelRequest();
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::Cancelled);
    // The interrupted attempt leaves its lease behind for the retry.
    ASSERT_TRUE(readShardLease(shardLeasePath(dir, 0)).ok());

    const Result<OptimizerResult> shard0 = runDseShard(
        trainedBytes(), smallWorld(), base, ShardSpec{0, 2}, dir);
    ASSERT_TRUE(shard0.ok()) << shard0.status().toString();
    const Result<OptimizerResult> shard1 = runDseShard(
        trainedBytes(), smallWorld(), base, ShardSpec{1, 2}, dir);
    ASSERT_TRUE(shard1.ok()) << shard1.status().toString();
    // Clean completions drop their leases.
    EXPECT_EQ(readShardLease(shardLeasePath(dir, 0)).status().code(),
              StatusCode::NotFound);

    const Result<MergeReport> merge =
        mergeShardResults(dir, 2, base.accuracyDropTolerance);
    ASSERT_TRUE(merge.ok()) << merge.status().toString();
    EXPECT_EQ(merge.value().shardsMerged, 2);
    // The cancel landed AFTER the batch's lease+checkpoint pair, so
    // nothing persisted was lost: every slot evaluated exactly once.
    EXPECT_EQ(merge.value().evalsEver,
              static_cast<int64_t>(gridSize));
    EXPECT_EQ(merge.value().recomputed, 0);

    const std::string mergedPath = dir + "/merged.bin";
    ASSERT_TRUE(writeDseResultFile(mergedPath, merge.value().result).ok());
    EXPECT_EQ(readFileBytes(mergedPath), readFileBytes(serialPath))
        << "merged result file must be byte-identical to serial";
    fs::remove_all(dir);
}

/**
 * Recomputed-work accounting: a lease that banked more evaluations
 * than the checkpoint persisted (the crash-between-heartbeat-and-
 * checkpoint window) surfaces in the merge as recomputed work — and
 * does not perturb the merged bytes.
 */
TEST(ShardedSweep, ReportsRecomputedWorkFromACrashedAttempt)
{
    RobustGuard guard;
    const std::string dir = freshDir("lrd_shard_recompute");
    const OptimizerOptions base = sweepOptions();

    OptimizerResult serial = optimizeDecomposition(
        trainedBytes(), smallWorld(), base);
    ASSERT_TRUE(serial.status.ok());
    const std::string serialPath = dir + "/serial.bin";
    ASSERT_TRUE(writeDseResultFile(serialPath, serial).ok());

    // Simulate an attempt whose heartbeat outran its checkpoint by
    // two evaluations before the crash: the banked-but-lost work.
    ASSERT_TRUE(writeShardLease(
                    shardLeasePath(dir, 0),
                    ShardLease{static_cast<int64_t>(::getpid()), 2})
                    .ok());
    const Result<OptimizerResult> shard0 = runDseShard(
        trainedBytes(), smallWorld(), base, ShardSpec{0, 2}, dir);
    ASSERT_TRUE(shard0.ok()) << shard0.status().toString();
    const Result<OptimizerResult> shard1 = runDseShard(
        trainedBytes(), smallWorld(), base, ShardSpec{1, 2}, dir);
    ASSERT_TRUE(shard1.ok()) << shard1.status().toString();

    const Result<MergeReport> merge =
        mergeShardResults(dir, 2, base.accuracyDropTolerance);
    ASSERT_TRUE(merge.ok()) << merge.status().toString();
    EXPECT_EQ(merge.value().recomputed, 2);
    EXPECT_EQ(merge.value().evalsEver, serial.gridSize + 2);

    const std::string mergedPath = dir + "/merged.bin";
    ASSERT_TRUE(writeDseResultFile(mergedPath, merge.value().result).ok());
    EXPECT_EQ(readFileBytes(mergedPath), readFileBytes(serialPath));
    fs::remove_all(dir);
}

} // namespace
} // namespace lrd
