/**
 * @file
 * Flight-recorder suite: histogram quantiles, the run manifest
 * round-trip, the JSON parser, the memory probes, the telemetry
 * sampler's JSONL schema, and — the property that licenses the
 * sampler thread's existence — bitwise-identical numerics with
 * telemetry on or off at any thread count, including a run killed
 * mid-flight through the real fault-injection machinery.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/signal.h"
#include "tensor/ops.h"
#include "train/model_zoo.h"
#include "util/json.h"
#include "util/memprobe.h"

namespace lrd {
namespace {

/** Unique scratch path per test; removed on destruction. */
struct ScratchFile
{
    explicit ScratchFile(const std::string &tag)
        : path("/tmp/lrd_telemetry_test_" + tag + ".jsonl")
    {
        std::remove(path.c_str());
        std::remove((path + ".1").c_str());
    }
    ~ScratchFile()
    {
        std::remove(path.c_str());
        std::remove((path + ".1").c_str());
    }
    std::string path;
};

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

template <class Fn>
auto
withThreads(int n, Fn fn)
{
    ThreadPool::instance().resize(n);
    return fn();
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape()
           && std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float))
                  == 0;
}

TEST(HistogramQuantiles, EmptyHistogramIsZero)
{
    const HistogramSnapshot hs;
    EXPECT_EQ(hs.p50(), 0.0);
    EXPECT_EQ(hs.p90(), 0.0);
    EXPECT_EQ(hs.p99(), 0.0);
}

TEST(HistogramQuantiles, SingleBucketInterpolates)
{
    // 100 samples in the [8, 16) bucket: quantiles interpolate
    // linearly across the bucket.
    HistogramSnapshot hs;
    hs.count = 100;
    hs.buckets[static_cast<size_t>(Histogram::bucketOf(8))] = 100;
    EXPECT_DOUBLE_EQ(hs.p50(), 12.0);
    EXPECT_DOUBLE_EQ(hs.p90(), 15.2);
    EXPECT_DOUBLE_EQ(hs.p99(), 15.92);
}

TEST(HistogramQuantiles, SkewedMassPicksTheRightBucket)
{
    // 90 tiny samples and 10 large ones: p50 stays in the small
    // bucket, p99 lands in the large one.
    HistogramSnapshot hs;
    hs.count = 100;
    hs.buckets[static_cast<size_t>(Histogram::bucketOf(1))] = 90;
    hs.buckets[static_cast<size_t>(Histogram::bucketOf(1024))] = 10;
    EXPECT_LT(hs.p50(), 2.01);
    EXPECT_GE(hs.p99(), 1024.0);
    EXPECT_LT(hs.p99(), 2048.0);
}

TEST(HistogramQuantiles, ZeroBucketReportsZero)
{
    HistogramSnapshot hs;
    hs.count = 10;
    hs.buckets[0] = 10; // All samples <= 0.
    EXPECT_EQ(hs.p99(), 0.0);
}

TEST(TelemetrySpec, ParsesIntervalAndPath)
{
    const Result<TelemetryConfig> bare = parseTelemetrySpec("250");
    ASSERT_TRUE(bare.ok());
    EXPECT_EQ(bare.value().intervalMs, 250);
    EXPECT_EQ(bare.value().path, "lrd_telemetry.jsonl");

    const Result<TelemetryConfig> full =
        parseTelemetrySpec("50:/tmp/x.jsonl");
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full.value().intervalMs, 50);
    EXPECT_EQ(full.value().path, "/tmp/x.jsonl");
}

TEST(TelemetrySpec, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseTelemetrySpec("").ok());
    EXPECT_FALSE(parseTelemetrySpec("abc").ok());
    EXPECT_FALSE(parseTelemetrySpec("-5").ok());
    EXPECT_FALSE(parseTelemetrySpec("0").ok());
    EXPECT_FALSE(parseTelemetrySpec("10:").ok());
}

TEST(Json, ParsesScalarsObjectsAndArrays)
{
    const Result<JsonValue> doc = parseJson(
        R"({"a": 1.5, "b": [true, null, "x\"y"], "c": {"d": -3}})");
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &v = doc.value();
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->elements().size(), 3U);
    EXPECT_TRUE(b->elements()[0].asBool());
    EXPECT_TRUE(b->elements()[1].isNull());
    EXPECT_EQ(b->elements()[2].asString(), "x\"y");
    const JsonValue *d = v.findPath({"c", "d"});
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->asInt(), -3);
}

TEST(Json, ReportsErrorsAndPreservesKeyOrder)
{
    EXPECT_FALSE(parseJson("{\"a\": }").ok());
    EXPECT_FALSE(parseJson("[1, 2").ok());
    EXPECT_FALSE(parseJson("{} trailing").ok());
    const Result<JsonValue> doc =
        parseJson(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.ok());
    ASSERT_EQ(doc.value().members().size(), 3U);
    EXPECT_EQ(doc.value().members()[0].first, "z");
    EXPECT_EQ(doc.value().members()[2].first, "m");
}

TEST(Json, JsonLinesToleratesOnlyATruncatedTail)
{
    const std::string text =
        "{\"a\": 1}\n{\"b\": 2}\n{\"c\": 3, \"tr";
    EXPECT_FALSE(parseJsonLines(text).ok());
    const Result<std::vector<JsonValue>> tolerant =
        parseJsonLines(text, /*stopAtError=*/true);
    ASSERT_TRUE(tolerant.ok());
    EXPECT_EQ(tolerant.value().size(), 2U);
    // Corruption *before* the final line stays an error.
    EXPECT_FALSE(
        parseJsonLines("{bad\n{\"ok\": 1}\n", /*stopAtError=*/true)
            .ok());
}

TEST(Json, NestingDepthIsLimitedNotStackBound)
{
    // kMaxDepth = 64: containers may nest 64 deep below the root;
    // one more must be a clean error, not a stack overflow.
    const auto nested = [](int n) {
        return std::string(static_cast<size_t>(n), '[')
               + std::string(static_cast<size_t>(n), ']');
    };
    const Result<JsonValue> ok = parseJson(nested(65));
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    EXPECT_TRUE(ok.value().isArray());
    const Result<JsonValue> deep = parseJson(nested(66));
    ASSERT_FALSE(deep.ok());
    EXPECT_NE(deep.status().message().find("nesting"), std::string::npos);
}

TEST(Json, EscapeHandlingAndMidEscapeTruncation)
{
    const Result<JsonValue> esc =
        parseJson(R"("a\n\t\"\\\/\b\f\r")");
    ASSERT_TRUE(esc.ok());
    EXPECT_EQ(esc.value().asString(), "a\n\t\"\\/\b\f\r");

    // \uXXXX passes through verbatim (documented non-decoding).
    const Result<JsonValue> uni = parseJson("\"\\u0041\"");
    ASSERT_TRUE(uni.ok());
    EXPECT_EQ(uni.value().asString(), "\\u0041");

    EXPECT_FALSE(parseJson(R"("bad \q escape")").ok());
    // Input cut off in the middle of an escape sequence.
    EXPECT_FALSE(parseJson("\"abc\\").ok());
    EXPECT_FALSE(parseJson("\"abc").ok());
}

TEST(Json, NonAsciiBytesPassThroughUnvalidated)
{
    // The parser is byte-oriented: UTF-8 (valid or not) inside a
    // string is preserved, not validated — callers own encoding.
    const std::string utf8 = "\"caf\xC3\xA9\"";
    const Result<JsonValue> ok = parseJson(utf8);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().asString(), "caf\xC3\xA9");

    const std::string mangled = "\"\xFF\xFE\"";
    const Result<JsonValue> raw = parseJson(mangled);
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw.value().asString(), "\xFF\xFE");
}

TEST(Json, HugeAndTinyNumbersFollowStrtod)
{
    const Result<JsonValue> big = parseJson("[1e999, -1e999, 1e-999]");
    ASSERT_TRUE(big.ok());
    const auto &el = big.value().elements();
    ASSERT_EQ(el.size(), 3U);
    EXPECT_TRUE(el[0].isNumber());
    EXPECT_TRUE(std::isinf(el[0].asNumber()));
    EXPECT_TRUE(std::isinf(el[1].asNumber()));
    EXPECT_LT(el[1].asNumber(), 0.0);
    EXPECT_EQ(el[2].asNumber(), 0.0); // underflows to zero

    const Result<JsonValue> b = parseJson("[true, false, 0]");
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(b.value().elements()[0].isBool());
    EXPECT_TRUE(b.value().elements()[1].isBool());
    EXPECT_FALSE(b.value().elements()[2].isBool());
    EXPECT_FALSE(b.value().elements()[0].isNumber());
}

TEST(Manifest, RoundTripsThroughJson)
{
    setManifestRuntimeInfo("avx512", 4, "lrdtool test run");
    const RunManifest m = captureRunManifest();
    EXPECT_FALSE(m.runId.empty());
    EXPECT_GT(m.startUnixMs, 0);

    const Result<JsonValue> doc = parseJson(m.toJson());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const Result<RunManifest> back = manifestFromJson(doc.value());
    ASSERT_TRUE(back.ok()) << back.status().toString();
    const RunManifest &r = back.value();
    EXPECT_EQ(r.runId, m.runId);
    EXPECT_EQ(r.gitSha, m.gitSha);
    EXPECT_EQ(r.buildType, m.buildType);
    EXPECT_EQ(r.cpuModel, m.cpuModel);
    EXPECT_EQ(r.simdLevel, "avx512");
    EXPECT_EQ(r.threads, 4);
    EXPECT_EQ(r.commandLine, "lrdtool test run");
    EXPECT_EQ(r.startUnixMs, m.startUnixMs);
    EXPECT_EQ(r.env, m.env);
}

TEST(Manifest, RejectsNonManifestRecords)
{
    const Result<JsonValue> doc = parseJson("{\"type\": \"sample\"}");
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(manifestFromJson(doc.value()).ok());
}

TEST(MemProbe, RssProbeIsSane)
{
    const ProcMemSample mem = sampleProcMem();
    EXPECT_GT(mem.rssBytes, 0);
    EXPECT_GE(mem.peakRssBytes, mem.rssBytes);
}

TEST(MemProbe, ResetPeakDropsToLiveLevel)
{
    {
        Tensor scratch({128, 128});
        (void)scratch;
    }
    EXPECT_GE(tensorArenaStats().peakLiveBytes,
              tensorArenaStats().liveBytes);
    tensorArenaResetPeakForTest();
    EXPECT_EQ(tensorArenaStats().peakLiveBytes,
              tensorArenaStats().liveBytes);
}

TEST(MemProbe, ArenaTracksTensorLifetimes)
{
    const TensorArenaStats before = tensorArenaStats();
    constexpr int64_t kBytes = 64 * 64 * sizeof(float);
    {
        Tensor t({64, 64});
        const TensorArenaStats during = tensorArenaStats();
        EXPECT_EQ(during.liveBytes - before.liveBytes, kBytes);
        EXPECT_EQ(during.allocCount - before.allocCount, 1);

        // A move transfers accounting rather than double-counting.
        Tensor moved = std::move(t);
        EXPECT_EQ(tensorArenaStats().liveBytes - before.liveBytes,
                  kBytes);

        // A copy accounts its own payload.
        Tensor copy = moved;
        EXPECT_EQ(tensorArenaStats().liveBytes - before.liveBytes,
                  2 * kBytes);
    }
    const TensorArenaStats after = tensorArenaStats();
    EXPECT_EQ(after.liveBytes, before.liveBytes);
    EXPECT_GE(after.peakLiveBytes, before.liveBytes + 2 * kBytes);
}

/** Required keys per record type, verified over a real sampler run. */
TEST(Sampler, WritesSchemaValidJsonl)
{
    ScratchFile scratch("schema");
    TelemetryConfig config;
    config.intervalMs = 1;
    config.path = scratch.path;
    setManifestRuntimeInfo("test-simd", 2, "telemetry_test schema");
    startTelemetrySampler(config);
    EXPECT_TRUE(telemetrySamplerRunning());

    // Enough work to move every counter family the schema samples.
    Rng rng(7);
    const Tensor a = Tensor::randn({96, 96}, rng);
    const Tensor b = Tensor::randn({96, 96}, rng);
    for (int i = 0; i < 8; ++i) {
        const Tensor c = matmul(a, b);
        ASSERT_TRUE(c.allFinite());
    }
    stopTelemetrySampler();
    EXPECT_FALSE(telemetrySamplerRunning());
    EXPECT_GE(telemetrySampleCount(), 1);

    const Result<std::vector<JsonValue>> records =
        parseJsonLines(slurp(scratch.path));
    ASSERT_TRUE(records.ok()) << records.status().toString();
    const std::vector<JsonValue> &recs = records.value();
    ASSERT_GE(recs.size(), 3U); // manifest + >=1 sample + final.

    EXPECT_EQ(recs.front().stringOr("type", ""), "manifest");
    const Result<RunManifest> m = manifestFromJson(recs.front());
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().simdLevel, "test-simd");

    for (size_t i = 1; i + 1 < recs.size(); ++i) {
        const JsonValue &s = recs[i];
        EXPECT_EQ(s.stringOr("type", ""), "sample") << "record " << i;
        for (const char *key :
             {"t_ms", "rss_bytes", "rss_peak_bytes",
              "arena_live_bytes", "arena_peak_bytes", "arena_allocs",
              "arena_alloc_bytes"})
            EXPECT_NE(s.find(key), nullptr)
                << "sample " << i << " lacks " << key;
        for (const char *key : {"phase", "counters", "gauges", "hist"})
            EXPECT_NE(s.find(key), nullptr)
                << "sample " << i << " lacks " << key;
        EXPECT_GT(s.intOr("rss_bytes", 0), 0);
    }

    const JsonValue &fin = recs.back();
    EXPECT_EQ(fin.stringOr("type", ""), "final");
    EXPECT_EQ(fin.stringOr("runId", ""), m.value().runId);
    EXPECT_EQ(fin.intOr("samples", -1),
              static_cast<int64_t>(recs.size()) - 2);
    // Cumulative totals include the GEMM work done above.
    const JsonValue *macs = fin.findPath({"counters", "gemm.macs"});
    ASSERT_NE(macs, nullptr);
    EXPECT_GE(macs->asInt(), 8LL * 96 * 96 * 96);
}

TEST(Sampler, StopWithoutStartIsANoOp)
{
    EXPECT_FALSE(telemetrySamplerRunning());
    stopTelemetrySampler();
    stopTelemetrySampler();
    EXPECT_FALSE(telemetrySamplerRunning());
}

TEST(Sampler, PhaseLabelNestsAndRestores)
{
    EXPECT_STREQ(telemetryPhase(), "");
    {
        WatchdogSection outer("outer.phase");
        EXPECT_STREQ(telemetryPhase(), "outer.phase");
        {
            WatchdogSection inner("inner.phase");
            EXPECT_STREQ(telemetryPhase(), "inner.phase");
        }
        EXPECT_STREQ(telemetryPhase(), "outer.phase");
    }
    EXPECT_STREQ(telemetryPhase(), "");
}

/**
 * The headline property: numeric results are bitwise identical with
 * the sampler running or absent, at 1, 4, and 8 threads.
 */
TEST(Sampler, NumericsBitwiseIdenticalWithTelemetryOnOrOff)
{
    const World &world = defaultWorld();
    const auto evalOnce = [&] {
        TransformerModel model(tinyLlamaConfig(), 1234);
        Evaluator ev(model, world, EvalOptions{12, 999, false});
        return ev.run(allBenchmarks().front());
    };
    Rng rng(21);
    const Tensor a = Tensor::randn({150, 97}, rng);
    const Tensor b = Tensor::randn({97, 128}, rng);

    for (int threads : {1, 4, 8}) {
        SCOPED_TRACE(threads);
        const EvalResult off = withThreads(threads, evalOnce);
        const Tensor prodOff =
            withThreads(threads, [&] { return matmul(a, b); });

        ScratchFile scratch("determinism");
        TelemetryConfig config;
        config.intervalMs = 1;
        config.path = scratch.path;
        startTelemetrySampler(config);
        const EvalResult on = withThreads(threads, evalOnce);
        const Tensor prodOn =
            withThreads(threads, [&] { return matmul(a, b); });
        stopTelemetrySampler();

        EXPECT_EQ(off.numCorrect, on.numCorrect);
        EXPECT_EQ(off.numTasks, on.numTasks);
        EXPECT_EQ(off.accuracy, on.accuracy); // Exact, not approximate.
        EXPECT_TRUE(bitwiseEqual(prodOff, prodOn));
    }
}

/**
 * Kill-mid-run durability: cancel an evaluation through the real
 * fault machinery while the sampler runs, then check the file still
 * parses — and that a half-written last line (what a SIGKILL leaves)
 * is tolerated by the stopAtError reader.
 */
TEST(Sampler, KilledRunLeavesAReadableFile)
{
    clearFaults();
    clearCancelRequest();
    resetSignalsForTest();

    ScratchFile scratch("killed");
    TelemetryConfig config;
    config.intervalMs = 1;
    config.path = scratch.path;
    startTelemetrySampler(config);

    setFault(FaultSpec{"eval.item", FaultKind::Cancel, 3});
    const World &world = defaultWorld();
    TransformerModel model(tinyLlamaConfig(), 1234);
    Evaluator ev(model, world, EvalOptions{12, 999, false});
    const EvalResult r = ev.run(allBenchmarks().front());
    EXPECT_FALSE(r.status.ok());
    stopTelemetrySampler();
    clearFaults();
    clearCancelRequest();
    resetSignalsForTest();

    std::string text = slurp(scratch.path);
    const Result<std::vector<JsonValue>> whole = parseJsonLines(text);
    ASSERT_TRUE(whole.ok()) << whole.status().toString();
    ASSERT_GE(whole.value().size(), 2U);
    EXPECT_EQ(whole.value().front().stringOr("type", ""), "manifest");

    // Simulate the SIGKILL tail: the file ends with "...}\n", so
    // dropping the newline plus a few bytes is guaranteed to leave
    // the final record cut off mid-write.
    ASSERT_GT(text.size(), 10U);
    text.resize(text.size() - 10);
    EXPECT_FALSE(parseJsonLines(text).ok());
    const Result<std::vector<JsonValue>> prefix =
        parseJsonLines(text, /*stopAtError=*/true);
    ASSERT_TRUE(prefix.ok()) << prefix.status().toString();
    EXPECT_GE(prefix.value().size(), 1U);
    EXPECT_EQ(prefix.value().front().stringOr("type", ""), "manifest");
}

/** Segment rotation keeps the file pair bounded and re-stamped. */
TEST(Sampler, RotatesSegmentsAndRestampsManifest)
{
    ScratchFile scratch("rotate");
    TelemetryConfig config;
    config.intervalMs = 1;
    config.path = scratch.path;
    config.maxSamplesPerSegment = 5;
    startTelemetrySampler(config);
    Rng rng(3);
    const Tensor a = Tensor::randn({64, 64}, rng);
    const Tensor b = Tensor::randn({64, 64}, rng);
    // Keep working until at least one rotation must have happened
    // (the flush request forces roughly one sample per 1 ms slice;
    // the generous iteration cap only bounds a broken sampler).
    for (int i = 0; i < 200000 && telemetrySampleCount() <= 12; ++i) {
        const Tensor c = matmul(a, b);
        ASSERT_TRUE(c.allFinite());
        requestTelemetryFlush();
    }
    ASSERT_GT(telemetrySampleCount(), 12);
    stopTelemetrySampler();

    const Result<std::vector<JsonValue>> current =
        parseJsonLines(slurp(scratch.path));
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(current.value().front().stringOr("type", ""), "manifest");
    const Result<std::vector<JsonValue>> previous =
        parseJsonLines(slurp(scratch.path + ".1"));
    ASSERT_TRUE(previous.ok());
    EXPECT_EQ(previous.value().front().stringOr("type", ""),
              "manifest");
    // Both segments carry the same run identity.
    EXPECT_EQ(current.value().front().stringOr("runId", "a"),
              previous.value().front().stringOr("runId", "b"));
}

} // namespace
} // namespace lrd
