/**
 * @file
 * Fuzz tests of the optimized GEMM kernels against a naive reference
 * triple loop, covering all transpose variants, accumulate modes and
 * degenerate shapes.
 */

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"

namespace lrd {
namespace {

/** Naive reference: C = A? * B? with explicit index arithmetic. */
void
referenceGemm(const Tensor &a, const Tensor &b, Tensor &c, bool transA,
              bool transB, bool accumulate)
{
    const int64_t m = transA ? a.dim(1) : a.dim(0);
    const int64_t k = transA ? a.dim(0) : a.dim(1);
    const int64_t n = transB ? b.dim(0) : b.dim(1);
    if (!accumulate)
        c.fill(0.0F);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int64_t p = 0; p < k; ++p) {
                const float av = transA ? a(p, i) : a(i, p);
                const float bv = transB ? b(j, p) : b(p, j);
                acc += static_cast<double>(av) * bv;
            }
            c(i, j) += static_cast<float>(acc);
        }
}

class GemmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GemmFuzz, AllVariantsMatchReference)
{
    Rng rng(static_cast<uint64_t>(1000 + GetParam()));
    const int64_t m = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const int64_t k = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const int64_t n = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const bool accumulate = rng.bernoulli(0.5);

    // Plain gemm.
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({k, n}, rng);
        Tensor want = Tensor::randn({m, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, false, false, accumulate);
        gemm(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4)
            << m << "x" << k << "x" << n;
    }
    // B transposed.
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({n, k}, rng);
        Tensor want = Tensor::randn({m, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, false, true, accumulate);
        gemmTransB(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4);
    }
    // A transposed: c (k x n) = a^T (m x k)^T * b (m x n).
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({m, n}, rng);
        Tensor want = Tensor::randn({k, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, true, false, accumulate);
        gemmTransA(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, GemmFuzz, ::testing::Range(0, 20));

TEST(GemmEdge, OneByOne)
{
    Tensor a({1, 1}, {3.0F});
    Tensor b({1, 1}, {-2.0F});
    Tensor c({1, 1});
    gemm(a.data(), b.data(), c.data(), 1, 1, 1, false);
    EXPECT_FLOAT_EQ(c[0], -6.0F);
}

TEST(GemmEdge, ZeroEntriesSkipPathIsCorrect)
{
    // The i-k-j kernel skips zero a-values; verify it still matches
    // the reference on sparse inputs.
    Rng rng(7);
    Tensor a = Tensor::randn({6, 6}, rng);
    for (int64_t i = 0; i < a.size(); i += 2)
        a[i] = 0.0F;
    Tensor b = Tensor::randn({6, 6}, rng);
    Tensor want({6, 6});
    referenceGemm(a, b, want, false, false, false);
    Tensor got({6, 6});
    gemm(a.data(), b.data(), got.data(), 6, 6, 6, false);
    EXPECT_LT(relativeError(want, got), 1e-5);
}

} // namespace
} // namespace lrd
