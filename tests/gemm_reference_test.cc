/**
 * @file
 * Fuzz tests of the optimized GEMM kernels against a naive reference
 * triple loop, covering all transpose variants, accumulate modes and
 * degenerate shapes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "model/linear.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "util/rng.h"

namespace lrd {
namespace {

/** Naive reference: C = A? * B? with explicit index arithmetic. */
void
referenceGemm(const Tensor &a, const Tensor &b, Tensor &c, bool transA,
              bool transB, bool accumulate)
{
    const int64_t m = transA ? a.dim(1) : a.dim(0);
    const int64_t k = transA ? a.dim(0) : a.dim(1);
    const int64_t n = transB ? b.dim(0) : b.dim(1);
    if (!accumulate)
        c.fill(0.0F);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int64_t p = 0; p < k; ++p) {
                const float av = transA ? a(p, i) : a(i, p);
                const float bv = transB ? b(j, p) : b(p, j);
                acc += static_cast<double>(av) * bv;
            }
            c(i, j) += static_cast<float>(acc);
        }
}

class GemmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GemmFuzz, AllVariantsMatchReference)
{
    Rng rng(static_cast<uint64_t>(1000 + GetParam()));
    const int64_t m = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const int64_t k = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const int64_t n = 1 + static_cast<int64_t>(rng.uniformInt(17));
    const bool accumulate = rng.bernoulli(0.5);

    // Plain gemm.
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({k, n}, rng);
        Tensor want = Tensor::randn({m, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, false, false, accumulate);
        gemm(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4)
            << m << "x" << k << "x" << n;
    }
    // B transposed.
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({n, k}, rng);
        Tensor want = Tensor::randn({m, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, false, true, accumulate);
        gemmTransB(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4);
    }
    // A transposed: c (k x n) = a^T (m x k)^T * b (m x n).
    {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({m, n}, rng);
        Tensor want = Tensor::randn({k, n}, rng);
        Tensor got = want;
        referenceGemm(a, b, want, true, false, accumulate);
        gemmTransA(a.data(), b.data(), got.data(), m, k, n, accumulate);
        EXPECT_LT(relativeError(want, got), 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, GemmFuzz, ::testing::Range(0, 20));

TEST(GemmEdge, OneByOne)
{
    Tensor a({1, 1}, {3.0F});
    Tensor b({1, 1}, {-2.0F});
    Tensor c({1, 1});
    gemm(a.data(), b.data(), c.data(), 1, 1, 1, false);
    EXPECT_FLOAT_EQ(c[0], -6.0F);
}

TEST(GemmEdge, SparseInputsMatchReference)
{
    Rng rng(7);
    Tensor a = Tensor::randn({6, 6}, rng);
    for (int64_t i = 0; i < a.size(); i += 2)
        a[i] = 0.0F;
    Tensor b = Tensor::randn({6, 6}, rng);
    Tensor want({6, 6});
    referenceGemm(a, b, want, false, false, false);
    Tensor got({6, 6});
    gemm(a.data(), b.data(), got.data(), 6, 6, 6, false);
    EXPECT_LT(relativeError(want, got), 1e-5);
}

/** Shapes chosen to straddle the blocked kernel's tile sizes
 *  (MR=8, NR=48, KC=384, 32-row chunks), including 1 x k x 1. */
class GemmOddShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmOddShapes, AllVariantsMatchScalarReference)
{
    const auto [mi, ki, ni] = GetParam();
    const int64_t m = mi, k = ki, n = ni;
    Rng rng(static_cast<uint64_t>(9000 + m * 31 + k * 7 + n));
    for (const bool accumulate : {false, true}) {
        {
            Tensor a = Tensor::randn({m, k}, rng);
            Tensor b = Tensor::randn({k, n}, rng);
            Tensor want = Tensor::randn({m, n}, rng);
            Tensor got = want;
            referenceGemm(a, b, want, false, false, accumulate);
            gemm(a.data(), b.data(), got.data(), m, k, n, accumulate);
            EXPECT_LT(relativeError(want, got), 1e-4)
                << m << "x" << k << "x" << n << " acc=" << accumulate;
        }
        {
            Tensor a = Tensor::randn({m, k}, rng);
            Tensor b = Tensor::randn({n, k}, rng);
            Tensor want = Tensor::randn({m, n}, rng);
            Tensor got = want;
            referenceGemm(a, b, want, false, true, accumulate);
            gemmTransB(a.data(), b.data(), got.data(), m, k, n,
                       accumulate);
            EXPECT_LT(relativeError(want, got), 1e-4)
                << m << "x" << k << "x" << n << "^T acc=" << accumulate;
        }
        {
            Tensor a = Tensor::randn({m, k}, rng);
            Tensor b = Tensor::randn({m, n}, rng);
            Tensor want = Tensor::randn({k, n}, rng);
            Tensor got = want;
            referenceGemm(a, b, want, true, false, accumulate);
            gemmTransA(a.data(), b.data(), got.data(), m, k, n,
                       accumulate);
            EXPECT_LT(relativeError(want, got), 1e-4)
                << m << "^T x" << k << "x" << n << " acc=" << accumulate;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    TileBoundaries, GemmOddShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(1, 385, 1),
                      std::make_tuple(1, 17, 49),
                      std::make_tuple(7, 9, 47),
                      std::make_tuple(8, 384, 48),
                      std::make_tuple(9, 385, 49),
                      std::make_tuple(16, 8, 24),
                      std::make_tuple(31, 390, 95),
                      std::make_tuple(33, 401, 97),
                      std::make_tuple(65, 130, 53),
                      std::make_tuple(129, 63, 201)));

/** Pins each microkernel level this host can run and re-checks the
 *  dispatched entry points against the scalar reference; restores the
 *  startup level afterwards. */
class GemmSimdLevel : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override
    {
        restore_ = simd::activeLevel();
        const auto level = static_cast<simd::Level>(GetParam());
        if (!simd::levelSupported(level))
            GTEST_SKIP() << "level '" << simd::levelName(level)
                         << "' not available on this host/build";
        simd::setActiveLevel(level);
    }
    void TearDown() override { simd::setActiveLevel(restore_); }

  private:
    simd::Level restore_ = simd::Level::Scalar;
};

TEST_P(GemmSimdLevel, OddShapesMatchReference)
{
    // Shapes straddling the 8 x 48 register tile, the 384-deep k-slab
    // and the 32-row parallel chunk, so every partial-tile merge path
    // of the pinned kernel is exercised.
    for (const auto &[m, k, n] :
         {std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
          {1, 385, 1},
          {7, 9, 47},
          {9, 385, 49},
          {16, 8, 24},
          {33, 401, 97},
          {65, 130, 53}}) {
        Rng rng(static_cast<uint64_t>(500 + m + k + n));
        for (const bool accumulate : {false, true}) {
            Tensor a = Tensor::randn({m, k}, rng);
            Tensor b = Tensor::randn({k, n}, rng);
            Tensor want = Tensor::randn({m, n}, rng);
            Tensor got = want;
            referenceGemm(a, b, want, false, false, accumulate);
            gemm(a.data(), b.data(), got.data(), m, k, n, accumulate);
            EXPECT_LT(relativeError(want, got), 1e-4)
                << simd::levelName(simd::activeLevel()) << " " << m << "x"
                << k << "x" << n << " acc=" << accumulate;

            Tensor bt = Tensor::randn({n, k}, rng);
            Tensor wantT = Tensor::randn({m, n}, rng);
            Tensor gotT = wantT;
            referenceGemm(a, bt, wantT, false, true, accumulate);
            gemmTransB(a.data(), bt.data(), gotT.data(), m, k, n,
                       accumulate);
            EXPECT_LT(relativeError(wantT, gotT), 1e-4)
                << simd::levelName(simd::activeLevel()) << " transB " << m
                << "x" << k << "x" << n;
        }
    }
}

TEST_P(GemmSimdLevel, NanPropagates)
{
    // Zero-padded pack lanes must not suppress NaN/Inf: every level
    // computes full padded tiles rather than skipping zero entries.
    const int64_t m = 32, k = 64, n = 64;
    Rng rng(21);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    a(3, 5) = 0.0F;
    b(5, 7) = std::numeric_limits<float>::quiet_NaN();
    Tensor c({m, n});
    gemm(a.data(), b.data(), c.data(), m, k, n, false);
    EXPECT_TRUE(std::isnan(c(3, 7)))
        << simd::levelName(simd::activeLevel());
    EXPECT_FALSE(std::isnan(c(2, 6)))
        << simd::levelName(simd::activeLevel());
}

TEST_P(GemmSimdLevel, MatchesScalarLevelWithinTolerance)
{
    // Cross-level agreement is tolerance-based, not bitwise: wider
    // lanes contract multiply-adds with FMA while the scalar fallback
    // may not, so rounding differs by a few ULPs.
    const int64_t m = 33, k = 390, n = 95;
    Rng rng(22);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor got({m, n});
    gemm(a.data(), b.data(), got.data(), m, k, n, false);

    simd::setActiveLevel(simd::Level::Scalar);
    Tensor scalar({m, n});
    gemm(a.data(), b.data(), scalar.data(), m, k, n, false);
    EXPECT_LT(relativeError(scalar, got), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, GemmSimdLevel,
    ::testing::Values(static_cast<int>(simd::Level::Scalar),
                      static_cast<int>(simd::Level::Neon),
                      static_cast<int>(simd::Level::Avx2),
                      static_cast<int>(simd::Level::Avx512)),
    [](const ::testing::TestParamInfo<int> &levelInfo) {
        return simd::levelName(static_cast<simd::Level>(levelInfo.param));
    });

/** The fused inference path must agree with the unfused three-matmul
 *  chain: same factors, same input, tolerance for the different
 *  blocking/contraction order. */
TEST(SimdDispatch, PerLevelLookupMatchesDispatchTable)
{
    // The parity-test lookup must agree with what dispatch actually
    // installed for the running level.
    EXPECT_EQ(simd::microKernelForLevel(simd::activeLevel()),
              simd::activeKernels().microKernel);
}

TEST(FusedFactorizedForward, MatchesUnfusedWithinTolerance)
{
    Rng rng(23);
    for (const auto &[out, in, rank, rows] :
         {std::tuple<int64_t, int64_t, int64_t, int64_t>{64, 48, 12, 33},
          {96, 96, 40, 8},
          {176, 64, 16, 65}}) {
        Linear l(out, in, /*hasBias=*/true, "fusedtest", rng);
        l.installFactorShape(rank);
        for (Parameter *p : l.parameters())
            p->value = Tensor::randn(p->value.shape(), rng);
        Tensor x = Tensor::randn({rows, in}, rng);

        Linear::setFusedForwardEnabled(true);
        Tensor fused = l.forward(x);
        Linear::setFusedForwardEnabled(false);
        Tensor unfused = l.forward(x);
        Linear::setFusedForwardEnabled(true);

        ASSERT_EQ(fused.dim(0), rows);
        ASSERT_EQ(fused.dim(1), out);
        EXPECT_LT(relativeError(unfused, fused), 1e-5)
            << out << "x" << in << " rank " << rank << " rows " << rows;
    }
}

/** Below one tile of rows the fused gate must fall back to the
 *  unfused path (identical results, no packed-weight build). */
TEST(FusedFactorizedForward, SkinnyBatchTakesUnfusedPath)
{
    Rng rng(24);
    Linear l(32, 32, /*hasBias=*/false, "fusedtest.skinny", rng);
    ASSERT_TRUE(l.factorize(4).ok());
    Tensor x = Tensor::randn({1, 32}, rng);

    Linear::setFusedForwardEnabled(true);
    Tensor a = l.forward(x);
    Linear::setFusedForwardEnabled(false);
    Tensor b2 = l.forward(x);
    Linear::setFusedForwardEnabled(true);
    for (int64_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b2[i]) << i;
}

/** Writing factor values directly (as calibration and tests do via
 *  parameters()) must not leave the fused path computing against
 *  stale packed panels. */
TEST(FusedFactorizedForward, DetectsExternalFactorWrites)
{
    Rng rng(25);
    Linear l(40, 40, /*hasBias=*/false, "fusedtest.stale", rng);
    l.installFactorShape(8);
    for (Parameter *p : l.parameters())
        p->value = Tensor::randn(p->value.shape(), rng);
    Tensor x = Tensor::randn({16, 40}, rng);
    Tensor before = l.forward(x); // packs the factors

    for (Parameter *p : l.parameters())
        p->value[0] += 1.0F; // bypasses invalidatePackedWeights()
    Tensor after = l.forward(x);

    Linear::setFusedForwardEnabled(false);
    Tensor want = l.forward(x);
    Linear::setFusedForwardEnabled(true);
    EXPECT_LT(relativeError(want, after), 1e-5);
    EXPECT_GT(relativeError(before, after), 1e-6);
}

TEST(GemmEdge, NanPropagatesThroughZeroEntries)
{
    // 0 * NaN must be NaN: the old kernels skipped zero a-values and
    // silently dropped NaN/Inf contributions from b.
    Tensor a({1, 2}, {0.0F, 1.0F});
    Tensor b({2, 1},
             {std::numeric_limits<float>::quiet_NaN(), 2.0F});
    Tensor c({1, 1});
    gemm(a.data(), b.data(), c.data(), 1, 2, 1, false);
    EXPECT_TRUE(std::isnan(c[0]));

    // Same property through the blocked path.
    const int64_t m = 32, k = 64, n = 64;
    Rng rng(11);
    Tensor ab = Tensor::randn({m, k}, rng);
    Tensor bb = Tensor::randn({k, n}, rng);
    ab(3, 5) = 0.0F;
    bb(5, 7) = std::numeric_limits<float>::quiet_NaN();
    Tensor cb({m, n});
    gemm(ab.data(), bb.data(), cb.data(), m, k, n, false);
    EXPECT_TRUE(std::isnan(cb(3, 7)));

    // 0 * inf = NaN propagates through gemmTransA as well.
    Tensor at({1, 1}, {0.0F});
    Tensor bt({1, 1}, {std::numeric_limits<float>::infinity()});
    Tensor ct({1, 1});
    gemmTransA(at.data(), bt.data(), ct.data(), 1, 1, 1, false);
    EXPECT_TRUE(std::isnan(ct[0]));
}

} // namespace
} // namespace lrd
