/**
 * @file
 * Tests for the transformer model library: configuration arithmetic,
 * dense/factorized Linear equivalence, finite-difference gradient
 * checks through every layer type, causality, KV-cache consistency,
 * serialization, and basic trainability.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/transformer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace lrd {
namespace {

TokenSeq
randomTokens(const ModelConfig &cfg, int64_t n, Rng &rng)
{
    TokenSeq t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(cfg.vocabSize))));
    return t;
}

std::vector<int>
shiftTargets(const TokenSeq &tokens)
{
    std::vector<int> targets(tokens.begin() + 1, tokens.end());
    targets.push_back(-1);
    return targets;
}

TEST(Config, ValidationCatchesBadDims)
{
    ModelConfig c = testLlamaConfig();
    c.nHeads = 3; // 16 % 3 != 0
    EXPECT_THROW(c.validate(), std::runtime_error);
    c = testLlamaConfig();
    c.vocabSize = 0;
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(Config, DecomposableKindCountsMatchPaper)
{
    // Figure 4: 7 tensors in a Llama layer, 6 in a BERT layer.
    EXPECT_EQ(decomposableKinds(Arch::LlamaStyle).size(), 7U);
    EXPECT_EQ(decomposableKinds(Arch::BertStyle).size(), 6U);
}

TEST(Config, WeightShapesMatchArchitecture)
{
    ModelConfig llama = llama2_7bConfig();
    EXPECT_EQ(llama.weightShape(WeightKind::Query),
              (std::vector<int64_t>{4096, 4096}));
    EXPECT_EQ(llama.weightShape(WeightKind::Gate),
              (std::vector<int64_t>{11008, 4096}));
    EXPECT_EQ(llama.weightShape(WeightKind::Down),
              (std::vector<int64_t>{4096, 11008}));
    EXPECT_THROW(llama.weightShape(WeightKind::Intermediate),
                 std::runtime_error);

    ModelConfig bert = bertBaseConfig();
    EXPECT_EQ(bert.weightShape(WeightKind::Intermediate),
              (std::vector<int64_t>{3072, 768}));
    EXPECT_THROW(bert.weightShape(WeightKind::Gate), std::runtime_error);
}

TEST(Config, FullSizeParamCountsMatchPublishedScale)
{
    // Llama2-7B has ~6.7B parameters; BERT-Base ~110M.
    const double llama = static_cast<double>(llama2_7bConfig().totalParams());
    EXPECT_GT(llama, 6.5e9);
    EXPECT_LT(llama, 7.1e9);
    // Our BERT config uses an untied LM head (+23M over the published
    // tied-decoder 110M).
    const double bert = static_cast<double>(bertBaseConfig().totalParams());
    EXPECT_GT(bert, 1.0e8);
    EXPECT_LT(bert, 1.4e8);
}

TEST(Config, ModelParamCountMatchesConfigFormula)
{
    for (const ModelConfig &cfg : {testLlamaConfig(), testBertConfig()}) {
        TransformerModel m(cfg);
        EXPECT_EQ(m.paramCount(), cfg.totalParams()) << cfg.name;
    }
}

TEST(Linear, FactorizeReducesParamsPerFormula)
{
    Rng rng(1);
    Linear l(24, 16, false, "t", rng);
    const int64_t dense = l.paramCount();
    EXPECT_EQ(dense, 24 * 16);
    ASSERT_TRUE(l.factorize(2).ok());
    EXPECT_TRUE(l.isFactorized());
    EXPECT_EQ(l.paramCount(), 24 * 2 + 2 * 2 + 2 * 16);
    EXPECT_LT(l.paramCount(), dense);
}

TEST(Linear, FullRankFactorizationPreservesOutput)
{
    Rng rng(2);
    Linear l(12, 10, false, "t", rng);
    Tensor x = Tensor::randn({5, 10}, rng);
    Tensor dense = l.forward(x);
    ASSERT_TRUE(l.factorize(10).ok());
    Tensor fact = l.forward(x);
    EXPECT_LT(relativeError(dense, fact), 1e-3);
}

TEST(Linear, DensifyRoundTrip)
{
    Rng rng(3);
    Linear l(8, 8, false, "t", rng);
    Tensor w0 = l.weight().value;
    ASSERT_TRUE(l.factorize(8).ok());
    l.densify();
    EXPECT_LT(relativeError(w0, l.weight().value), 1e-4);
}

TEST(Linear, FactorizedOutputErrorShrinksWithRank)
{
    Rng rng(4);
    Tensor x = Tensor::randn({6, 20}, rng);
    double prev = 1e9;
    for (int64_t pr : {1, 4, 10, 16}) {
        Rng r1(4);
        Linear l(16, 20, false, "t", r1);
        Rng r2(4);
        Linear dense(16, 20, false, "t", r2);
        Tensor want = dense.forward(x);
        ASSERT_TRUE(l.factorize(pr).ok());
        const double err = relativeError(want, l.forward(x));
        EXPECT_LE(err, prev + 1e-6) << "pr " << pr;
        prev = err;
    }
    EXPECT_LT(prev, 1e-3);
}

TEST(Linear, WeightAccessorFatalWhenFactorized)
{
    Rng rng(5);
    Linear l(4, 4, false, "t", rng);
    ASSERT_TRUE(l.factorize(1).ok());
    EXPECT_THROW(l.weight(), std::runtime_error);
    EXPECT_THROW(l.factorize(1), std::runtime_error);
}

TEST(Model, ForwardShapeAndFiniteness)
{
    for (const ModelConfig &cfg : {testLlamaConfig(), testBertConfig()}) {
        TransformerModel m(cfg);
        Rng rng(6);
        TokenSeq toks = randomTokens(cfg, 10, rng);
        Tensor logits = m.forward(toks);
        EXPECT_EQ(logits.shape(), (Shape{10, cfg.vocabSize})) << cfg.name;
        EXPECT_TRUE(logits.allFinite()) << cfg.name;
    }
}

TEST(Model, ForwardRejectsOverlongSequence)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    Rng rng(7);
    TokenSeq toks = randomTokens(cfg, cfg.maxSeq + 1, rng);
    EXPECT_THROW(m.forward(toks), std::runtime_error);
}

TEST(Model, CausalityFutureTokensDoNotAffectPast)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    Rng rng(8);
    TokenSeq a = randomTokens(cfg, 8, rng);
    TokenSeq b = a;
    b[7] = (b[7] + 1) % static_cast<int>(cfg.vocabSize);
    Tensor la = m.forward(a);
    Tensor lb = m.forward(b);
    // Rows 0..6 must be identical; row 7 must differ.
    for (int64_t i = 0; i < 7; ++i)
        for (int64_t j = 0; j < cfg.vocabSize; ++j)
            ASSERT_FLOAT_EQ(la(i, j), lb(i, j)) << "row " << i;
    double diff = 0.0;
    for (int64_t j = 0; j < cfg.vocabSize; ++j)
        diff += std::abs(la(7, j) - lb(7, j));
    EXPECT_GT(diff, 1e-4);
}

TEST(Model, BertIsBidirectional)
{
    ModelConfig cfg = testBertConfig();
    TransformerModel m(cfg);
    Rng rng(9);
    TokenSeq a = randomTokens(cfg, 8, rng);
    TokenSeq b = a;
    b[7] = (b[7] + 1) % static_cast<int>(cfg.vocabSize);
    Tensor la = m.forward(a);
    Tensor lb = m.forward(b);
    // Early rows must change: the encoder attends to the future.
    double diff = 0.0;
    for (int64_t j = 0; j < cfg.vocabSize; ++j)
        diff += std::abs(la(0, j) - lb(0, j));
    EXPECT_GT(diff, 1e-6);
}

TEST(Model, KvCacheMatchesFullForward)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    Rng rng(10);
    TokenSeq toks = randomTokens(cfg, 9, rng);

    Tensor full = m.forward(toks);
    InferenceSession session(m);
    // Feed a 4-token chunk then the rest one-by-one.
    TokenSeq head(toks.begin(), toks.begin() + 4);
    Tensor logits = session.append(head);
    for (int64_t j = 0; j < cfg.vocabSize; ++j)
        EXPECT_NEAR(logits[j], full(3, j), 2e-3) << "after prefill";
    for (size_t i = 4; i < toks.size(); ++i) {
        logits = session.append({toks[i]});
        for (int64_t j = 0; j < cfg.vocabSize; ++j)
            ASSERT_NEAR(logits[j], full(static_cast<int64_t>(i), j), 2e-3)
                << "pos " << i;
    }
}

TEST(Model, KvCacheWorksWithFactorizedLayers)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    for (WeightKind k : decomposableKinds(cfg.arch))
        ASSERT_TRUE(m.applyTucker(0, k, 2).ok());
    Rng rng(11);
    TokenSeq toks = randomTokens(cfg, 6, rng);
    Tensor full = m.forward(toks);
    InferenceSession session(m);
    Tensor logits = session.append(toks);
    for (int64_t j = 0; j < cfg.vocabSize; ++j)
        EXPECT_NEAR(logits[j], full(5, j), 2e-3);
}

TEST(Model, ScoreContinuationMatchesFullForward)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    Rng rng(12);
    TokenSeq ctx = randomTokens(cfg, 5, rng);
    TokenSeq cont = randomTokens(cfg, 3, rng);

    TokenSeq all = ctx;
    all.insert(all.end(), cont.begin(), cont.end());
    Tensor logits = m.forward(all);
    Tensor lp = logSoftmaxLastDim(logits);
    double want = 0.0;
    for (size_t i = 0; i < cont.size(); ++i)
        want += lp(static_cast<int64_t>(ctx.size() + i) - 1,
                   cont[i]);

    EXPECT_NEAR(scoreContinuation(m, ctx, cont), want, 5e-3);
}

TEST(Model, SerializationRoundTripsExactLogits)
{
    for (const ModelConfig &cfg : {testLlamaConfig(), testBertConfig()}) {
        TransformerModel m(cfg, /*seed=*/99);
        auto bytes = m.serialize();
        TransformerModel m2 = TransformerModel::deserialize(bytes);
        Rng rng(13);
        TokenSeq toks = randomTokens(cfg, 7, rng);
        EXPECT_LT(relativeError(m.forward(toks), m2.forward(toks)), 1e-7)
            << cfg.name;
    }
}

TEST(Model, FactorizedSerializationRoundTrips)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg, 42);
    ASSERT_TRUE(m.applyTucker(1, WeightKind::Gate, 2).ok());
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Query, 1).ok());
    const auto bytes = m.serialize();
    TransformerModel m2 = TransformerModel::deserialize(bytes);
    EXPECT_TRUE(m2.anyFactorized());
    EXPECT_EQ(m2.paramCount(), m.paramCount());
    Rng rng(4);
    TokenSeq toks = randomTokens(cfg, 6, rng);
    EXPECT_LT(relativeError(m.forward(toks), m2.forward(toks)), 1e-7);
    // A compressed checkpoint is smaller than the dense one.
    TransformerModel dense(cfg, 42);
    EXPECT_LT(bytes.size(), dense.serialize().size());
}

TEST(Model, ApplyTuckerReducesParamCount)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    const int64_t before = m.paramCount();
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Query, 1).ok());
    const int64_t after = m.paramCount();
    // Test config dModel = 16, pr = 1: dense 256 -> 16 + 1 + 16.
    EXPECT_EQ(before - after, 16 * 16 - (16 * 1 + 1 * 1 + 1 * 16));
}

TEST(Gqa, MatchesMhaWhenKvHeadsEqualHeads)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel mha(cfg, 33);
    ModelConfig gqaCfg = cfg;
    gqaCfg.nKvHeads = cfg.nHeads; // explicit == implicit
    TransformerModel gqa(gqaCfg, 33);
    Rng rng(50);
    TokenSeq toks = randomTokens(cfg, 8, rng);
    EXPECT_LT(relativeError(mha.forward(toks), gqa.forward(toks)), 1e-7);
}

TEST(Gqa, GroupedKvReducesParamsAndStaysConsistent)
{
    ModelConfig cfg = testLlamaConfig(); // 2 heads
    cfg.nKvHeads = 1;
    cfg.validate();
    TransformerModel m(cfg, 34);
    ModelConfig full = testLlamaConfig();
    TransformerModel mFull(full, 34);
    EXPECT_LT(m.paramCount(), mFull.paramCount());
    EXPECT_EQ(m.paramCount(), cfg.totalParams());

    // Causality and KV-cache equivalence must hold under GQA too.
    Rng rng(51);
    TokenSeq toks = randomTokens(cfg, 7, rng);
    Tensor fullLogits = m.forward(toks);
    InferenceSession session(m);
    Tensor logits = session.append(toks);
    for (int64_t j = 0; j < cfg.vocabSize; ++j)
        EXPECT_NEAR(logits[j], fullLogits(6, j), 2e-3);
}

TEST(Gqa, GradientsFlowThroughGroupedHeads)
{
    ModelConfig cfg = testLlamaConfig();
    cfg.nKvHeads = 1;
    TransformerModel m(cfg, 35);
    Rng rng(52);
    TokenSeq toks = randomTokens(cfg, 8, rng);
    std::vector<int> targets = shiftTargets(toks);
    const double initial = m.loss(toks, targets);
    double last = initial;
    for (int step = 0; step < 10; ++step) {
        m.zeroGrad();
        last = m.lossAndGrad(toks, targets);
        for (Parameter *p : m.parameters())
            axpy(p->value, -0.05F, p->grad);
    }
    EXPECT_LT(last, initial - 0.05);
}

TEST(Gqa, InvalidKvHeadsRejected)
{
    ModelConfig cfg = testLlamaConfig(); // 2 heads
    cfg.nKvHeads = 3; // does not divide
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(Gqa, Llama70bParamCountMatchesPublished)
{
    // With GQA the 70B config must land near the published ~69B.
    const double params =
        static_cast<double>(llama2_70bConfig().totalParams());
    EXPECT_GT(params, 66e9);
    EXPECT_LT(params, 72e9);
}

TEST(Model, LossDecreasesUnderSgd)
{
    // A few steps of plain SGD on one batch must reduce the loss:
    // validates the end-to-end gradient direction.
    for (const ModelConfig &cfg : {testLlamaConfig(), testBertConfig()}) {
        TransformerModel m(cfg, 7);
        Rng rng(14);
        TokenSeq toks = randomTokens(cfg, 12, rng);
        std::vector<int> targets = shiftTargets(toks);
        const double initial = m.loss(toks, targets);
        double last = initial;
        for (int step = 0; step < 10; ++step) {
            m.zeroGrad();
            last = m.lossAndGrad(toks, targets);
            for (Parameter *p : m.parameters())
                axpy(p->value, -0.05F, p->grad);
        }
        EXPECT_LT(last, initial - 0.05) << cfg.name;
    }
}

TEST(Model, GreedyGenerateIsDeterministicAndBounded)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg);
    TokenSeq prompt = {1, 2, 3};
    TokenSeq a = greedyGenerate(m, prompt, 5, /*stopToken=*/-1);
    TokenSeq b = greedyGenerate(m, prompt, 5, -1);
    EXPECT_EQ(a, b);
    EXPECT_LE(a.size(), 5U);
}

/**
 * Finite-difference gradient check through the whole model. Perturbs
 * a sample of coordinates of every parameter and compares the
 * numerical derivative with the analytic gradient.
 */
class GradCheck : public ::testing::TestWithParam<int> {};

TEST_P(GradCheck, AnalyticMatchesNumeric)
{
    const bool llama = GetParam() == 0;
    ModelConfig cfg = llama ? testLlamaConfig() : testBertConfig();
    TransformerModel m(cfg, 21);
    Rng rng(15);
    TokenSeq toks = randomTokens(cfg, 8, rng);
    std::vector<int> targets = shiftTargets(toks);

    m.zeroGrad();
    m.lossAndGrad(toks, targets);

    int checked = 0, failed = 0;
    for (Parameter *p : m.parameters()) {
        // Sample up to 4 coordinates per parameter.
        for (int s = 0; s < 4; ++s) {
            const auto idx = static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(p->value.size())));
            const float orig = p->value[idx];
            const float eps = 1e-2F;
            p->value[idx] = orig + eps;
            const double up = m.loss(toks, targets);
            p->value[idx] = orig - eps;
            const double down = m.loss(toks, targets);
            p->value[idx] = orig;
            const double numeric = (up - down) / (2.0 * eps);
            const double analytic = p->grad[idx];
            const double scale =
                std::max({std::abs(numeric), std::abs(analytic), 1e-4});
            ++checked;
            if (std::abs(numeric - analytic) / scale > 0.08)
                ++failed;
        }
    }
    // Allow a small fraction of float32 finite-difference outliers.
    EXPECT_LE(failed, checked / 20)
        << failed << "/" << checked << " gradient checks failed";
}

INSTANTIATE_TEST_SUITE_P(Archs, GradCheck, ::testing::Values(0, 1));

/** Gradient check through factorized linears (fine-tuning path). */
TEST(GradCheckFactorized, AnalyticMatchesNumeric)
{
    ModelConfig cfg = testLlamaConfig();
    TransformerModel m(cfg, 22);
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Gate, 2).ok());
    ASSERT_TRUE(m.applyTucker(1, WeightKind::Query, 2).ok());
    Rng rng(16);
    TokenSeq toks = randomTokens(cfg, 8, rng);
    std::vector<int> targets = shiftTargets(toks);

    m.zeroGrad();
    m.lossAndGrad(toks, targets);

    int checked = 0, failed = 0;
    for (Parameter *p : m.parameters()) {
        if (p->name.find(".u1") == std::string::npos
            && p->name.find(".u2") == std::string::npos
            && p->name.find(".core") == std::string::npos)
            continue;
        for (int s = 0; s < 6; ++s) {
            const auto idx = static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(p->value.size())));
            const float orig = p->value[idx];
            const float eps = 1e-2F;
            p->value[idx] = orig + eps;
            const double up = m.loss(toks, targets);
            p->value[idx] = orig - eps;
            const double down = m.loss(toks, targets);
            p->value[idx] = orig;
            const double numeric = (up - down) / (2.0 * eps);
            const double analytic = p->grad[idx];
            const double scale =
                std::max({std::abs(numeric), std::abs(analytic), 1e-4});
            ++checked;
            if (std::abs(numeric - analytic) / scale > 0.1)
                ++failed;
        }
    }
    EXPECT_GT(checked, 0);
    EXPECT_LE(failed, checked / 10);
}

} // namespace
} // namespace lrd
