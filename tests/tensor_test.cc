/**
 * @file
 * Unit and property tests for the Tensor container and elementwise /
 * matrix operations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace lrd {
namespace {

TEST(Tensor, DefaultIsScalarZero)
{
    Tensor t;
    EXPECT_EQ(t.rank(), 0);
    EXPECT_EQ(t.size(), 1);
    EXPECT_FLOAT_EQ(t[0], 0.0F);
}

TEST(Tensor, ZerosShapeAndContents)
{
    Tensor t = Tensor::zeros({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.size(), 24);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t[i], 0.0F);
}

TEST(Tensor, FullAndOnes)
{
    EXPECT_FLOAT_EQ(Tensor::ones({3})[2], 1.0F);
    EXPECT_FLOAT_EQ(Tensor::full({2, 2}, -2.5F)[3], -2.5F);
}

TEST(Tensor, EyeIsIdentity)
{
    Tensor i = Tensor::eye(3);
    for (int64_t r = 0; r < 3; ++r)
        for (int64_t c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(i(r, c), r == c ? 1.0F : 0.0F);
}

TEST(Tensor, ConstructorRejectsMismatchedData)
{
    EXPECT_THROW(Tensor({2, 2}, {1.0F, 2.0F}), std::runtime_error);
}

TEST(Tensor, RowMajorIndexing)
{
    Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
    EXPECT_FLOAT_EQ(t(0, 0), 0.0F);
    EXPECT_FLOAT_EQ(t(0, 2), 2.0F);
    EXPECT_FLOAT_EQ(t(1, 0), 3.0F);
    EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0F);
}

TEST(Tensor, AtBoundsChecked)
{
    Tensor t({2, 2});
    EXPECT_THROW(t.at({2, 0}), std::runtime_error);
    EXPECT_THROW(t.at({0}), std::runtime_error);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
    Tensor r = t.reshaped({3, 2});
    EXPECT_FLOAT_EQ(r(2, 1), 5.0F);
    EXPECT_THROW(t.reshaped({4, 2}), std::runtime_error);
}

TEST(Tensor, SumNormMinMax)
{
    Tensor t({2, 2}, {1, -2, 3, -4});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_NEAR(t.norm(), std::sqrt(30.0), 1e-6);
    EXPECT_FLOAT_EQ(t.minValue(), -4.0F);
    EXPECT_FLOAT_EQ(t.maxValue(), 3.0F);
}

TEST(Tensor, AllFiniteDetectsNanInf)
{
    Tensor t({2});
    EXPECT_TRUE(t.allFinite());
    t[0] = std::nanf("");
    EXPECT_FALSE(t.allFinite());
    t[0] = INFINITY;
    EXPECT_FALSE(t.allFinite());
}

TEST(Tensor, RanduStaysInRangeAndIsSeedDeterministic)
{
    Rng a(7);
    Tensor x = Tensor::randu({256}, a, -0.5F, 2.0F);
    for (int64_t i = 0; i < x.size(); ++i) {
        EXPECT_GE(x[i], -0.5F);
        EXPECT_LT(x[i], 2.0F);
    }
    Rng b(7);
    const Tensor y = Tensor::randu({256}, b, -0.5F, 2.0F);
    for (int64_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(x[i], y[i]);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(5);
    Tensor t = Tensor::randn({100, 100}, rng, 2.0F);
    double mean = t.sum() / t.size();
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(t.norm() / std::sqrt(static_cast<double>(t.size())), 2.0,
                0.05);
}

TEST(Ops, AddSubHadamardScale)
{
    Tensor a({2}, {1, 2});
    Tensor b({2}, {3, 5});
    EXPECT_FLOAT_EQ(add(a, b)[1], 7.0F);
    EXPECT_FLOAT_EQ(sub(b, a)[0], 2.0F);
    EXPECT_FLOAT_EQ(hadamard(a, b)[1], 10.0F);
    EXPECT_FLOAT_EQ(scale(a, -2.0F)[0], -2.0F);
}

TEST(Ops, ShapeMismatchThrows)
{
    Tensor a({2});
    Tensor b({3});
    EXPECT_THROW(add(a, b), std::runtime_error);
    EXPECT_THROW(hadamard(a, b), std::runtime_error);
}

TEST(Ops, AxpyAccumulates)
{
    Tensor a({2}, {1, 1});
    Tensor b({2}, {2, 4});
    axpy(a, 0.5F, b);
    EXPECT_FLOAT_EQ(a[0], 2.0F);
    EXPECT_FLOAT_EQ(a[1], 3.0F);
}

TEST(Ops, MatmulKnownResult)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0F);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0F);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0F);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0F);
}

TEST(Ops, MatmulDimensionMismatchThrows)
{
    Tensor a({2, 3});
    Tensor b({2, 2});
    EXPECT_THROW(matmul(a, b), std::runtime_error);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose)
{
    Rng rng(9);
    Tensor a = Tensor::randn({4, 6}, rng);
    Tensor b = Tensor::randn({5, 6}, rng);
    Tensor viaTrans = matmul(a, transpose2d(b));
    Tensor direct = matmulTransB(a, b);
    EXPECT_LT(relativeError(viaTrans, direct), 1e-6);

    Tensor c = Tensor::randn({4, 5}, rng);
    Tensor viaTransA = matmul(transpose2d(a), c);
    Tensor directA = matmulTransA(a, c);
    EXPECT_LT(relativeError(viaTransA, directA), 1e-6);
}

TEST(Ops, MatvecMatchesMatmul)
{
    Rng rng(10);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor x = Tensor::randn({4}, rng);
    Tensor y = matvec(a, x);
    Tensor viaMm = matmul(a, x.reshaped({4, 1}));
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(y[i], viaMm(i, 0), 1e-5);
}

TEST(Ops, TransposeIsInvolution)
{
    Rng rng(11);
    Tensor a = Tensor::randn({3, 7}, rng);
    EXPECT_LT(relativeError(a, transpose2d(transpose2d(a))), 1e-7);
}

TEST(Ops, ReluGeluSiluPointwiseValues)
{
    Tensor x({3}, {-1.0F, 0.0F, 2.0F});
    Tensor r = relu(x);
    EXPECT_FLOAT_EQ(r[0], 0.0F);
    EXPECT_FLOAT_EQ(r[2], 2.0F);

    Tensor g = gelu(x);
    EXPECT_NEAR(g[0], -0.1588F, 1e-3); // known GELU(-1)
    EXPECT_FLOAT_EQ(g[1], 0.0F);
    EXPECT_NEAR(g[2], 1.9546F, 1e-3); // known GELU(2)

    Tensor s = silu(x);
    EXPECT_NEAR(s[0], -0.2689F, 1e-3); // -1*sigmoid(-1)
    EXPECT_FLOAT_EQ(s[1], 0.0F);
    EXPECT_NEAR(s[2], 1.7616F, 1e-3);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(12);
    Tensor x = Tensor::randn({5, 8}, rng, 3.0F);
    Tensor p = softmaxLastDim(x);
    for (int64_t r = 0; r < 5; ++r) {
        double s = 0.0;
        for (int64_t c = 0; c < 8; ++c) {
            EXPECT_GT(p(r, c), 0.0F);
            s += p(r, c);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxStableUnderLargeInputs)
{
    Tensor x({1, 3}, {1000.0F, 1000.0F, 1000.0F});
    Tensor p = softmaxLastDim(x);
    for (int64_t c = 0; c < 3; ++c)
        EXPECT_NEAR(p(0, c), 1.0F / 3.0F, 1e-5);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax)
{
    Rng rng(13);
    Tensor x = Tensor::randn({4, 6}, rng, 2.0F);
    Tensor ls = logSoftmaxLastDim(x);
    Tensor p = softmaxLastDim(x);
    for (int64_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(ls[i], std::log(p[i]), 1e-4);
}

TEST(Ops, RelativeErrorProperties)
{
    Tensor a({2}, {3, 4});
    EXPECT_DOUBLE_EQ(relativeError(a, a), 0.0);
    Tensor z({2});
    EXPECT_DOUBLE_EQ(relativeError(z, z), 0.0);
    Tensor b({2}, {0, 0});
    EXPECT_DOUBLE_EQ(relativeError(a, b), 1.0);
}

TEST(Ops, DotMatchesManual)
{
    Tensor a({3}, {1, 2, 3});
    Tensor b({3}, {4, 5, 6});
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

/** Property sweep: (A*B)*C == A*(B*C) across random shapes. */
class MatmulAssociativity : public ::testing::TestWithParam<int> {};

TEST_P(MatmulAssociativity, HoldsNumerically)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    const int64_t m = 2 + static_cast<int64_t>(rng.uniformInt(6));
    const int64_t k = 2 + static_cast<int64_t>(rng.uniformInt(6));
    const int64_t n = 2 + static_cast<int64_t>(rng.uniformInt(6));
    const int64_t p = 2 + static_cast<int64_t>(rng.uniformInt(6));
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c = Tensor::randn({n, p}, rng);
    EXPECT_LT(relativeError(matmul(matmul(a, b), c),
                            matmul(a, matmul(b, c))),
              1e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatmulAssociativity,
                         ::testing::Range(0, 10));

} // namespace
} // namespace lrd
