/**
 * @file
 * Robustness tests for model serialization: format stability,
 * corruption detection, factorized manifests, and cross-config
 * mismatch handling.
 */

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "tensor/ops.h"
#include "util/cache.h"

namespace lrd {
namespace {

std::vector<uint8_t>
bytesFor(uint64_t seed)
{
    TransformerModel m(testLlamaConfig(), seed);
    return m.serialize();
}

TEST(Serialization, DeterministicBytesForSameModel)
{
    EXPECT_EQ(bytesFor(7), bytesFor(7));
    EXPECT_NE(bytesFor(7), bytesFor(8));
}

TEST(Serialization, TruncatedStreamIsRejected)
{
    auto bytes = bytesFor(1);
    for (size_t cut : {size_t{0}, size_t{4}, bytes.size() / 2,
                       bytes.size() - 1}) {
        std::vector<uint8_t> truncated(bytes.begin(),
                                       bytes.begin()
                                           + static_cast<int64_t>(cut));
        EXPECT_THROW(TransformerModel::deserialize(truncated),
                     std::runtime_error)
            << "cut at " << cut;
    }
}

TEST(Serialization, BadMagicIsRejected)
{
    auto bytes = bytesFor(2);
    bytes[8] ^= 0xFF; // inside the magic string
    EXPECT_THROW(TransformerModel::deserialize(bytes),
                 std::runtime_error);
}

TEST(Serialization, ConfigRoundTripsExactly)
{
    ModelConfig cfg = testBertConfig();
    cfg.name = "custom-name";
    TransformerModel m(cfg, 3);
    TransformerModel m2 = TransformerModel::deserialize(m.serialize());
    EXPECT_EQ(m2.config().name, "custom-name");
    EXPECT_EQ(m2.config().arch, cfg.arch);
    EXPECT_EQ(m2.config().vocabSize, cfg.vocabSize);
    EXPECT_EQ(m2.config().dModel, cfg.dModel);
    EXPECT_EQ(m2.config().nLayers, cfg.nLayers);
    EXPECT_EQ(m2.config().nHeads, cfg.nHeads);
    EXPECT_EQ(m2.config().dFf, cfg.dFf);
    EXPECT_EQ(m2.config().maxSeq, cfg.maxSeq);
}

TEST(Serialization, FactorizedManifestPreservesRanks)
{
    TransformerModel m(testLlamaConfig(), 4);
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Down, 3).ok());
    ASSERT_TRUE(m.applyTucker(1, WeightKind::Key, 1).ok());
    TransformerModel m2 = TransformerModel::deserialize(m.serialize());
    EXPECT_TRUE(m2.linear(0, WeightKind::Down).isFactorized());
    EXPECT_EQ(m2.linear(0, WeightKind::Down).prunedRank(), 3);
    EXPECT_TRUE(m2.linear(1, WeightKind::Key).isFactorized());
    EXPECT_EQ(m2.linear(1, WeightKind::Key).prunedRank(), 1);
    EXPECT_FALSE(m2.linear(0, WeightKind::Key).isFactorized());
}

TEST(Serialization, FactorizedCheckpointIsSmallerProportionally)
{
    TransformerModel dense(testLlamaConfig(), 5);
    const size_t denseSize = dense.serialize().size();

    TransformerModel comp(testLlamaConfig(), 5);
    for (WeightKind k : decomposableKinds(Arch::LlamaStyle))
        for (int64_t l = 0; l < comp.numLayers(); ++l)
            ASSERT_TRUE(comp.applyTucker(l, k, 1).ok());
    const size_t compSize = comp.serialize().size();
    // Param counts predict the byte sizes (4 bytes per float + small
    // header/manifest overhead).
    const double paramRatio = static_cast<double>(comp.paramCount())
                              / static_cast<double>(dense.paramCount());
    const double byteRatio = static_cast<double>(compSize)
                             / static_cast<double>(denseSize);
    EXPECT_NEAR(byteRatio, paramRatio, 0.12); // small model: header/name overhead
}

TEST(Serialization, DensifiedModelReadsBackAsDense)
{
    TransformerModel m(testLlamaConfig(), 6);
    ASSERT_TRUE(m.applyTucker(0, WeightKind::Query, 2).ok());
    m.linear(0, WeightKind::Query).densify();
    TransformerModel m2 = TransformerModel::deserialize(m.serialize());
    EXPECT_FALSE(m2.anyFactorized());
}

TEST(Serialization, GqaConfigSurvivesRoundTrip)
{
    ModelConfig cfg = testLlamaConfig();
    cfg.nKvHeads = 1;
    TransformerModel m(cfg, 7);
    // nKvHeads is derivable from the K projection shape; verify the
    // deserialized model is numerically identical.
    TransformerModel m2 = TransformerModel::deserialize(m.serialize());
    Rng rng(1);
    TokenSeq toks = {1, 2, 3, 4};
    EXPECT_LT(relativeError(m.forward(toks), m2.forward(toks)), 1e-7);
}

} // namespace
} // namespace lrd
