# Empty compiler generated dependencies file for lrd_train.
# This may be replaced when dependencies are built.
