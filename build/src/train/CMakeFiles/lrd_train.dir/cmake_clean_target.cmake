file(REMOVE_RECURSE
  "liblrd_train.a"
)
