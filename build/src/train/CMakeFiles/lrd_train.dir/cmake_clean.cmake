file(REMOVE_RECURSE
  "CMakeFiles/lrd_train.dir/adam.cc.o"
  "CMakeFiles/lrd_train.dir/adam.cc.o.d"
  "CMakeFiles/lrd_train.dir/corpus.cc.o"
  "CMakeFiles/lrd_train.dir/corpus.cc.o.d"
  "CMakeFiles/lrd_train.dir/model_zoo.cc.o"
  "CMakeFiles/lrd_train.dir/model_zoo.cc.o.d"
  "CMakeFiles/lrd_train.dir/trainer.cc.o"
  "CMakeFiles/lrd_train.dir/trainer.cc.o.d"
  "CMakeFiles/lrd_train.dir/world.cc.o"
  "CMakeFiles/lrd_train.dir/world.cc.o.d"
  "liblrd_train.a"
  "liblrd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
