# Empty compiler generated dependencies file for lrd_decomp.
# This may be replaced when dependencies are built.
