file(REMOVE_RECURSE
  "CMakeFiles/lrd_decomp.dir/tucker.cc.o"
  "CMakeFiles/lrd_decomp.dir/tucker.cc.o.d"
  "liblrd_decomp.a"
  "liblrd_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
