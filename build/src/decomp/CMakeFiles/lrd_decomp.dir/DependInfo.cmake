
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/tucker.cc" "src/decomp/CMakeFiles/lrd_decomp.dir/tucker.cc.o" "gcc" "src/decomp/CMakeFiles/lrd_decomp.dir/tucker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/lrd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lrd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
