file(REMOVE_RECURSE
  "liblrd_decomp.a"
)
