
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attention.cc" "src/model/CMakeFiles/lrd_model.dir/attention.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/attention.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/lrd_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/config.cc.o.d"
  "/root/repo/src/model/embedding.cc" "src/model/CMakeFiles/lrd_model.dir/embedding.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/embedding.cc.o.d"
  "/root/repo/src/model/linear.cc" "src/model/CMakeFiles/lrd_model.dir/linear.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/linear.cc.o.d"
  "/root/repo/src/model/mlp.cc" "src/model/CMakeFiles/lrd_model.dir/mlp.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/mlp.cc.o.d"
  "/root/repo/src/model/norms.cc" "src/model/CMakeFiles/lrd_model.dir/norms.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/norms.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/lrd_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/lrd_model.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decomp/CMakeFiles/lrd_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lrd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lrd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/lrd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
