file(REMOVE_RECURSE
  "liblrd_model.a"
)
