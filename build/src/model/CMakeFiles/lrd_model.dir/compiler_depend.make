# Empty compiler generated dependencies file for lrd_model.
# This may be replaced when dependencies are built.
