file(REMOVE_RECURSE
  "CMakeFiles/lrd_model.dir/attention.cc.o"
  "CMakeFiles/lrd_model.dir/attention.cc.o.d"
  "CMakeFiles/lrd_model.dir/config.cc.o"
  "CMakeFiles/lrd_model.dir/config.cc.o.d"
  "CMakeFiles/lrd_model.dir/embedding.cc.o"
  "CMakeFiles/lrd_model.dir/embedding.cc.o.d"
  "CMakeFiles/lrd_model.dir/linear.cc.o"
  "CMakeFiles/lrd_model.dir/linear.cc.o.d"
  "CMakeFiles/lrd_model.dir/mlp.cc.o"
  "CMakeFiles/lrd_model.dir/mlp.cc.o.d"
  "CMakeFiles/lrd_model.dir/norms.cc.o"
  "CMakeFiles/lrd_model.dir/norms.cc.o.d"
  "CMakeFiles/lrd_model.dir/transformer.cc.o"
  "CMakeFiles/lrd_model.dir/transformer.cc.o.d"
  "liblrd_model.a"
  "liblrd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
