# Empty compiler generated dependencies file for lrd_tensor.
# This may be replaced when dependencies are built.
