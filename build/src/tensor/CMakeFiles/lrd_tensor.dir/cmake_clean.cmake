file(REMOVE_RECURSE
  "CMakeFiles/lrd_tensor.dir/ops.cc.o"
  "CMakeFiles/lrd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/lrd_tensor.dir/tensor.cc.o"
  "CMakeFiles/lrd_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/lrd_tensor.dir/unfold.cc.o"
  "CMakeFiles/lrd_tensor.dir/unfold.cc.o.d"
  "liblrd_tensor.a"
  "liblrd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
