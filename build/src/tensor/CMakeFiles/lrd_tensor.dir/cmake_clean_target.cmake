file(REMOVE_RECURSE
  "liblrd_tensor.a"
)
