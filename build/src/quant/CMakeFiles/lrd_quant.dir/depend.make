# Empty dependencies file for lrd_quant.
# This may be replaced when dependencies are built.
