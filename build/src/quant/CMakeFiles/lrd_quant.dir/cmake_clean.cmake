file(REMOVE_RECURSE
  "CMakeFiles/lrd_quant.dir/prune.cc.o"
  "CMakeFiles/lrd_quant.dir/prune.cc.o.d"
  "CMakeFiles/lrd_quant.dir/quantize.cc.o"
  "CMakeFiles/lrd_quant.dir/quantize.cc.o.d"
  "liblrd_quant.a"
  "liblrd_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
