file(REMOVE_RECURSE
  "liblrd_quant.a"
)
