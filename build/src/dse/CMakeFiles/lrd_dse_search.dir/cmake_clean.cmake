file(REMOVE_RECURSE
  "CMakeFiles/lrd_dse_search.dir/optimizer.cc.o"
  "CMakeFiles/lrd_dse_search.dir/optimizer.cc.o.d"
  "liblrd_dse_search.a"
  "liblrd_dse_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_dse_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
