# Empty compiler generated dependencies file for lrd_dse_search.
# This may be replaced when dependencies are built.
