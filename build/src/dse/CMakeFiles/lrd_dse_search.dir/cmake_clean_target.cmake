file(REMOVE_RECURSE
  "liblrd_dse_search.a"
)
