file(REMOVE_RECURSE
  "liblrd_dse.a"
)
