# Empty dependencies file for lrd_dse.
# This may be replaced when dependencies are built.
