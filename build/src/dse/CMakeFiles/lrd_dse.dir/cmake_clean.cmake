file(REMOVE_RECURSE
  "CMakeFiles/lrd_dse.dir/activation_aware.cc.o"
  "CMakeFiles/lrd_dse.dir/activation_aware.cc.o.d"
  "CMakeFiles/lrd_dse.dir/decomp_config.cc.o"
  "CMakeFiles/lrd_dse.dir/decomp_config.cc.o.d"
  "CMakeFiles/lrd_dse.dir/design_space.cc.o"
  "CMakeFiles/lrd_dse.dir/design_space.cc.o.d"
  "CMakeFiles/lrd_dse.dir/schedules.cc.o"
  "CMakeFiles/lrd_dse.dir/schedules.cc.o.d"
  "liblrd_dse.a"
  "liblrd_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
