# Empty dependencies file for lrd_linalg.
# This may be replaced when dependencies are built.
