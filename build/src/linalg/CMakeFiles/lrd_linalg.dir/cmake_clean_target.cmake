file(REMOVE_RECURSE
  "liblrd_linalg.a"
)
