file(REMOVE_RECURSE
  "CMakeFiles/lrd_linalg.dir/linalg.cc.o"
  "CMakeFiles/lrd_linalg.dir/linalg.cc.o.d"
  "liblrd_linalg.a"
  "liblrd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
