# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tensor")
subdirs("linalg")
subdirs("decomp")
subdirs("model")
subdirs("train")
subdirs("eval")
subdirs("hw")
subdirs("dse")
subdirs("quant")
