file(REMOVE_RECURSE
  "liblrd_util.a"
)
