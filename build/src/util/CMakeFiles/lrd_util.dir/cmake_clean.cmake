file(REMOVE_RECURSE
  "CMakeFiles/lrd_util.dir/cache.cc.o"
  "CMakeFiles/lrd_util.dir/cache.cc.o.d"
  "CMakeFiles/lrd_util.dir/logging.cc.o"
  "CMakeFiles/lrd_util.dir/logging.cc.o.d"
  "CMakeFiles/lrd_util.dir/rng.cc.o"
  "CMakeFiles/lrd_util.dir/rng.cc.o.d"
  "CMakeFiles/lrd_util.dir/table.cc.o"
  "CMakeFiles/lrd_util.dir/table.cc.o.d"
  "liblrd_util.a"
  "liblrd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
