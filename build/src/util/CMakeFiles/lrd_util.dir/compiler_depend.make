# Empty compiler generated dependencies file for lrd_util.
# This may be replaced when dependencies are built.
