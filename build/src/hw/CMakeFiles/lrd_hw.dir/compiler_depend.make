# Empty compiler generated dependencies file for lrd_hw.
# This may be replaced when dependencies are built.
