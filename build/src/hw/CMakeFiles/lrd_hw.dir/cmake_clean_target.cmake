file(REMOVE_RECURSE
  "liblrd_hw.a"
)
