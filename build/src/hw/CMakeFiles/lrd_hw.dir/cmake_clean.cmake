file(REMOVE_RECURSE
  "CMakeFiles/lrd_hw.dir/device.cc.o"
  "CMakeFiles/lrd_hw.dir/device.cc.o.d"
  "CMakeFiles/lrd_hw.dir/opcount.cc.o"
  "CMakeFiles/lrd_hw.dir/opcount.cc.o.d"
  "CMakeFiles/lrd_hw.dir/roofline.cc.o"
  "CMakeFiles/lrd_hw.dir/roofline.cc.o.d"
  "liblrd_hw.a"
  "liblrd_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
