# Empty dependencies file for lrd_eval.
# This may be replaced when dependencies are built.
