file(REMOVE_RECURSE
  "liblrd_eval.a"
)
