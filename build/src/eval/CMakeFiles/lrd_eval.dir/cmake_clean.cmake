file(REMOVE_RECURSE
  "CMakeFiles/lrd_eval.dir/benchmarks.cc.o"
  "CMakeFiles/lrd_eval.dir/benchmarks.cc.o.d"
  "CMakeFiles/lrd_eval.dir/evaluator.cc.o"
  "CMakeFiles/lrd_eval.dir/evaluator.cc.o.d"
  "liblrd_eval.a"
  "liblrd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
