file(REMOVE_RECURSE
  "CMakeFiles/lrdtool.dir/lrdtool.cc.o"
  "CMakeFiles/lrdtool.dir/lrdtool.cc.o.d"
  "lrdtool"
  "lrdtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrdtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
