# Empty compiler generated dependencies file for lrdtool.
# This may be replaced when dependencies are built.
