# Empty compiler generated dependencies file for compress_model.
# This may be replaced when dependencies are built.
