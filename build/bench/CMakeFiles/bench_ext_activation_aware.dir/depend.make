# Empty dependencies file for bench_ext_activation_aware.
# This may be replaced when dependencies are built.
