file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_activation_aware.dir/bench_ext_activation_aware.cc.o"
  "CMakeFiles/bench_ext_activation_aware.dir/bench_ext_activation_aware.cc.o.d"
  "bench_ext_activation_aware"
  "bench_ext_activation_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_activation_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
