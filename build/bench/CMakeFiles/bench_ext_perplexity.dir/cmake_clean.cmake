file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_perplexity.dir/bench_ext_perplexity.cc.o"
  "CMakeFiles/bench_ext_perplexity.dir/bench_ext_perplexity.cc.o.d"
  "bench_ext_perplexity"
  "bench_ext_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
