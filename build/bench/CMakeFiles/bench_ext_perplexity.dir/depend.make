# Empty dependencies file for bench_ext_perplexity.
# This may be replaced when dependencies are built.
