file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tensor_vs_layer.dir/bench_fig6_tensor_vs_layer.cc.o"
  "CMakeFiles/bench_fig6_tensor_vs_layer.dir/bench_fig6_tensor_vs_layer.cc.o.d"
  "bench_fig6_tensor_vs_layer"
  "bench_fig6_tensor_vs_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tensor_vs_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
