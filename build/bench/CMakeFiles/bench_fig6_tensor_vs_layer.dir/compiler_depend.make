# Empty compiler generated dependencies file for bench_fig6_tensor_vs_layer.
# This may be replaced when dependencies are built.
