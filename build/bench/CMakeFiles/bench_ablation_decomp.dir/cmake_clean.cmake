file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decomp.dir/bench_ablation_decomp.cc.o"
  "CMakeFiles/bench_ablation_decomp.dir/bench_ablation_decomp.cc.o.d"
  "bench_ablation_decomp"
  "bench_ablation_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
