file(REMOVE_RECURSE
  "CMakeFiles/bench_def1_optimizer.dir/bench_def1_optimizer.cc.o"
  "CMakeFiles/bench_def1_optimizer.dir/bench_def1_optimizer.cc.o.d"
  "bench_def1_optimizer"
  "bench_def1_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_def1_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
