# Empty dependencies file for bench_def1_optimizer.
# This may be replaced when dependencies are built.
