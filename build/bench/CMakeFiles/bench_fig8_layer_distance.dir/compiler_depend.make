# Empty compiler generated dependencies file for bench_fig8_layer_distance.
# This may be replaced when dependencies are built.
