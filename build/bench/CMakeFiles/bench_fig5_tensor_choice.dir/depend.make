# Empty dependencies file for bench_fig5_tensor_choice.
# This may be replaced when dependencies are built.
