file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tensor_choice.dir/bench_fig5_tensor_choice.cc.o"
  "CMakeFiles/bench_fig5_tensor_choice.dir/bench_fig5_tensor_choice.cc.o.d"
  "bench_fig5_tensor_choice"
  "bench_fig5_tensor_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tensor_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
