# Empty dependencies file for lrd_bench_common.
# This may be replaced when dependencies are built.
