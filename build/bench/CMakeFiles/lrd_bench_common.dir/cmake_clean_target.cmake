file(REMOVE_RECURSE
  "liblrd_bench_common.a"
)
