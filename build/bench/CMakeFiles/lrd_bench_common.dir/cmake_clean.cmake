file(REMOVE_RECURSE
  "CMakeFiles/lrd_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/lrd_bench_common.dir/bench_common.cc.o.d"
  "liblrd_bench_common.a"
  "liblrd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
