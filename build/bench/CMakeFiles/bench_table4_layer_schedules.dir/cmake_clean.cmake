file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_layer_schedules.dir/bench_table4_layer_schedules.cc.o"
  "CMakeFiles/bench_table4_layer_schedules.dir/bench_table4_layer_schedules.cc.o.d"
  "bench_table4_layer_schedules"
  "bench_table4_layer_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_layer_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
