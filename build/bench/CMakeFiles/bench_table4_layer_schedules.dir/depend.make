# Empty dependencies file for bench_table4_layer_schedules.
# This may be replaced when dependencies are built.
