# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/unfold_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/tucker_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/dse_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_reference_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_edge_test[1]_include.cmake")
