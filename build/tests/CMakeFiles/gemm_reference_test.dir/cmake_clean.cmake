file(REMOVE_RECURSE
  "CMakeFiles/gemm_reference_test.dir/gemm_reference_test.cc.o"
  "CMakeFiles/gemm_reference_test.dir/gemm_reference_test.cc.o.d"
  "gemm_reference_test"
  "gemm_reference_test.pdb"
  "gemm_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
