# Empty compiler generated dependencies file for gemm_reference_test.
# This may be replaced when dependencies are built.
