# Empty dependencies file for tensor_edge_test.
# This may be replaced when dependencies are built.
