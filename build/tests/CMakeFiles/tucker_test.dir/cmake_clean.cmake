file(REMOVE_RECURSE
  "CMakeFiles/tucker_test.dir/tucker_test.cc.o"
  "CMakeFiles/tucker_test.dir/tucker_test.cc.o.d"
  "tucker_test"
  "tucker_test.pdb"
  "tucker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tucker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
