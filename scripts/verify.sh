#!/usr/bin/env bash
# Tier-1 verification: clean Release build + full ctest, the lrd-lint
# static-analysis gate, a ThreadSanitizer build that re-runs the
# determinism + observability suites, a UBSan build of the same two
# suites (signed overflow / misaligned loads in the packed GEMM
# kernels would surface here), and an ASan build of the fault-
# tolerance suites (checkpoint I/O and injected alloc failures
# exercise error paths where leaks and overreads hide). clang-tidy
# (curated subset, WarningsAsErrors) blocks when the tool is
# installed and is skipped loudly when it is not.
#
# Usage: scripts/verify.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j
# --timeout: a hung cancellation drain or unjoined watchdog thread
# must fail the run, not wedge it.
ctest --test-dir build --output-on-failure --timeout 300 -j "$(nproc)"

echo "== lint: lrd-lint over src/ tools/ tests/ bench/ =="
cmake --build build -j --target lrd-lint
# The checked-in baseline grandfathers reviewed findings; anything
# new fails. The cache dir makes repeat verify runs parse-free, and
# the SARIF report is what CI uploads for code scanning.
./build/tools/lint/lrd-lint --root "${repo_root}" \
    --baseline tools/lint/baseline.txt \
    --cache-dir build/lint-cache --sarif build/lint.sarif

echo "== bench gate: check_bench.py self-test + advisory quick pass =="
# The self-test is load-bearing (the gate must pass the baseline
# against itself and fail a synthetic 20% slowdown); the live
# comparison is advisory because shared-VM noise on a one-repetition
# run is not a code regression.
python3 scripts/check_bench.py --self-test
if [[ "${LRD_VERIFY_BENCH:-0}" == "1" ]]; then
    cmake --build build -j --target bench_kernels
    ./build/bench/bench_kernels \
        "--benchmark_filter=BM_Gemm/256|BM_GemmTelemetryOn" \
        --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=true \
        --benchmark_out=/tmp/lrd_verify_bench.json \
        --benchmark_out_format=json
    # --allow-missing: this quick pass deliberately filters to two
    # benchmarks, so the absent rest is not a gate failure here.
    python3 scripts/check_bench.py --fresh /tmp/lrd_verify_bench.json \
        --allow-missing \
        || echo "bench gate reported regressions (advisory)"
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (blocking; curated subset via .clang-tidy) =="
    # .clang-tidy sets WarningsAsErrors: '*', so any finding from the
    # curated check set fails the run.
    run-clang-tidy -quiet -p build "${repo_root}/src" "${repo_root}/tools"
else
    echo "== clang-tidy not installed; blocking pass skipped (CI runs it) =="
fi

echo "== TSan: determinism + obs + serve suites under -fsanitize=thread =="
# serve_test's MPMC contention storm runs here AND under ASan: the
# queue is the one serve component raw threads touch concurrently.
cmake -B build-tsan -S . -DLRD_SANITIZE=thread
cmake --build build-tsan -j --target determinism_test obs_test serve_test
./build-tsan/tests/determinism_test
./build-tsan/tests/obs_test
./build-tsan/tests/serve_test

echo "== UBSan: determinism + obs suites under -fsanitize=undefined =="
cmake -B build-ubsan -S . -DLRD_SANITIZE=undefined
cmake --build build-ubsan -j --target determinism_test obs_test
./build-ubsan/tests/determinism_test
./build-ubsan/tests/obs_test

echo "== ASan: robust + resume + cancel + serve suites under -fsanitize=address =="
cmake -B build-asan -S . -DLRD_SANITIZE=address
cmake --build build-asan -j --target robust_test resume_test cancel_test \
    serve_test
./build-asan/tests/robust_test
./build-asan/tests/resume_test
./build-asan/tests/cancel_test
./build-asan/tests/serve_test

echo "verify: OK"
