#!/usr/bin/env bash
# Tier-1 verification: clean Release build + full ctest, then a
# ThreadSanitizer build that re-runs the determinism suite (the
# thread-pool usage TSan must see clean) and the observability suite
# (metric shards, trace rings, and the atomic log level must be
# race-free when pool workers record concurrently).
#
# Usage: scripts/verify.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== TSan: determinism + obs suites under -fsanitize=thread =="
cmake -B build-tsan -S . -DLRD_SANITIZE=thread
cmake --build build-tsan -j --target determinism_test obs_test
./build-tsan/tests/determinism_test
./build-tsan/tests/obs_test

echo "verify: OK"
