#!/usr/bin/env bash
# Tier-1 verification: clean Release build + full ctest, then a
# ThreadSanitizer build that re-runs the determinism suite (the
# thread-pool usage TSan must see clean).
#
# Usage: scripts/verify.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== TSan: determinism suite under -fsanitize=thread =="
cmake -B build-tsan -S . -DLRD_SANITIZE=thread
cmake --build build-tsan -j --target determinism_test
./build-tsan/tests/determinism_test

echo "verify: OK"
