#!/usr/bin/env bash
# Chaos soak for the sharded DSE supervisor. Runs serial reference
# sweeps at several thread counts, then supervised sharded sweeps
# whose shard children are SIGKILLed mid-sweep, and asserts:
#
#   - the merged result file is BYTE-IDENTICAL to the serial one at
#     LRD_THREADS=1/4/8 (kills and all),
#   - recomputed work stays below one checkpoint interval per retry
#     (resume really resumes; nothing is double-counted),
#   - a clean supervised run recomputes nothing,
#   - bad --shard/--supervise arguments exit 1,
#   - a shard that keeps dying exhausts its retry budget and the
#     supervisor exits with the documented code 8.
#
# Usage: scripts/dse_shard_chaos.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
lrdtool="${build_dir}/tools/lrdtool"

if [[ ! -x "${lrdtool}" ]]; then
    echo "building lrdtool in ${build_dir}" >&2
    cmake -B "${build_dir}" -S "${repo_root}"
    cmake --build "${build_dir}" -j --target lrdtool
fi

fail() {
    echo "dse_shard_chaos: FAIL — $*" >&2
    exit 1
}

workdir="$(mktemp -d "${TMPDIR:-/tmp}/lrd_dse_chaos.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT
# A private model cache: the first run trains the stand-in once, every
# later run (and every shard child) reuses the same cached weights.
export LRD_CACHE_DIR="${workdir}/cache"

# Every chaos target below must be a documented injection site, or
# this script rots silently when sites are renamed.
faults_table="$("${lrdtool}" faults)"
for site in dse.shard.spawn dse.shard.merge dse.batch; do
    grep -q "${site}" <<<"${faults_table}" \
        || fail "site ${site} missing from 'lrdtool faults'"
done
echo "dse_shard_chaos: all dse.shard.* sites registered"

# Malformed shard/supervise arguments must exit 1 with usage, never
# start a sweep.
for bad in --shard=3/2 --shard=x/y --shard=0/0 --shard=1 \
           --supervise=0 --supervise=9999; do
    got=0
    "${lrdtool}" dse "${bad}" --dir="${workdir}/never" \
        >/dev/null 2>&1 || got=$?
    [[ "${got}" == "1" ]] || fail "dse ${bad}: exit ${got}, want 1"
done
[[ ! -e "${workdir}/never" ]] || fail "bad args still created a dir"
echo "dse_shard_chaos: malformed --shard/--supervise args exit 1"

TASKS=8
EVERY=2
RANKS=1,2,3,4
SHARDS=4
RETRIES=3

# Serial references. The first run also warms the model cache so the
# supervised runs' children never race to train it. The serial result
# must itself be thread-count invariant.
for threads in 1 4 8; do
    LRD_THREADS="${threads}" "${lrdtool}" dse --tasks="${TASKS}" \
        --every="${EVERY}" --ranks="${RANKS}" \
        --out="${workdir}/serial-t${threads}.bin" >/dev/null 2>&1 \
        || fail "serial dse at ${threads} threads failed"
done
for threads in 4 8; do
    cmp -s "${workdir}/serial-t1.bin" "${workdir}/serial-t${threads}.bin" \
        || fail "serial result differs between 1 and ${threads} threads"
done
echo "dse_shard_chaos: serial result identical at 1/4/8 threads"

# Supervised sweeps with shard children SIGKILLed mid-sweep. Two kill
# rounds per run; the supervisor must relaunch the victims, resume
# them from their checkpoints, and still merge bytes identical to the
# serial reference.
supervised_run() {
    local threads="$1" dir="$2" out="$3" log="$4"
    LRD_THREADS="${threads}" "${lrdtool}" dse \
        --supervise="${SHARDS}" --dir="${dir}" --tasks="${TASKS}" \
        --every="${EVERY}" --ranks="${RANKS}" \
        --retries="${RETRIES}" --backoff=20 --out="${out}" \
        >"${log}" 2>&1 &
    sup_pid=$!
}

for threads in 1 4 8; do
    dir="${workdir}/shards-t${threads}"
    out="${workdir}/merged-t${threads}.bin"
    log="${workdir}/supervise-t${threads}.log"
    supervised_run "${threads}" "${dir}" "${out}" "${log}"
    # Kill random shard children while the sweep is in flight.
    for round in 1 2; do
        sleep 0.4
        kill -0 "${sup_pid}" 2>/dev/null || break
        pkill -KILL -P "${sup_pid}" -f -- "--shard=" 2>/dev/null || true
    done
    got=0
    wait "${sup_pid}" || got=$?
    [[ "${got}" == "0" ]] \
        || fail "supervised run (${threads} threads) exit ${got}, want 0: $(cat "${log}")"
    cmp -s "${workdir}/serial-t1.bin" "${out}" \
        || fail "merged result (${threads} threads) differs from serial"

    # Work accounting: recomputed evaluations are bounded by one
    # checkpoint interval per retry (a retry can only lose the work
    # between its last heartbeat and its missing checkpoint).
    recomputed="$(sed -n 's/^recomputed *//p' "${log}")"
    retried="$(sed -n 's/^retried *//p' "${log}")"
    [[ -n "${recomputed}" && -n "${retried}" ]] \
        || fail "rollup lines missing from supervisor output"
    bound=$((retried * EVERY))
    [[ "${recomputed}" -le "${bound}" ]] \
        || fail "recomputed ${recomputed} exceeds ${bound} (retried=${retried} x every=${EVERY})"
    echo "dse_shard_chaos: ${threads} threads — merged == serial," \
        "retried ${retried}, recomputed ${recomputed} <= ${bound}"
done

# A clean supervised run (nobody killed) must recompute nothing.
dir="${workdir}/shards-clean"
out="${workdir}/merged-clean.bin"
log="${workdir}/supervise-clean.log"
supervised_run 4 "${dir}" "${out}" "${log}"
got=0
wait "${sup_pid}" || got=$?
[[ "${got}" == "0" ]] || fail "clean supervised run exit ${got}"
cmp -s "${workdir}/serial-t1.bin" "${out}" \
    || fail "clean merged result differs from serial"
recomputed="$(sed -n 's/^recomputed *//p' "${log}")"
[[ "${recomputed}" == "0" ]] \
    || fail "clean supervised run recomputed ${recomputed}, want 0"
echo "dse_shard_chaos: clean supervised run recomputed 0"

# A shard that dies on every attempt (inherited injected cancel at its
# first batch) exhausts the retry budget: documented exit code 8.
got=0
LRD_FAULT="dse.batch:cancel:1" "${lrdtool}" dse --supervise=2 \
    --dir="${workdir}/shards-budget" --tasks="${TASKS}" \
    --every="${EVERY}" --ranks="${RANKS}" --retries=1 --backoff=5 \
    >/dev/null 2>&1 || got=$?
[[ "${got}" == "8" ]] \
    || fail "retry-budget exhaustion: exit ${got}, want 8"
echo "dse_shard_chaos: exhausted retry budget -> exit 8"

echo "dse_shard_chaos: OK"
