#!/usr/bin/env bash
# Run the kernel microbenchmarks and record the results as
# BENCH_kernels.json at the repo root (google-benchmark JSON format).
#
# Refuses to record from a non-Release build of this repository
# (debug kernels make every number meaningless); set
# LRD_BENCH_ALLOW_DEBUG=1 to override, which also tags the JSON via
# the lrd_build_type context field.
#
# Usage: scripts/run_bench_kernels.sh [build-dir] [benchmark-filter]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
filter="${2:-}"

if [[ ! -x "${build_dir}/bench/bench_kernels" ]]; then
    echo "building bench_kernels in ${build_dir}" >&2
    cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
    cmake --build "${build_dir}" -j --target bench_kernels
fi

build_type=""
if [[ -f "${build_dir}/CMakeCache.txt" ]]; then
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "${build_dir}/CMakeCache.txt")"
fi
# An empty CMAKE_BUILD_TYPE defaults to Release (top-level
# CMakeLists.txt), but the cache records the resolved value, so
# treat empty as unknown rather than trusting it.
if [[ "${build_type}" != "Release" ]]; then
    if [[ "${LRD_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
        echo "error: ${build_dir} has CMAKE_BUILD_TYPE='${build_type}'," \
            "not Release; benchmark numbers from unoptimized kernels" \
            "are meaningless. Configure with -DCMAKE_BUILD_TYPE=Release" \
            "or set LRD_BENCH_ALLOW_DEBUG=1 to record anyway." >&2
        exit 1
    fi
    echo "warning: recording from a '${build_type}' build" \
        "(LRD_BENCH_ALLOW_DEBUG=1); results are tagged via" \
        "lrd_build_type in the JSON context" >&2
fi

# 3 repetitions, medians only: single 0.5s samples on a shared VM
# swing by +-20% (CPU steal), which is enough to flip the
# dense-vs-factorized crossover comparisons the JSON exists to record.
args=(
    "--benchmark_out=${repo_root}/BENCH_kernels.json"
    "--benchmark_out_format=json"
    "--benchmark_repetitions=${LRD_BENCH_REPETITIONS:-3}"
    "--benchmark_report_aggregates_only=true"
)
if [[ -n "${filter}" ]]; then
    args+=("--benchmark_filter=${filter}")
fi

"${build_dir}/bench/bench_kernels" "${args[@]}"
echo "wrote ${repo_root}/BENCH_kernels.json" >&2
