#!/usr/bin/env bash
# Run the kernel microbenchmarks and record the results as
# BENCH_kernels.json at the repo root (google-benchmark JSON format).
#
# Usage: scripts/run_bench_kernels.sh [build-dir] [benchmark-filter]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
filter="${2:-}"

if [[ ! -x "${build_dir}/bench/bench_kernels" ]]; then
    echo "building bench_kernels in ${build_dir}" >&2
    cmake -B "${build_dir}" -S "${repo_root}"
    cmake --build "${build_dir}" -j --target bench_kernels
fi

args=(
    "--benchmark_out=${repo_root}/BENCH_kernels.json"
    "--benchmark_out_format=json"
    "--benchmark_repetitions=1"
)
if [[ -n "${filter}" ]]; then
    args+=("--benchmark_filter=${filter}")
fi

"${build_dir}/bench/bench_kernels" "${args[@]}"
echo "wrote ${repo_root}/BENCH_kernels.json" >&2
