#!/usr/bin/env bash
# Chaos soak for the serving layer. Rotates an injected fault through
# every serve.* site/kind pair, interrupts an open-loop run mid-load
# with a real SIGINT, and checks the cross-thread determinism of the
# response vector — asserting, for every scenario, that the server
# never deadlocks (every run finishes), drains gracefully, and exits
# with the documented code:
#
#   0  clean run                      3  cancelled (signal / injected)
#   7  response delivery unavailable
#
# Usage: scripts/serve_chaos.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
lrdtool="${build_dir}/tools/lrdtool"

if [[ ! -x "${lrdtool}" ]]; then
    echo "building lrdtool in ${build_dir}" >&2
    cmake -B "${build_dir}" -S "${repo_root}"
    cmake --build "${build_dir}" -j --target lrdtool
fi

fail() {
    echo "serve_chaos: FAIL — $*" >&2
    exit 1
}

# Every chaos target below must be a documented injection site, or
# this script rots silently when sites are renamed.
faults_table="$("${lrdtool}" faults)"
for site in serve.admit serve.batch serve.respond; do
    grep -q "${site}" <<<"${faults_table}" \
        || fail "site ${site} missing from 'lrdtool faults'"
done
echo "serve_chaos: all serve.* sites registered"

# Rotation: each site/kind pair, expected exit code alongside. A
# cancel anywhere must drain as exit 3; an injected delivery failure
# must surface as exit 7; recoverable faults must still finish clean.
run_case() {
    local spec="$1" want="$2"
    local got=0
    LRD_FAULT="${spec}" "${lrdtool}" serve --requests=16 --queue=8 \
        --batch=2 --retries=2 >/dev/null 2>&1 || got=$?
    [[ "${got}" == "${want}" ]] \
        || fail "LRD_FAULT=${spec}: exit ${got}, want ${want}"
    echo "serve_chaos: LRD_FAULT=${spec} -> exit ${got} (ok)"
}

run_case "serve.admit:alloc:2" 0    # shed + client retry recovers
run_case "serve.admit:cancel:2" 3
run_case "serve.batch:nan:2" 0      # poisoned item, run still drains
run_case "serve.batch:cancel:2" 3
run_case "serve.respond:alloc:2" 0  # one failure; delivery retry recovers
# Three consecutive delivery failures exhaust the responder's retry
# budget: the request settles Unavailable and the run exits 7.
run_case "serve.respond:alloc:2,serve.respond:alloc:3,serve.respond:alloc:4" 7
run_case "serve.respond:cancel:2" 3

# A real SIGINT mid-load: stop admitting, finish the in-flight batch,
# drain, exit 3. --preserve-status forwards lrdtool's own exit code;
# 124/137 would mean the drain wedged until timeout gave up.
got=0
timeout --preserve-status -s INT -k 30 2 \
    "${lrdtool}" loadgen --requests=100000 --queue=32 >/dev/null 2>&1 \
    || got=$?
[[ "${got}" == "3" ]] \
    || fail "SIGINT mid-load: exit ${got}, want 3 (cancelled)"
echo "serve_chaos: SIGINT mid-load -> exit 3 (graceful drain)"

# Determinism: the response vector (ids, outcomes, scores, settle
# ticks) must be bitwise identical at any LRD_THREADS.
crc_at() {
    LRD_THREADS="$1" "${lrdtool}" serve --requests=32 --queue=8 \
        --batch=4 --fallback-rank=2 2>/dev/null \
        | sed -n 's/^responses *crc32 //p'
}
crc1="$(crc_at 1)"
[[ -n "${crc1}" ]] || fail "no response digest in serve output"
for threads in 4 8; do
    crc="$(crc_at "${threads}")"
    [[ "${crc}" == "${crc1}" ]] \
        || fail "response digest differs: ${crc1} (1 thread) vs" \
                "${crc} (${threads} threads)"
done
echo "serve_chaos: response digest ${crc1} identical at 1/4/8 threads"

echo "serve_chaos: OK"
