#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON artifacts.

Compares a freshly recorded bench_kernels JSON against the checked-in
baseline (BENCH_kernels.json). Only `_median` aggregates are compared
(scripts/run_bench_kernels.sh records 3 repetitions exactly so the
median exists), and each benchmark gets a noise band derived from its
recorded coefficient of variation: a fresh median is a regression when

    fresh > baseline * (1 + max(threshold, cv_margin * cv))

Context gating: the two files must agree on the manifest-identifying
context fields (lrd_simd, lrd_build_type). A mismatch means the
numbers are not comparable (different machine class or an unoptimized
build) — the gate reports SKIPPED and exits 0 so CI stays advisory,
unless --force insists on comparing anyway. Every mismatched key is
named on stderr so a skip is always attributable.

Baseline benchmarks missing from the fresh run FAIL the gate: a gated
benchmark silently dropping out (renamed, filtered, crashed) would
otherwise read as "no regressions". Pass --allow-missing for
intentionally filtered runs (e.g. the verify.sh quick pass).

Exit codes: 0 ok/skipped, 1 regression detected, 2 bad input.

Usage:
  scripts/check_bench.py --fresh fresh.json [--baseline BENCH_kernels.json]
  scripts/check_bench.py --self-test          # gate sanity, no bench run
"""

import argparse
import json
import sys

# Context fields that must match for a comparison to be meaningful.
CONTEXT_KEYS = ("lrd_simd", "lrd_build_type")


def load_medians(doc):
    """run_name -> (median real_time ns, cv) from a benchmark JSON."""
    medians = {}
    cvs = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name", ""))
        if entry.get("aggregate_name") == "median":
            medians[name] = float(entry["real_time"])
        elif entry.get("aggregate_name") == "cv":
            # cv aggregates report the ratio in real_time.
            cvs[name] = float(entry["real_time"])
    return {
        name: (time_ns, cvs.get(name, 0.0))
        for name, time_ns in medians.items()
    }


def context_mismatches(baseline, fresh):
    mismatches = []
    base_ctx = baseline.get("context", {})
    fresh_ctx = fresh.get("context", {})
    for key in CONTEXT_KEYS:
        if base_ctx.get(key) != fresh_ctx.get(key):
            mismatches.append(
                f"{key}: baseline={base_ctx.get(key)!r} "
                f"fresh={fresh_ctx.get(key)!r}")
    return mismatches


def compare(baseline, fresh, threshold, cv_margin, inflate):
    """Return (regressions, missing, rows) vs the baseline."""
    base = load_medians(baseline)
    new = load_medians(fresh)
    regressions = []
    missing = []
    rows = []
    for name in sorted(base):
        if name not in new:
            rows.append((name, base[name][0], None, None, "MISSING"))
            missing.append(name)
            continue
        base_ns, cv = base[name]
        fresh_ns = new[name][0] * inflate
        allowed = max(threshold, cv_margin * cv)
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + allowed:
            verdict = f"REGRESSION (> +{allowed * 100:.1f}%)"
            regressions.append(name)
        rows.append((name, base_ns, fresh_ns, ratio, verdict))
    for name in sorted(set(new) - set(base)):
        rows.append((name, None, new[name][0], None, "NEW"))
    return regressions, missing, rows


def print_rows(rows, out=sys.stdout):
    fmt = "{:<32} {:>14} {:>14} {:>8}  {}"
    print(fmt.format("benchmark", "baseline (ns)", "fresh (ns)",
                     "ratio", "verdict"), file=out)
    for name, base_ns, fresh_ns, ratio, verdict in rows:
        print(fmt.format(
            name,
            f"{base_ns:.0f}" if base_ns is not None else "-",
            f"{fresh_ns:.0f}" if fresh_ns is not None else "-",
            f"{ratio:.3f}" if ratio is not None else "-",
            verdict), file=out)


def run_gate(args):
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot load inputs: {e}", file=sys.stderr)
        return 2

    mismatches = context_mismatches(baseline, fresh)
    if mismatches and not args.force:
        # stderr, key by key: a skipped gate must be attributable from
        # the CI log alone, or gated benchmarks rot unnoticed.
        print("check_bench: SKIPPED (context mismatch, numbers not "
              "comparable):", file=sys.stderr)
        for m in mismatches:
            print(f"  mismatched context key {m}", file=sys.stderr)
        return 0

    regressions, missing, rows = compare(baseline, fresh, args.threshold,
                                         args.cv_margin, args.inflate)
    print_rows(rows)
    if missing and not args.allow_missing:
        print("check_bench: FAIL — baseline benchmark(s) absent from "
              "the fresh run (renamed, filtered, or crashed): "
              + ", ".join(missing), file=sys.stderr)
        print("  (pass --allow-missing for intentionally filtered runs)",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"check_bench: FAIL — {len(regressions)} regression(s): "
              + ", ".join(regressions))
        return 1
    compared = sum(1 for r in rows if r[4].startswith(("ok", "REGR")))
    print(f"check_bench: OK ({compared} benchmarks within "
          f"+{args.threshold * 100:.0f}% / cv bands)")
    return 0


def self_test(args):
    """Gate sanity without running benchmarks: the baseline compared
    against itself must pass, and against a synthetic 20% slowdown
    must fail."""
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot load baseline: {e}", file=sys.stderr)
        return 2
    clean, clean_missing, _ = compare(baseline, baseline, args.threshold,
                                      args.cv_margin, 1.0)
    slowed, _, _ = compare(baseline, baseline, args.threshold,
                           args.cv_margin, 1.2)
    if clean or clean_missing:
        print("check_bench: self-test FAIL — baseline vs itself "
              f"reported regressions: {clean} missing: {clean_missing}")
        return 1
    if not slowed:
        print("check_bench: self-test FAIL — synthetic 20% slowdown "
              "was not detected")
        return 1
    # A benchmark dropping out of the fresh run must be detected, or
    # gated benchmarks can vanish without failing the gate.
    truncated = json.loads(json.dumps(baseline))
    names = {e.get("run_name", e.get("name", ""))
             for e in truncated.get("benchmarks", [])}
    if names:
        dropped = sorted(names)[0]
        truncated["benchmarks"] = [
            e for e in truncated["benchmarks"]
            if e.get("run_name", e.get("name", "")) != dropped
        ]
        _, missing, _ = compare(baseline, truncated, args.threshold,
                                args.cv_margin, 1.0)
        if missing != [dropped]:
            print("check_bench: self-test FAIL — dropped benchmark "
                  f"{dropped!r} was not reported missing (got {missing})")
            return 1
    print("check_bench: self-test OK (identity passes, +20% synthetic "
          f"slowdown trips {len(slowed)} benchmarks, dropped benchmarks "
          "are detected)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="checked-in baseline JSON")
    parser.add_argument("--fresh", default=None,
                        help="freshly recorded JSON to gate")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="base allowed slowdown fraction")
    parser.add_argument("--cv-margin", type=float, default=2.0,
                        help="noise band: max(threshold, cv_margin*cv)")
    parser.add_argument("--inflate", type=float, default=1.0,
                        help="multiply fresh times (testing aid)")
    parser.add_argument("--force", action="store_true",
                        help="compare despite a context mismatch")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate baseline benchmarks absent from "
                             "the fresh run (filtered quick passes)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate itself, no fresh file")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args))
    if not args.fresh:
        parser.error("--fresh is required unless --self-test")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
