#!/usr/bin/env bash
# Verify lrd-lint's incremental cache: a cold run populates the cache,
# a warm run must hit it for every file (zero re-parses) and produce a
# byte-identical SARIF report.
#
# Usage: check_lint_cache.sh <lrd-lint-binary> <repo-root>
set -euo pipefail

LINT=${1:?usage: check_lint_cache.sh <lrd-lint> <root>}
ROOT=${2:?usage: check_lint_cache.sh <lrd-lint> <root>}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run() {
    # Findings exit 1; only usage/I/O errors (2) are fatal here.
    local out=$1 sarif=$2
    set +e
    "$LINT" --root "$ROOT" --baseline tools/lint/baseline.txt \
        --cache-dir "$work/cache" --sarif "$sarif" >"$out" 2>&1
    local rc=$?
    set -e
    if [ "$rc" -ge 2 ]; then
        echo "lrd-lint failed (exit $rc):"
        cat "$out"
        exit 1
    fi
}

run "$work/cold.log" "$work/cold.sarif"
grep -E 'cache [0-9]+ hit' "$work/cold.log" || {
    echo "missing cache counters in cold run:"; cat "$work/cold.log"; exit 1;
}
if ! grep -q 'cache 0 hit(s)' "$work/cold.log"; then
    echo "cold run unexpectedly hit a fresh cache:"; cat "$work/cold.log"
    exit 1
fi

run "$work/warm.log" "$work/warm.sarif"
if ! grep -q ' 0 miss(es)' "$work/warm.log"; then
    echo "warm run re-parsed files it should have cached:"
    cat "$work/warm.log"
    exit 1
fi

if ! cmp -s "$work/cold.sarif" "$work/warm.sarif"; then
    echo "warm-cache SARIF differs from cold run:"
    diff "$work/cold.sarif" "$work/warm.sarif" | head -50
    exit 1
fi

echo "lint cache OK: warm run had 0 misses and byte-identical SARIF"
