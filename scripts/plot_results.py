#!/usr/bin/env python3
"""Plot the CSVs written by the reproduction benches.

Usage:
    python3 scripts/plot_results.py [csv-dir] [out-dir]

csv-dir defaults to the directory the benches were run from (they
write CSVs into the working directory); out-dir defaults to
<csv-dir>/plots. Requires matplotlib; each missing CSV is skipped with
a note, so partial bench runs still plot.
"""

import os
import sys
import csv


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def pct(value):
    return float(value.rstrip("%"))


def plot_fig9(csv_dir, out_dir, plt):
    header, rows = read_csv(os.path.join(csv_dir, "fig9_accuracy_tradeoff.csv"))
    x = [pct(r[0]) for r in rows]
    plt.figure(figsize=(7, 4.5))
    for col in range(1, len(header) - 1):
        label = header[col].split(" (")[0]
        plt.plot(x, [pct(r[col]) for r in rows], marker="o", label=label)
    plt.xlabel("parameter reduction (%)")
    plt.ylabel("accuracy (%)")
    plt.title("Figure 9: accuracy vs model-size reduction")
    plt.legend(fontsize=7)
    plt.grid(alpha=0.3)
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, "fig9_accuracy_tradeoff.png"), dpi=150)
    plt.close()


def plot_fig7(csv_dir, out_dir, plt):
    _, rows = read_csv(os.path.join(csv_dir, "fig7_layer_sensitivity.csv"))
    rows = [r for r in rows if r[0] != "(none)"]
    plt.figure(figsize=(6, 4))
    plt.bar([int(r[0]) for r in rows], [pct(r[2]) for r in rows])
    plt.xlabel("decomposed layer")
    plt.ylabel("aggregate accuracy drop (%p)")
    plt.title("Figure 7: single-layer sensitivity")
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, "fig7_layer_sensitivity.png"), dpi=150)
    plt.close()


def plot_efficiency(csv_dir, out_dir, plt):
    series = [
        ("fig10_latency_analytical.csv", 1, "latency (s)", "fig10"),
        ("fig11_energy.csv", 1, "energy (J)", "fig11"),
        ("fig12_memory.csv", 1, "memory (GB)", "fig12"),
    ]
    for name, col, ylabel, tag in series:
        path = os.path.join(csv_dir, name)
        if not os.path.exists(path):
            print(f"skip {name}")
            continue
        _, rows = read_csv(path)
        x = [pct(r[0]) for r in rows]
        y = [float(r[col]) for r in rows]
        plt.figure(figsize=(5.5, 4))
        plt.plot(x, y, marker="s")
        plt.xlabel("parameter reduction (%)")
        plt.ylabel(ylabel)
        plt.title(f"{tag}: {ylabel} vs reduction (Llama2-7B, A100)")
        plt.grid(alpha=0.3)
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, f"{tag}.png"), dpi=150)
        plt.close()


def plot_baselines(csv_dir, out_dir, plt):
    path = os.path.join(csv_dir, "ext_baselines.csv")
    if not os.path.exists(path):
        print("skip ext_baselines.csv")
        return
    _, rows = read_csv(path)
    plt.figure(figsize=(6, 4.5))
    groups = {}
    for r in rows:
        groups.setdefault(r[0], []).append((pct(r[2]), pct(r[3])))
    for name, pts in groups.items():
        pts.sort()
        plt.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                 label=name)
    plt.xlabel("model size (% of dense)")
    plt.ylabel("mean accuracy (%)")
    plt.title("Compression families: accuracy vs size")
    plt.legend(fontsize=8)
    plt.grid(alpha=0.3)
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, "ext_baselines.png"), dpi=150)
    plt.close()


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else os.path.join(csv_dir,
                                                                 "plots")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(out_dir, exist_ok=True)
    for fn in (plot_fig9, plot_fig7, plot_efficiency, plot_baselines):
        try:
            fn(csv_dir, out_dir, plt)
        except FileNotFoundError as e:
            print(f"skip: {e}")
    print(f"plots written to {out_dir}")


if __name__ == "__main__":
    main()
