/**
 * @file
 * Reproduces Table 4: the decomposed-layer schedules and their
 * parameter-reduction rates on the Llama2-7B shape, plus the scaled
 * schedule ladder this repository uses for its trainable 8-layer
 * stand-in model.
 */

#include <sstream>

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

namespace {

std::string
joinLayers(const std::vector<int> &layers, int base)
{
    std::ostringstream oss;
    for (size_t i = 0; i < layers.size(); ++i)
        oss << (i ? "," : "") << layers[i] + base;
    return oss.str();
}

} // namespace

int
main()
{
    const ModelConfig cfg = llama2_7bConfig();
    TablePrinter t("Table 4: layer schedules on Llama2-7B "
                   "(all 7 tensors, rank 1)");
    t.setHeader({"Paper reduction", "Layers (1-based, as printed)",
                 "Computed reduction"});
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        t.addRow({TablePrinter::num(row.reductionPercent, 0) + "%",
                  joinLayers(row.layers1Based, 0),
                  bench::pct(gamma.parameterReduction(cfg))});
    }
    bench::emit(t, "table4_paper_schedules.csv");

    const ModelConfig tiny = tinyLlamaConfig();
    TablePrinter s("Scaled schedule ladder for the 8-layer stand-in "
                   "(spreadSchedule)");
    s.setHeader({"# layers", "Layers (0-based)", "Reduction"});
    for (int count = 1; count <= tiny.nLayers; ++count) {
        const auto layers =
            spreadSchedule(static_cast<int>(tiny.nLayers), count);
        const DecompConfig gamma =
            DecompConfig::allTensors(tiny, layers, 1);
        s.addRow({std::to_string(count), joinLayers(layers, 0),
                  bench::pct(gamma.parameterReduction(tiny))});
    }
    bench::emit(s, "table4_scaled_schedules.csv");
    return 0;
}
