#include "bench_common.h"

#include "util/logging.h"

namespace lrd {
namespace bench {

double
paperBaselineAccuracy(BenchmarkKind kind)
{
    // Llama2-7B published / leaderboard numbers the paper's Figure 3
    // uses as its "no decomposition" reference.
    switch (kind) {
      case BenchmarkKind::ArcEasy: return 74.6;
      case BenchmarkKind::ArcChallenge: return 46.3;
      case BenchmarkKind::HellaSwag: return 77.7;
      case BenchmarkKind::Mmlu: return 45.7;
      case BenchmarkKind::TruthfulQa: return 38.8;
      case BenchmarkKind::WinoGrande: return 69.1;
      case BenchmarkKind::Gsm8k: return 14.6;
    }
    panic("paperBaselineAccuracy: unknown kind");
}

GenerationWorkload
paperWorkload()
{
    // Throughput-oriented serving batch on one A100 (the paper uses
    // the maximum batch per GPU; this fills ~40 GB of the 80 GB
    // device and makes weight traffic ~45% of decode bytes, matching
    // the paper's 0.5%-latency / 0.4%-memory per 1%-params slopes).
    GenerationWorkload wl;
    wl.batch = 32;
    wl.promptLen = 1024;
    wl.decodeTokens = 256;
    return wl;
}

const std::vector<uint8_t> &
tinyLlamaBytes()
{
    static const std::vector<uint8_t> bytes =
        pretrainedTinyLlama().serialize();
    return bytes;
}

const std::vector<uint8_t> &
tinyBertBytes()
{
    static const std::vector<uint8_t> bytes =
        pretrainedTinyBert().serialize();
    return bytes;
}

void
applyOrDie(const DecompConfig &gamma, TransformerModel &model)
{
    const Status st = gamma.applyTo(model);
    if (!st.ok())
        fatal("bench: applyTo rejected the configuration: " + st.toString());
}

std::vector<double>
evaluateSuite(TransformerModel &model, int numTasks, uint64_t seed)
{
    Evaluator ev(model, defaultWorld(),
                 EvalOptions{numTasks, seed, false});
    std::vector<double> out;
    for (BenchmarkKind kind : allBenchmarks())
        out.push_back(ev.run(kind).accuracy);
    return out;
}

double
meanAccuracy(const std::vector<double> &accs)
{
    double sum = 0.0;
    for (double a : accs)
        sum += a;
    return accs.empty() ? 0.0 : sum / static_cast<double>(accs.size());
}

std::string
pct(double fraction, int precision)
{
    return TablePrinter::num(fraction * 100.0, precision) + "%";
}

void
emit(const TablePrinter &table, const std::string &csvName)
{
    table.print();
    table.writeCsv(csvName);
    inform("wrote " + csvName);
}

} // namespace bench
} // namespace lrd
