/**
 * @file
 * Extension bench for the paper's future-work experiment (Section 6):
 * recovering a decomposed model's accuracy with a short fine-tune
 * through the Tucker factors. The paper's early result: a 15%
 * compressed model recovers to the 9%-compressed level within one
 * epoch; here the analogous ladder points are 22% -> 11%.
 */

#include "bench_common.h"
#include "dse/schedules.h"
#include "train/trainer.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();

    TablePrinter t("Extension: fine-tuning recovery after "
                   "decomposition (paper Section 6 future work)");
    t.setHeader({"Model", "Reduction", "Mean accuracy"});

    TransformerModel dense =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    t.addRow({"dense", "0.0%",
              bench::pct(bench::meanAccuracy(
                  bench::evaluateSuite(dense)))});

    // Reference shallow point (the recovery target).
    double shallowAcc = 0.0;
    {
        TransformerModel m =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig g = DecompConfig::allTensors(
            cfg, spreadSchedule(static_cast<int>(cfg.nLayers), 1), 1);
        bench::applyOrDie(g, m);
        shallowAcc = bench::meanAccuracy(bench::evaluateSuite(m));
        t.addRow({"decomposed (1 layer)",
                  bench::pct(g.parameterReduction(cfg)),
                  bench::pct(shallowAcc)});
    }

    // Deeper decomposition, before and after factor fine-tuning.
    TransformerModel deep =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    const DecompConfig gDeep = DecompConfig::allTensors(
        cfg, spreadSchedule(static_cast<int>(cfg.nLayers), 2), 1);
    bench::applyOrDie(gDeep, deep);
    const double beforeAcc =
        bench::meanAccuracy(bench::evaluateSuite(deep));
    t.addRow({"decomposed (2 layers), no recovery",
              bench::pct(gDeep.parameterReduction(cfg)),
              bench::pct(beforeAcc)});

    TrainOptions opts;
    opts.steps = 150;
    opts.batchSeqs = 8;
    opts.seqLen = 64;
    opts.warmupSteps = 15;
    opts.lr = 1e-3;
    opts.logEvery = 50;
    Trainer recover(deep, defaultWorld(), opts);
    recover.run();
    const double afterAcc =
        bench::meanAccuracy(bench::evaluateSuite(deep));
    t.addRow({"decomposed (2 layers), fine-tuned "
                  + std::to_string(opts.steps) + " steps",
              bench::pct(gDeep.parameterReduction(cfg)),
              bench::pct(afterAcc)});

    bench::emit(t, "ext_finetune_recovery.csv");

    TablePrinter s("Recovery summary (paper: 15% model recovered to "
                   "the 9% level in one epoch)");
    s.setHeader({"Quantity", "Value"});
    s.addRow({"accuracy recovered",
              bench::pct(afterAcc - beforeAcc)});
    s.addRow({"gap to shallow point before",
              bench::pct(shallowAcc - beforeAcc)});
    s.addRow({"gap to shallow point after",
              bench::pct(shallowAcc - afterAcc)});
    bench::emit(s, "ext_finetune_summary.csv");
    return 0;
}
