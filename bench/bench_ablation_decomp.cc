/**
 * @file
 * Ablation bench for the decomposition machinery itself (design
 * choices called out in DESIGN.md):
 *
 *  1. HOI iterations: reconstruction error of HOSVD init vs HOI
 *     sweeps on order-3 tensors (how much Algorithm 1's iteration
 *     buys over its initializer).
 *  2. Exact truncated SVD vs randomized SVD on real trained weights:
 *     error and the compression pipeline's accuracy when swapping the
 *     factorization backend.
 *  3. Reconstruction error vs pruned rank on real trained weights
 *     (the spectrum the rank-1 insight relies on).
 */

#include "bench_common.h"
#include "util/logging.h"
#include "decomp/tucker.h"
#include "linalg/linalg.h"
#include "tensor/ops.h"
#include "tensor/unfold.h"
#include "util/timer.h"

using namespace lrd;

int
main()
{
    // 1. HOI vs HOSVD on random low-rank-plus-noise tensors.
    {
        TablePrinter t("Ablation 1: HOSVD init vs HOI sweeps "
                       "(order-3 tensor, rank (4,4,4))");
        t.setHeader({"Tensor", "HOSVD error", "HOI 1 sweep",
                     "HOI converged"});
        Rng rng(11);
        for (int trial = 0; trial < 3; ++trial) {
            Tensor core = Tensor::randn({4, 4, 4}, rng);
            Tensor t3 = core;
            for (int64_t m = 0; m < 3; ++m)
                t3 = modeProduct(t3, randomOrthonormal(24, 4, rng), m);
            // Add noise so the ranks are only approximately low.
            Tensor noise = Tensor::randn(t3.shape(), rng, 0.05F);
            t3 = add(t3, noise);

            const std::vector<int64_t> ranks = {4, 4, 4};
            const TuckerResult h = hosvd(t3, ranks);
            HoiOptions one;
            one.maxIters = 1;
            const TuckerResult o1 = hooi(t3, ranks, one);
            const TuckerResult oc = hooi(t3, ranks);
            t.addRow({strCat("trial ", trial),
                      TablePrinter::num(
                          relativeError(t3, h.reconstruct()), 5),
                      TablePrinter::num(
                          relativeError(t3, o1.reconstruct()), 5),
                      TablePrinter::num(
                          relativeError(t3, oc.reconstruct()), 5)});
        }
        bench::emit(t, "ablation_hoi_iterations.csv");
    }

    // Real trained weights for the SVD backend and rank ablations.
    TransformerModel model =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    const Tensor wGate =
        model.linear(4, WeightKind::Gate).weight().value;
    const Tensor wQuery =
        model.linear(4, WeightKind::Query).weight().value;

    // 2. Exact vs randomized SVD backend.
    {
        TablePrinter t("Ablation 2: exact vs randomized truncated SVD "
                       "on trained weights (layer 4)");
        t.setHeader({"Weight", "Rank", "Exact err", "Randomized err",
                     "Exact ms", "Randomized ms"});
        Rng rng(13);
        const std::vector<std::pair<const char *, const Tensor *>> pairs =
            {{"Wg", &wGate}, {"Wq", &wQuery}};
        for (const auto &pair : pairs) {
            for (int64_t rank : {1, 4, 16}) {
                Timer te;
                const SvdResult exact = truncatedSvd(*pair.second, rank);
                const double exactMs = te.elapsedMillis();
                Timer tr;
                const SvdResult approx =
                    randomizedSvd(*pair.second, rank, rng);
                const double randMs = tr.elapsedMillis();
                t.addRow({pair.first, std::to_string(rank),
                          TablePrinter::num(
                              relativeError(*pair.second,
                                            exact.reconstruct()), 4),
                          TablePrinter::num(
                              relativeError(*pair.second,
                                            approx.reconstruct()), 4),
                          TablePrinter::num(exactMs, 2),
                          TablePrinter::num(randMs, 2)});
            }
        }
        bench::emit(t, "ablation_svd_backend.csv");
    }

    // 3. Reconstruction error vs pruned rank on trained weights.
    {
        TablePrinter t("Ablation 3: weight reconstruction error vs "
                       "pruned rank (trained Wg, layer 4)");
        t.setHeader({"Pruned rank", "Relative error",
                     "Compression ratio"});
        for (int64_t rank : {1, 2, 4, 8, 16, 32, 64}) {
            const Tucker2d d = tucker2dDecompose(wGate, rank);
            t.addRow({std::to_string(rank),
                      TablePrinter::num(
                          relativeError(wGate, d.reconstruct()), 4),
                      TablePrinter::num(
                          compressionRatio(wGate.dim(0), wGate.dim(1),
                                           rank), 1) + "x"});
        }
        bench::emit(t, "ablation_rank_error.csv");
    }
    return 0;
}
