/**
 * @file
 * Reproduces Figure 6: at a matched parameter-reduction target, is it
 * better to decompose ONE tensor kind across many layers, or ALL
 * tensors in a few layers?
 *
 * Expected shape (paper Observation 2): the all-tensors-few-layers
 * strategy loses far less accuracy than one-tensor-many-layers at the
 * same reduction rate (the paper reports >50%p vs ~3%p at 8%).
 */

#include <cmath>

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

namespace {

/** Accuracy under gamma applied to a fresh model copy. */
double
accuracyUnder(const DecompConfig &gamma)
{
    TransformerModel model =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    bench::applyOrDie(gamma, model);
    return bench::meanAccuracy(bench::evaluateSuite(model));
}

} // namespace

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();
    std::vector<int> allLayers;
    for (int l = 0; l < cfg.nLayers; ++l)
        allLayers.push_back(l);

    TransformerModel dense =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    const double baseline =
        bench::meanAccuracy(bench::evaluateSuite(dense));

    // Case targets: each single-tensor-all-layers config defines a
    // reduction rate; we match it with an all-tensors-k-layers config
    // of the closest achievable rate (the paper's 8% / 21% cases
    // correspond to attention-tensor and MLP-tensor rates here).
    TablePrinter t("Figure 6: one-tensor-many-layers vs "
                   "all-tensors-few-layers at matched reduction");
    t.setHeader({"Strategy", "Reduction", "Mean accuracy",
                 "Drop vs dense"});
    t.addRow({"dense baseline", "0.0%", bench::pct(baseline), "0.0%"});

    const double perLayerAll =
        DecompConfig::allTensors(cfg, {0}, 1).parameterReduction(cfg);

    for (WeightKind kind : decomposableKinds(cfg.arch)) {
        const DecompConfig oneTensor =
            DecompConfig::oneTensor(kind, allLayers, 1);
        const double reduction = oneTensor.parameterReduction(cfg);
        const double accOne = accuracyUnder(oneTensor);
        t.addRow({weightKindName(kind) + " in all layers",
                  bench::pct(reduction), bench::pct(accOne),
                  bench::pct(baseline - accOne)});

        // Matched all-tensors-few-layers counterpart.
        int count = std::max(
            1, static_cast<int>(std::lround(reduction / perLayerAll)));
        count = std::min(count, static_cast<int>(cfg.nLayers));
        const DecompConfig fewLayers = DecompConfig::allTensors(
            cfg, spreadSchedule(static_cast<int>(cfg.nLayers), count), 1);
        const double accFew = accuracyUnder(fewLayers);
        t.addRow({"  vs all tensors in " + std::to_string(count)
                      + " layer(s)",
                  bench::pct(fewLayers.parameterReduction(cfg)),
                  bench::pct(accFew), bench::pct(baseline - accFew)});
    }
    bench::emit(t, "fig6_tensor_vs_layer.csv");
    return 0;
}
