/**
 * @file
 * Extension bench: low-rank decomposition vs the other compression
 * families the paper cites (weight-only quantization, magnitude
 * pruning) on the accuracy-vs-model-size plane.
 *
 * Each technique is applied post-training without recovery, exactly
 * like the paper's decomposition protocol, and evaluated on the full
 * benchmark suite. Model size uses each technique's natural storage
 * format (factors / packed codes + scales / ideal CSR).
 */

#include "bench_common.h"
#include "util/logging.h"
#include "dse/schedules.h"
#include "quant/prune.h"
#include "quant/quantize.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();
    const int64_t denseBytes = cfg.totalParams() * 2;

    TablePrinter t("Extension: accuracy vs model size across "
                   "compression families (no recovery training)");
    t.setHeader({"Technique", "Config", "Model size", "Mean accuracy"});

    {
        TransformerModel dense =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        t.addRow({"dense", "-", "100.0%",
                  bench::pct(bench::meanAccuracy(
                      bench::evaluateSuite(dense)))});
    }

    // Low-rank ladder (the paper's technique).
    for (int count : {1, 2, 4, 6}) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig gamma = DecompConfig::allTensors(
            cfg, spreadSchedule(static_cast<int>(cfg.nLayers), count), 1);
        bench::applyOrDie(gamma, model);
        const double size = 1.0 - gamma.parameterReduction(cfg);
        t.addRow({"low-rank (Tucker)",
                  std::to_string(count) + " layers, pr=1",
                  bench::pct(size),
                  bench::pct(bench::meanAccuracy(
                      bench::evaluateSuite(model)))});
    }

    // Weight-only quantization.
    for (int bits : {8, 4, 3, 2}) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        applyFakeQuantization(model, bits);
        const double size =
            static_cast<double>(quantizedModelBytes(cfg, bits))
            / static_cast<double>(denseBytes);
        t.addRow({"quantization", strCat("int", bits),
                  bench::pct(size),
                  bench::pct(bench::meanAccuracy(
                      bench::evaluateSuite(model)))});
    }

    // Magnitude pruning.
    for (double sparsity : {0.25, 0.5, 0.75, 0.9}) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        applyMagnitudePruning(model, sparsity);
        const double size =
            static_cast<double>(prunedModelBytes(cfg, sparsity))
            / static_cast<double>(denseBytes);
        t.addRow({"magnitude pruning", bench::pct(sparsity) + " sparse",
                  bench::pct(size),
                  bench::pct(bench::meanAccuracy(
                      bench::evaluateSuite(model)))});
    }

    bench::emit(t, "ext_baselines.csv");
    return 0;
}
