/**
 * @file
 * Reproduces Figure 8: the effect of the *distance* between
 * decomposed layers. Pairs/triples of decomposed layers at increasing
 * separation, plus the paper's consecutive-vs-every-kth comparison.
 *
 * Expected shape: greater distance between decomposed layers loses
 * less accuracy than adjacent layers at the same reduction.
 */

#include <sstream>

#include "bench_common.h"

using namespace lrd;

namespace {

std::string
joinLayers(const std::vector<int> &layers)
{
    std::ostringstream oss;
    for (size_t i = 0; i < layers.size(); ++i)
        oss << (i ? "," : "") << layers[i];
    return oss.str();
}

double
suiteMean(const std::vector<int> &layers)
{
    TransformerModel model =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    bench::applyOrDie(
        DecompConfig::allTensors(tinyLlamaConfig(), layers, 1), model);
    return bench::meanAccuracy(bench::evaluateSuite(model));
}

} // namespace

int
main()
{
    TransformerModel dense =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    const double baseline =
        bench::meanAccuracy(bench::evaluateSuite(dense));

    // Pair sweep: layer 2 plus a partner at increasing distance.
    TablePrinter t("Figure 8a: two decomposed layers at increasing "
                   "distance (paper: larger distance is better)");
    t.setHeader({"Layers", "Distance", "Aggregate accuracy",
                 "Drop vs dense"});
    for (int partner : {3, 4, 5, 6, 7}) {
        const std::vector<int> layers = {2, partner};
        const double acc = suiteMean(layers);
        t.addRow({joinLayers(layers), std::to_string(partner - 2),
                  bench::pct(acc), bench::pct(baseline - acc)});
    }
    bench::emit(t, "fig8_pair_distance.csv");

    // Consecutive vs spread triples at identical reduction.
    TablePrinter s("Figure 8b: consecutive vs spread-apart triples "
                   "(same 3-layer reduction)");
    s.setHeader({"Layers", "Min gap", "Aggregate accuracy",
                 "Drop vs dense"});
    const std::vector<std::vector<int>> triples = {
        {3, 4, 5}, // consecutive
        {2, 4, 6}, // every 2nd
        {2, 4, 7}, // mixed
        {2, 5, 7}, // near-maximal spread
    };
    for (const auto &layers : triples) {
        int minGap = 100;
        for (size_t i = 1; i < layers.size(); ++i)
            minGap = std::min(minGap, layers[i] - layers[i - 1]);
        const double acc = suiteMean(layers);
        s.addRow({joinLayers(layers), std::to_string(minGap),
                  bench::pct(acc), bench::pct(baseline - acc)});
    }
    bench::emit(s, "fig8_triple_spread.csv");
    return 0;
}
