/**
 * @file
 * Reproduces Figure 5: the accuracy impact of which tensor is
 * decomposed. Each of the per-layer weight tensors is rank-1
 * decomposed (a) in a single middle layer and (b) in every layer, for
 * both the Llama-style and BERT-style stand-ins.
 *
 * Expected shape (paper Observation 1): within the attention group
 * and within the MLP group the tensors are roughly equally sensitive
 * on Llama; on BERT the intermediate FC (W_Int) is the most
 * sensitive.
 */

#include "bench_common.h"

using namespace lrd;

namespace {

void
runPanel(const char *title, const std::vector<uint8_t> &bytes,
         const ModelConfig &cfg, const std::string &csv, int evalTasks)
{
    TablePrinter t(title);
    t.setHeader({"Tensor", "Scope", "Reduction", "Mean accuracy",
                 "Drop vs dense"});

    TransformerModel dense = TransformerModel::deserialize(bytes);
    const double baseline = bench::meanAccuracy(
        bench::evaluateSuite(dense, evalTasks));
    t.addRow({"(none)", "-", "0.0%", bench::pct(baseline), "0.0%"});

    const int mid = static_cast<int>(cfg.nLayers / 2);
    std::vector<int> allLayers;
    for (int l = 0; l < cfg.nLayers; ++l)
        allLayers.push_back(l);

    for (WeightKind kind : decomposableKinds(cfg.arch)) {
        for (bool everyLayer : {false, true}) {
            TransformerModel model = TransformerModel::deserialize(bytes);
            const DecompConfig gamma = DecompConfig::oneTensor(
                kind, everyLayer ? allLayers : std::vector<int>{mid}, 1);
            bench::applyOrDie(gamma, model);
            const double acc = bench::meanAccuracy(
                bench::evaluateSuite(model, evalTasks));
            t.addRow({weightKindName(kind),
                      everyLayer ? "all layers" : "1 layer",
                      bench::pct(gamma.parameterReduction(cfg)),
                      bench::pct(acc), bench::pct(baseline - acc)});
        }
    }
    bench::emit(t, csv);
}

} // namespace

int
main()
{
    runPanel("Figure 5 (Llama panel): per-tensor rank-1 decomposition "
             "(paper: no strong per-tensor trend within a group)",
             bench::tinyLlamaBytes(), tinyLlamaConfig(),
             "fig5_tensor_choice_llama.csv", bench::kEvalTasks);
    runPanel("Figure 5 (BERT panel): per-tensor rank-1 decomposition "
             "(paper: W_Int is the most sensitive)",
             bench::tinyBertBytes(), tinyBertConfig(),
             "fig5_tensor_choice_bert.csv", 60);
    return 0;
}
