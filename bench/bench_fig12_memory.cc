/**
 * @file
 * Reproduces Figure 12: GPU memory footprint vs model-size reduction
 * on the Llama2-7B shape (weights + KV cache + activations + runtime
 * overhead). Expected slope: ~0.4% footprint per 1% params, because
 * the non-weight components do not shrink with decomposition.
 */

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = llama2_7bConfig();
    const GenerationWorkload wl = bench::paperWorkload();

    const double base =
        memoryFootprintBytes(cfg, DecompConfig::identity(), wl);

    TablePrinter t("Figure 12: analytical GPU memory footprint, "
                   "Llama2-7B (paper: ~0.4% memory per 1% params)");
    t.setHeader({"Reduction", "Footprint (GB)", "Memory saving",
                 "Saving per 1% params"});
    t.addRow({"0.0%", TablePrinter::num(base / 1e9, 2), "-", "-"});
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        const double mem = memoryFootprintBytes(cfg, gamma, wl);
        const double reduction = gamma.parameterReduction(cfg);
        const double saving = 1.0 - mem / base;
        t.addRow({bench::pct(reduction),
                  TablePrinter::num(mem / 1e9, 2), bench::pct(saving),
                  bench::pct(saving / (reduction * 100.0), 2)});
    }
    bench::emit(t, "fig12_memory.csv");
    return 0;
}
