/**
 * @file
 * Shared helpers for the reproduction benches: canonical workloads,
 * paper-reference constants, and result-table conventions.
 *
 * Every bench binary prints one or more markdown tables comparing the
 * paper's reported values/trends with this repository's measurements,
 * and writes a CSV next to the binary for plotting.
 */

#ifndef LRD_BENCH_BENCH_COMMON_H
#define LRD_BENCH_BENCH_COMMON_H

#include <string>

#include "model/decomp_config.h"
#include "eval/evaluator.h"
#include "hw/roofline.h"
#include "train/model_zoo.h"
#include "util/table.h"

namespace lrd {
namespace bench {

/** Items per benchmark for accuracy harnesses (speed/noise balance). */
constexpr int kEvalTasks = 120;
constexpr uint64_t kEvalSeed = 777;

/** Published Llama2-7B accuracies (%), used as the paper's Figure 3/9
 *  "no decomposition" reference points. */
double paperBaselineAccuracy(BenchmarkKind kind);

/** The paper's A100 generation workload stand-in for Figures 10-12. */
GenerationWorkload paperWorkload();

/** Load the pretrained tiny Llama checkpoint bytes (train on first
 *  use), so each configuration can be decomposed from a fresh copy. */
const std::vector<uint8_t> &tinyLlamaBytes();
const std::vector<uint8_t> &tinyBertBytes();

/** Apply a decomposition config, aborting the bench on failure: a
 *  rejected configuration is a bug in the sweep construction, not a
 *  measurable data point, so there is nothing sensible to record. */
void applyOrDie(const DecompConfig &gamma, TransformerModel &model);

/** Evaluate the full suite and return accuracies in benchmark order. */
std::vector<double> evaluateSuite(TransformerModel &model,
                                  int numTasks = kEvalTasks,
                                  uint64_t seed = kEvalSeed);

/** Mean of a suite result. */
double meanAccuracy(const std::vector<double> &accs);

/** "12.3%" formatting helper. */
std::string pct(double fraction, int precision = 1);

/** Write the CSV and print the table (single call used by benches). */
void emit(const TablePrinter &table, const std::string &csvName);

} // namespace bench
} // namespace lrd

#endif // LRD_BENCH_BENCH_COMMON_H
