/**
 * @file
 * Reproduces Figure 3: the impact of the pruned rank on accuracy at
 * matched layer schedules. The paper prunes Llama2-7B (dim 4096) to
 * ranks {1, 250, 500}; scaled to our dim-64 stand-in those are
 * ranks {1, 4, 8}.
 *
 * Expected shape (paper Observation, Section 3.3.1): accuracy varies
 * only ~1.5% across ranks at the same decomposition locations — the
 * reduction *rate* dominates, so rank-1 is the right operating point.
 */

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();
    const std::vector<int64_t> ranks = {1, 4, 8}; // ~ {1, 250, 500}/4096
    const std::vector<int> layerCounts = {1, 3, 5};

    TablePrinter t("Figure 3: accuracy vs pruned rank "
                   "(paper: rank changes accuracy by ~1.5% on average)");
    std::vector<std::string> header = {"Layers", "PR", "Reduction"};
    for (BenchmarkKind kind : allBenchmarks())
        header.push_back(benchmarkName(kind));
    header.emplace_back("Mean");
    t.setHeader(header);

    // Per-benchmark accuracy spread across ranks *at the same layer
    // schedule* (the paper's headline observation).
    const size_t nBench = allBenchmarks().size();
    std::vector<double> spreadSum(nBench, 0.0);

    for (int count : layerCounts) {
        const auto layers =
            spreadSchedule(static_cast<int>(cfg.nLayers), count);
        std::vector<double> mx(nBench, 0.0), mn(nBench, 1.0);
        for (int64_t pr : ranks) {
            TransformerModel model =
                TransformerModel::deserialize(bench::tinyLlamaBytes());
            const DecompConfig gamma =
                DecompConfig::allTensors(cfg, layers, pr);
            bench::applyOrDie(gamma, model);
            const auto accs = bench::evaluateSuite(model);

            std::vector<std::string> row = {
                std::to_string(count), std::to_string(pr),
                bench::pct(gamma.parameterReduction(cfg))};
            for (size_t i = 0; i < accs.size(); ++i) {
                row.push_back(bench::pct(accs[i]));
                mx[i] = std::max(mx[i], accs[i]);
                mn[i] = std::min(mn[i], accs[i]);
            }
            row.push_back(bench::pct(bench::meanAccuracy(accs)));
            t.addRow(row);
        }
        for (size_t i = 0; i < nBench; ++i)
            spreadSum[i] += mx[i] - mn[i];
    }
    bench::emit(t, "fig3_rank_sweep.csv");

    TablePrinter s("Figure 3 headline: mean accuracy spread across "
                   "ranks at fixed layer schedule (paper: ~1.5%)");
    s.setHeader({"Benchmark", "Mean spread across ranks"});
    double total = 0.0;
    for (size_t i = 0; i < nBench; ++i) {
        const double spread =
            spreadSum[i] / static_cast<double>(layerCounts.size());
        total += spread;
        s.addRow({benchmarkName(allBenchmarks()[i]), bench::pct(spread)});
    }
    s.addRow({"average",
              bench::pct(total / static_cast<double>(nBench))});
    bench::emit(s, "fig3_rank_spread.csv");
    return 0;
}
