/**
 * @file
 * Reproduces Figure 10: inference speedup vs model-size reduction.
 *
 * Two complementary measurements:
 *  (a) the analytical A100 roofline model on the real Llama2-7B shape
 *      across the paper's Table 4 ladder (paper: ~0.5% latency saved
 *      per 1% parameters removed, i.e. speedup 1.05x at ~9%);
 *  (b) REAL wall-clock CPU latency of this repository's inference
 *      engine on the tiny stand-in, dense vs decomposed.
 */

#include "bench_common.h"
#include "dse/schedules.h"
#include "util/timer.h"

using namespace lrd;

namespace {

/** Wall-clock seconds for a fixed evaluation workload. */
double
measureCpuLatency(TransformerModel &model)
{
    const auto tasks = makeMcTasks(BenchmarkKind::Mmlu, defaultWorld(),
                                   60, 4242);
    Evaluator ev(model, defaultWorld(), EvalOptions{1, 1, false});
    Timer timer;
    for (const McTask &task : tasks)
        (void)ev.pickChoiceCausal(task);
    return timer.elapsedSeconds();
}

} // namespace

int
main()
{
    // (a) Analytical A100 model, Llama2-7B, Table 4 ladder.
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    const GenerationWorkload wl = bench::paperWorkload();

    const InferenceEstimate base =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);

    TablePrinter t("Figure 10a: analytical A100 latency, Llama2-7B "
                   "(paper: ~0.5% latency per 1% params)");
    t.setHeader({"Reduction", "Latency (s)", "Speedup",
                 "Latency saved per 1% params"});
    t.addRow({"0.0%", TablePrinter::num(base.latencySec, 3), "1.000x",
              "-"});
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        const InferenceEstimate est =
            estimateGeneration(cfg, gamma, dev, wl);
        const double reduction = gamma.parameterReduction(cfg);
        const double saved = 1.0 - est.latencySec / base.latencySec;
        t.addRow({bench::pct(reduction),
                  TablePrinter::num(est.latencySec, 3),
                  TablePrinter::num(base.latencySec / est.latencySec, 3)
                      + "x",
                  bench::pct(saved / (reduction * 100.0), 2)});
    }
    bench::emit(t, "fig10_latency_analytical.csv");

    // The paper's actual testbed: 4x A100 data-parallel.
    TablePrinter g("Figure 10 (testbed view): 4x A100 data-parallel "
                   "aggregate throughput");
    g.setHeader({"Reduction", "Aggregate tok/s", "Throughput gain"});
    const MultiGpuEstimate base4 = estimateGenerationMultiGpu(
        cfg, DecompConfig::identity(), dev, wl, 4);
    g.addRow({"0.0%",
              TablePrinter::num(base4.aggregateTokensPerSec, 0),
              "1.000x"});
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        const MultiGpuEstimate est =
            estimateGenerationMultiGpu(cfg, gamma, dev, wl, 4);
        g.addRow({bench::pct(gamma.parameterReduction(cfg)),
                  TablePrinter::num(est.aggregateTokensPerSec, 0),
                  TablePrinter::num(est.aggregateTokensPerSec
                                        / base4.aggregateTokensPerSec,
                                    3)
                      + "x"});
    }
    bench::emit(g, "fig10_latency_multigpu.csv");

    // (b) Real CPU wall-clock on the tiny stand-in.
    const ModelConfig tiny = tinyLlamaConfig();
    TransformerModel dense =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    (void)measureCpuLatency(dense); // warm-up
    const double denseSec = measureCpuLatency(dense);

    TablePrinter m("Figure 10b: measured CPU latency of this engine "
                   "(tiny stand-in, 60-item MMLU scoring workload)");
    m.setHeader({"Reduction", "Wall clock (s)", "Speedup"});
    m.addRow({"0.0%", TablePrinter::num(denseSec, 3), "1.000x"});
    for (int count : {2, 4, 6, 8}) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig gamma = DecompConfig::allTensors(
            tiny, spreadSchedule(static_cast<int>(tiny.nLayers), count),
            1);
        bench::applyOrDie(gamma, model);
        (void)measureCpuLatency(model); // warm-up
        const double sec = measureCpuLatency(model);
        m.addRow({bench::pct(gamma.parameterReduction(tiny)),
                  TablePrinter::num(sec, 3),
                  TablePrinter::num(denseSec / sec, 3) + "x"});
    }
    bench::emit(m, "fig10_latency_measured.csv");
    return 0;
}
