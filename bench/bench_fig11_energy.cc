/**
 * @file
 * Reproduces Figure 11: GPU energy consumption vs model-size
 * reduction on the Llama2-7B shape. Per the paper's measurement the
 * GPU runs pinned at maximum power, so energy = P_max x latency and
 * the energy saving tracks the latency saving (~0.5% per 1% params).
 */

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = llama2_7bConfig();
    const DeviceSpec dev = a100_80gb();
    const GenerationWorkload wl = bench::paperWorkload();

    const InferenceEstimate base =
        estimateGeneration(cfg, DecompConfig::identity(), dev, wl);

    TablePrinter t("Figure 11: analytical A100 energy, Llama2-7B "
                   "(paper: ~0.5% energy per 1% params; power pinned "
                   "at 300 W)");
    t.setHeader({"Reduction", "Energy (J)", "Energy saving",
                 "Saving per 1% params"});
    t.addRow({"0.0%", TablePrinter::num(base.energyJoules, 1), "-",
              "-"});
    for (const Table4Row &row : paperTable4()) {
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, table4Layers0Based(row), 1);
        const InferenceEstimate est =
            estimateGeneration(cfg, gamma, dev, wl);
        const double reduction = gamma.parameterReduction(cfg);
        const double saving = 1.0 - est.energyJoules / base.energyJoules;
        t.addRow({bench::pct(reduction),
                  TablePrinter::num(est.energyJoules, 1),
                  bench::pct(saving),
                  bench::pct(saving / (reduction * 100.0), 2)});
    }
    bench::emit(t, "fig11_energy.csv");
    return 0;
}
