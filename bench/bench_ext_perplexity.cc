/**
 * @file
 * Extension bench: held-out language-model loss (and perplexity)
 * across the decomposition ladder — a denser-resolution counterpart
 * to the Figure 9 accuracy curves, and the quantity the fine-tuning
 * recovery extension optimizes.
 */

#include <cmath>

#include "bench_common.h"
#include "dse/schedules.h"
#include "train/trainer.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();
    TablePrinter t("Extension: held-out LM loss vs parameter "
                   "reduction (tiny stand-in)");
    t.setHeader({"Reduction", "Held-out loss", "Perplexity",
                 "Loss increase"});

    double baseLoss = 0.0;
    for (int count = 0; count <= cfg.nLayers; ++count) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig gamma =
            count == 0
                ? DecompConfig::identity()
                : DecompConfig::allTensors(
                      cfg,
                      spreadSchedule(static_cast<int>(cfg.nLayers),
                                     count),
                      1);
        bench::applyOrDie(gamma, model);
        TrainOptions opts;
        opts.seqLen = 64;
        Trainer probe(model, defaultWorld(), opts);
        const double loss = probe.evalLoss(30);
        if (count == 0)
            baseLoss = loss;
        t.addRow({bench::pct(gamma.parameterReduction(cfg)),
                  TablePrinter::num(loss, 4),
                  TablePrinter::num(std::exp(loss), 2),
                  TablePrinter::num(loss - baseLoss, 4)});
    }
    bench::emit(t, "ext_perplexity.csv");
    return 0;
}
