/**
 * @file
 * Exercises Definition 1 (the design goal): find the decomposition
 * configuration minimizing latency x energy subject to an accuracy
 * drop below tau, over the characterization-pruned candidate space.
 */

#include "bench_common.h"
#include "dse/optimizer.h"

using namespace lrd;

int
main()
{
    OptimizerOptions opts;
    opts.accuracyDropTolerance = 0.05; // tau = 5%p aggregate
    opts.evalTasks = 80;

    const OptimizerResult res = optimizeDecomposition(
        bench::tinyLlamaBytes(), defaultWorld(), opts);

    TablePrinter t("Definition 1 search: candidates over the pruned "
                   "space (tau = 5%p aggregate accuracy drop)");
    t.setHeader({"Candidate", "Reduction", "Aggregate acc", "EDP (J*s)",
                 "Feasible"});
    t.addRow({"dense baseline", "0.0%",
              bench::pct(res.baselineAccuracy),
              TablePrinter::num(res.baselineEdp, 4), "yes"});
    for (const CandidateRecord &rec : res.explored) {
        t.addRow({rec.config.describe(), bench::pct(rec.reduction),
                  bench::pct(rec.accuracy),
                  TablePrinter::num(rec.edp, 4),
                  rec.feasible ? "yes" : "no"});
    }
    bench::emit(t, "def1_candidates.csv");

    TablePrinter b("Definition 1 result");
    b.setHeader({"Chosen gamma", "Reduction", "Accuracy (baseline)",
                 "EDP improvement"});
    b.addRow({res.best.config.describe(), bench::pct(res.best.reduction),
              bench::pct(res.best.accuracy) + " ("
                  + bench::pct(res.baselineAccuracy) + ")",
              TablePrinter::num(res.baselineEdp / res.best.edp, 3)
                  + "x"});
    bench::emit(b, "def1_result.csv");
    return 0;
}
