/**
 * @file
 * Google-benchmark microbenchmarks for the numeric kernels: GEMM
 * variants, SVD, 2D Tucker factorization, dense vs rank-1 factorized
 * linear layers, and a KV-cache decode step.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "decomp/tucker.h"
#include "linalg/linalg.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/ops.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

namespace lrd {
namespace {

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTransB(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(2);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulTransB(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTransA(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(12);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulTransA(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransA)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/** BM_Gemm with metrics recording forced on: the delta against
 *  BM_Gemm/256 is the instrumentation overhead (budget: <2%). */
void
BM_GemmMetricsOn(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    MetricsRegistry::instance().setEnabled(true);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    MetricsRegistry::instance().setEnabled(false);
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmMetricsOn)->Arg(256);

/** BM_Gemm with tracing on (spans recorded into the ring buffers). */
void
BM_GemmTraceOn(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    Tracer::instance().setEnabled(true);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTraceOn)->Arg(256);

/** Thread-scaling sweep: same 256x256x256 GEMM at a fixed pool size.
 *  The pool is resized outside the timed region; results must be
 *  bitwise identical at every point (see determinism_test). */
void
BM_GemmThreads(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    static const int restoreThreads = ThreadPool::instance().numThreads();
    ThreadPool::instance().resize(threads);
    const int64_t n = 256;
    Rng rng(13);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    ThreadPool::instance().resize(restoreThreads);
}
void
threadSweepArgs(benchmark::internal::Benchmark *b)
{
    b->Arg(1)->Arg(2)->Arg(4);
    const int hw = hardwareConcurrency();
    if (hw > 4)
        b->Arg(hw);
}
BENCHMARK(BM_GemmThreads)->Apply(threadSweepArgs);

void
BM_Svd(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        SvdResult s = svd(a);
        benchmark::DoNotOptimize(s.s.data());
    }
}
BENCHMARK(BM_Svd)->Arg(32)->Arg(64)->Arg(128);

void
BM_Tucker2dRank1(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(4);
    Tensor w = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tucker2d d = tucker2dDecompose(w, 1);
        benchmark::DoNotOptimize(d.core.data());
    }
}
BENCHMARK(BM_Tucker2dRank1)->Arg(64)->Arg(128);

void
BM_RandomizedSvdRank8(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(5);
    Tensor a = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Rng r2(6);
        SvdResult s = randomizedSvd(a, 8, r2);
        benchmark::DoNotOptimize(s.s.data());
    }
}
BENCHMARK(BM_RandomizedSvdRank8)->Arg(128)->Arg(256);

void
BM_DenseLinearForward(benchmark::State &state)
{
    Rng rng(7);
    Linear l(176, 64, false, "bench", rng);
    Tensor x = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_DenseLinearForward);

void
BM_FactorizedLinearForward(benchmark::State &state)
{
    Rng rng(8);
    Linear l(176, 64, false, "bench", rng);
    l.factorize(static_cast<int64_t>(state.range(0)));
    Tensor x = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FactorizedLinearForward)->Arg(1)->Arg(8)->Arg(16);

void
BM_DecodeStep(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 9);
    InferenceSession session(model);
    Tensor logits = session.append({1, 2, 3, 4});
    for (auto _ : state) {
        if (session.length() + 1 >= model.config().maxSeq) {
            state.PauseTiming();
            session.reset();
            (void)session.append({1, 2, 3, 4});
            state.ResumeTiming();
        }
        logits = session.append({5});
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_DecodeStep);

void
BM_FullForward64(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 10);
    TokenSeq tokens;
    for (int i = 0; i < 64; ++i)
        tokens.push_back(i % 100);
    for (auto _ : state) {
        Tensor logits = model.forward(tokens);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_FullForward64);

/** One optimizer step (forward + backward + AdamW) on the tiny
 *  stand-in. The robust-layer guards (faultAt at the step boundary,
 *  the per-block non-finite check) are compiled in but disarmed; the
 *  delta against a pre-guard baseline is the guard overhead
 *  (budget: <2%). */
void
BM_TrainerStep(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 11);
    TrainOptions opts;
    opts.steps = 1;
    opts.batchSeqs = 2;
    opts.seqLen = 32;
    opts.warmupSteps = 0;
    opts.logEvery = 0;
    for (auto _ : state) {
        Trainer trainer(model, defaultWorld(), opts);
        const double loss = trainer.run();
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_TrainerStep);

} // namespace
} // namespace lrd

BENCHMARK_MAIN();
