/**
 * @file
 * Google-benchmark microbenchmarks for the numeric kernels: GEMM
 * variants, SVD, 2D Tucker factorization, dense vs rank-1 factorized
 * linear layers, and a KV-cache decode step.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <thread>

#include "decomp/tucker.h"
#include "linalg/linalg.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "train/model_zoo.h"
#include "train/trainer.h"

namespace lrd {
namespace {

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTransB(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(2);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulTransB(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmTransA(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(12);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulTransA(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransA)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/** BM_Gemm with metrics recording forced on: the delta against
 *  BM_Gemm/256 is the instrumentation overhead (budget: <2%). */
void
BM_GemmMetricsOn(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    MetricsRegistry::instance().setEnabled(true);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    MetricsRegistry::instance().setEnabled(false);
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmMetricsOn)->Arg(256);

/** BM_Gemm with the flight-recorder sampler running at a 10 ms tick:
 *  the delta against BM_Gemm/256 is the telemetry overhead (budget:
 *  <1% — the sampler only takes relaxed snapshots off-thread). */
void
BM_GemmTelemetryOn(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    TelemetryConfig config;
    config.intervalMs = 10;
    config.path = "/tmp/lrd_bench_telemetry.jsonl";
    startTelemetrySampler(config);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    stopTelemetrySampler();
    MetricsRegistry::instance().setEnabled(false);
    std::remove(config.path.c_str());
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTelemetryOn)->Arg(256);

/** BM_Gemm with tracing on (spans recorded into the ring buffers). */
void
BM_GemmTraceOn(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    Tracer::instance().setEnabled(true);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTraceOn)->Arg(256);

/** Thread-scaling sweep: same 256x256x256 GEMM at a fixed pool size.
 *  The pool is resized outside the timed region; results must be
 *  bitwise identical at every point (see determinism_test). */
void
BM_GemmThreads(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    static const int restoreThreads = ThreadPool::instance().numThreads();
    ThreadPool::instance().resize(threads);
    const int64_t n = 256;
    Rng rng(13);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    ThreadPool::instance().resize(restoreThreads);
}
void
threadSweepArgs(benchmark::internal::Benchmark *b)
{
    b->Arg(1)->Arg(2)->Arg(4);
    const int hw = hardwareConcurrency();
    if (hw > 4)
        b->Arg(hw);
}
BENCHMARK(BM_GemmThreads)->Apply(threadSweepArgs);

/** Same 256^3 GEMM pinned to each microkernel level this host can
 *  run (arg = simd::Level). items/s / 1e9 = G MACs/s; the ratio
 *  against the scalar row is the measured SIMD speedup. */
void
BM_GemmSimdLevel(benchmark::State &state)
{
    const auto level = static_cast<simd::Level>(state.range(0));
    const simd::Level restore = simd::activeLevel();
    simd::setActiveLevel(level);
    state.SetLabel(simd::levelName(level));
    const int64_t n = 256;
    Rng rng(14);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    simd::setActiveLevel(restore);
}
void
simdLevelArgs(benchmark::internal::Benchmark *b)
{
    for (simd::Level level : simd::availableLevels())
        b->Arg(static_cast<int64_t>(level));
}
BENCHMARK(BM_GemmSimdLevel)->Apply(simdLevelArgs);

// ---------------------------------------------------------------------
// Dense vs factorized crossover sweep (paper Section 5): at hidden
// size h, a dense forward costs m*h^2 MACs while the factorized chain
// costs m*(2*h*r + r^2); the roofline predicts factorized wins below
// r* = h*(sqrt(2)-1) ~ 0.414*h. BM_CrossoverDense/h is the dense
// baseline; BM_CrossoverFactorized/{h, r} sweeps ranks around the
// predicted crossover. Comparing real_time at equal h locates the
// measured crossover rank (items/s is per-variant G MACs/s, so it is
// NOT the comparison metric). Batch m = 256 rows keeps the fused
// serving path engaged.
// ---------------------------------------------------------------------

constexpr int64_t kCrossoverRows = 256;

/** Rank-r factor shapes filled with random values, skipping the SVD
 *  (timing is shape-dependent, not value-dependent). */
Linear
makeFactorizedLinear(int64_t h, int64_t r, Rng &rng)
{
    Linear l(h, h, /*hasBias=*/false, "bench.crossover", rng);
    l.installFactorShape(r);
    for (Parameter *p : l.parameters())
        p->value = Tensor::randn(p->value.shape(), rng);
    return l;
}

void
BM_CrossoverDense(benchmark::State &state)
{
    const auto h = static_cast<int64_t>(state.range(0));
    Rng rng(15);
    Linear l(h, h, /*hasBias=*/false, "bench.crossover", rng);
    Tensor x = Tensor::randn({kCrossoverRows, h}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * kCrossoverRows * h * h);
}
BENCHMARK(BM_CrossoverDense)->Arg(256)->Arg(512);

void
BM_CrossoverFactorized(benchmark::State &state)
{
    const auto h = static_cast<int64_t>(state.range(0));
    const auto r = static_cast<int64_t>(state.range(1));
    Rng rng(16);
    Linear l = makeFactorizedLinear(h, r, rng);
    Tensor x = Tensor::randn({kCrossoverRows, h}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * kCrossoverRows *
                            (2 * h * r + r * r));
}
void
crossoverArgs(benchmark::internal::Benchmark *b)
{
    for (int64_t h : {int64_t{256}, int64_t{512}}) {
        for (double frac :
             {0.0625, 0.125, 0.25, 0.375, 0.414, 0.5, 0.625, 0.75, 1.0})
            b->Args({h, std::llround(static_cast<double>(h) * frac)});
    }
}
BENCHMARK(BM_CrossoverFactorized)->Apply(crossoverArgs);

/** The factorized crossover forward with the fused path disabled:
 *  the delta against BM_CrossoverFactorized is the win from fusing
 *  the three-GEMM chain against pre-packed weights. */
void
BM_CrossoverFactorizedUnfused(benchmark::State &state)
{
    const auto h = static_cast<int64_t>(state.range(0));
    const auto r = static_cast<int64_t>(state.range(1));
    Rng rng(16);
    Linear l = makeFactorizedLinear(h, r, rng);
    Tensor x = Tensor::randn({kCrossoverRows, h}, rng);
    Linear::setFusedForwardEnabled(false);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    Linear::setFusedForwardEnabled(true);
    state.SetItemsProcessed(state.iterations() * kCrossoverRows *
                            (2 * h * r + r * r));
}
void
crossoverUnfusedArgs(benchmark::internal::Benchmark *b)
{
    b->Args({256, 106});
    b->Args({512, 212});
}
BENCHMARK(BM_CrossoverFactorizedUnfused)->Apply(crossoverUnfusedArgs);

void
BM_Svd(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        SvdResult s = svd(a);
        benchmark::DoNotOptimize(s.s.data());
    }
}
BENCHMARK(BM_Svd)->Arg(32)->Arg(64)->Arg(128);

void
BM_Tucker2dRank1(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(4);
    Tensor w = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tucker2d d = tucker2dDecompose(w, 1);
        benchmark::DoNotOptimize(d.core.data());
    }
}
BENCHMARK(BM_Tucker2dRank1)->Arg(64)->Arg(128);

void
BM_RandomizedSvdRank8(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    Rng rng(5);
    Tensor a = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Rng r2(6);
        SvdResult s = randomizedSvd(a, 8, r2);
        benchmark::DoNotOptimize(s.s.data());
    }
}
BENCHMARK(BM_RandomizedSvdRank8)->Arg(128)->Arg(256);

void
BM_DenseLinearForward(benchmark::State &state)
{
    Rng rng(7);
    Linear l(176, 64, false, "bench", rng);
    Tensor x = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_DenseLinearForward);

void
BM_FactorizedLinearForward(benchmark::State &state)
{
    Rng rng(8);
    Linear l(176, 64, false, "bench", rng);
    const Status st = l.factorize(static_cast<int64_t>(state.range(0)));
    if (!st.ok()) {
        state.SkipWithError(st.toString().c_str());
        return;
    }
    Tensor x = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        Tensor y = l.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_FactorizedLinearForward)->Arg(1)->Arg(8)->Arg(16);

void
BM_DecodeStep(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 9);
    InferenceSession session(model);
    Tensor logits = session.append({1, 2, 3, 4});
    for (auto _ : state) {
        if (session.length() + 1 >= model.config().maxSeq) {
            state.PauseTiming();
            session.reset();
            (void)session.append({1, 2, 3, 4});
            state.ResumeTiming();
        }
        logits = session.append({5});
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_DecodeStep);

void
BM_FullForward64(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 10);
    TokenSeq tokens;
    for (int i = 0; i < 64; ++i)
        tokens.push_back(i % 100);
    for (auto _ : state) {
        Tensor logits = model.forward(tokens);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_FullForward64);

/** One optimizer step (forward + backward + AdamW) on the tiny
 *  stand-in. The robust-layer guards (faultAt at the step boundary,
 *  the per-block non-finite check) are compiled in but disarmed; the
 *  delta against a pre-guard baseline is the guard overhead
 *  (budget: <2%). */
void
BM_TrainerStep(benchmark::State &state)
{
    TransformerModel model(tinyLlamaConfig(), 11);
    TrainOptions opts;
    opts.steps = 1;
    opts.batchSeqs = 2;
    opts.seqLen = 32;
    opts.warmupSteps = 0;
    opts.logEvery = 0;
    for (auto _ : state) {
        Trainer trainer(model, defaultWorld(), opts);
        const double loss = trainer.run();
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_TrainerStep);

void
BM_ServeThroughput(benchmark::State &state)
{
    // End-to-end serving cost: a closed-loop burst through admission,
    // batching, and delivery on a fresh (untrained) tiny model.
    TransformerModel model(tinyLlamaConfig(), 11);
    ServeOptions opts;
    opts.queueCapacity = 16;
    opts.maxBatch = 4;
    opts.maxClientAttempts = 8;
    WorkloadOptions wl;
    wl.numRequests = 24;
    wl.maxContextLen = 8;
    wl.maxContinuationLen = 3;
    wl.deadlineTicks = 1024;
    int64_t responded = 0;
    for (auto _ : state) {
        Server server(model, opts);
        const ServeReport r =
            server.run(makeSyntheticWorkload(tinyLlamaConfig(), wl));
        responded += r.stats.responded;
        benchmark::DoNotOptimize(r.stats.throughputRps);
    }
    state.SetItemsProcessed(responded);
}
BENCHMARK(BM_ServeThroughput);

void
BM_ServeP99(benchmark::State &state)
{
    // Tail latency under overload: a burst twice the queue depth, so
    // the run exercises the degradation ladder and client backoff.
    // p99 (in ticks, deterministic) is exported as a counter so
    // check_bench.py gates tail regressions, not just mean time.
    TransformerModel model(tinyLlamaConfig(), 11);
    ServeOptions opts;
    opts.queueCapacity = 8;
    opts.maxBatch = 4;
    opts.maxClientAttempts = 8;
    WorkloadOptions wl;
    wl.numRequests = 16;
    wl.maxContextLen = 8;
    wl.maxContinuationLen = 3;
    wl.deadlineTicks = 1024;
    double p99 = 0.0;
    int64_t responded = 0;
    for (auto _ : state) {
        Server server(model, opts);
        const ServeReport r =
            server.run(makeSyntheticWorkload(tinyLlamaConfig(), wl));
        p99 = r.stats.p99LatencyTicks;
        responded += r.stats.responded;
    }
    state.SetItemsProcessed(responded);
    state.counters["p99_latency_ticks"] = p99;
}
BENCHMARK(BM_ServeP99);

} // namespace
} // namespace lrd

#ifndef LRD_CMAKE_BUILD_TYPE
#define LRD_CMAKE_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    // Tag the JSON context with the dispatch choice and the build
    // type of THIS library (google-benchmark's own
    // "library_build_type" describes the preinstalled libbenchmark,
    // not our kernels).
    benchmark::AddCustomContext(
        "lrd_simd", lrd::simd::levelName(lrd::simd::activeLevel()));
    benchmark::AddCustomContext("lrd_build_type", LRD_CMAKE_BUILD_TYPE);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
