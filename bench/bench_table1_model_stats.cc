/**
 * @file
 * Reproduces Table 1: model size (FP16), computation count and
 * compute-to-model-size ratio for ResNet-50, BERT-Base and Llama2-7B
 * (language models at batch 1, sequence length 128).
 *
 * Note on the ResNet row: the paper reports 8.21 B "MACs", which is
 * the common 2x-MAC FLOP count for ResNet-50; we print both the MAC
 * count (4.1 B) and FLOPs so either convention can be compared.
 */

#include "bench_common.h"
#include "hw/opcount.h"

using namespace lrd;

int
main()
{
    TablePrinter t("Table 1: model size vs computation "
                   "(paper values in parentheses)");
    t.setHeader({"Model", "Size FP16", "MACs", "FLOPs",
                 "MACs/byte (paper)"});

    auto gb = [](double bytes) {
        return bytes >= 1e9
                   ? TablePrinter::num(bytes / 1e9, 1) + " GB"
                   : TablePrinter::num(bytes / 1e6, 1) + " MB";
    };
    auto billions = [](double v) {
        return TablePrinter::num(v / 1e9, 2) + " B";
    };

    {
        const double params = static_cast<double>(resnet50Params());
        const double macs = static_cast<double>(resnet50Macs());
        t.addRow({"ResNet50 (CV)", gb(params * 2) + " (51.1 MB)",
                  billions(macs) + " (8.21 B as FLOPs)",
                  billions(2 * macs),
                  TablePrinter::num(macs / (params * 2), 1) + " (160.7)"});
    }

    WorkloadParams wl;
    wl.batch = 1;
    wl.seqLen = 128;
    const DecompConfig id = DecompConfig::identity();
    struct Row { ModelConfig cfg; const char *size; const char *macs;
                 const char *ratio; };
    const Row rows[] = {
        {bertBaseConfig(), "219.0 MB", "11.2 B", "51.1"},
        {llama2_7bConfig(), "13.4 GB", "850.0 B", "63.4"},
    };
    for (const Row &r : rows) {
        const double bytes =
            static_cast<double>(transformerWeightBytes(r.cfg, id, 2));
        const double macs =
            static_cast<double>(transformerMacs(r.cfg, id, wl));
        t.addRow({r.cfg.name, gb(bytes) + " (" + r.size + ")",
                  billions(macs) + " (" + r.macs + ")",
                  billions(2 * macs),
                  TablePrinter::num(macs / bytes, 1) + " (" + r.ratio
                      + ")"});
    }
    bench::emit(t, "table1_model_stats.csv");
    return 0;
}
