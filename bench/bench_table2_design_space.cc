/**
 * @file
 * Reproduces Table 2: decomposition design-space scale for BERT-Base,
 * BERT-Large, Llama2-7B and Llama2-70B (Theorem 3.2).
 *
 * The paper's table counts 5 decomposable tensors for Llama 2 even
 * though its Figure 4 shows 7 (Wq, Wk, Wv, Wso, Wg, Wu, Wd); we print
 * both so the O(2^37)/O(2^85) scales can be compared directly.
 */

#include "bench_common.h"
#include "dse/design_space.h"

using namespace lrd;

int
main()
{
    TablePrinter t("Table 2: design-space scale (rank term = 1; "
                   "paper scale in parentheses)");
    t.setHeader({"Model", "Layers", "Tensors (paper)", "O(2^x) ours",
                 "O(2^x) paper-count"});

    struct Row
    {
        ModelConfig cfg;
        int paperTensors;
        const char *paperScale;
    };
    const Row rows[] = {
        {bertBaseConfig(), 6, "2^18"},
        {bertLargeConfig(), 6, "2^30"},
        {llama2_7bConfig(), 5, "2^37"},
        {llama2_70bConfig(), 5, "2^85"},
    };
    for (const Row &r : rows) {
        const double ours = designSpaceSizeLog2(r.cfg, 1);
        const double paperCount = designSpaceSizeLog2(
            r.cfg.nLayers, r.paperTensors, 1);
        t.addRow({r.cfg.name, std::to_string(r.cfg.nLayers),
                  std::to_string(r.cfg.numDecomposableTensors()) + " ("
                      + std::to_string(r.paperTensors) + ")",
                  "2^" + TablePrinter::num(ours, 1),
                  "2^" + TablePrinter::num(paperCount, 1) + " ("
                      + r.paperScale + ")"});
    }
    bench::emit(t, "table2_design_space.csv");

    // Cross-check Theorem 3.2 against brute-force enumeration on a
    // model small enough to enumerate.
    TablePrinter v("Theorem 3.2 vs brute-force enumeration "
                   "(test-scale model)");
    v.setHeader({"Rank bound", "Enumerated", "Closed form"});
    const ModelConfig tiny = testLlamaConfig();
    for (int64_t rank : {1, 2, 4}) {
        const auto all = enumerateUniformConfigs(tiny, rank);
        v.addRow({std::to_string(rank), std::to_string(all.size()),
                  std::to_string(designSpaceSizeExact(tiny, rank))});
    }
    bench::emit(v, "table2_enumeration_check.csv");
    return 0;
}
