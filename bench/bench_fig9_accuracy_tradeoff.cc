/**
 * @file
 * Reproduces Figure 9: per-benchmark accuracy across the full
 * model-size-reduction ladder (all tensors, rank 1, spread layer
 * schedules — the Table 4 protocol scaled to the 8-layer stand-in).
 *
 * Expected shape (paper Section 4.3): easy benchmarks (ARC Easy,
 * WinoGrande) degrade gently; hard ones (ARC Challenge, HellaSwag,
 * MMLU, GSM8K) degrade faster; TruthfulQA is non-monotonic, dipping
 * then *recovering toward chance* at extreme compression.
 */

#include "bench_common.h"
#include "dse/schedules.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();

    TablePrinter t("Figure 9: accuracy vs parameter reduction "
                   "(tiny-llama stand-in; paper Llama2-7B baselines "
                   "in header)");
    std::vector<std::string> header = {"Reduction"};
    for (BenchmarkKind kind : allBenchmarks())
        header.push_back(
            benchmarkName(kind) + " (paper base "
            + TablePrinter::num(bench::paperBaselineAccuracy(kind), 1)
            + ")");
    header.emplace_back("Mean");
    t.setHeader(header);

    for (int count = 0; count <= cfg.nLayers; ++count) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig gamma =
            count == 0
                ? DecompConfig::identity()
                : DecompConfig::allTensors(
                      cfg,
                      spreadSchedule(static_cast<int>(cfg.nLayers),
                                     count),
                      1);
        bench::applyOrDie(gamma, model);
        const auto accs = bench::evaluateSuite(model);
        std::vector<std::string> row = {
            bench::pct(gamma.parameterReduction(cfg))};
        for (double a : accs)
            row.push_back(bench::pct(a));
        row.push_back(bench::pct(bench::meanAccuracy(accs)));
        t.addRow(row);
    }
    bench::emit(t, "fig9_accuracy_tradeoff.csv");
    return 0;
}
