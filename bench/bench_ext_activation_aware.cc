/**
 * @file
 * Extension bench: plain rank-1 Tucker vs activation-aware rank-1
 * Tucker (ASVD-style input scaling) at matched decomposition
 * schedules. Calibration uses 32 held-out synthetic documents.
 */

#include "bench_common.h"
#include "dse/activation_aware.h"
#include "dse/schedules.h"
#include "train/corpus.h"
#include "util/logging.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();

    // Calibration documents (held out from the benchmark seeds).
    CorpusGenerator gen(defaultWorld(), 0xCA11B);
    std::vector<TokenSeq> calib;
    for (int i = 0; i < 32; ++i)
        calib.push_back(gen.document(64));

    TablePrinter t("Extension: plain vs activation-aware rank-1 "
                   "decomposition");
    t.setHeader({"Schedule", "Reduction", "Plain acc",
                 "Activation-aware acc", "AA advantage"});

    for (int count : {1, 2, 3, 5}) {
        const DecompConfig gamma = DecompConfig::allTensors(
            cfg, spreadSchedule(static_cast<int>(cfg.nLayers), count), 1);

        TransformerModel plain =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        bench::applyOrDie(gamma, plain);
        const double plainAcc =
            bench::meanAccuracy(bench::evaluateSuite(plain));

        TransformerModel aware =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const Status aw = applyActivationAware(aware, gamma, calib);
        if (!aw.ok())
            fatal("bench: activation-aware factorization failed: " +
                  aw.toString());
        const double awareAcc =
            bench::meanAccuracy(bench::evaluateSuite(aware));

        t.addRow({std::to_string(count) + " layers",
                  bench::pct(gamma.parameterReduction(cfg)),
                  bench::pct(plainAcc), bench::pct(awareAcc),
                  bench::pct(awareAcc - plainAcc)});
    }
    bench::emit(t, "ext_activation_aware.csv");
    return 0;
}
