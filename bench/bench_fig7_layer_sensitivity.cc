/**
 * @file
 * Reproduces Figure 7: decompose exactly one layer (all tensors,
 * rank 1) and plot aggregate accuracy against the layer's position.
 *
 * Expected shape: a U-shaped-inverse curve — the first couple of
 * layers and the last layer hurt the most; interior layers are
 * benign.
 */

#include "bench_common.h"

using namespace lrd;

int
main()
{
    const ModelConfig cfg = tinyLlamaConfig();
    TransformerModel dense =
        TransformerModel::deserialize(bench::tinyLlamaBytes());
    const double baseline =
        bench::meanAccuracy(bench::evaluateSuite(dense));

    TablePrinter t("Figure 7: aggregate accuracy when a single layer "
                   "is decomposed (paper: first/last layers are the "
                   "most sensitive)");
    t.setHeader({"Decomposed layer", "Aggregate accuracy",
                 "Drop vs dense"});
    t.addRow({"(none)", bench::pct(baseline), "0.0%"});
    for (int layer = 0; layer < cfg.nLayers; ++layer) {
        TransformerModel model =
            TransformerModel::deserialize(bench::tinyLlamaBytes());
        const DecompConfig gamma =
            DecompConfig::allTensors(cfg, {layer}, 1);
        bench::applyOrDie(gamma, model);
        const double acc =
            bench::meanAccuracy(bench::evaluateSuite(model));
        t.addRow({std::to_string(layer), bench::pct(acc),
                  bench::pct(baseline - acc)});
    }
    bench::emit(t, "fig7_layer_sensitivity.csv");
    return 0;
}
