/**
 * @file
 * Baseline suppression file for lrd-lint.
 *
 * A baseline grandfathers existing findings so a new rule can land
 * blocking without an atomic fix-the-world commit. Entries key on
 * (rule, file, symbol) — not line numbers — so they survive edits
 * that move code around; a fixed finding leaves a stale entry that
 * `--write-baseline` prunes.
 *
 * File format, one entry per line:
 *
 *   <rule> \t <file> \t <symbol> \t <justification>
 *
 * '#'-prefixed lines and blank lines are comments. The justification
 * column is mandatory in the checked-in file by convention (review
 * rejects bare entries), but the parser only needs the first three
 * columns.
 */

#ifndef LRD_TOOLS_LINT_BASELINE_H
#define LRD_TOOLS_LINT_BASELINE_H

#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace lrd::lint {

/** Parsed baseline: the set of suppression keys. */
struct Baseline
{
    std::set<std::string> keys;
};

/** "rule\tfile\tsymbol" — the suppression identity of a finding. */
std::string baselineKey(const Diagnostic &d);

/** Parse baseline file contents (missing file -> pass ""). */
Baseline parseBaseline(const std::string &content);

/**
 * Split diagnostics against a baseline: returns the live findings;
 * `suppressed` (if non-null) receives how many were baselined.
 */
std::vector<Diagnostic> applyBaseline(const std::vector<Diagnostic> &diags,
                                      const Baseline &baseline,
                                      size_t *suppressed);

/** Serialize findings as a fresh baseline file (sorted, unique). */
std::string renderBaseline(const std::vector<Diagnostic> &diags);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_BASELINE_H
