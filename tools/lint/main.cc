/**
 * @file
 * lrd-lint CLI: walk the tree, run every rule, report.
 *
 * Usage:
 *   lrd-lint [--root <dir>] [--fix-list] [path...]
 *
 * With no paths the default scan set is src/, tools/, tests/ and
 * bench/ under the root. Paths may be files or directories and are
 * interpreted relative to the root. Exit status: 0 clean, 1 when
 * violations were found, 2 on usage or I/O errors.
 *
 * --fix-list switches the report to the machine-readable
 * "file<TAB>line<TAB>rule<TAB>message" format consumed by editor
 * integrations and CI annotators.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

const char *kUsage =
    "usage: lrd-lint [--root <dir>] [--fix-list] [path...]\n"
    "\n"
    "Lints the lrd tree for determinism, concurrency, layering and\n"
    "header-hygiene invariants. Default paths: src tools tests bench.\n"
    "Suppress one finding with '// lrd-lint: allow(<rule>)' on the\n"
    "same or preceding line.\n";

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
}

/** Repo-relative path with forward slashes. */
std::string
relativePath(const fs::path &p, const fs::path &root)
{
    return fs::relative(p, root).generic_string();
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    out = oss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    bool fixList = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::cerr << "lrd-lint: --root needs a directory\n" << kUsage;
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--fix-list") {
            fixList = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "lrd-lint: unknown option '" << arg << "'\n"
                      << kUsage;
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools", "tests", "bench"};

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "lrd-lint: bad root: " << ec.message() << "\n";
        return 2;
    }

    std::vector<lrd::lint::SourceFile> files;
    for (const std::string &p : paths) {
        const fs::path full = root / p;
        if (fs::is_directory(full)) {
            for (auto it = fs::recursive_directory_iterator(full);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_regular_file() && isSourceFile(it->path())) {
                    lrd::lint::SourceFile f;
                    f.path = relativePath(it->path(), root);
                    if (!readFile(it->path(), f.content)) {
                        std::cerr << "lrd-lint: cannot read " << f.path
                                  << "\n";
                        return 2;
                    }
                    files.push_back(std::move(f));
                }
            }
        } else if (fs::is_regular_file(full)) {
            lrd::lint::SourceFile f;
            f.path = relativePath(full, root);
            if (!readFile(full, f.content)) {
                std::cerr << "lrd-lint: cannot read " << f.path << "\n";
                return 2;
            }
            files.push_back(std::move(f));
        } else {
            std::cerr << "lrd-lint: no such file or directory: " << p << "\n";
            return 2;
        }
    }

    const std::vector<lrd::lint::Diagnostic> diags =
        lrd::lint::lintFiles(files);

    for (const lrd::lint::Diagnostic &d : diags)
        std::cout << (fixList ? lrd::lint::formatFixList(d)
                              : lrd::lint::formatDiagnostic(d))
                  << "\n";
    if (!fixList) {
        if (diags.empty())
            std::cout << "lrd-lint: " << files.size() << " files clean\n";
        else
            std::cout << "lrd-lint: " << diags.size() << " violation(s) in "
                      << files.size() << " files\n";
    }
    return diags.empty() ? 0 : 1;
}
