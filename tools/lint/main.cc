/**
 * @file
 * lrd-lint CLI: walk the tree, run every rule, report.
 *
 * Usage:
 *   lrd-lint [--root <dir>] [--fix-list] [--sarif <file>]
 *            [--json <file>] [--baseline <file>]
 *            [--write-baseline <file>] [--cache-dir <dir>] [path...]
 *
 * With no paths the default scan set is src/, tools/, tests/ and
 * bench/ under the root. Paths may be files or directories and are
 * interpreted relative to the root. Exit status: 0 clean, 1 when
 * violations were found, 2 on usage or I/O errors.
 *
 * --fix-list switches the report to the machine-readable
 * "file<TAB>line<TAB>rule<TAB>message" format consumed by editor
 * integrations and CI annotators.
 *
 * --sarif / --json write machine-readable reports of the live
 * (post-baseline) findings; both are deterministic.
 *
 * --baseline suppresses findings listed in the given file (keyed by
 * rule/file/symbol); --write-baseline regenerates that file from the
 * current findings and exits 0.
 *
 * --cache-dir enables the incremental parse cache: per-file parse
 * results are stored keyed by content hash, and a warm run re-parses
 * only changed files. Hit/miss counts are reported on stdout.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "cache.h"
#include "lint.h"
#include "output.h"
#include "parser.h"
#include "semantic.h"
#include "sha256.h"

namespace fs = std::filesystem;

namespace {

const char *kUsage =
    "usage: lrd-lint [--root <dir>] [--fix-list] [--sarif <file>]\n"
    "                [--json <file>] [--baseline <file>]\n"
    "                [--write-baseline <file>] [--cache-dir <dir>]\n"
    "                [path...]\n"
    "\n"
    "Lints the lrd tree for determinism, concurrency, layering,\n"
    "header-hygiene and cross-TU semantic invariants (hot-path\n"
    "allocations, lock discipline, discarded Status/Result values,\n"
    "floating-point reduction order, dead symbols). Default paths:\n"
    "src tools tests bench. Suppress one finding with\n"
    "'// lrd-lint: allow(<rule>)' on the same or preceding line;\n"
    "grandfather legacy findings via --baseline.\n";

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
}

/** Repo-relative path with forward slashes. */
std::string
relativePath(const fs::path &p, const fs::path &root)
{
    return fs::relative(p, root).generic_string();
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    out = oss.str();
    return true;
}

bool
writeFile(const fs::path &p, const std::string &content)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return bool(out);
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    bool fixList = false;
    std::string sarifPath, jsonPath, baselinePath, writeBaselinePath,
        cacheDir;
    std::vector<std::string> paths;

    const auto needValue = [&](int &i, const char *flag,
                               std::string &dst) {
        if (i + 1 >= argc) {
            std::cerr << "lrd-lint: " << flag << " needs a value\n"
                      << kUsage;
            return false;
        }
        dst = argv[++i];
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::cerr << "lrd-lint: --root needs a directory\n" << kUsage;
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--fix-list") {
            fixList = true;
        } else if (arg == "--sarif") {
            if (!needValue(i, "--sarif", sarifPath))
                return 2;
        } else if (arg == "--json") {
            if (!needValue(i, "--json", jsonPath))
                return 2;
        } else if (arg == "--baseline") {
            if (!needValue(i, "--baseline", baselinePath))
                return 2;
        } else if (arg == "--write-baseline") {
            if (!needValue(i, "--write-baseline", writeBaselinePath))
                return 2;
        } else if (arg == "--cache-dir") {
            if (!needValue(i, "--cache-dir", cacheDir))
                return 2;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "lrd-lint: unknown option '" << arg << "'\n"
                      << kUsage;
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools", "tests", "bench"};

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "lrd-lint: bad root: " << ec.message() << "\n";
        return 2;
    }

    std::vector<lrd::lint::SourceFile> files;
    for (const std::string &p : paths) {
        const fs::path full = root / p;
        if (fs::is_directory(full)) {
            for (auto it = fs::recursive_directory_iterator(full);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_regular_file() && isSourceFile(it->path())) {
                    lrd::lint::SourceFile f;
                    f.path = relativePath(it->path(), root);
                    if (!readFile(it->path(), f.content)) {
                        std::cerr << "lrd-lint: cannot read " << f.path
                                  << "\n";
                        return 2;
                    }
                    files.push_back(std::move(f));
                }
            }
        } else if (fs::is_regular_file(full)) {
            lrd::lint::SourceFile f;
            f.path = relativePath(full, root);
            if (!readFile(full, f.content)) {
                std::cerr << "lrd-lint: cannot read " << f.path << "\n";
                return 2;
            }
            files.push_back(std::move(f));
        } else {
            std::cerr << "lrd-lint: no such file or directory: " << p << "\n";
            return 2;
        }
    }
    // Directory iteration order is filesystem-dependent; analysis and
    // reports must not be.
    std::sort(files.begin(), files.end(),
              [](const lrd::lint::SourceFile &a,
                 const lrd::lint::SourceFile &b) { return a.path < b.path; });
    files.erase(std::unique(files.begin(), files.end(),
                            [](const lrd::lint::SourceFile &a,
                               const lrd::lint::SourceFile &b) {
                                return a.path == b.path;
                            }),
                files.end());

    // Per-file phase, through the cache when one is configured.
    lrd::lint::CacheStats stats;
    std::vector<lrd::lint::FileSummary> sums;
    sums.reserve(files.size());
    for (const lrd::lint::SourceFile &f : files) {
        const std::string sha = lrd::lint::sha256Hex(f.content);
        lrd::lint::FileSummary sum;
        if (!cacheDir.empty()
            && lrd::lint::cacheLoad(cacheDir, f.path, sha, sum)) {
            ++stats.hits;
        } else {
            ++stats.misses;
            sum = lrd::lint::parseFile(f, sha);
            if (!cacheDir.empty())
                lrd::lint::cacheStore(cacheDir, sum);
        }
        sums.push_back(std::move(sum));
    }

    std::vector<lrd::lint::Diagnostic> diags =
        lrd::lint::analyzeSummaries(sums);

    if (!writeBaselinePath.empty()) {
        if (!writeFile(root / writeBaselinePath,
                       lrd::lint::renderBaseline(diags))) {
            std::cerr << "lrd-lint: cannot write baseline "
                      << writeBaselinePath << "\n";
            return 2;
        }
        std::cout << "lrd-lint: wrote " << diags.size()
                  << " baseline entr" << (diags.size() == 1 ? "y" : "ies")
                  << " to " << writeBaselinePath << "\n";
        return 0;
    }

    size_t suppressed = 0;
    if (!baselinePath.empty()) {
        std::string content;
        // A missing baseline is an empty baseline: the flag can be
        // wired into CI before the first entry exists.
        readFile(root / baselinePath, content);
        diags = lrd::lint::applyBaseline(
            diags, lrd::lint::parseBaseline(content), &suppressed);
    }

    if (!sarifPath.empty()
        && !writeFile(root / sarifPath, lrd::lint::toSarif(diags))) {
        std::cerr << "lrd-lint: cannot write " << sarifPath << "\n";
        return 2;
    }
    if (!jsonPath.empty()
        && !writeFile(root / jsonPath, lrd::lint::toJson(diags))) {
        std::cerr << "lrd-lint: cannot write " << jsonPath << "\n";
        return 2;
    }

    for (const lrd::lint::Diagnostic &d : diags)
        std::cout << (fixList ? lrd::lint::formatFixList(d)
                              : lrd::lint::formatDiagnostic(d))
                  << "\n";
    if (!fixList) {
        if (diags.empty())
            std::cout << "lrd-lint: " << files.size() << " files clean";
        else
            std::cout << "lrd-lint: " << diags.size() << " violation(s) in "
                      << files.size() << " files";
        if (suppressed > 0)
            std::cout << " (" << suppressed << " baselined)";
        std::cout << "\n";
        if (!cacheDir.empty())
            std::cout << "lrd-lint: cache " << stats.hits << " hit(s), "
                      << stats.misses << " miss(es)\n";
    }
    return diags.empty() ? 0 : 1;
}
