#include "semantic.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "callgraph.h"

namespace lrd::lint {

namespace {

std::string
bareName(const std::string &callee)
{
    return !callee.empty() && callee[0] == '.' ? callee.substr(1)
                                               : callee;
}

/** Rules that police runtime behaviour skip tests and benches. */
bool
productionPath(const std::string &path)
{
    return path.compare(0, 4, "src/") == 0
           || path.compare(0, 6, "tools/") == 0;
}

/** Mutex name annotated on `line` (or the line above), or "". */
std::string
annotatedMutex(const Annotations &ann, int line)
{
    for (int l : {line, line - 1}) {
        const auto it = ann.mutexNames.find(l);
        if (it != ann.mutexNames.end())
            return it->second;
    }
    return "";
}

void
checkHotPathAlloc(const RepoGraph &graph, std::vector<Diagnostic> &out)
{
    for (const auto &[ref, mark] : graph.hotSet()) {
        (void)mark;
        const FileSummary &sum = graph.file(ref);
        if (!productionPath(sum.path))
            continue;
        const FunctionInfo &fi = graph.fn(ref);
        for (const AllocSite &alloc : fi.allocs) {
            if (isSuppressed(sum.annotations, alloc.line,
                             kRuleHotPathAlloc))
                continue;
            std::ostringstream oss;
            oss << "allocation (" << alloc.what
                << ") on the hot path; reachable via: "
                << graph.hotPath(ref);
            out.push_back(Diagnostic{sum.path, alloc.line,
                                     kRuleHotPathAlloc, oss.str(),
                                     fi.qualName});
        }
    }
}

void
checkLockDiscipline(const RepoGraph &graph, std::vector<Diagnostic> &out)
{
    const std::vector<FileSummary> &sums = graph.files();

    // Every mutex name declared anywhere (for the unknown-name check).
    std::set<std::string> declaredNames;
    for (const FileSummary &sum : sums)
        for (const MutexDecl &m : sum.mutexes)
            declaredNames.insert(m.name);

    for (size_t f = 0; f < sums.size(); ++f) {
        const FileSummary &sum = sums[f];
        for (const auto &[line, name] : sum.annotations.mutexNames) {
            if (!declaredNames.count(name)) {
                out.push_back(Diagnostic{
                    sum.path, line, kRuleLockDiscipline,
                    "mutex annotation names '" + name
                        + "', which is not declared anywhere in the "
                          "tree",
                    name});
                continue;
            }
            const std::string key =
                graph.mutexKey(static_cast<int>(f), name);
            if (!key.empty() && !graph.acquiredKeys().count(key))
                out.push_back(Diagnostic{
                    sum.path, line, kRuleLockDiscipline,
                    "mutex '" + name
                        + "' is annotated as a guard but never "
                          "acquired (no lock_guard/unique_lock/"
                          "scoped_lock/.lock() in the tree)",
                    name});
        }

        // Writers of an annotated global must hold its mutex. The
        // check is same-file: every annotated global in this tree has
        // internal linkage.
        for (const GlobalDecl &g : sum.globals) {
            const std::string mutexName =
                annotatedMutex(sum.annotations, g.line);
            if (mutexName.empty())
                continue;
            const std::string key =
                graph.mutexKey(static_cast<int>(f), mutexName);
            if (key.empty())
                continue; // unknown/ambiguous: reported above
            for (size_t i = 0; i < sum.functions.size(); ++i) {
                const FunctionInfo &fi = sum.functions[i];
                if (fi.isDeclOnly)
                    continue;
                bool writes = false;
                int writeLine = 0;
                for (const WriteSite &w : fi.writes)
                    if (w.var == g.name) {
                        writes = true;
                        writeLine = w.line;
                        break;
                    }
                if (!writes)
                    continue;
                bool holds = false;
                for (const LockSite &l : fi.locks)
                    if (graph.mutexKey(static_cast<int>(f),
                                       l.mutexName)
                        == key)
                        holds = true;
                if (holds
                    || isSuppressed(sum.annotations, writeLine,
                                    kRuleLockDiscipline))
                    continue;
                out.push_back(Diagnostic{
                    sum.path, writeLine, kRuleLockDiscipline,
                    "write to '" + g.name + "' (annotated mutex("
                        + mutexName + ")) in " + fi.qualName
                        + " without acquiring it",
                    fi.qualName});
            }
        }
    }

    // Repo-wide acquisition order must be acyclic.
    const std::vector<LockEdge> cycle = graph.findLockCycle();
    if (!cycle.empty()) {
        std::ostringstream oss;
        oss << "lock acquisition order cycle: ";
        for (size_t i = 0; i < cycle.size(); ++i) {
            if (i)
                oss << "; ";
            oss << cycle[i].from << " -> " << cycle[i].to << " in "
                << cycle[i].witness;
        }
        out.push_back(Diagnostic{cycle.front().file, cycle.front().line,
                                 kRuleLockDiscipline, oss.str(),
                                 cycle.front().from});
    }
}

void
checkUncheckedResult(const RepoGraph &graph, std::vector<Diagnostic> &out)
{
    const std::vector<FileSummary> &sums = graph.files();
    for (size_t f = 0; f < sums.size(); ++f) {
        const FileSummary &sum = sums[f];
        for (const FunctionInfo &fi : sum.functions) {
            for (const CallSite &d : fi.discards) {
                const std::vector<FunctionRef> cands =
                    graph.resolveAny(static_cast<int>(f), d.name);
                if (cands.empty())
                    continue;
                const bool allStatus = std::all_of(
                    cands.begin(), cands.end(),
                    [&](const FunctionRef &r) {
                        return graph.fn(r).returnsStatus;
                    });
                if (!allStatus)
                    continue;
                if (isSuppressed(sum.annotations, d.line,
                                 kRuleUncheckedResult))
                    continue;
                const std::string callee = bareName(d.name);
                out.push_back(Diagnostic{
                    sum.path, d.line, kRuleUncheckedResult,
                    "result of '" + callee
                        + "' (returns Status/Result) is discarded; "
                          "check it or cast to void",
                    fi.qualName + " -> " + callee});
            }
        }
    }
}

void
checkFpOrder(const RepoGraph &graph, std::vector<Diagnostic> &out)
{
    const std::vector<FileSummary> &sums = graph.files();
    for (size_t f = 0; f < sums.size(); ++f) {
        const FileSummary &sum = sums[f];
        if (!productionPath(sum.path))
            continue;
        // The fixed-order reduction helpers live here by design.
        if (sum.path.compare(0, 13, "src/parallel/") == 0)
            continue;
        for (const FunctionInfo &fi : sum.functions) {
            if (!fi.isLambda)
                continue;
            const std::string target = bareName(fi.passedTo);
            if (target != "parallelFor" && target != "parallelForChunks")
                continue;
            for (const FpWrite &w : fi.fpWrites) {
                // Chunk-local accumulators are serial within their
                // chunk; only captured ones reorder across threads.
                if (std::find(fi.floatLocals.begin(),
                              fi.floatLocals.end(), w.var)
                        != fi.floatLocals.end()
                    || std::find(fi.params.begin(), fi.params.end(),
                                 w.var)
                           != fi.params.end())
                    continue;
                bool capturedFloat = false;
                for (int e = fi.enclosing; e >= 0;) {
                    const FunctionInfo &enc =
                        sum.functions[static_cast<size_t>(e)];
                    if (std::find(enc.floatLocals.begin(),
                                  enc.floatLocals.end(), w.var)
                        != enc.floatLocals.end()) {
                        capturedFloat = true;
                        break;
                    }
                    e = enc.enclosing;
                }
                if (!capturedFloat)
                    continue;
                if (isSuppressed(sum.annotations, w.line, kRuleFpOrder))
                    continue;
                out.push_back(Diagnostic{
                    sum.path, w.line, kRuleFpOrder,
                    "floating-point accumulation into captured '"
                        + w.var
                        + "' inside a parallel chunk body reorders "
                          "the reduction; use a fixed-order reducer "
                          "from src/parallel/",
                    fi.qualName});
            }
        }
    }
}

void
checkDeadSymbols(const RepoGraph &graph, std::vector<Diagnostic> &out)
{
    const std::vector<FileSummary> &sums = graph.files();
    for (const FileSummary &sum : sums) {
        if (sum.path.compare(0, 4, "src/") != 0)
            continue;
        for (const FunctionInfo &fi : sum.functions) {
            if (fi.isLambda || fi.isDeclOnly || fi.special
                || fi.internal)
                continue;
            if (graph.liveNames().count(fi.name))
                continue;
            if (isSuppressed(sum.annotations, fi.line, kRuleDeadSymbol))
                continue;
            out.push_back(Diagnostic{
                sum.path, fi.line, kRuleDeadSymbol,
                "'" + fi.qualName
                    + "' has no in-tree reference outside its own "
                      "declaration (tests and benches count as "
                      "callers)",
                fi.qualName});
        }
    }
}

} // namespace

std::vector<Diagnostic>
runSemanticRules(const std::vector<FileSummary> &sums)
{
    const RepoGraph graph(sums);
    std::vector<Diagnostic> out;
    checkHotPathAlloc(graph, out);
    checkLockDiscipline(graph, out);
    checkUncheckedResult(graph, out);
    checkFpOrder(graph, out);
    checkDeadSymbols(graph, out);
    return out;
}

std::vector<Diagnostic>
analyzeSummaries(const std::vector<FileSummary> &sums)
{
    std::vector<Diagnostic> out;
    for (const FileSummary &sum : sums)
        out.insert(out.end(), sum.fileDiags.begin(),
                   sum.fileDiags.end());

    std::vector<Diagnostic> graph = checkIncludeGraph(sums);
    out.insert(out.end(), graph.begin(), graph.end());

    std::vector<Diagnostic> semantic = runSemanticRules(sums);
    out.insert(out.end(), semantic.begin(), semantic.end());

    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message)
                         < std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

std::vector<Diagnostic>
lintFiles(const std::vector<SourceFile> &files)
{
    std::vector<FileSummary> sums;
    sums.reserve(files.size());
    for (const SourceFile &f : files)
        sums.push_back(parseFile(f));
    return analyzeSummaries(sums);
}

} // namespace lrd::lint
