#include "lexer.h"

#include <cctype>

namespace lrd::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Cursor over the file contents with line tracking. */
struct Cursor
{
    const std::string &s;
    size_t i = 0;
    int line = 1;

    bool done() const { return i >= s.size(); }
    char peek(size_t off = 0) const
    {
        return i + off < s.size() ? s[i + off] : '\0';
    }
    char next()
    {
        const char c = s[i++];
        if (c == '\n')
            ++line;
        return c;
    }
};

/** Consume a // or block comment (cursor sits on the first '/'). */
void
lexComment(Cursor &c, LexedFile &out)
{
    Comment com;
    com.line = c.line;
    c.next(); // '/'
    if (c.peek() == '/') {
        while (!c.done() && c.peek() != '\n')
            com.text += c.next();
    } else {
        c.next(); // '*'
        while (!c.done()) {
            if (c.peek() == '*' && c.peek(1) == '/') {
                c.next();
                c.next();
                break;
            }
            com.text += c.next();
        }
    }
    out.comments.push_back(std::move(com));
}

/** Consume a quoted literal; quote is '"' or '\''. */
void
lexQuoted(Cursor &c, char quote)
{
    c.next(); // opening quote
    while (!c.done()) {
        const char ch = c.next();
        if (ch == '\\' && !c.done())
            c.next();
        else if (ch == quote || ch == '\n')
            break;
    }
}

/** Consume R"delim(...)delim" (cursor sits on the 'R'). */
void
lexRawString(Cursor &c)
{
    c.next(); // R
    c.next(); // "
    std::string delim;
    while (!c.done() && c.peek() != '(')
        delim += c.next();
    const std::string closer = ")" + delim + "\"";
    while (!c.done()) {
        if (c.s.compare(c.i, closer.size(), closer) == 0) {
            for (size_t k = 0; k < closer.size(); ++k)
                c.next();
            return;
        }
        c.next();
    }
}

/**
 * Consume a preprocessor line (cursor sits on '#'). Records the
 * directive and any quoted/angle include target; handles backslash
 * continuations.
 */
void
lexDirective(Cursor &c, LexedFile &out)
{
    Directive dir;
    dir.line = c.line;
    c.next(); // '#'
    while (!c.done() && (c.peek() == ' ' || c.peek() == '\t'))
        c.next();
    while (!c.done() && isIdentChar(c.peek()))
        dir.name += c.next();
    while (!c.done() && (c.peek() == ' ' || c.peek() == '\t'))
        c.next();

    if (dir.name == "include") {
        IncludeDirective inc;
        inc.line = dir.line;
        const char open = c.peek();
        if (open == '"' || open == '<') {
            inc.quoted = open == '"';
            const char close = open == '"' ? '"' : '>';
            c.next();
            while (!c.done() && c.peek() != close && c.peek() != '\n')
                inc.target += c.next();
            dir.arg = inc.target;
            out.includes.push_back(std::move(inc));
        }
    } else {
        while (!c.done() && isIdentChar(c.peek()))
            dir.arg += c.next();
    }
    out.directives.push_back(std::move(dir));

    // Skip the rest of the line(s); comments inside still count, and
    // identifiers land in directiveTokens for the liveness scan.
    while (!c.done() && c.peek() != '\n') {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
            c.next();
            c.next();
            continue;
        }
        if (c.peek() == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) {
            lexComment(c, out);
            continue;
        }
        if (c.peek() == '"') {
            lexQuoted(c, '"');
            continue;
        }
        if (isIdentStart(c.peek())) {
            Token t;
            t.kind = TokKind::Identifier;
            t.line = c.line;
            while (!c.done() && isIdentChar(c.peek()))
                t.text += c.next();
            out.directiveTokens.push_back(std::move(t));
            continue;
        }
        c.next();
    }
}

} // namespace

LexedFile
lex(const std::string &content)
{
    LexedFile out;
    Cursor c{content};
    bool atLineStart = true;

    while (!c.done()) {
        const char ch = c.peek();

        if (ch == '\n' || ch == ' ' || ch == '\t' || ch == '\r') {
            if (ch == '\n')
                atLineStart = true;
            c.next();
            continue;
        }
        if (ch == '#' && atLineStart) {
            lexDirective(c, out);
            continue;
        }
        atLineStart = false;
        if (ch == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) {
            lexComment(c, out);
            continue;
        }
        if (ch == '"') {
            lexQuoted(c, '"');
            continue;
        }
        if (ch == '\'' ) {
            // Digit separators (1'000) never follow a non-number
            // token boundary here because numbers consume them below.
            lexQuoted(c, '\'');
            continue;
        }
        if (ch == 'R' && c.peek(1) == '"') {
            lexRawString(c);
            continue;
        }
        if (isIdentStart(ch)) {
            Token t;
            t.kind = TokKind::Identifier;
            t.line = c.line;
            while (!c.done() && isIdentChar(c.peek()))
                t.text += c.next();
            // Raw/encoded string prefixes: u8"...", L"...", uR"(...)"
            if (!c.done() && c.peek() == '"' &&
                (t.text == "u8" || t.text == "u" || t.text == "U" ||
                 t.text == "L")) {
                lexQuoted(c, '"');
                continue;
            }
            out.tokens.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            Token t;
            t.kind = TokKind::Number;
            t.line = c.line;
            t.text += c.next();
            while (!c.done() &&
                   (isIdentChar(c.peek()) || c.peek() == '\'' ||
                    ((c.peek() == '+' || c.peek() == '-') &&
                     (t.text.back() == 'e' || t.text.back() == 'E' ||
                      t.text.back() == 'p' || t.text.back() == 'P')) ||
                    c.peek() == '.'))
                t.text += c.next();
            out.tokens.push_back(std::move(t));
            continue;
        }
        Token t;
        t.kind = TokKind::Punct;
        t.line = c.line;
        t.text = std::string(1, c.next());
        // Fuse :: so scope qualifiers are a single token.
        if (t.text == ":" && c.peek() == ':') {
            c.next();
            t.text.push_back(':');
        }
        out.tokens.push_back(std::move(t));
    }
    return out;
}

} // namespace lrd::lint
