/**
 * @file
 * Cross-TU semantic rules over parsed FileSummary records.
 *
 * Five rules run on the whole-repo call graph:
 *
 *  - hot-path-alloc: no allocation primitive in any function
 *    transitively reachable from a thread-pool chunk body, a SIMD
 *    microkernel, or fusedFactorizedForward. Findings print the full
 *    reachability proof; `// lrd-lint: allow(hot-path-alloc)` on the
 *    allocation line escapes (e.g. per-worker replica setup).
 *  - lock-discipline: `// lrd-lint: mutex(<name>)` annotations must
 *    name a declared mutex that is actually acquired, writers of the
 *    annotated global must hold it, and the repo-wide lock
 *    acquisition order must be acyclic.
 *  - unchecked-result: a statement-level call whose every in-tree
 *    candidate returns Status/Result discards the error; assign it
 *    or cast to void.
 *  - fp-order: += / -= / *= / /= on a captured floating-point
 *    accumulator inside a parallel chunk body reorders the reduction
 *    across thread counts; use the fixed-order helpers in
 *    src/parallel/ (which are exempt).
 *  - dead-symbol: an external-linkage function defined under src/
 *    whose name is never referenced outside its own declarations has
 *    no in-tree caller (tests count as callers).
 *
 * hot-path-alloc and fp-order report only on src/ and tools/ files:
 * tests and benches intentionally allocate and accumulate inside
 * chunk bodies when exercising the pool itself.
 */

#ifndef LRD_TOOLS_LINT_SEMANTIC_H
#define LRD_TOOLS_LINT_SEMANTIC_H

#include <vector>

#include "lint.h"
#include "parser.h"

namespace lrd::lint {

/** The five cross-TU rules over a parsed tree. */
std::vector<Diagnostic>
runSemanticRules(const std::vector<FileSummary> &sums);

/** Include-graph rules from cached summaries (no re-lex). */
std::vector<Diagnostic>
checkIncludeGraph(const std::vector<FileSummary> &sums);

/**
 * Full analysis over parsed summaries: per-file token findings (as
 * recorded in each summary), include-graph rules, and the semantic
 * rules, sorted by (file, line, rule).
 */
std::vector<Diagnostic>
analyzeSummaries(const std::vector<FileSummary> &sums);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_SEMANTIC_H
