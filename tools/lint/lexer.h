/**
 * @file
 * Minimal C++ tokenizer for lrd-lint.
 *
 * Produces identifier/punctuation tokens with line numbers, the list
 * of quoted #include directives, preprocessor directive names (for
 * the header-guard rule), and all comment text (for suppression and
 * annotation scanning). String, character and raw-string literals
 * are skipped so their contents can never trip an identifier rule.
 */

#ifndef LRD_TOOLS_LINT_LEXER_H
#define LRD_TOOLS_LINT_LEXER_H

#include <string>
#include <vector>

namespace lrd::lint {

/** Kind of a lexed token. */
enum class TokKind { Identifier, Number, Punct };

/** One token with its 1-based source line. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
};

/** One comment (// or block) with the line it starts on. */
struct Comment
{
    std::string text;
    int line = 0;
};

/** One `#include "..."` or `#include <...>` directive. */
struct IncludeDirective
{
    std::string target;
    bool quoted = false;
    int line = 0;
};

/** One preprocessor directive ("pragma once", "ifndef X", ...). */
struct Directive
{
    /** Directive name: "include", "ifndef", "pragma", "define", ... */
    std::string name;
    /** First token after the name ("once", the guard macro, ...). */
    std::string arg;
    int line = 0;
};

/** Full lex result for one file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    std::vector<IncludeDirective> includes;
    std::vector<Directive> directives;
    /**
     * Identifier tokens from preprocessor directive bodies (macro
     * replacement text, #if expressions). Kept out of `tokens` so the
     * structural rules never see them, but the dead-symbol liveness
     * scan must: a function referenced only from a macro body is not
     * dead.
     */
    std::vector<Token> directiveTokens;
};

/** Tokenize one translation unit. Never fails; garbage in, tokens out. */
LexedFile lex(const std::string &content);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_LEXER_H
