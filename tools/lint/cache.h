/**
 * @file
 * Incremental parse cache: FileSummary records keyed by content hash.
 *
 * The per-file phase (lex + token rules + declaration parse) is the
 * expensive part of a lint run and depends only on one file's bytes,
 * so its result is content-addressed: the cache entry for a file
 * lives at <cache-dir>/<sha256(relative-path)>.sum and embeds the
 * SHA-256 of the contents it was parsed from. A hit requires both
 * the path and the content hash to match; any edit changes the hash
 * and forces a re-parse of exactly that file.
 *
 * The serialization is a line-oriented text format that round-trips
 * every analysis-relevant field, which is what makes warm-cache runs
 * produce byte-identical reports (asserted by a ctest).
 */

#ifndef LRD_TOOLS_LINT_CACHE_H
#define LRD_TOOLS_LINT_CACHE_H

#include <string>

#include "parser.h"

namespace lrd::lint {

/** Hit/miss counters for one run (reported on stdout). */
struct CacheStats
{
    size_t hits = 0;
    size_t misses = 0;
};

/** Serialize a summary (deterministic, self-describing). */
std::string serializeSummary(const FileSummary &sum);

/** Parse a serialized summary; false on version/shape mismatch. */
bool deserializeSummary(const std::string &data, FileSummary &out);

/**
 * Load the cached summary for `relPath` if it matches `contentSha`.
 * Returns false (a miss) when absent, stale, or unreadable.
 */
bool cacheLoad(const std::string &cacheDir, const std::string &relPath,
               const std::string &contentSha, FileSummary &out);

/** Persist a summary (sum.path / sum.sha identify the entry). */
void cacheStore(const std::string &cacheDir, const FileSummary &sum);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_CACHE_H
