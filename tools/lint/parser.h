/**
 * @file
 * Lightweight C++ declaration parser for lrd-lint's cross-TU
 * analysis.
 *
 * parseFile() turns one translation unit into a FileSummary: every
 * function/method/lambda definition (with its qualified name, calls,
 * allocation sites, lock acquisitions, floating-point compound
 * assignments and discarded-call statements), declarations that carry
 * return types, namespace-scope globals and mutexes, the include
 * list, the in-source annotations, and the identifier-use set for the
 * liveness scan.
 *
 * A FileSummary is everything the whole-repo phase (callgraph.h)
 * needs, which is what makes it cacheable: the incremental cache
 * stores summaries keyed by content hash, and a warm run never
 * re-lexes an unchanged file.
 *
 * This is a heuristic parser, not a compiler front end: templates are
 * parsed by token shape, overload resolution is name matching, and
 * preprocessor conditionals contribute both branches. The semantic
 * rules are written to over-approximate reachability and
 * under-approximate certainty (a finding needs an unambiguous
 * signal), which keeps false positives rare without libclang.
 */

#ifndef LRD_TOOLS_LINT_PARSER_H
#define LRD_TOOLS_LINT_PARSER_H

#include <string>
#include <vector>

#include "annotations.h"
#include "lexer.h"
#include "lint.h"

namespace lrd::lint {

/** One call site inside a function body. */
struct CallSite
{
    /** Callee as written: "f", "A::B::f", or ".f" for member calls. */
    std::string name;
    int line = 0;
};

/** One allocation primitive inside a function body. */
struct AllocSite
{
    /** "new", "malloc", ".push_back", ".resize", "make_unique", ... */
    std::string what;
    int line = 0;
};

/** One mutex acquisition (lock_guard/unique_lock/scoped_lock/.lock). */
struct LockSite
{
    /** Last identifier of the mutex expression ("mu_", "mu"). */
    std::string mutexName;
    int line = 0;
};

/** One write (assignment / compound assignment / ++ / --). */
struct WriteSite
{
    std::string var;
    int line = 0;
};

/** One floating-point compound assignment (+= -= *= /=). */
struct FpWrite
{
    std::string var;
    int line = 0;
};

/** One function, method, or lambda. */
struct FunctionInfo
{
    /** Last name component ("parallelFor"); lambdas: "<lambda>". */
    std::string name;
    /** Qualified name ("lrd::ThreadPool::parallelFor"); anonymous
     *  namespaces contribute "(anon)", lambdas "<lambda@LINE>". */
    std::string qualName;
    int line = 0;
    bool isLambda = false;
    /** Declaration without a body (prototype / extern). */
    bool isDeclOnly = false;
    /** Return type mentions Status or Result. */
    bool returnsStatus = false;
    /** Internal linkage: anonymous namespace or file-static. */
    bool internal = false;
    /** Constructor, destructor, operator, or main: exempt from the
     *  dead-symbol rule. */
    bool special = false;
    /** Index (into FileSummary::functions) of the enclosing function
     *  for lambdas; -1 otherwise. */
    int enclosing = -1;
    /** Callee name when this lambda is written directly inside a call
     *  argument list ("parallelFor", ".parallelFor", "scoreWith"). */
    std::string passedTo;
    std::vector<std::string> params;
    /** Parameter / local names declared as scalar float or double. */
    std::vector<std::string> floatLocals;
    std::vector<CallSite> calls;
    std::vector<AllocSite> allocs;
    std::vector<LockSite> locks;
    std::vector<FpWrite> fpWrites;
    std::vector<WriteSite> writes;
    /** Statement-level calls whose return value is discarded. */
    std::vector<CallSite> discards;
};

/** One namespace-scope or class-scope mutex declaration. */
struct MutexDecl
{
    std::string name;
    /** Enclosing type for members; empty at namespace scope. */
    std::string klass;
    int line = 0;
};

/** One namespace-scope variable (for lock-discipline pairing). */
struct GlobalDecl
{
    std::string name;
    int line = 0;
};

/** Everything the cross-TU phase needs from one file. */
struct FileSummary
{
    std::string path;
    /** Content hash the summary was parsed from (cache key). */
    std::string sha;
    std::vector<FunctionInfo> functions;
    std::vector<IncludeDirective> includes;
    std::vector<MutexDecl> mutexes;
    std::vector<GlobalDecl> globals;
    Annotations annotations;
    /**
     * Sorted unique identifiers used in the file, excluding each
     * declaration's own name token — so a symbol whose name appears
     * only where it is declared/defined counts as unreferenced.
     */
    std::vector<std::string> usedIdentifiers;
    /** Per-file token-rule findings (suppressions already applied). */
    std::vector<Diagnostic> fileDiags;
};

/**
 * Parse one file: lex, run the per-file token rules, and extract the
 * declaration summary. `sha` is stored verbatim (pass the content
 * hash when caching; tests may pass anything).
 */
FileSummary parseFile(const SourceFile &file, const std::string &sha = "");

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_PARSER_H
