/**
 * @file
 * Declaration parser: token stream -> FileSummary.
 *
 * One forward pass with an explicit scope stack. Namespace and type
 * scopes classify each statement (namespace / type / function /
 * variable / initializer); function bodies are scanned by a separate
 * routine that records calls, lambdas, allocation primitives, lock
 * acquisitions, writes and discarded-call statements.
 */

#include "parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "lint.h"

namespace lrd::lint {

namespace {

const std::set<std::string> kControlKeywords = {
    "if",     "for",      "while",  "switch",      "return", "sizeof",
    "alignof", "decltype", "catch",  "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "noexcept", "do", "else",
    "case",   "break",    "continue", "goto",      "throw",  "delete",
    "new",    "co_return", "co_await", "co_yield", "defined",
    "static_assert", "alignas", "typeid", "requires", "assert",
};

const std::set<std::string> kStatementStarters = {
    "using", "typedef", "friend", "static_assert", "extern", "class",
    "struct", "union", "enum", "namespace", "template", "public",
    "private", "protected",
};

/** Heap-allocating free functions (called by name). */
const std::set<std::string> kAllocCalls = {
    "malloc",      "calloc",      "realloc",    "aligned_alloc",
    "strdup",      "posix_memalign", "make_unique", "make_shared",
    "to_string",
};

/** Container/string members that (may) grow their allocation. */
const std::set<std::string> kGrowthMembers = {
    "push_back", "emplace_back", "emplace", "resize",  "reserve",
    "insert",    "append",       "assign",  "push_front",
    "emplace_front",
};

const std::set<std::string> kLockWrappers = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
};

/** std lock tags that are not mutexes. */
const std::set<std::string> kLockTags = {
    "defer_lock", "try_to_lock", "adopt_lock",
};

const std::set<std::string> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex",
};

bool
isIdent(const Token &t)
{
    return t.kind == TokKind::Identifier;
}

/** One entry of the lexical scope the parser walks. */
struct ScopeName
{
    std::string name; ///< "(anon)" for anonymous namespaces.
    bool isType = false;
    bool isAnon = false;
};

class DeclParser
{
  public:
    DeclParser(const SourceFile &file, const LexedFile &lexed,
               FileSummary &out)
        : toks_(lexed.tokens), out_(out)
    {
        (void)file;
        for (const Token &t : lexed.directiveTokens)
            ++useCount_[t.text];
    }

    void
    run()
    {
        for (const Token &t : toks_)
            if (isIdent(t))
                ++useCount_[t.text];
        i_ = 0;
        parseOuter();
        for (const auto &[name, count] : useCount_)
            if (count > 0)
                out_.usedIdentifiers.push_back(name);
    }

  private:
    const std::vector<Token> &toks_;
    FileSummary &out_;
    size_t i_ = 0;
    std::vector<ScopeName> scope_;
    std::map<std::string, int> useCount_;

    bool done() const { return i_ >= toks_.size(); }
    const Token &cur() const { return toks_[i_]; }
    const Token *
    peek(size_t off = 1) const
    {
        return i_ + off < toks_.size() ? &toks_[i_ + off] : nullptr;
    }

    /** Name token at a declaration site is not a "use". */
    void
    notDeclUse(const std::string &name)
    {
        const auto it = useCount_.find(name);
        if (it != useCount_.end())
            --it->second;
    }

    std::string
    scopePrefix() const
    {
        std::string out;
        for (const ScopeName &s : scope_) {
            if (!out.empty())
                out += "::";
            out += s.name;
        }
        return out;
    }

    bool
    inAnonNamespace() const
    {
        return std::any_of(scope_.begin(), scope_.end(),
                           [](const ScopeName &s) { return s.isAnon; });
    }

    std::string
    enclosingTypeName() const
    {
        for (auto it = scope_.rbegin(); it != scope_.rend(); ++it)
            if (it->isType)
                return it->name;
        return "";
    }

    /** Skip tokens until the matching close of the opener at i_. */
    void
    skipBalanced(const char *open, const char *close)
    {
        int depth = 0;
        while (!done()) {
            if (cur().text == open)
                ++depth;
            else if (cur().text == close && --depth == 0) {
                ++i_;
                return;
            }
            ++i_;
        }
    }

    // ------------------------------------------------ outer scopes

    /**
     * Parse statements at namespace/type scope until the matching
     * '}' of the enclosing scope (or end of file at top level).
     */
    void
    parseOuter()
    {
        std::vector<Token> stmt;
        while (!done()) {
            const Token &t = cur();
            if (t.text == "}") {
                ++i_;
                return;
            }
            if (t.text == ";") {
                ++i_;
                classifyTerminated(stmt);
                stmt.clear();
                continue;
            }
            if (t.text == "{") {
                handleOuterBrace(stmt);
                stmt.clear();
                continue;
            }
            stmt.push_back(t);
            ++i_;
        }
    }

    /** Statement ended in ';' at namespace/type scope. */
    void
    classifyTerminated(std::vector<Token> stmt)
    {
        stripTemplatePrefix(stmt);
        if (stmt.empty())
            return;
        if (stmt.front().text == "using" || stmt.front().text == "typedef"
            || stmt.front().text == "friend"
            || stmt.front().text == "static_assert")
            return;
        const size_t parenPos = topLevelParen(stmt);
        const size_t eqPos = topLevelEq(stmt);
        const bool operatorish = containsOperatorKeyword(stmt);
        if ((parenPos < eqPos || operatorish) && parenPos < stmt.size()) {
            // Function prototype (or `= default` / `= delete`).
            registerFunction(stmt, parenPos, /*declOnly=*/true);
            return;
        }
        registerVariable(stmt);
    }

    /** Statement hit '{' at namespace/type scope: decide what opens. */
    void
    handleOuterBrace(std::vector<Token> stmt)
    {
        stripTemplatePrefix(stmt);

        // namespace [name] {
        if (!stmt.empty() && stmt.front().text == "namespace") {
            std::string name;
            for (size_t k = 1; k < stmt.size(); ++k) {
                if (stmt[k].text == "::")
                    name += "::";
                else if (isIdent(stmt[k]))
                    name += stmt[k].text;
            }
            ScopeName s;
            s.isAnon = name.empty();
            s.name = name.empty() ? "(anon)" : name;
            ++i_; // '{'
            scope_.push_back(s);
            parseOuter();
            scope_.pop_back();
            return;
        }

        const size_t parenPos = topLevelParen(stmt);
        const size_t eqPos = topLevelEq(stmt);
        const bool operatorish = containsOperatorKeyword(stmt);
        const bool typeish = !stmt.empty()
                             && std::any_of(stmt.begin(), stmt.end(),
                                            [](const Token &t) {
                                                return t.text == "class"
                                                       || t.text == "struct"
                                                       || t.text == "union"
                                                       || t.text == "enum";
                                            });

        if ((parenPos < eqPos || operatorish) && parenPos < stmt.size()
            && !typeish) {
            // Function definition: register, then scan the body.
            const int fnIdx =
                registerFunction(stmt, parenPos, /*declOnly=*/false);
            ++i_; // '{'
            if (fnIdx >= 0)
                parseBody(fnIdx);
            else
                skipBody();
            return;
        }
        if (typeish && parenPos == stmt.size()) {
            // class/struct/union/enum definition.
            std::string name;
            for (const Token &t : stmt) {
                if (t.text == ":")
                    break; // base clause
                if (isIdent(t) && t.text != "class" && t.text != "struct"
                    && t.text != "union" && t.text != "enum"
                    && t.text != "final" && t.text != "alignas")
                    name = t.text;
            }
            ScopeName s;
            s.isType = true;
            s.name = name.empty() ? "(type)" : name;
            ++i_; // '{'
            scope_.push_back(s);
            parseOuter();
            scope_.pop_back();
            return;
        }
        // Initializer (`= { ... }`) or anything else: skip balanced.
        skipBalanced("{", "}");
    }

    /** Consume a body we are not interested in. */
    void
    skipBody()
    {
        int depth = 1;
        while (!done() && depth > 0) {
            if (cur().text == "{")
                ++depth;
            else if (cur().text == "}")
                --depth;
            ++i_;
        }
    }

    // ------------------------------------------- statement helpers

    static void
    stripTemplatePrefix(std::vector<Token> &stmt)
    {
        while (stmt.size() >= 2 && stmt.front().text == "template"
               && stmt[1].text == "<") {
            int depth = 0;
            size_t k = 1;
            for (; k < stmt.size(); ++k) {
                if (stmt[k].text == "<")
                    ++depth;
                else if (stmt[k].text == ">" && --depth == 0) {
                    ++k;
                    break;
                }
            }
            stmt.erase(stmt.begin(),
                       stmt.begin() + static_cast<long>(k));
        }
    }

    /** First '(' outside angle brackets, or stmt.size(). */
    static size_t
    topLevelParen(const std::vector<Token> &stmt)
    {
        int angles = 0;
        for (size_t k = 0; k < stmt.size(); ++k) {
            const std::string &s = stmt[k].text;
            if (s == "<")
                ++angles;
            else if (s == ">")
                angles = std::max(0, angles - 1);
            else if (s == "(" && angles == 0)
                return k;
        }
        return stmt.size();
    }

    /** First top-level '=' (assignment, not inside parens/angles). */
    static size_t
    topLevelEq(const std::vector<Token> &stmt)
    {
        int angles = 0, parens = 0;
        for (size_t k = 0; k < stmt.size(); ++k) {
            const std::string &s = stmt[k].text;
            if (s == "<")
                ++angles;
            else if (s == ">")
                angles = std::max(0, angles - 1);
            else if (s == "(")
                ++parens;
            else if (s == ")")
                parens = std::max(0, parens - 1);
            else if (s == "=" && angles == 0 && parens == 0)
                return k;
        }
        return stmt.size();
    }

    static bool
    containsOperatorKeyword(const std::vector<Token> &stmt)
    {
        return std::any_of(stmt.begin(), stmt.end(), [](const Token &t) {
            return t.text == "operator";
        });
    }

    /**
     * Register a function definition or declaration from its heading
     * statement. Returns the index into out_.functions, or -1 when
     * the statement turned out not to be a function after all.
     */
    int
    registerFunction(const std::vector<Token> &stmt, size_t parenPos,
                     bool declOnly)
    {
        FunctionInfo fn;
        fn.isDeclOnly = declOnly;

        // Function-pointer variable: `int (*fp)(...)`.
        if (parenPos + 1 < stmt.size() && stmt[parenPos + 1].text == "*")
            return -1;

        size_t nameEnd = parenPos; // one past the name chain
        std::vector<std::string> chain;
        if (containsOperatorKeyword(stmt)) {
            fn.name = "operator";
            fn.special = true;
            for (size_t k = 0; k < parenPos; ++k)
                if (stmt[k].text == "operator")
                    fn.line = stmt[k].line;
        } else {
            // Walk the `A::B::name` chain backwards from the paren.
            size_t k = parenPos;
            if (k == 0)
                return -1;
            --k;
            if (!isIdent(stmt[k]))
                return -1;
            chain.push_back(stmt[k].text);
            fn.line = stmt[k].line;
            while (k >= 2 && stmt[k - 1].text == "::"
                   && isIdent(stmt[k - 2])) {
                k -= 2;
                chain.insert(chain.begin(), stmt[k].text);
            }
            // Destructor: `~X()`.
            if (k >= 1 && stmt[k - 1].text == "~") {
                chain.front() = "~" + chain.front();
                fn.special = true;
            }
            nameEnd = k;
            fn.name = chain.back();
        }

        if (kControlKeywords.count(fn.name)
            || kStatementStarters.count(fn.name))
            return -1;

        // Return type: tokens before the name chain, plus a trailing
        // `-> Type` after the parameter list.
        for (size_t k = 0; k < nameEnd; ++k) {
            if (stmt[k].text == "Status" || stmt[k].text == "Result")
                fn.returnsStatus = true;
            if (stmt[k].text == "static")
                fn.internal = true;
        }
        // Matching close of the parameter list.
        size_t closeParen = stmt.size();
        {
            int depth = 0;
            for (size_t k = parenPos; k < stmt.size(); ++k) {
                if (stmt[k].text == "(")
                    ++depth;
                else if (stmt[k].text == ")" && --depth == 0) {
                    closeParen = k;
                    break;
                }
            }
        }
        for (size_t k = closeParen; k < stmt.size(); ++k)
            if (stmt[k].text == "Status" || stmt[k].text == "Result")
                fn.returnsStatus = true;

        // Parameters: last identifier of each top-level segment.
        if (!fn.special && closeParen > parenPos) {
            int depth = 0, angles = 0;
            std::string lastIdent;
            bool sawFloat = false, sawPtr = false;
            const auto flush = [&] {
                if (!lastIdent.empty()) {
                    fn.params.push_back(lastIdent);
                    if (sawFloat && !sawPtr)
                        fn.floatLocals.push_back(lastIdent);
                }
                lastIdent.clear();
                sawFloat = sawPtr = false;
            };
            for (size_t k = parenPos + 1; k < closeParen; ++k) {
                const std::string &s = stmt[k].text;
                if (s == "(" || s == "[")
                    ++depth;
                else if (s == ")" || s == "]")
                    --depth;
                else if (s == "<")
                    ++angles;
                else if (s == ">")
                    angles = std::max(0, angles - 1);
                else if (s == "," && depth == 0 && angles == 0)
                    flush();
                else if (depth == 0 && angles == 0) {
                    if (isIdent(stmt[k]))
                        lastIdent = s;
                    if (s == "float" || s == "double")
                        sawFloat = true;
                    if (s == "*" || s == "&")
                        sawPtr = true;
                    if (s == "=")
                        lastIdent.clear(); // default value, keep prior
                }
            }
            flush();
        }

        fn.internal = fn.internal || inAnonNamespace();
        const std::string enclosingType = enclosingTypeName();
        if (fn.name == "main" || fn.name == enclosingType
            || (chain.size() >= 2 && fn.name == chain[chain.size() - 2])
            || (!fn.name.empty() && fn.name[0] == '~'))
            fn.special = true;

        std::string qual = scopePrefix();
        for (const std::string &c : chain) {
            if (!qual.empty())
                qual += "::";
            qual += c;
        }
        if (chain.empty()) {
            if (!qual.empty())
                qual += "::";
            qual += fn.name;
        }
        fn.qualName = qual;

        notDeclUse(fn.name);
        out_.functions.push_back(std::move(fn));
        return static_cast<int>(out_.functions.size() - 1);
    }

    /** Non-function ';'-terminated statement at outer scope. */
    void
    registerVariable(const std::vector<Token> &stmt)
    {
        if (stmt.empty() || kStatementStarters.count(stmt.front().text))
            return;
        const size_t eqPos = topLevelEq(stmt);
        std::string name;
        int line = 0;
        bool isMutex = false;
        for (size_t k = 0; k < std::min(eqPos, stmt.size()); ++k) {
            if (kMutexTypes.count(stmt[k].text))
                isMutex = true;
            if (isIdent(stmt[k]) && !kMutexTypes.count(stmt[k].text)
                && stmt[k].text != "std" && stmt[k].text != "const"
                && stmt[k].text != "mutable" && stmt[k].text != "static"
                && stmt[k].text != "inline"
                && stmt[k].text != "constexpr") {
                name = stmt[k].text;
                line = stmt[k].line;
            }
        }
        if (name.empty())
            return;
        if (isMutex) {
            notDeclUse(name);
            out_.mutexes.push_back(MutexDecl{name, enclosingTypeName(),
                                             line});
            return;
        }
        if (!enclosingTypeName().empty())
            return; // plain data members are not interesting
        notDeclUse(name);
        out_.globals.push_back(GlobalDecl{name, line});
    }

    // ------------------------------------------------- body scans

    /**
     * Scan one function (or lambda) body, cursor just past its '{'.
     * Records calls, allocs, locks, writes, fp compound assignments,
     * discarded-call statements and nested lambdas.
     */
    void
    parseBody(int fnIdx)
    {
        int depth = 1;
        // Innermost-first stack of pending call expressions: the
        // callee name for each open '(' ("" for grouping parens).
        std::vector<std::string> callStack;
        std::vector<Token> stmt;

        const auto fn = [&]() -> FunctionInfo & {
            return out_.functions[static_cast<size_t>(fnIdx)];
        };

        while (!done()) {
            const Token &t = cur();

            if (t.text == "{") {
                ++depth;
                stmt.clear();
                ++i_;
                continue;
            }
            if (t.text == "}") {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
                stmt.clear();
                ++i_;
                continue;
            }
            if (t.text == ";" && callStack.empty()) {
                recordDiscardIfCall(fn(), stmt);
                stmt.clear();
                ++i_;
                continue;
            }

            // Attribute `[[...]]` vs lambda introducer `[...]`.
            if (t.text == "[") {
                const Token *nxt = peek();
                if (nxt && nxt->text == "[") {
                    skipAttribute();
                    continue;
                }
                if (lambdaIntroducer(stmt)) {
                    parseLambda(fnIdx, callStack);
                    stmt.clear();
                    continue;
                }
                stmt.push_back(t);
                ++i_;
                continue;
            }

            if (t.text == "(") {
                callStack.push_back(calleeBefore(stmt, fn()));
                stmt.push_back(t);
                ++i_;
                continue;
            }
            if (t.text == ")") {
                if (!callStack.empty())
                    callStack.pop_back();
                stmt.push_back(t);
                ++i_;
                continue;
            }

            if (isIdent(t)) {
                scanIdentifier(fn(), stmt);
                stmt.push_back(t);
                ++i_;
                continue;
            }

            // Compound assignment / increment on the previous token.
            if ((t.text == "+" || t.text == "-" || t.text == "*"
                 || t.text == "/")
                && peek() && peek()->text == "="
                && peek()->line == t.line) {
                recordCompound(fn(), stmt, t);
                stmt.push_back(t);
                ++i_;
                continue;
            }
            if ((t.text == "+" || t.text == "-") && peek()
                && peek()->text == t.text && !stmt.empty()
                && isIdent(stmt.back())) {
                // Postfix increment/decrement: a write to the operand.
                fn().writes.push_back(
                    WriteSite{stmt.back().text, t.line});
            }
            if (t.text == "=" && (!peek() || peek()->text != "=")
                && (stmt.empty() || stmt.back().text != "=")) {
                recordAssign(fn(), stmt, t.line);
            }

            stmt.push_back(t);
            ++i_;
        }
    }

    /** Cursor on the first '[' of '[['; skip to past ']]'. */
    void
    skipAttribute()
    {
        int depth = 0;
        while (!done()) {
            if (cur().text == "[")
                ++depth;
            else if (cur().text == "]" && --depth == 0) {
                ++i_;
                return;
            }
            ++i_;
        }
    }

    /** Is a '[' at the cursor a lambda introducer? */
    bool
    lambdaIntroducer(const std::vector<Token> &stmt) const
    {
        if (stmt.empty())
            return true;
        const Token &prev = stmt.back();
        if (prev.kind == TokKind::Identifier
            && !kControlKeywords.count(prev.text)
            && prev.text != "return" && prev.text != "case")
            return false; // subscript or array declarator
        if (prev.kind == TokKind::Number || prev.text == ")"
            || prev.text == "]")
            return false;
        return true;
    }

    /**
     * Parse a lambda starting at its '[' introducer: register it as
     * a function of its own and scan its body.
     */
    void
    parseLambda(int enclosingIdx, const std::vector<std::string> &callStack)
    {
        const int line = cur().line;
        FunctionInfo fn;
        fn.isLambda = true;
        fn.special = true;
        fn.line = line;
        fn.enclosing = enclosingIdx;
        fn.internal = true;
        fn.name = "<lambda>";
        fn.qualName =
            out_.functions[static_cast<size_t>(enclosingIdx)].qualName
            + "::<lambda@" + std::to_string(line) + ">";
        for (auto it = callStack.rbegin(); it != callStack.rend(); ++it)
            if (!it->empty()) {
                fn.passedTo = *it;
                break;
            }

        skipBalanced("[", "]"); // capture list (identifiers counted
                                // as uses by the initial pass)

        // Optional parameter list.
        if (!done() && cur().text == "(") {
            int depth = 0, angles = 0;
            std::string lastIdent;
            bool sawFloat = false, sawPtr = false;
            const auto flush = [&] {
                if (!lastIdent.empty()) {
                    fn.params.push_back(lastIdent);
                    if (sawFloat && !sawPtr)
                        fn.floatLocals.push_back(lastIdent);
                }
                lastIdent.clear();
                sawFloat = sawPtr = false;
            };
            while (!done()) {
                const std::string &s = cur().text;
                if (s == "(") {
                    ++depth;
                } else if (s == ")") {
                    if (--depth == 0) {
                        ++i_;
                        break;
                    }
                } else if (s == "<") {
                    ++angles;
                } else if (s == ">") {
                    angles = std::max(0, angles - 1);
                } else if (s == "," && depth == 1 && angles == 0) {
                    flush();
                } else if (depth == 1 && angles == 0) {
                    if (isIdent(cur()))
                        lastIdent = s;
                    if (s == "float" || s == "double")
                        sawFloat = true;
                    if (s == "*" || s == "&")
                        sawPtr = true;
                    if (s == "=")
                        lastIdent.clear();
                }
                ++i_;
            }
            flush();
        }

        // Specifiers / trailing return type up to the body.
        while (!done() && cur().text != "{" && cur().text != ";"
               && cur().text != ")" && cur().text != ",")
            ++i_;
        if (done() || cur().text != "{")
            return; // not a lambda body after all (e.g. declarator)

        out_.functions.push_back(std::move(fn));
        const int idx = static_cast<int>(out_.functions.size() - 1);
        ++i_; // '{'
        parseBody(idx);
    }

    /**
     * The callee name for a '(' about to open, from the statement
     * tokens before it: "f", "A::B::f" or ".f"; "" when the paren is
     * grouping. Also records the call site (and allocation sites for
     * the curated allocating names).
     */
    std::string
    calleeBefore(const std::vector<Token> &stmt, FunctionInfo &fn)
    {
        if (stmt.empty())
            return "";
        size_t k = stmt.size();
        // Skip one balanced template argument list: foo<int>(...)
        if (stmt.back().text == ">") {
            int depth = 0;
            size_t j = stmt.size();
            while (j > 0) {
                --j;
                if (stmt[j].text == ">")
                    ++depth;
                else if (stmt[j].text == "<" && --depth == 0)
                    break;
            }
            if (depth == 0 && j > 0 && isIdent(stmt[j - 1]))
                k = j;
            else
                return "";
        }
        if (k == 0 || !isIdent(stmt[k - 1]))
            return "";
        const Token &nameTok = stmt[k - 1];
        if (kControlKeywords.count(nameTok.text))
            return "";
        std::string name = nameTok.text;
        size_t j = k - 1;
        bool member = false;
        while (j > 0) {
            if (stmt[j - 1].text == "::" && j >= 2 && isIdent(stmt[j - 2])) {
                name = stmt[j - 2].text + "::" + name;
                j -= 2;
                continue;
            }
            if (stmt[j - 1].text == "." || stmt[j - 1].text == ">") {
                // `.f` or `->f` (lexer splits -> into '-' '>').
                member = true;
            }
            break;
        }
        const std::string recorded = member ? "." + nameTok.text : name;
        fn.calls.push_back(CallSite{recorded, nameTok.line});

        // Allocation primitives.
        if (member && kGrowthMembers.count(nameTok.text))
            fn.allocs.push_back(
                AllocSite{"." + nameTok.text, nameTok.line});
        else if (!member && kAllocCalls.count(nameTok.text))
            fn.allocs.push_back(AllocSite{nameTok.text, nameTok.line});
        return recorded;
    }

    /** Identifier at the cursor: new/alloc/lock-wrapper handling. */
    void
    scanIdentifier(FunctionInfo &fn, const std::vector<Token> &stmt)
    {
        const Token &t = cur();
        // Prefix increment/decrement: `++x` / `--x` is a write to x.
        if (stmt.size() >= 2) {
            const std::string &a = stmt[stmt.size() - 2].text;
            const std::string &b = stmt.back().text;
            if ((a == "+" && b == "+") || (a == "-" && b == "-"))
                fn.writes.push_back(WriteSite{t.text, t.line});
        }
        if (t.text == "new") {
            fn.allocs.push_back(AllocSite{"new", t.line});
            return;
        }
        if (t.text == "float" || t.text == "double") {
            // Scalar local declaration: `double acc` (not `double *p`).
            const Token *nxt = peek();
            if (nxt && isIdent(*nxt))
                fn.floatLocals.push_back(nxt->text);
            return;
        }
        if (kLockWrappers.count(t.text))
            scanLockWrapper(fn, t.text);
        // `mu.lock()` / `mu_->lock()`: acquisition of the object.
        if (t.text == "lock" && peek() && peek()->text == "("
            && peek(2) && peek(2)->text == ")" && stmt.size() >= 2) {
            const Token &sep = stmt.back();
            if ((sep.text == "." || sep.text == ">")
                && isIdent(stmt[stmt.size() - 2]))
                fn.locks.push_back(
                    LockSite{stmt[stmt.size() - 2].text, t.line});
        }
    }

    /**
     * Cursor on a lock-wrapper identifier (lock_guard/...). Scan
     * forward (without consuming — the main loop re-walks) for the
     * guarded mutex name(s): wrapper [<...>] var ( arg [, arg...] ).
     */
    void
    scanLockWrapper(FunctionInfo &fn, const std::string &wrapper)
    {
        size_t j = i_ + 1;
        const auto tok = [&](size_t idx) -> const Token * {
            return idx < toks_.size() ? &toks_[idx] : nullptr;
        };
        // Optional template argument list.
        if (tok(j) && tok(j)->text == "<") {
            int depth = 0;
            for (; j < toks_.size(); ++j) {
                if (toks_[j].text == "<")
                    ++depth;
                else if (toks_[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        // Guard variable name.
        if (!tok(j) || !isIdent(*tok(j)))
            return;
        ++j;
        if (!tok(j) || tok(j)->text != "(")
            return;
        // Arguments: one mutex per top-level comma segment
        // (scoped_lock locks several), skipping std lock tags.
        int depth = 0;
        std::string lastIdent;
        const bool multi = wrapper == "scoped_lock";
        bool first = true;
        const auto flush = [&](int line) {
            if (!lastIdent.empty() && !kLockTags.count(lastIdent)
                && (multi || first))
                fn.locks.push_back(LockSite{lastIdent, line});
            first = false;
            lastIdent.clear();
        };
        for (; j < toks_.size(); ++j) {
            const std::string &s = toks_[j].text;
            if (s == "(") {
                ++depth;
            } else if (s == ")") {
                if (--depth == 0) {
                    flush(toks_[j].line);
                    break;
                }
            } else if (s == "," && depth == 1) {
                flush(toks_[j].line);
            } else if (depth == 1 && isIdent(toks_[j])) {
                lastIdent = toks_[j].text;
            }
        }
    }

    /** `x +=` / `x *=` (float-order candidates) and writes. */
    void
    recordCompound(FunctionInfo &fn, const std::vector<Token> &stmt,
                   const Token &op)
    {
        if (stmt.empty())
            return;
        const Token &lhs = stmt.back();
        if (!isIdent(lhs))
            return; // subscripted / call-result target
        fn.writes.push_back(WriteSite{lhs.text, op.line});
        if (op.text == "+" || op.text == "-" || op.text == "*"
            || op.text == "/")
            fn.fpWrites.push_back(FpWrite{lhs.text, op.line});
    }

    /** `x = ...` simple assignment (write tracking for globals). */
    void
    recordAssign(FunctionInfo &fn, const std::vector<Token> &stmt,
                 int line)
    {
        if (stmt.empty())
            return;
        const Token &lhs = stmt.back();
        if (!isIdent(lhs))
            return;
        // Exclude comparisons spelled as `a = = b` (split ==) and
        // declarations with initializers (`int x = 0` is still a
        // write to x, which is fine for our purposes).
        fn.writes.push_back(WriteSite{lhs.text, line});
    }

    /**
     * A ';' closed a statement at call depth 0: if the whole
     * statement is a single call expression, its result is discarded.
     */
    void
    recordDiscardIfCall(FunctionInfo &fn, const std::vector<Token> &stmt)
    {
        if (stmt.size() < 3 || !isIdent(stmt.front()))
            return;
        if (kControlKeywords.count(stmt.front().text)
            || kStatementStarters.count(stmt.front().text))
            return;
        // Walk the callee: ident ((::|.|->) ident)*
        size_t k = 1;
        std::string lastName = stmt[0].text;
        bool member = false;
        while (k + 1 < stmt.size()) {
            if (stmt[k].text == "::" && isIdent(stmt[k + 1])) {
                lastName = stmt[k + 1].text;
                k += 2;
                continue;
            }
            if (stmt[k].text == "." && isIdent(stmt[k + 1])) {
                lastName = stmt[k + 1].text;
                member = true;
                k += 2;
                continue;
            }
            if (stmt[k].text == "-" && k + 2 < stmt.size()
                && stmt[k + 1].text == ">" && isIdent(stmt[k + 2])) {
                lastName = stmt[k + 2].text;
                member = true;
                k += 3;
                continue;
            }
            break;
        }
        if (k >= stmt.size() || stmt[k].text != "(")
            return;
        // The call's closing paren must be the statement's last token.
        int depth = 0;
        size_t close = stmt.size();
        for (size_t j = k; j < stmt.size(); ++j) {
            if (stmt[j].text == "(")
                ++depth;
            else if (stmt[j].text == ")" && --depth == 0) {
                close = j;
                break;
            }
        }
        if (close != stmt.size() - 1)
            return;
        fn.discards.push_back(CallSite{member ? "." + lastName : lastName,
                                       stmt.front().line});
    }
};

} // namespace

FileSummary
parseFile(const SourceFile &file, const std::string &sha)
{
    FileSummary sum;
    sum.path = file.path;
    sum.sha = sha;

    const LexedFile lexed = lex(file.content);
    sum.includes = lexed.includes;
    sum.annotations = parseAnnotations(lexed.comments);
    sum.fileDiags = lintFile(file);

    DeclParser parser(file, lexed, sum);
    parser.run();
    return sum;
}

} // namespace lrd::lint
