/**
 * @file
 * In-source lint annotations, shared by the token rules and the
 * cross-TU semantic rules:
 *
 *   // lrd-lint: allow(<rule>[, <rule>...])   suppress on this/next line
 *   // lrd-lint: mutex(<name>)                global guarded by <name>
 *
 * The token rules consume these at lintFile() time; the semantic
 * rules consume them from the cached FileSummary, so a suppression
 * works identically whether the file was re-parsed or served from the
 * incremental cache.
 */

#ifndef LRD_TOOLS_LINT_ANNOTATIONS_H
#define LRD_TOOLS_LINT_ANNOTATIONS_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace lrd::lint {

/** Suppression / annotation state parsed out of a file's comments. */
struct Annotations
{
    /** line -> rules allowed on that line and the next. */
    std::map<int, std::set<std::string>> allows;
    /** line -> mutex name from a `mutex(<name>)` annotation. */
    std::map<int, std::string> mutexNames;

    bool
    mutexAnnotated(int line) const
    {
        return mutexNames.count(line) > 0 || mutexNames.count(line - 1) > 0;
    }
};

/**
 * Parse "lrd-lint: allow(a, b)" / "lrd-lint: mutex(name)" markers.
 * Unknown directives are ignored (forward compatibility).
 */
Annotations parseAnnotations(const std::vector<Comment> &comments);

/** True when `rule` is allowed on `line` (same or preceding line). */
bool isSuppressed(const Annotations &ann, int line,
                  const std::string &rule);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_ANNOTATIONS_H
