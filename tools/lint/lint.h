/**
 * @file
 * lrd-lint: project-invariant static analysis for the lrd tree.
 *
 * A deliberately small, libclang-free linter. It tokenizes C++
 * sources (comments, string literals and preprocessor lines are
 * handled; no semantic analysis) and enforces the invariants the
 * paper reproduction depends on:
 *
 *  - determinism: no ad-hoc randomness or wall-clock seeding outside
 *    src/util/rng, no unordered-container iteration order leaking
 *    into the numeric core;
 *  - concurrency discipline: raw threads only inside src/parallel/
 *    and src/util/worker_lane.*, no unsynchronized mutable globals;
 *  - layering: the module DAG util -> obs -> robust -> parallel ->
 *    tensor/linalg -> model/decomp -> hw/quant -> eval/dse/train ->
 *    tools/tests/bench must stay acyclic with no back-edges;
 *  - error discipline: `throw` is confined to src/util (fatal/panic
 *    and Rng argument checks); everything else reports failures as
 *    lrd::Status / lrd::Result;
 *  - header hygiene: include guards, no `using namespace` at
 *    namespace scope in headers.
 *
 * Violations are suppressible in place with a trailing or preceding
 * comment `// lrd-lint: allow(<rule>[, <rule>...])`. Mutable globals
 * guarded by a mutex are annotated `// lrd-lint: mutex(<name>)`.
 *
 * The core operates on (path, content) pairs so tests can feed
 * fixture snippets without touching the filesystem; the CLI wrapper
 * in main.cc walks the real tree.
 */

#ifndef LRD_TOOLS_LINT_LINT_H
#define LRD_TOOLS_LINT_LINT_H

#include <string>
#include <vector>

namespace lrd::lint {

/** One source file presented to the linter. */
struct SourceFile
{
    /** Repo-relative path with forward slashes, e.g. "src/util/rng.h". */
    std::string path;
    /** Full file contents. */
    std::string content;
};

/** One rule violation. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    /** Stable rule name, usable in allow(...) suppressions. */
    std::string rule;
    std::string message;
    /**
     * Qualified name of the function/symbol the finding is about
     * (empty for file-level findings). Baseline suppression keys on
     * (rule, file, symbol) so entries survive line drift.
     */
    std::string symbol;
};

/** Rule names (single definition so help text / tests stay in sync). */
inline constexpr const char *kRuleBannedRandom = "banned-random";
inline constexpr const char *kRuleWallClock = "wall-clock";
inline constexpr const char *kRuleUnordered = "unordered-container";
inline constexpr const char *kRuleThread = "thread-outside-parallel";
inline constexpr const char *kRuleNonconstGlobal = "nonconst-global";
inline constexpr const char *kRuleHeaderGuard = "header-guard";
inline constexpr const char *kRuleUsingNamespace = "using-namespace-header";
inline constexpr const char *kRuleLayering = "include-layering";
inline constexpr const char *kRuleCycle = "include-cycle";
inline constexpr const char *kRuleNakedThrow = "naked-throw";
inline constexpr const char *kRuleBlockingSleep = "blocking-sleep";
inline constexpr const char *kRuleIntrinsics = "intrinsics-outside-simd";
inline constexpr const char *kRuleHotPathAlloc = "hot-path-alloc";
inline constexpr const char *kRuleLockDiscipline = "lock-discipline";
inline constexpr const char *kRuleUncheckedResult = "unchecked-result";
inline constexpr const char *kRuleFpOrder = "fp-order";
inline constexpr const char *kRuleDeadSymbol = "dead-symbol";

/**
 * Layer of a module directory in the declared layering, or -1 when
 * the path is outside the known tree. Higher layers may include
 * lower ones; an include in the other direction is a back-edge.
 */
int moduleLayer(const std::string &module);

/** Module name for a repo-relative path ("src/util/rng.h" -> "util"). */
std::string moduleOf(const std::string &path);

/**
 * Run every per-file token rule on one file. Suppressions are
 * already applied; the result contains only live violations.
 */
std::vector<Diagnostic> lintFile(const SourceFile &file);

/**
 * Run the include-graph rules (layering back-edges, module cycles,
 * file-level include cycles) over a whole tree.
 */
std::vector<Diagnostic> checkIncludeGraph(const std::vector<SourceFile> &files);

/** Per-file rules plus graph rules, sorted by (file, line, rule). */
std::vector<Diagnostic> lintFiles(const std::vector<SourceFile> &files);

/** "file:line: [rule] message" -- the human-readable report line. */
std::string formatDiagnostic(const Diagnostic &d);

/** "file\tline\trule\tmessage" -- the --fix-list machine format. */
std::string formatFixList(const Diagnostic &d);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_LINT_H
