#include "callgraph.h"

#include <algorithm>
#include <deque>
#include <functional>

namespace lrd::lint {

namespace {

/** Last component of "a::b::c". */
std::string
lastComponent(const std::string &name)
{
    const size_t pos = name.rfind("::");
    return pos == std::string::npos ? name : name.substr(pos + 2);
}

/** Bare callable name: strip the member "." prefix. */
std::string
bareName(const std::string &callee)
{
    return !callee.empty() && callee[0] == '.' ? callee.substr(1)
                                               : callee;
}

/** Does qualName end with the written qualified name, on a "::"
 *  boundary? ("lrd::ThreadPool::parallelFor" vs
 *  "ThreadPool::parallelFor"). */
bool
qualSuffixMatch(const std::string &qualName, const std::string &written)
{
    if (qualName == written)
        return true;
    if (qualName.size() <= written.size() + 2)
        return false;
    return qualName.compare(qualName.size() - written.size(),
                            written.size(), written)
               == 0
           && qualName.compare(qualName.size() - written.size() - 2, 2,
                               "::")
                  == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return path.size() >= 2
           && path.compare(path.size() - 2, 2, ".h") == 0;
}

const std::set<std::string> kEmptyLockSet;

} // namespace

RepoGraph::RepoGraph(const std::vector<FileSummary> &files)
    : files_(files)
{
    buildIndex();
    seedHotRoots();
    propagateHot();
    buildLocks();
}

void
RepoGraph::buildIndex()
{
    for (size_t f = 0; f < files_.size(); ++f) {
        const FileSummary &sum = files_[f];
        for (size_t i = 0; i < sum.functions.size(); ++i) {
            const FunctionInfo &fn = sum.functions[i];
            if (fn.isLambda)
                continue;
            const FunctionRef ref{static_cast<int>(f),
                                  static_cast<int>(i)};
            allByName_[fn.name].push_back(ref);
            if (!fn.isDeclOnly)
                defsByName_[fn.name].push_back(ref);
        }
        for (const std::string &ident : sum.usedIdentifiers)
            live_.insert(ident);
    }
}

namespace {

/**
 * Member-call names that collide with ubiquitous STL members.
 * `b->ring.resize(n)` must not resolve to `ThreadPool::resize` — a
 * false call edge here fabricates hot-path marks and lock-order
 * cycles, which costs far more than the occasional missed edge on a
 * genuine in-tree member that shares an STL name.
 */
bool
isStlMemberName(const std::string &name)
{
    static const std::set<std::string> kStlMembers = {
        "resize",     "reserve",    "clear",     "push_back",
        "pop_back",   "emplace_back", "emplace", "insert",
        "erase",      "assign",     "append",    "join",
        "detach",     "swap",       "reset",     "release",
        "at",         "front",      "back",      "data",
        "begin",      "end",        "size",      "empty",
        "count",      "find",       "substr",    "length",
        "str",        "c_str",      "wait",      "wait_for",
        "notify_one", "notify_all", "store",     "load",
        "exchange",   "fetch_add",  "push",      "pop",
        "top",
    };
    return kStlMembers.count(name) != 0;
}

} // namespace

std::vector<FunctionRef>
RepoGraph::resolve(int callerFile, const std::string &callee) const
{
    std::vector<FunctionRef> out;
    const bool member = !callee.empty() && callee[0] == '.';
    const std::string name = lastComponent(bareName(callee));
    if (member && isStlMemberName(name))
        return out;
    const auto it = defsByName_.find(name);
    if (it == defsByName_.end())
        return out;
    const bool qualified =
        !member && callee.find("::") != std::string::npos;
    // Qualified std:: (or other out-of-tree) calls resolve to the
    // written scope, never to an unrelated in-tree function.
    if (qualified && callee.compare(0, 5, "std::") == 0)
        return out;
    for (const FunctionRef &ref : it->second) {
        const FunctionInfo &cand = fn(ref);
        if (qualified && !qualSuffixMatch(cand.qualName, callee))
            continue;
        if (!qualified && cand.internal && ref.file != callerFile)
            continue;
        out.push_back(ref);
    }
    return out;
}

std::vector<FunctionRef>
RepoGraph::resolveAny(int callerFile, const std::string &callee) const
{
    std::vector<FunctionRef> out;
    const bool member = !callee.empty() && callee[0] == '.';
    const std::string name = lastComponent(bareName(callee));
    if (member && isStlMemberName(name))
        return out;
    const auto it = allByName_.find(name);
    if (it == allByName_.end())
        return out;
    const bool qualified =
        !member && callee.find("::") != std::string::npos;
    if (qualified && callee.compare(0, 5, "std::") == 0)
        return out;
    for (const FunctionRef &ref : it->second) {
        const FunctionInfo &cand = fn(ref);
        if (qualified && !qualSuffixMatch(cand.qualName, callee))
            continue;
        if (!qualified && cand.internal && ref.file != callerFile)
            continue;
        out.push_back(ref);
    }
    return out;
}

std::string
RepoGraph::where(const FunctionRef &r) const
{
    return file(r).path + ":" + std::to_string(fn(r).line);
}

void
RepoGraph::seedHotRoots()
{
    for (size_t f = 0; f < files_.size(); ++f) {
        const FileSummary &sum = files_[f];
        const bool simd =
            sum.path.find("src/tensor/simd/") != std::string::npos;
        for (size_t i = 0; i < sum.functions.size(); ++i) {
            const FunctionInfo &fi = sum.functions[i];
            if (fi.isDeclOnly)
                continue;
            const FunctionRef ref{static_cast<int>(f),
                                  static_cast<int>(i)};
            if (simd && !fi.isLambda) {
                hot_.emplace(ref,
                             HotMark{{}, "SIMD microkernel module"});
                continue;
            }
            if (fi.name == "fusedFactorizedForward") {
                hot_.emplace(ref,
                             HotMark{{}, "fused factorized forward"});
                continue;
            }
            if (fi.isLambda) {
                const std::string target = bareName(fi.passedTo);
                if (target == "parallelFor"
                    || target == "parallelForChunks")
                    hot_.emplace(
                        ref, HotMark{{}, "chunk body passed to "
                                             + target});
            }
        }
    }
}

void
RepoGraph::propagateHot()
{
    std::deque<FunctionRef> work;
    for (const auto &[ref, mark] : hot_)
        work.push_back(ref);

    // A lambda nested in a hot function is constructed (and in this
    // codebase invoked) on the hot path.
    const auto enqueueNested = [&](const FunctionRef &ref) {
        const FileSummary &sum = files_[static_cast<size_t>(ref.file)];
        for (size_t i = 0; i < sum.functions.size(); ++i) {
            const FunctionInfo &fi = sum.functions[i];
            const FunctionRef nested{ref.file, static_cast<int>(i)};
            if (fi.isLambda && fi.enclosing == ref.fn
                && !hot_.count(nested)) {
                hot_.emplace(nested,
                             HotMark{ref, "defined inside hot "
                                          + fn(ref).qualName});
                work.push_back(nested);
            }
        }
    };

    // Adding a conduit makes every lambda passed into it hot.
    const auto addConduit = [&](const std::string &name,
                                const FunctionRef &cause) {
        if (!conduits_.insert(name).second)
            return;
        for (size_t f = 0; f < files_.size(); ++f) {
            const FileSummary &sum = files_[f];
            for (size_t i = 0; i < sum.functions.size(); ++i) {
                const FunctionInfo &fi = sum.functions[i];
                const FunctionRef ref{static_cast<int>(f),
                                      static_cast<int>(i)};
                if (fi.isLambda && bareName(fi.passedTo) == name
                    && !hot_.count(ref)) {
                    hot_.emplace(
                        ref, HotMark{cause, "callback passed into "
                                            "hot conduit '" + name
                                            + "'"});
                    work.push_back(ref);
                }
            }
        }
    };

    // Which enclosing-chain function declares `name` as a parameter?
    const auto paramOwner =
        [&](const FunctionRef &ref,
            const std::string &name) -> FunctionRef {
        FunctionRef cur = ref;
        while (cur.valid()) {
            const FunctionInfo &fi = fn(cur);
            if (std::find(fi.params.begin(), fi.params.end(), name)
                != fi.params.end())
                return cur;
            if (fi.enclosing < 0)
                break;
            cur = FunctionRef{cur.file, fi.enclosing};
        }
        return FunctionRef{};
    };

    while (!work.empty()) {
        const FunctionRef ref = work.front();
        work.pop_front();
        enqueueNested(ref);
        const FunctionInfo &fi = fn(ref);
        for (const CallSite &call : fi.calls) {
            for (const FunctionRef &callee :
                 resolve(ref.file, call.name)) {
                if (hot_.count(callee))
                    continue;
                hot_.emplace(callee,
                             HotMark{ref, "called from " + fi.qualName
                                          + " at "
                                          + files_[static_cast<size_t>(
                                                       ref.file)]
                                                .path
                                          + ":"
                                          + std::to_string(call.line)});
                work.push_back(callee);
            }
            // Callback conduit: a hot body invoking one of its (or an
            // enclosing function's) parameters means lambdas passed
            // into that function run hot too.
            const std::string bare = bareName(call.name);
            if (bare.find("::") != std::string::npos)
                continue;
            const FunctionRef owner = paramOwner(ref, bare);
            if (owner.valid() && !fn(owner).isLambda)
                addConduit(fn(owner).name, ref);
        }
    }
}

std::string
RepoGraph::hotPath(const FunctionRef &r) const
{
    std::vector<std::string> hops;
    FunctionRef cur = r;
    // Bounded walk: provenance chains are acyclic by construction,
    // but stay defensive against index confusion.
    for (int guard = 0; guard < 64 && cur.valid(); ++guard) {
        hops.push_back(fn(cur).qualName + " (" + where(cur) + ")");
        const auto it = hot_.find(cur);
        if (it == hot_.end())
            break;
        cur = it->second.parent;
    }
    std::string out;
    for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
        if (!out.empty())
            out += " -> ";
        out += *it;
    }
    return out;
}

std::string
RepoGraph::mutexKey(int fileIdx, const std::string &siteName) const
{
    const auto keyOf = [](const FileSummary &sum, const MutexDecl &m) {
        std::string key;
        if (!isHeaderPath(sum.path))
            key = sum.path + "::";
        if (!m.klass.empty())
            key += m.klass + "::";
        key += m.name;
        return key;
    };
    // Same-file declaration wins; otherwise the name must be unique.
    std::vector<std::string> keys;
    for (size_t f = 0; f < files_.size(); ++f) {
        for (const MutexDecl &m : files_[f].mutexes) {
            if (m.name != siteName)
                continue;
            if (static_cast<int>(f) == fileIdx)
                return keyOf(files_[f], m);
            keys.push_back(keyOf(files_[f], m));
        }
    }
    if (keys.size() == 1)
        return keys.front();
    return "";
}

const std::set<std::string> &
RepoGraph::transitiveLocks(const FunctionRef &r) const
{
    const auto it = transLocks_.find(r);
    return it == transLocks_.end() ? kEmptyLockSet : it->second;
}

void
RepoGraph::buildLocks()
{
    // Direct acquisitions, keyed by canonical mutex identity.
    for (size_t f = 0; f < files_.size(); ++f) {
        const FileSummary &sum = files_[f];
        for (size_t i = 0; i < sum.functions.size(); ++i) {
            const FunctionInfo &fi = sum.functions[i];
            const FunctionRef ref{static_cast<int>(f),
                                  static_cast<int>(i)};
            for (const LockSite &l : fi.locks) {
                const std::string key =
                    mutexKey(static_cast<int>(f), l.mutexName);
                if (key.empty())
                    continue;
                transLocks_[ref].insert(key);
                acquired_.insert(key);
            }
        }
    }

    // Transitive closure over resolvable calls (fixpoint).
    for (bool changed = true; changed;) {
        changed = false;
        for (size_t f = 0; f < files_.size(); ++f) {
            const FileSummary &sum = files_[f];
            for (size_t i = 0; i < sum.functions.size(); ++i) {
                const FunctionInfo &fi = sum.functions[i];
                const FunctionRef ref{static_cast<int>(f),
                                      static_cast<int>(i)};
                for (const CallSite &call : fi.calls) {
                    for (const FunctionRef &callee :
                         resolve(static_cast<int>(f), call.name)) {
                        const auto ct = transLocks_.find(callee);
                        if (ct == transLocks_.end())
                            continue;
                        auto &mine = transLocks_[ref];
                        for (const std::string &key : ct->second)
                            changed |= mine.insert(key).second;
                    }
                }
            }
        }
    }

    // Lock-order edges: an acquisition held when a second mutex is
    // taken (directly later in the body, or inside any callee).
    std::set<std::pair<std::string, std::string>> seen;
    const auto addEdge = [&](const std::string &from,
                             const std::string &to,
                             const std::string &witness,
                             const std::string &file, int line) {
        if (from == to)
            return;
        if (!seen.insert({from, to}).second)
            return;
        edges_.push_back(LockEdge{from, to, witness, file, line});
    };
    for (size_t f = 0; f < files_.size(); ++f) {
        const FileSummary &sum = files_[f];
        for (size_t i = 0; i < sum.functions.size(); ++i) {
            const FunctionInfo &fi = sum.functions[i];
            for (size_t a = 0; a < fi.locks.size(); ++a) {
                const LockSite &l1 = fi.locks[a];
                const std::string k1 =
                    mutexKey(static_cast<int>(f), l1.mutexName);
                if (k1.empty())
                    continue;
                const std::string witness =
                    fi.qualName + " (" + sum.path + ":"
                    + std::to_string(l1.line) + ")";
                // Acquisition order is vector order: the parser
                // records locks as it walks the body, so same-line
                // guards still order correctly.
                for (size_t b = a + 1; b < fi.locks.size(); ++b) {
                    const LockSite &l2 = fi.locks[b];
                    const std::string k2 =
                        mutexKey(static_cast<int>(f), l2.mutexName);
                    if (!k2.empty())
                        addEdge(k1, k2, witness, sum.path, l1.line);
                }
                for (const CallSite &call : fi.calls) {
                    if (call.line < l1.line)
                        continue;
                    for (const FunctionRef &callee :
                         resolve(static_cast<int>(f), call.name))
                        for (const std::string &k2 :
                             transitiveLocks(callee))
                            addEdge(k1, k2, witness, sum.path, l1.line);
                }
            }
        }
    }
}

std::vector<LockEdge>
RepoGraph::findLockCycle() const
{
    // Adjacency over canonical mutex keys.
    std::map<std::string, std::vector<const LockEdge *>> adj;
    for (const LockEdge &e : edges_)
        adj[e.from].push_back(&e);

    std::set<std::string> done;
    std::vector<const LockEdge *> stack;
    std::set<std::string> onStack;
    std::vector<LockEdge> cycle;

    const std::function<bool(const std::string &)> dfs =
        [&](const std::string &node) -> bool {
        onStack.insert(node);
        for (const LockEdge *e : adj[node]) {
            if (onStack.count(e->to)) {
                // Unwind the stack to the cycle entry point.
                stack.push_back(e);
                size_t start = 0;
                for (size_t k = 0; k < stack.size(); ++k)
                    if (stack[k]->from == e->to)
                        start = k;
                for (size_t k = start; k < stack.size(); ++k)
                    cycle.push_back(*stack[k]);
                return true;
            }
            if (done.count(e->to))
                continue;
            stack.push_back(e);
            if (dfs(e->to))
                return true;
            stack.pop_back();
        }
        onStack.erase(node);
        done.insert(node);
        return false;
    };

    for (const auto &[node, unused] : adj) {
        (void)unused;
        if (!done.count(node) && dfs(node))
            return cycle;
    }
    return {};
}

} // namespace lrd::lint
