#include "cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sha256.h"

namespace lrd::lint {

namespace {

const char *kMagic = "lrdlint-summary v1";

/** Escape tab/newline/backslash so fields can be tab-separated. */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\t')
            out += "\\t";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
unesc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            const char n = s[++i];
            if (n == 't')
                out += '\t';
            else if (n == 'n')
                out += '\n';
            else
                out += n;
        } else {
            out += s[i];
        }
    }
    return out;
}

/** Split one record line into its tab-separated raw fields. */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == '\t') {
            out.push_back(line.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

int
toInt(const std::string &s)
{
    return static_cast<int>(std::strtol(s.c_str(), nullptr, 10));
}

} // namespace

std::string
serializeSummary(const FileSummary &sum)
{
    std::ostringstream oss;
    oss << kMagic << "\n";
    oss << "sha\t" << esc(sum.sha) << "\n";
    oss << "path\t" << esc(sum.path) << "\n";
    for (const IncludeDirective &inc : sum.includes)
        oss << "inc\t" << inc.line << "\t" << (inc.quoted ? 1 : 0)
            << "\t" << esc(inc.target) << "\n";
    for (const MutexDecl &m : sum.mutexes)
        oss << "mtx\t" << m.line << "\t" << esc(m.klass) << "\t"
            << esc(m.name) << "\n";
    for (const GlobalDecl &g : sum.globals)
        oss << "glb\t" << g.line << "\t" << esc(g.name) << "\n";
    for (const auto &[line, rules] : sum.annotations.allows)
        for (const std::string &rule : rules)
            oss << "allow\t" << line << "\t" << esc(rule) << "\n";
    for (const auto &[line, name] : sum.annotations.mutexNames)
        oss << "mtxann\t" << line << "\t" << esc(name) << "\n";
    for (const std::string &ident : sum.usedIdentifiers)
        oss << "use\t" << esc(ident) << "\n";
    for (const Diagnostic &d : sum.fileDiags)
        oss << "diag\t" << d.line << "\t" << esc(d.rule) << "\t"
            << esc(d.file) << "\t" << esc(d.symbol) << "\t"
            << esc(d.message) << "\n";
    for (const FunctionInfo &fn : sum.functions) {
        oss << "fn\t" << fn.line << "\t" << (fn.isLambda ? 1 : 0)
            << (fn.isDeclOnly ? 1 : 0) << (fn.returnsStatus ? 1 : 0)
            << (fn.internal ? 1 : 0) << (fn.special ? 1 : 0) << "\t"
            << fn.enclosing << "\t" << esc(fn.name) << "\t"
            << esc(fn.qualName) << "\t" << esc(fn.passedTo) << "\n";
        for (const std::string &p : fn.params)
            oss << "p\t" << esc(p) << "\n";
        for (const std::string &p : fn.floatLocals)
            oss << "fl\t" << esc(p) << "\n";
        for (const CallSite &c : fn.calls)
            oss << "c\t" << c.line << "\t" << esc(c.name) << "\n";
        for (const AllocSite &a : fn.allocs)
            oss << "a\t" << a.line << "\t" << esc(a.what) << "\n";
        for (const LockSite &l : fn.locks)
            oss << "lk\t" << l.line << "\t" << esc(l.mutexName) << "\n";
        for (const FpWrite &w : fn.fpWrites)
            oss << "fw\t" << w.line << "\t" << esc(w.var) << "\n";
        for (const WriteSite &w : fn.writes)
            oss << "w\t" << w.line << "\t" << esc(w.var) << "\n";
        for (const CallSite &d : fn.discards)
            oss << "d\t" << d.line << "\t" << esc(d.name) << "\n";
    }
    return oss.str();
}

bool
deserializeSummary(const std::string &data, FileSummary &out)
{
    std::istringstream iss(data);
    std::string line;
    if (!std::getline(iss, line) || line != kMagic)
        return false;

    FileSummary sum;
    FunctionInfo *fn = nullptr;
    while (std::getline(iss, line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> f = fields(line);
        const std::string &tag = f[0];
        if (tag == "sha" && f.size() == 2) {
            sum.sha = unesc(f[1]);
        } else if (tag == "path" && f.size() == 2) {
            sum.path = unesc(f[1]);
        } else if (tag == "inc" && f.size() == 4) {
            sum.includes.push_back(IncludeDirective{
                unesc(f[3]), f[2] == "1", toInt(f[1])});
        } else if (tag == "mtx" && f.size() == 4) {
            sum.mutexes.push_back(
                MutexDecl{unesc(f[3]), unesc(f[2]), toInt(f[1])});
        } else if (tag == "glb" && f.size() == 3) {
            sum.globals.push_back(GlobalDecl{unesc(f[2]), toInt(f[1])});
        } else if (tag == "allow" && f.size() == 3) {
            sum.annotations.allows[toInt(f[1])].insert(unesc(f[2]));
        } else if (tag == "mtxann" && f.size() == 3) {
            sum.annotations.mutexNames[toInt(f[1])] = unesc(f[2]);
        } else if (tag == "use" && f.size() == 2) {
            sum.usedIdentifiers.push_back(unesc(f[1]));
        } else if (tag == "diag" && f.size() == 6) {
            sum.fileDiags.push_back(Diagnostic{unesc(f[3]), toInt(f[1]),
                                               unesc(f[2]), unesc(f[5]),
                                               unesc(f[4])});
        } else if (tag == "fn" && f.size() == 7) {
            FunctionInfo fi;
            fi.line = toInt(f[1]);
            const std::string &flags = f[2];
            if (flags.size() != 5)
                return false;
            fi.isLambda = flags[0] == '1';
            fi.isDeclOnly = flags[1] == '1';
            fi.returnsStatus = flags[2] == '1';
            fi.internal = flags[3] == '1';
            fi.special = flags[4] == '1';
            fi.enclosing = toInt(f[3]);
            fi.name = unesc(f[4]);
            fi.qualName = unesc(f[5]);
            fi.passedTo = unesc(f[6]);
            sum.functions.push_back(std::move(fi));
            fn = &sum.functions.back();
        } else if (tag == "p" && fn && f.size() == 2) {
            fn->params.push_back(unesc(f[1]));
        } else if (tag == "fl" && fn && f.size() == 2) {
            fn->floatLocals.push_back(unesc(f[1]));
        } else if (tag == "c" && fn && f.size() == 3) {
            fn->calls.push_back(CallSite{unesc(f[2]), toInt(f[1])});
        } else if (tag == "a" && fn && f.size() == 3) {
            fn->allocs.push_back(AllocSite{unesc(f[2]), toInt(f[1])});
        } else if (tag == "lk" && fn && f.size() == 3) {
            fn->locks.push_back(LockSite{unesc(f[2]), toInt(f[1])});
        } else if (tag == "fw" && fn && f.size() == 3) {
            fn->fpWrites.push_back(FpWrite{unesc(f[2]), toInt(f[1])});
        } else if (tag == "w" && fn && f.size() == 3) {
            fn->writes.push_back(WriteSite{unesc(f[2]), toInt(f[1])});
        } else if (tag == "d" && fn && f.size() == 3) {
            fn->discards.push_back(CallSite{unesc(f[2]), toInt(f[1])});
        } else {
            return false; // unknown record: treat as stale format
        }
    }
    out = std::move(sum);
    return true;
}

bool
cacheLoad(const std::string &cacheDir, const std::string &relPath,
          const std::string &contentSha, FileSummary &out)
{
    const std::filesystem::path entry =
        std::filesystem::path(cacheDir) / (sha256Hex(relPath) + ".sum");
    std::ifstream in(entry, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    FileSummary sum;
    if (!deserializeSummary(oss.str(), sum))
        return false;
    if (sum.path != relPath || sum.sha != contentSha)
        return false;
    out = std::move(sum);
    return true;
}

void
cacheStore(const std::string &cacheDir, const FileSummary &sum)
{
    std::error_code ec;
    std::filesystem::create_directories(cacheDir, ec);
    if (ec)
        return; // best-effort: an unwritable cache only costs speed
    const std::filesystem::path entry =
        std::filesystem::path(cacheDir) / (sha256Hex(sum.path) + ".sum");
    std::ofstream outFile(entry, std::ios::binary | std::ios::trunc);
    if (!outFile)
        return;
    outFile << serializeSummary(sum);
}

} // namespace lrd::lint
