/**
 * @file
 * Include-graph rules: extract quoted includes, map files to modules,
 * check the declared layering for back-edges, and detect both
 * module-level and file-level include cycles (printing the offending
 * path).
 *
 * Declared layering (lower may never include higher):
 *
 *   0 util -> 1 obs -> 2 robust -> 3 parallel -> 4 tensor,linalg ->
 *   5 model,decomp -> 6 hw,quant -> 7 eval,dse,train,serve ->
 *   8 tools,tests,bench,examples
 *
 * Edges within one layer (model -> decomp, dse -> eval, ...) are
 * allowed as long as the module graph stays acyclic; a cycle whose
 * layers are monotonically non-increasing must be all-same-layer, so
 * the cycle check only needs to run on intra-layer edges.
 */

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lexer.h"
#include "lint.h"
#include "semantic.h"

namespace lrd::lint {

namespace {

/** (path, includes) view shared by both entry points. */
struct TuIncludes
{
    const std::string *path;
    const std::vector<IncludeDirective> *includes;
};

const std::map<std::string, int> kLayerOf = {
    {"util", 0},   {"obs", 1},    {"robust", 2},   {"parallel", 3},
    {"tensor", 4}, {"linalg", 4}, {"model", 5},    {"decomp", 5},
    {"hw", 6},     {"quant", 6},  {"eval", 7},     {"dse", 7},
    {"train", 7},  {"serve", 7},  {"tools", 8},    {"tests", 8},
    {"bench", 8},  {"examples", 8},
};

std::string
dirName(const std::string &path)
{
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/** Resolve a quoted include to a repo-relative path. */
std::string
resolveInclude(const std::string &includer, const std::string &target)
{
    const size_t slash = target.find('/');
    if (slash != std::string::npos) {
        // Module-qualified include ("model/config.h") resolves
        // against src/; other rooted paths are taken as written.
        const std::string first = target.substr(0, slash);
        if (kLayerOf.count(first) && first != "tools" && first != "tests" &&
            first != "bench" && first != "examples")
            return "src/" + target;
        return target;
    }
    const std::string dir = dirName(includer);
    return dir.empty() ? target : dir + "/" + target;
}

struct ModuleEdge
{
    std::string from, to;
    std::string exampleFile;
    std::string exampleTarget;
    int exampleLine = 0;
};

/**
 * DFS cycle finder over a module digraph; returns the first cycle as
 * a module path (closed: front == back), or empty when acyclic.
 */
std::vector<std::string>
findModuleCycle(const std::map<std::string, std::set<std::string>> &adj)
{
    std::map<std::string, int> state; // 0 new, 1 on stack, 2 done
    std::vector<std::string> stack, cycle;

    const std::function<bool(const std::string &)> dfs =
        [&](const std::string &m) {
            state[m] = 1;
            stack.push_back(m);
            const auto it = adj.find(m);
            if (it != adj.end()) {
                for (const std::string &n : it->second) {
                    if (state[n] == 1) {
                        const auto pos =
                            std::find(stack.begin(), stack.end(), n);
                        cycle.assign(pos, stack.end());
                        cycle.push_back(n);
                        return true;
                    }
                    if (state[n] == 0 && dfs(n))
                        return true;
                }
            }
            stack.pop_back();
            state[m] = 2;
            return false;
        };

    for (const auto &[m, _] : adj)
        if (state[m] == 0 && dfs(m))
            return cycle;
    return {};
}

} // namespace

std::string
moduleOf(const std::string &path)
{
    const size_t slash = path.find('/');
    if (slash == std::string::npos)
        return "";
    const std::string first = path.substr(0, slash);
    if (first == "src") {
        const size_t second = path.find('/', slash + 1);
        if (second == std::string::npos)
            return "";
        return path.substr(slash + 1, second - slash - 1);
    }
    if (kLayerOf.count(first))
        return first;
    return "";
}

int
moduleLayer(const std::string &module)
{
    const auto it = kLayerOf.find(module);
    return it == kLayerOf.end() ? -1 : it->second;
}

namespace {

std::vector<Diagnostic>
checkIncludeGraphImpl(const std::vector<TuIncludes> &files)
{
    std::vector<Diagnostic> out;

    // file -> resolved quoted-include targets (with lines).
    struct FileInclude
    {
        std::string target;
        int line;
    };
    std::map<std::string, std::vector<FileInclude>> fileIncludes;
    std::set<std::string> known;
    for (const TuIncludes &f : files)
        known.insert(*f.path);

    std::map<std::pair<std::string, std::string>, ModuleEdge> moduleEdges;

    for (const TuIncludes &f : files) {
        const std::string fromMod = moduleOf(*f.path);
        const int fromLayer = moduleLayer(fromMod);
        auto &incs = fileIncludes[*f.path];

        for (const IncludeDirective &inc : *f.includes) {
            if (!inc.quoted)
                continue; // system headers are outside the layering
            const std::string target = resolveInclude(*f.path, inc.target);
            incs.push_back({target, inc.line});

            const std::string toMod = moduleOf(target);
            const int toLayer = moduleLayer(toMod);
            if (fromLayer < 0 || toLayer < 0 || fromMod == toMod)
                continue;

            if (toLayer > fromLayer) {
                std::ostringstream oss;
                oss << "layering back-edge: module '" << fromMod
                    << "' (layer " << fromLayer << ") must not include '"
                    << toMod << "' (layer " << toLayer << "); "
                    << *f.path << " includes \"" << inc.target << "\"";
                out.push_back(Diagnostic{*f.path, inc.line, kRuleLayering,
                                         oss.str(), ""});
            } else if (toLayer == fromLayer) {
                // Candidate intra-layer edge for the cycle check.
                const auto key = std::make_pair(fromMod, toMod);
                if (!moduleEdges.count(key))
                    moduleEdges[key] = ModuleEdge{fromMod, toMod, *f.path,
                                                  inc.target, inc.line};
            }
        }
    }

    // Module-level cycles among intra-layer edges.
    std::map<std::string, std::set<std::string>> adj;
    for (const auto &[key, e] : moduleEdges)
        adj[e.from].insert(e.to);
    const std::vector<std::string> cycle = findModuleCycle(adj);
    if (!cycle.empty()) {
        std::ostringstream oss;
        oss << "module dependency cycle: ";
        for (size_t i = 0; i < cycle.size(); ++i)
            oss << (i ? " -> " : "") << cycle[i];
        const ModuleEdge &e = moduleEdges.at({cycle[0], cycle[1]});
        oss << " (e.g. " << e.exampleFile << " includes \"" << e.exampleTarget
            << "\")";
        out.push_back(Diagnostic{e.exampleFile, e.exampleLine, kRuleCycle,
                                 oss.str(), ""});
    }

    // File-level include cycles (only over files we were given).
    std::map<std::string, int> state;
    std::vector<std::string> stack;
    std::vector<std::string> fileCycle;
    int cycleLine = 0;

    const std::function<bool(const std::string &)> dfs =
        [&](const std::string &f) {
            state[f] = 1;
            stack.push_back(f);
            for (const FileInclude &inc : fileIncludes[f]) {
                if (!known.count(inc.target))
                    continue;
                if (state[inc.target] == 1) {
                    const auto pos = std::find(stack.begin(), stack.end(),
                                               inc.target);
                    fileCycle.assign(pos, stack.end());
                    fileCycle.push_back(inc.target);
                    cycleLine = inc.line;
                    return true;
                }
                if (state[inc.target] == 0 && dfs(inc.target))
                    return true;
            }
            stack.pop_back();
            state[f] = 2;
            return false;
        };

    for (const TuIncludes &f : files) {
        if (state[*f.path] == 0 && dfs(*f.path) && !fileCycle.empty()) {
            std::ostringstream oss;
            oss << "include cycle: ";
            for (size_t i = 0; i < fileCycle.size(); ++i)
                oss << (i ? " -> " : "") << fileCycle[i];
            out.push_back(Diagnostic{fileCycle.back(), cycleLine, kRuleCycle,
                                     oss.str(), ""});
            break; // one cycle report is enough to act on
        }
    }

    return out;
}

} // namespace

std::vector<Diagnostic>
checkIncludeGraph(const std::vector<SourceFile> &files)
{
    // Lex just for the include lists; the cached path goes through
    // the FileSummary overload instead.
    std::vector<std::vector<IncludeDirective>> storage;
    storage.reserve(files.size());
    for (const SourceFile &f : files)
        storage.push_back(lex(f.content).includes);
    std::vector<TuIncludes> tus;
    tus.reserve(files.size());
    for (size_t i = 0; i < files.size(); ++i)
        tus.push_back(TuIncludes{&files[i].path, &storage[i]});
    return checkIncludeGraphImpl(tus);
}

std::vector<Diagnostic>
checkIncludeGraph(const std::vector<FileSummary> &sums)
{
    std::vector<TuIncludes> tus;
    tus.reserve(sums.size());
    for (const FileSummary &s : sums)
        tus.push_back(TuIncludes{&s.path, &s.includes});
    return checkIncludeGraphImpl(tus);
}

} // namespace lrd::lint
