#include "annotations.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace lrd::lint {

Annotations
parseAnnotations(const std::vector<Comment> &comments)
{
    Annotations ann;
    for (const Comment &com : comments) {
        const size_t tag = com.text.find("lrd-lint:");
        if (tag == std::string::npos)
            continue;
        size_t pos = tag + 9;
        while (pos < com.text.size()
               && std::isspace(static_cast<unsigned char>(com.text[pos])))
            ++pos;
        const size_t open = com.text.find('(', pos);
        if (open == std::string::npos)
            continue;
        const std::string verb = com.text.substr(pos, open - pos);
        const size_t close = com.text.find(')', open);
        if (close == std::string::npos)
            continue;
        std::string args = com.text.substr(open + 1, close - open - 1);
        if (verb == "mutex") {
            args.erase(std::remove_if(args.begin(), args.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       args.end());
            ann.mutexNames[com.line] = args;
        } else if (verb == "allow") {
            std::istringstream iss(args);
            std::string rule;
            while (std::getline(iss, rule, ',')) {
                rule.erase(std::remove_if(rule.begin(), rule.end(),
                                          [](unsigned char c) {
                                              return std::isspace(c);
                                          }),
                           rule.end());
                if (!rule.empty())
                    ann.allows[com.line].insert(rule);
            }
        }
    }
    return ann;
}

bool
isSuppressed(const Annotations &ann, int line, const std::string &rule)
{
    for (int l : {line, line - 1}) {
        const auto it = ann.allows.find(l);
        if (it != ann.allows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

} // namespace lrd::lint
