#include "output.h"

#include <cstdio>
#include <sstream>

namespace lrd::lint {

namespace {

/** Every rule id with a one-line description, for the SARIF tool
 *  metadata. Kept in one fixed order so output stays stable. */
struct RuleDoc
{
    const char *id;
    const char *text;
};

const RuleDoc kRuleDocs[] = {
    {kRuleBannedRandom, "Ad-hoc randomness outside src/util/rng"},
    {kRuleWallClock, "Wall-clock read that breaks reproducibility"},
    {kRuleUnordered, "Unordered container in the numeric core"},
    {kRuleThread, "Raw threading outside src/parallel"},
    {kRuleNonconstGlobal, "Unsynchronized mutable global"},
    {kRuleHeaderGuard, "Missing include guard"},
    {kRuleUsingNamespace, "using namespace at namespace scope in a header"},
    {kRuleLayering, "Include layering back-edge"},
    {kRuleCycle, "Include cycle"},
    {kRuleNakedThrow, "throw outside src/util"},
    {kRuleBlockingSleep, "Blocking sleep outside watchdog/tools"},
    {kRuleIntrinsics, "SIMD intrinsics outside src/tensor/simd"},
    {kRuleHotPathAlloc, "Allocation reachable from a hot path"},
    {kRuleLockDiscipline, "Mutex annotation or lock-order violation"},
    {kRuleUncheckedResult, "Discarded Status/Result return value"},
    {kRuleFpOrder,
     "Unordered floating-point reduction in a parallel chunk body"},
    {kRuleDeadSymbol, "Public function with no in-tree caller"},
};

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
toSarif(const std::vector<Diagnostic> &diags)
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"lrd-lint\",\n"
        << "          \"version\": \"2.0.0\",\n"
        << "          \"rules\": [\n";
    const size_t nRules = sizeof kRuleDocs / sizeof kRuleDocs[0];
    for (size_t i = 0; i < nRules; ++i) {
        oss << "            {\"id\": \"" << kRuleDocs[i].id
            << "\", \"shortDescription\": {\"text\": \""
            << kRuleDocs[i].text << "\"}}"
            << (i + 1 < nRules ? "," : "") << "\n";
    }
    oss << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        oss << "        {\n"
            << "          \"ruleId\": \"" << jsonEscape(d.rule)
            << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(d.message) << "\"},\n"
            << "          \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(d.file)
            << "\"}, \"region\": {\"startLine\": "
            << (d.line > 0 ? d.line : 1) << "}}}]";
        if (!d.symbol.empty())
            oss << ",\n          \"partialFingerprints\": "
                   "{\"symbol\": \""
                << jsonEscape(d.symbol) << "\"}";
        oss << "\n        }" << (i + 1 < diags.size() ? "," : "")
            << "\n";
    }
    oss << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return oss.str();
}

std::string
toJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream oss;
    oss << "{\n  \"diagnostics\": [\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        oss << "    {\"file\": \"" << jsonEscape(d.file)
            << "\", \"line\": " << d.line << ", \"rule\": \""
            << jsonEscape(d.rule) << "\", \"symbol\": \""
            << jsonEscape(d.symbol) << "\", \"message\": \""
            << jsonEscape(d.message) << "\"}"
            << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    oss << "  ],\n  \"count\": " << diags.size() << "\n}\n";
    return oss.str();
}

} // namespace lrd::lint
