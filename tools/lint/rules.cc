/**
 * @file
 * Per-file token rules: banned randomness, wall-clock use, unordered
 * containers in the numeric core, raw threading outside the pool,
 * unsynchronized mutable globals, and header hygiene.
 */

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "annotations.h"
#include "lexer.h"
#include "lint.h"

namespace lrd::lint {

namespace {

/** Modules where unordered-container iteration order could leak
 *  into numeric results (reductions, factor updates, batch order). */
const std::set<std::string> kNumericCore = {"linalg", "tensor", "decomp",
                                            "train"};

const std::set<std::string> kBannedRandom = {
    "rand",          "srand",       "rand_r",        "drand48",
    "lrand48",       "mrand48",     "random_device", "mt19937",
    "mt19937_64",    "minstd_rand", "minstd_rand0",  "default_random_engine",
    "knuth_b",       "ranlux24",    "ranlux48",
};

const std::set<std::string> kWallClock = {
    "system_clock", "gettimeofday", "localtime", "gmtime",
    "ctime",        "strftime",     "timespec_get",
};

const std::set<std::string> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

const std::set<std::string> kBlockingSleep = {
    "sleep_for", "sleep_until", "usleep", "nanosleep",
};

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    const size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = path.substr(dot);
    return ext == ".h" || ext == ".hh" || ext == ".hpp";
}

/** Collector that applies suppressions at emission time. */
struct Sink
{
    const SourceFile &file;
    const Annotations &ann;
    std::vector<Diagnostic> &out;

    void emit(int line, const char *rule, std::string message)
    {
        if (isSuppressed(ann, line, rule))
            return;
        out.push_back(
            Diagnostic{file.path, line, rule, std::move(message), ""});
    }
};

/** True when tokens[i] is an identifier preceded by `std ::`. */
bool
stdQualified(const std::vector<Token> &toks, size_t i)
{
    return i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
}

void
checkBannedIdentifiers(const SourceFile &file, const std::vector<Token> &toks,
                       Sink &sink)
{
    const bool rngHome = startsWith(file.path, "src/util/rng.");
    const bool threadHome = startsWith(file.path, "src/parallel/") ||
                            startsWith(file.path, "src/util/worker_lane.");
    const bool throwHome =
        !startsWith(file.path, "src/") || startsWith(file.path, "src/util/");
    // The watchdog monitor (src/robust/) and operator tooling may
    // block on a timeout; pipeline and numeric code must never sleep.
    const bool sleepHome = startsWith(file.path, "src/robust/") ||
                           startsWith(file.path, "tools/");
    const std::string mod = moduleOf(file.path);
    const bool numericCore =
        startsWith(file.path, "src/") && kNumericCore.count(mod) > 0;

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;

        if (!rngHome && kBannedRandom.count(t.text)) {
            sink.emit(t.line, kRuleBannedRandom,
                      "'" + t.text +
                          "' breaks run-to-run determinism; use "
                          "lrd::Rng (src/util/rng.h) with a fixed seed");
        }
        if (kWallClock.count(t.text)) {
            sink.emit(t.line, kRuleWallClock,
                      "'" + t.text +
                          "' reads the wall clock; results seeded or "
                          "keyed on it are not reproducible (use "
                          "steady_clock for intervals, lrd::Rng for seeds)");
        }
        if ((t.text == "time" || t.text == "clock") && i + 1 < toks.size() &&
            toks[i + 1].text == "(" &&
            (i == 0 || toks[i - 1].text != ".") &&
            (i == 0 || toks[i - 1].text != "->")) {
            sink.emit(t.line, kRuleWallClock,
                      "'" + t.text +
                          "()' is a wall-clock read; never seed or key "
                          "deterministic state on it");
        }
        if (!throwHome && t.text == "throw") {
            sink.emit(t.line, kRuleNakedThrow,
                      "'throw' outside src/util: report failures as "
                      "lrd::Status / lrd::Result (util/status.h) or "
                      "call fatal()/panic() (util/logging.h)");
        }
        if (numericCore && kUnordered.count(t.text)) {
            sink.emit(t.line, kRuleUnordered,
                      "'std::" + t.text + "' in numeric-core module '" + mod +
                          "': iteration order is unspecified and would "
                          "make reductions thread-count- and "
                          "seed-dependent; use std::map or a sorted vector");
        }
        if (!sleepHome && kBlockingSleep.count(t.text)) {
            sink.emit(t.line, kRuleBlockingSleep,
                      "'" + t.text +
                          "' blocks a pool lane and stretches wall-clock "
                          "deadlines nondeterministically; sleeps belong "
                          "in src/robust/ (watchdog) or tools/ only");
        }
        if (!threadHome) {
            const bool stdThread =
                (t.text == "thread" || t.text == "jthread" ||
                 t.text == "async") &&
                stdQualified(toks, i);
            const bool rawPthread = startsWith(t.text, "pthread_");
            if (stdThread || rawPthread) {
                sink.emit(t.line, kRuleThread,
                          "raw threading ('" + t.text +
                              "') outside src/parallel/: use "
                              "lrd::ThreadPool so work keeps its "
                              "deterministic lane structure");
            }
        }
    }
}

/** Intrinsics headers that only src/tensor/simd/ may include. */
const std::set<std::string> kIntrinsicsHeaders = {
    "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
    "smmintrin.h", "avxintrin.h", "avx2intrin.h", "avx512fintrin.h",
    "arm_neon.h",  "arm_sve.h",
};

/** True for identifiers that belong to the x86/NEON intrinsics
 *  surface: _mm and __m128/__m256/__m512 prefixed names, NEON vector
 *  types (float32x4_t, ...) and vector lane ops (vld1q_f32,
 *  vfmaq_f32). */
bool
isIntrinsicIdentifier(const std::string &s)
{
    if (startsWith(s, "_mm") || startsWith(s, "__m128") ||
        startsWith(s, "__m256") || startsWith(s, "__m512"))
        return true;
    // NEON vector types: <elem><bits>x<lanes>_t.
    if (s.size() > 2 && s.find("x") != std::string::npos &&
        s.rfind("_t") == s.size() - 2 &&
        (startsWith(s, "float32x") || startsWith(s, "float64x") ||
         startsWith(s, "int8x") || startsWith(s, "int16x") ||
         startsWith(s, "int32x") || startsWith(s, "int64x") ||
         startsWith(s, "uint8x") || startsWith(s, "uint16x") ||
         startsWith(s, "uint32x") || startsWith(s, "uint64x")))
        return true;
    // NEON lane ops: v<op>q_<type> / v<op>_<type> (vld1q_f32,
    // vdupq_n_f32, vaddq_f32, ...). Require the type suffix so plain
    // identifiers like 'value' or 'visit' never match.
    if (s.size() > 4 && s[0] == 'v') {
        for (const char *suffix :
             {"_f32", "_f64", "_s8", "_s16", "_s32", "_s64", "_u8",
              "_u16", "_u32", "_u64"}) {
            const std::string suf(suffix);
            if (s.size() > suf.size() &&
                s.rfind(suf) == s.size() - suf.size())
                return true;
        }
    }
    return false;
}

/**
 * Confine raw SIMD to the microkernel layer: only src/tensor/simd/
 * may include intrinsics headers or spell intrinsic identifiers.
 * Everything else goes through the dispatched gemm entry points, so
 * a new ISA level lands in exactly one directory and the scalar
 * fallback can never silently diverge.
 */
void
checkIntrinsicsConfinement(const SourceFile &file, const LexedFile &lexed,
                           Sink &sink)
{
    if (startsWith(file.path, "src/tensor/simd/"))
        return;
    for (const IncludeDirective &inc : lexed.includes) {
        if (kIntrinsicsHeaders.count(inc.target)) {
            sink.emit(inc.line, kRuleIntrinsics,
                      "intrinsics header <" + inc.target +
                          "> outside src/tensor/simd/: SIMD kernels "
                          "live behind the dispatch table "
                          "(tensor/simd/simd.h) so every caller gets "
                          "the runtime-selected level and the scalar "
                          "fallback stays reachable");
        }
    }
    for (const Token &t : lexed.tokens) {
        if (t.kind == TokKind::Identifier && isIntrinsicIdentifier(t.text)) {
            sink.emit(t.line, kRuleIntrinsics,
                      "intrinsic '" + t.text +
                          "' outside src/tensor/simd/: call the "
                          "dispatched gemm/pack entry points instead "
                          "of open-coding SIMD");
        }
    }
}

/** Kind of scope a `{` opens, for namespace-scope tracking. */
enum class BraceKind { Namespace, Type, Init, Other };

/** Tokens considered "safe" markers for a namespace-scope variable. */
const std::set<std::string> kSafeGlobalMarkers = {
    "const",       "constexpr",     "constinit",
    "atomic",      "atomic_flag",   "atomic_int",
    "mutex",       "shared_mutex",  "recursive_mutex",
    "once_flag",   "condition_variable",
    "thread_local",
};

/** Statement starters that are never variable definitions. */
const std::set<std::string> kNonVariableStarters = {
    "using",  "typedef", "friend", "static_assert", "template",
    "extern", "class",   "struct", "union",         "enum",
    "namespace",
};

/**
 * Walk the token stream tracking namespace scope and classify every
 * namespace-scope statement; emit nonconst-global for mutable
 * variables lacking a safe marker or mutex annotation, and
 * using-namespace-header for headers.
 */
void
checkNamespaceScope(const SourceFile &file, const std::vector<Token> &toks,
                    const Annotations &ann, Sink &sink)
{
    const bool header = isHeaderPath(file.path);
    std::vector<BraceKind> stack;
    std::vector<Token> stmt;

    const auto atNamespaceScope = [&] {
        for (BraceKind k : stack)
            if (k != BraceKind::Namespace)
                return false;
        return true;
    };

    const auto classifyBrace = [&](const std::vector<Token> &window) {
        int parens = 0;
        bool sawParen = false, sawEq = false, sawType = false,
             sawNamespace = false;
        for (const Token &t : window) {
            if (t.text == "(") {
                ++parens;
                sawParen = true;
            } else if (t.text == ")") {
                --parens;
            } else if (parens > 0) {
                continue;
            } else if (t.text == "=") {
                sawEq = true;
            } else if (t.text == "namespace") {
                sawNamespace = true;
            } else if (t.text == "class" || t.text == "struct" ||
                       t.text == "union" || t.text == "enum") {
                sawType = true;
            }
        }
        if (sawNamespace)
            return BraceKind::Namespace;
        // Inside an unbalanced '(' the brace is a default argument
        // or initializer expression, part of the statement.
        if (sawEq || parens > 0)
            return BraceKind::Init;
        if (sawType && !sawParen)
            return BraceKind::Type;
        return BraceKind::Other;
    };

    const auto flushStatement = [&] {
        if (stmt.empty())
            return;
        const int line = stmt.front().line;

        if (header && stmt.size() >= 2 && stmt[0].text == "using" &&
            stmt[1].text == "namespace") {
            sink.emit(line, kRuleUsingNamespace,
                      "'using namespace' at namespace scope in a header "
                      "leaks into every includer; qualify names instead");
        }
        if (kNonVariableStarters.count(stmt.front().text)) {
            stmt.clear();
            return;
        }
        // Function declaration/definition: '(' before any '='.
        size_t eqPos = stmt.size(), parenPos = stmt.size();
        int angles = 0;
        for (size_t i = 0; i < stmt.size(); ++i) {
            const std::string &s = stmt[i].text;
            if (s == "<")
                ++angles;
            else if (s == ">")
                angles = std::max(0, angles - 1);
            else if (angles > 0)
                continue;
            else if (s == "=" && eqPos == stmt.size())
                eqPos = i;
            else if (s == "(" && parenPos == stmt.size())
                parenPos = i;
            else if (s == "operator") {
                stmt.clear();
                return;
            }
        }
        if (parenPos < eqPos) { // function-ish, not a variable
            stmt.clear();
            return;
        }
        bool safe = false;
        for (const Token &t : stmt)
            if (kSafeGlobalMarkers.count(t.text)) {
                safe = true;
                break;
            }
        if (!safe && ann.mutexAnnotated(line))
            safe = true;
        if (!safe) {
            std::string name;
            for (size_t i = 0; i < std::min(eqPos, stmt.size()); ++i)
                if (stmt[i].kind == TokKind::Identifier)
                    name = stmt[i].text;
            sink.emit(line, kRuleNonconstGlobal,
                      "mutable namespace-scope variable" +
                          (name.empty() ? std::string()
                                        : " '" + name + "'") +
                          " without std::atomic, const, or a "
                          "'// lrd-lint: mutex(<name>)' annotation "
                          "is a data-race and determinism hazard");
        }
        stmt.clear();
    };

    size_t i = 0;
    std::vector<Token> window; // tokens since last statement boundary
    while (i < toks.size()) {
        const Token &t = toks[i];
        if (t.text == "{") {
            const BraceKind kind = classifyBrace(window);
            window.clear();
            if (kind == BraceKind::Namespace) {
                flushStatement();
                stmt.clear();
                stack.push_back(kind);
                ++i;
                continue;
            }
            // Balanced skip: the contents are not namespace scope.
            if (atNamespaceScope()) {
                stmt.push_back(t);
                int depth = 1;
                ++i;
                while (i < toks.size() && depth > 0) {
                    if (toks[i].text == "{")
                        ++depth;
                    else if (toks[i].text == "}")
                        --depth;
                    if (depth > 0)
                        stmt.push_back(toks[i]);
                    ++i;
                }
                // A type or function body may end without ';'
                // (e.g. `void f() { ... }`); classify eagerly.
                if (kind != BraceKind::Init)
                    stmt.clear();
                continue;
            }
            stack.push_back(kind);
            ++i;
            continue;
        }
        if (t.text == "}") {
            flushStatement();
            window.clear();
            if (!stack.empty())
                stack.pop_back();
            ++i;
            continue;
        }
        if (atNamespaceScope()) {
            if (t.text == ";") {
                flushStatement();
                window.clear();
            } else {
                stmt.push_back(t);
                window.push_back(t);
            }
        }
        ++i;
    }
    flushStatement();
}

void
checkHeaderGuard(const SourceFile &file, const LexedFile &lexed, Sink &sink)
{
    if (!isHeaderPath(file.path))
        return;
    for (const Directive &d : lexed.directives)
        if (d.name == "pragma" && d.arg == "once")
            return;
    const auto &dirs = lexed.directives;
    if (dirs.size() >= 2 && dirs[0].name == "ifndef" &&
        dirs[1].name == "define" && dirs[0].arg == dirs[1].arg)
        return;
    sink.emit(1, kRuleHeaderGuard,
              "header lacks '#pragma once' or a leading "
              "#ifndef/#define include guard");
}

} // namespace

std::vector<Diagnostic>
lintFile(const SourceFile &file)
{
    std::vector<Diagnostic> out;
    const LexedFile lexed = lex(file.content);
    const Annotations ann = parseAnnotations(lexed.comments);
    Sink sink{file, ann, out};

    checkBannedIdentifiers(file, lexed.tokens, sink);
    checkIntrinsicsConfinement(file, lexed, sink);
    checkNamespaceScope(file, lexed.tokens, ann, sink);
    checkHeaderGuard(file, lexed, sink);
    return out;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream oss;
    oss << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
    return oss.str();
}

std::string
formatFixList(const Diagnostic &d)
{
    std::ostringstream oss;
    oss << d.file << "\t" << d.line << "\t" << d.rule << "\t" << d.message;
    return oss.str();
}

} // namespace lrd::lint
