#include "baseline.h"

#include <algorithm>
#include <sstream>

namespace lrd::lint {

std::string
baselineKey(const Diagnostic &d)
{
    return d.rule + "\t" + d.file + "\t" + d.symbol;
}

Baseline
parseBaseline(const std::string &content)
{
    Baseline out;
    std::istringstream iss(content);
    std::string line;
    while (std::getline(iss, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        // Key = first three tab-separated columns.
        size_t tabs = 0, end = line.size();
        for (size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '\t' && ++tabs == 3) {
                end = i;
                break;
            }
        }
        if (tabs < 2)
            continue; // malformed: fewer than three columns
        out.keys.insert(line.substr(0, end));
    }
    return out;
}

std::vector<Diagnostic>
applyBaseline(const std::vector<Diagnostic> &diags,
              const Baseline &baseline, size_t *suppressed)
{
    std::vector<Diagnostic> live;
    size_t hits = 0;
    for (const Diagnostic &d : diags) {
        if (baseline.keys.count(baselineKey(d)))
            ++hits;
        else
            live.push_back(d);
    }
    if (suppressed)
        *suppressed = hits;
    return live;
}

std::string
renderBaseline(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> lines;
    lines.reserve(diags.size());
    for (const Diagnostic &d : diags)
        lines.push_back(baselineKey(d) + "\tTODO: justify or fix");
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

    std::ostringstream oss;
    oss << "# lrd-lint baseline: grandfathered findings.\n"
        << "# Format: rule<TAB>file<TAB>symbol<TAB>justification.\n"
        << "# Every entry needs a justification; fix-and-remove is\n"
        << "# always preferred over adding entries.\n";
    for (const std::string &l : lines)
        oss << l << "\n";
    return oss.str();
}

} // namespace lrd::lint
