/**
 * @file
 * Machine-readable report writers: SARIF 2.1.0 (for GitHub code
 * scanning) and a plain JSON array. Both are deterministic: the same
 * diagnostics produce byte-identical output, which is what the
 * incremental-cache test asserts (cold run == warm run).
 */

#ifndef LRD_TOOLS_LINT_OUTPUT_H
#define LRD_TOOLS_LINT_OUTPUT_H

#include <string>
#include <vector>

#include "lint.h"

namespace lrd::lint {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** SARIF 2.1.0 log with one run; results in input order. */
std::string toSarif(const std::vector<Diagnostic> &diags);

/** {"diagnostics": [...], "count": N} in input order. */
std::string toJson(const std::vector<Diagnostic> &diags);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_OUTPUT_H
