/**
 * @file
 * Whole-repo call graph over FileSummary records.
 *
 * RepoGraph links every parsed translation unit into one index:
 * name-based call resolution, the hot-path reachability set (seeded
 * from SIMD microkernels, fusedFactorizedForward and thread-pool
 * chunk bodies, then propagated through calls and through callback
 * conduits), mutex identity and lock-ordering edges, and the
 * repo-wide identifier liveness set.
 *
 * Resolution is name matching, not overload resolution: a call
 * resolves to every in-tree definition that the written name could
 * denote (same-file restriction for internal-linkage functions,
 * suffix matching for qualified names). Rules that need certainty
 * (unchecked-result) only fire when every candidate agrees.
 */

#ifndef LRD_TOOLS_LINT_CALLGRAPH_H
#define LRD_TOOLS_LINT_CALLGRAPH_H

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "parser.h"

namespace lrd::lint {

/** Index of one function: (file index, function index). */
struct FunctionRef
{
    int file = -1;
    int fn = -1;

    bool valid() const { return file >= 0 && fn >= 0; }
    bool
    operator<(const FunctionRef &o) const
    {
        return file != o.file ? file < o.file : fn < o.fn;
    }
    bool
    operator==(const FunctionRef &o) const
    {
        return file == o.file && fn == o.fn;
    }
};

/** Why a function is on the hot path (one hop of the proof). */
struct HotMark
{
    /** Caller that made this function hot; invalid for roots. */
    FunctionRef parent;
    /** Human-readable hop: root reason or "called from ... at f:l". */
    std::string via;
};

/** One directed lock-order edge with its witness. */
struct LockEdge
{
    std::string from;
    std::string to;
    /** "qualName (file:line)" of the acquisition establishing it. */
    std::string witness;
    /** Location of the first acquisition (diagnostic anchor). */
    std::string file;
    int line = 0;
};

class RepoGraph
{
  public:
    explicit RepoGraph(const std::vector<FileSummary> &files);

    const std::vector<FileSummary> &files() const { return files_; }
    const FileSummary &
    file(const FunctionRef &r) const
    {
        return files_[static_cast<size_t>(r.file)];
    }
    const FunctionInfo &
    fn(const FunctionRef &r) const
    {
        return file(r).functions[static_cast<size_t>(r.fn)];
    }

    /**
     * Definitions a call written as `callee` ("f", "A::f", ".f")
     * from `callerFile` may reach. Empty for out-of-tree names.
     */
    std::vector<FunctionRef> resolve(int callerFile,
                                     const std::string &callee) const;

    /** Like resolve(), but including body-less prototypes. */
    std::vector<FunctionRef>
    resolveAny(int callerFile, const std::string &callee) const;

    /** Hot-path set with per-function provenance. */
    const std::map<FunctionRef, HotMark> &hotSet() const
    {
        return hot_;
    }
    bool isHot(const FunctionRef &r) const { return hot_.count(r) > 0; }

    /**
     * The reachability proof for a hot function, root first:
     * "qualName (file:line)" per hop joined with " -> ".
     */
    std::string hotPath(const FunctionRef &r) const;

    /**
     * Canonical identity of the mutex named `siteName` as seen from
     * `fileIdx` ("ThreadPool::mu_", "src/obs/trace.cc::State::mu");
     * empty when the name matches no unique in-tree declaration.
     */
    std::string mutexKey(int fileIdx, const std::string &siteName) const;

    /** Keys of every mutex acquired anywhere in the tree. */
    const std::set<std::string> &acquiredKeys() const
    {
        return acquired_;
    }

    /** Mutexes a call into `r` may acquire (transitive closure). */
    const std::set<std::string> &
    transitiveLocks(const FunctionRef &r) const;

    /** All lock-order edges (deterministic order). */
    const std::vector<LockEdge> &lockEdges() const { return edges_; }

    /**
     * One lock-order cycle if any exists: the edge sequence forming
     * it. Empty when the acquisition order is acyclic.
     */
    std::vector<LockEdge> findLockCycle() const;

    /** Identifiers referenced anywhere outside their declaration. */
    const std::set<std::string> &liveNames() const { return live_; }

    /** "file:line" for a function (diagnostic convenience). */
    std::string where(const FunctionRef &r) const;

  private:
    void buildIndex();
    void seedHotRoots();
    void propagateHot();
    void buildLocks();

    const std::vector<FileSummary> &files_;
    /** name -> definitions (bodies only, no lambdas). */
    std::map<std::string, std::vector<FunctionRef>> defsByName_;
    /** name -> definitions and prototypes (no lambdas). */
    std::map<std::string, std::vector<FunctionRef>> allByName_;
    std::map<FunctionRef, HotMark> hot_;
    /** Names of functions whose callback parameters run hot. */
    std::set<std::string> conduits_;
    std::set<std::string> acquired_;
    std::map<FunctionRef, std::set<std::string>> transLocks_;
    std::vector<LockEdge> edges_;
    std::set<std::string> live_;
};

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_CALLGRAPH_H
