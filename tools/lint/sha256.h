/**
 * @file
 * Minimal SHA-256 for the lint cache's content-addressed keys.
 *
 * The incremental cache (cache.h) keys per-file parse results by the
 * hash of the file's bytes, so a cache hit proves the cached summary
 * was produced from identical content. FNV would be cheaper but a
 * 64-bit fingerprint colliding across a long-lived cache directory is
 * a silent wrong-answer; SHA-256 makes the key collision-free for all
 * practical purposes and doubles as the first concrete instance of
 * the ROADMAP's content-addressed-cache direction.
 */

#ifndef LRD_TOOLS_LINT_SHA256_H
#define LRD_TOOLS_LINT_SHA256_H

#include <string>

namespace lrd::lint {

/** Lowercase-hex SHA-256 digest of `data`. */
std::string sha256Hex(const std::string &data);

} // namespace lrd::lint

#endif // LRD_TOOLS_LINT_SHA256_H
