/**
 * @file
 * lrdtool — command-line front-end to the lrd library.
 *
 * Subcommands (analytic ones need no training; eval ones load or
 * train the cached stand-in model):
 *
 *   lrdtool info <preset>                 model shape + param counts
 *   lrdtool designspace <preset>          Theorem 3.2 scale
 *   lrdtool schedule <preset> <percent>   Table-4-style layer schedule
 *   lrdtool profile <preset> [percent]    A100 latency/energy/memory
 *   lrdtool breakeven <H> <W>             largest compressing rank
 *   lrdtool eval [percent]                benchmark the tiny stand-in
 *   lrdtool stats [percent]               decompose + eval the tiny
 *                                         stand-in, dump metrics JSON
 *   lrdtool train [flags]                 checkpointed training run
 *   lrdtool dse [flags]                   checkpointed Definition-1
 *                                         sweep on the tiny stand-in;
 *                                         --shard/--supervise/--merge
 *                                         run it as crash-supervised
 *                                         shard processes
 *   lrdtool serve [flags]                 closed-loop serving run over
 *                                         a request file or synthetic
 *                                         workload
 *   lrdtool loadgen [flags]               open-loop seeded arrival
 *                                         process against the server
 *   lrdtool faults                        fault-injection site table
 *   lrdtool monitor <file> [--follow]     per-phase summary of a
 *                                         flight-recorder JSONL file
 *   lrdtool compare <runA> <runB>         metric-by-metric diff of
 *                                         two flight-recorder runs
 *
 * Presets: llama2-7b, llama2-70b, bert-base, bert-large, tiny-llama,
 * tiny-bert.
 *
 * Environment: LRD_THREADS, LRD_LOG, LRD_TRACE, LRD_STATS,
 * LRD_TELEMETRY, LRD_ROBUST, LRD_FAULT, LRD_DEADLINE, LRD_WATCHDOG,
 * LRD_SERVE_* (see usage()).
 *
 * Exit codes (see README.md): 0 ok, 1 error, 2 degraded past the
 * failure budget, 3 cancelled (SIGINT/SIGTERM), 4 deadline exceeded,
 * 5 corrupt checkpoint, 6 non-convergence, 7 response delivery
 * unavailable, 8 shard failed past its retry budget. A second signal
 * force-exits with the POSIX 128+signo code.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "decomp/tucker.h"
#include "util/logging.h"
#include "dse/coordinator.h"
#include "dse/design_space.h"
#include "dse/optimizer.h"
#include "dse/schedules.h"
#include "dse/shard.h"
#include "eval/evaluator.h"
#include "hw/opcount.h"
#include "hw/roofline.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/signal.h"
#include "serve/load_control.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "tensor/simd/simd.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

using namespace lrd;

namespace {

void usage();

ModelConfig
presetByName(const std::string &name)
{
    if (name == "llama2-7b")
        return llama2_7bConfig();
    if (name == "llama2-70b")
        return llama2_70bConfig();
    if (name == "bert-base")
        return bertBaseConfig();
    if (name == "bert-large")
        return bertLargeConfig();
    if (name == "tiny-llama")
        return tinyLlamaConfig();
    if (name == "tiny-bert")
        return tinyBertConfig();
    fatal("unknown preset '" + name
          + "' (try llama2-7b, llama2-70b, bert-base, bert-large, "
            "tiny-llama, tiny-bert)");
}

int
cmdInfo(const std::string &preset)
{
    const ModelConfig cfg = presetByName(preset);
    std::printf("%s (%s)\n", cfg.name.c_str(),
                cfg.arch == Arch::LlamaStyle ? "decoder, Llama-style"
                                             : "encoder, BERT-style");
    std::printf("  vocab %lld  dModel %lld  layers %lld  heads %lld  "
                "dFf %lld  maxSeq %lld\n",
                static_cast<long long>(cfg.vocabSize),
                static_cast<long long>(cfg.dModel),
                static_cast<long long>(cfg.nLayers),
                static_cast<long long>(cfg.nHeads),
                static_cast<long long>(cfg.dFf),
                static_cast<long long>(cfg.maxSeq));
    std::printf("  total params        %.3f B\n",
                static_cast<double>(cfg.totalParams()) / 1e9);
    std::printf("  decomposable params %.3f B (%.1f%%) across %lld "
                "tensors/layer\n",
                static_cast<double>(cfg.allDecomposableParams()) / 1e9,
                100.0 * static_cast<double>(cfg.allDecomposableParams())
                    / static_cast<double>(cfg.totalParams()),
                static_cast<long long>(cfg.numDecomposableTensors()));
    std::printf("  FP16 size           %.2f GB\n",
                static_cast<double>(cfg.totalParams()) * 2 / 1e9);
    for (WeightKind kind : decomposableKinds(cfg.arch)) {
        const auto shape = cfg.weightShape(kind);
        std::printf("    %-5s %lld x %lld (break-even rank %lld)\n",
                    weightKindName(kind).c_str(),
                    static_cast<long long>(shape[0]),
                    static_cast<long long>(shape[1]),
                    static_cast<long long>(
                        breakEvenRank(shape[0], shape[1])));
    }
    return 0;
}

int
cmdDesignSpace(const std::string &preset)
{
    const ModelConfig cfg = presetByName(preset);
    std::printf("%s: N_layers=%lld, N_tensors=%lld\n", cfg.name.c_str(),
                static_cast<long long>(cfg.nLayers),
                static_cast<long long>(cfg.numDecomposableTensors()));
    std::printf("  |S_LR| = (2^%lld - 1)(2^%lld - 1) r + 1 = "
                "O(2^%.1f) at r = 1\n",
                static_cast<long long>(cfg.nLayers),
                static_cast<long long>(cfg.numDecomposableTensors()),
                designSpaceSizeLog2(cfg, 1));
    if (cfg.nLayers <= 16)
        std::printf("  exact count at r=1: %llu\n",
                    static_cast<unsigned long long>(
                        designSpaceSizeExact(cfg, 1)));
    return 0;
}

int
cmdSchedule(const std::string &preset, double percent)
{
    const ModelConfig cfg = presetByName(preset);
    const DecompConfig gamma =
        scheduleForReduction(cfg, percent / 100.0);
    std::printf("target %.1f%% -> %s\n", percent,
                gamma.describe().c_str());
    std::printf("achieved reduction: %.2f%% (%lld -> %lld params in "
                "decomposed tensors)\n",
                gamma.parameterReduction(cfg) * 100.0,
                static_cast<long long>(gamma.paramsBefore(cfg)),
                static_cast<long long>(gamma.paramsAfter(cfg)));
    return 0;
}

int
cmdProfile(const std::string &preset, double percent)
{
    const ModelConfig cfg = presetByName(preset);
    const DeviceSpec dev = a100_80gb();
    GenerationWorkload wl;
    wl.batch = 32;
    wl.promptLen = 1024;
    wl.decodeTokens = 256;
    const DecompConfig gamma =
        percent > 0.0 ? scheduleForReduction(cfg, percent / 100.0)
                      : DecompConfig::identity();
    const InferenceEstimate est =
        estimateGeneration(cfg, gamma, dev, wl);
    std::printf("host SIMD: %s (CPU roofline cross-checks use %s)\n",
                simd::levelName(simd::activeLevel()),
                cpuCore().name.c_str());
    std::printf("%s @ %.1f%% reduction on %s (batch %lld, prompt "
                "%lld, decode %lld):\n",
                cfg.name.c_str(), gamma.parameterReduction(cfg) * 100.0,
                dev.name.c_str(), static_cast<long long>(wl.batch),
                static_cast<long long>(wl.promptLen),
                static_cast<long long>(wl.decodeTokens));
    std::printf("  latency  %.3f s (prefill %.3f + decode %.3f)\n",
                est.latencySec, est.prefillSec, est.decodeSec);
    std::printf("  decode   %.0f tok/s\n", est.tokensPerSec);
    std::printf("  energy   %.1f J\n", est.energyJoules);
    std::printf("  memory   %.2f GB\n", est.memBytes / 1e9);

    // Per-layer time/MAC breakdown of one prefill-shaped forward
    // pass; "layer<l>.<op>" rows are folded into one row per layer.
    WorkloadParams wp;
    wp.batch = wl.batch;
    wp.seqLen = wl.promptLen;
    struct LayerCost
    {
        int64_t macs = 0;
        int64_t bytes = 0;
    };
    std::vector<std::pair<std::string, LayerCost>> layers;
    std::map<std::string, size_t> layerIndex;
    for (const OpProfile &op : profileTransformer(cfg, gamma, wp)) {
        const size_t dot = op.name.find('.');
        const std::string label =
            dot == std::string::npos ? op.name : op.name.substr(0, dot);
        auto [it, inserted] =
            layerIndex.try_emplace(label, layers.size());
        if (inserted)
            layers.push_back({label, {}});
        LayerCost &cost = layers[it->second].second;
        cost.macs += op.macs;
        cost.bytes += op.weightBytes;
    }
    double totalSec = 0.0;
    for (const auto &[label, cost] : layers)
        totalSec += roofline(cost.macs, cost.bytes, dev).latencySec;

    TablePrinter table("Per-layer breakdown (prefill, roofline)");
    table.setHeader({"layer", "MACs (G)", "weights (MB)", "time (ms)",
                     "share (%)"});
    for (const auto &[label, cost] : layers) {
        const double sec = roofline(cost.macs, cost.bytes, dev).latencySec;
        table.addRow({label,
                      TablePrinter::num(static_cast<double>(cost.macs) / 1e9),
                      TablePrinter::num(static_cast<double>(cost.bytes) / 1e6,
                                        2),
                      TablePrinter::num(sec * 1e3),
                      TablePrinter::num(
                          totalSec > 0.0 ? 100.0 * sec / totalSec : 0.0,
                          1)});
    }
    std::printf("\n");
    table.print();
    return 0;
}

int
cmdBreakEven(int64_t h, int64_t w)
{
    const int64_t pr = breakEvenRank(h, w);
    std::printf("W (%lld x %lld): largest compressing pruned rank = "
                "%lld\n",
                static_cast<long long>(h), static_cast<long long>(w),
                static_cast<long long>(pr));
    if (pr >= 1)
        std::printf("  at pr=%lld: %lld -> %lld params (%.2fx)\n",
                    static_cast<long long>(pr),
                    static_cast<long long>(denseParams(h, w)),
                    static_cast<long long>(decomposedParams(h, w, pr)),
                    compressionRatio(h, w, pr));
    std::printf("  at pr=1:  %.1fx compression\n",
                compressionRatio(h, w, 1));
    return 0;
}

int
cmdEval(double percent)
{
    TransformerModel model = pretrainedTinyLlama();
    const ModelConfig cfg = model.config();
    const DecompConfig gamma =
        percent > 0.0 ? scheduleForReduction(cfg, percent / 100.0)
                      : DecompConfig::identity();
    if (!gamma.empty()) {
        std::printf("applying %s\n", gamma.describe().c_str());
        const Status applied = gamma.applyTo(model);
        if (!applied.ok()) {
            std::fprintf(stderr, "eval: %s\n", applied.toString().c_str());
            return exitCodeForStatus(applied);
        }
    }
    Evaluator ev(model, defaultWorld(), EvalOptions{120, 777, false});
    Status worst;
    for (BenchmarkKind kind : allBenchmarks()) {
        const EvalResult r = ev.run(kind);
        std::printf("%-14s %.3f (%d/%d)%s\n", benchmarkName(kind).c_str(),
                    r.accuracy, r.numCorrect, r.numTasks,
                    r.partial() ? " [partial]" : "");
        if (worst.ok() && !r.status.ok())
            worst = r.status;
    }
    if (!worst.ok())
        std::printf("status     %s\n", worst.toString().c_str());
    return exitCodeForStatus(worst);
}

/**
 * Decompose + briefly evaluate the tiny stand-in model with metrics
 * forced on, then dump the registry JSON to stdout. Exercises the
 * Jacobi sweeps (via Tucker factorization) and the per-layer GEMM MAC
 * counters, so the output covers every metric family.
 */
int
cmdStats(double percent)
{
    MetricsRegistry::instance().setEnabled(true);
    inform(strCat("stats: SIMD dispatch level ",
                  simd::levelName(simd::activeLevel()), ", ",
                  parallelWorkers(), " worker thread(s)"));
    TransformerModel model = pretrainedTinyLlama();
    const ModelConfig cfg = model.config();
    const DecompConfig gamma =
        percent > 0.0 ? scheduleForReduction(cfg, percent / 100.0)
                      : DecompConfig::identity();
    if (!gamma.empty()) {
        inform(strCat("stats: applying ", gamma.describe()));
        const Status applied = gamma.applyTo(model);
        if (!applied.ok()) {
            std::fprintf(stderr, "stats: %s\n", applied.toString().c_str());
            return exitCodeForStatus(applied);
        }
    }
    Evaluator ev(model, defaultWorld(), EvalOptions{24, 777, false});
    const EvalResult r = ev.run(allBenchmarks().front());
    inform(strCat("stats: scored ", r.numTasks, " items (accuracy ",
                  r.accuracy, ")"));
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    TablePrinter quantiles("Histogram quantiles");
    quantiles.setHeader({"histogram", "count", "p50", "p90", "p99"});
    for (const auto &[name, hs] : snap.histograms) {
        if (hs.count == 0)
            continue;
        quantiles.addRow({name, std::to_string(hs.count),
                          TablePrinter::num(hs.p50(), 1),
                          TablePrinter::num(hs.p90(), 1),
                          TablePrinter::num(hs.p99(), 1)});
    }
    if (quantiles.rowCount() > 0)
        quantiles.print();
    // With LRD_STATS set, flushObservability() writes the registry;
    // printing here too would emit the JSON twice.
    if (obsStatsPath().empty())
        std::printf("%s", MetricsRegistry::instance().toJson().c_str());
    if (!obsTracePath().empty())
        inform(strCat("stats: trace spans flush to ", obsTracePath(),
                      " on exit"));
    return 0;
}

/** "--key=value" / "--flag" parsing for the train/dse subcommands. */
struct Flags
{
    std::map<std::string, std::string> kv;

    static Flags parse(int argc, char **argv, int first)
    {
        Flags f;
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0)
                fatal("unexpected argument '" + arg + "'");
            const size_t eq = arg.find('=', 2);
            if (eq == std::string::npos)
                f.kv.insert_or_assign(arg.substr(2), std::string("1"));
            else
                f.kv.insert_or_assign(arg.substr(2, eq - 2),
                                      arg.substr(eq + 1));
        }
        return f;
    }

    std::string str(const std::string &key,
                    const std::string &fallback = "") const
    {
        const auto it = kv.find(key);
        return it == kv.end() ? fallback : it->second;
    }

    int num(const std::string &key, int fallback) const
    {
        const auto it = kv.find(key);
        return it == kv.end() ? fallback : std::atoi(it->second.c_str());
    }

    bool has(const std::string &key) const { return kv.count(key) != 0; }
};

/**
 * A short checkpointed training run on the tiny stand-in. Prints the
 * final loss and a CRC of the trained weights, so two invocations
 * (interrupted-and-resumed vs. uninterrupted) can be diffed directly.
 */
int
cmdTrain(const Flags &flags)
{
    TransformerModel model(tinyLlamaConfig(), /*seed=*/1001);
    TrainOptions t = zooTrainOptions(Arch::LlamaStyle);
    t.steps = flags.num("steps", 12);
    t.logEvery = flags.num("log-every", 0);
    t.checkpointPath = flags.str("ckpt");
    t.checkpointEvery = flags.num("every", 4);
    t.resume = flags.has("resume");
    Trainer trainer(model, defaultWorld(), t);
    const double loss = trainer.run();
    const std::vector<uint8_t> bytes = model.serialize();
    std::printf("status     %s\n", trainer.runStatus().ok()
                                       ? "completed"
                                       : trainer.runStatus().toString().c_str());
    std::printf("final loss %.6f\n", loss);
    std::printf("weights    crc32 %08x (%zu bytes)\n", crc32(bytes),
                bytes.size());
    return exitCodeForStatus(trainer.runStatus());
}

/** Absolute path of this binary, for respawning shard children. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
    return std::string(argv0);
}

/** Parse "--ranks=1,2,4" into positive integers; false on bad text. */
bool
parseRanksFlag(const std::string &text, std::vector<int64_t> &out)
{
    size_t pos = 0;
    for (;;) {
        const size_t comma = text.find(',', pos);
        const std::string tok =
            comma == std::string::npos
                ? text.substr(pos)
                : text.substr(pos, comma - pos);
        if (tok.empty() || tok.size() > 6
            || tok.find_first_not_of("0123456789") != std::string::npos)
            return false;
        out.push_back(std::atoll(tok.c_str()));
        if (out.back() < 1)
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

void
printDseResult(const OptimizerResult &r)
{
    std::printf("explored   %zu candidates (%d degraded)\n",
                r.explored.size(), r.numFailed);
    std::printf("baseline   acc %.3f  edp %.4g\n", r.baselineAccuracy,
                r.baselineEdp);
    std::printf("best       %s\n", r.best.config.describe().c_str());
    std::printf("           acc %.3f  edp %.4g  reduction %.2f%%\n",
                r.best.accuracy, r.best.edp, r.best.reduction * 100.0);
}

/** Exit code for a DSE-family status: the supervisor's retry-budget
 *  failure gets its own documented code 8. */
int
dseExitCode(const Status &status)
{
    if (!status.ok()
        && std::strcmp(status.site(), "dse.shard.retry") == 0)
        return kExitShardFailed;
    return exitCodeForStatus(status);
}

/**
 * A checkpointed Definition-1 sweep on the tiny stand-in model.
 *
 * Four modes: serial (default), one shard of a partitioned sweep
 * (--shard=i/n), supervisor of n shard child processes
 * (--supervise=n), and merge-only over an existing results directory
 * (--merge=n). A supervised run's merged --out file is bitwise
 * identical to a serial run's at any LRD_THREADS.
 */
int
cmdDse(const Flags &flags, const char *argv0)
{
    OptimizerOptions opts;
    opts.evalTasks = flags.num("tasks", 24);
    opts.checkpointPath = flags.str("ckpt");
    opts.checkpointEvery = flags.num("every", 8);
    opts.resume = flags.has("resume");
    if (flags.has("ranks")
        && !parseRanksFlag(flags.str("ranks"), opts.candidateRanks)) {
        std::fprintf(stderr,
                     "dse: bad --ranks '%s' (want e.g. --ranks=1,2,4)\n",
                     flags.str("ranks").c_str());
        usage();
        return 1;
    }
    const std::string dir = flags.str("dir", "dse_shards");

    if (flags.has("supervise")) {
        const int shards = flags.num("supervise", 0);
        if (shards < 1 || shards > 4096) {
            std::fprintf(stderr,
                         "dse: bad --supervise '%s' (want 1..4096)\n",
                         flags.str("supervise").c_str());
            usage();
            return 1;
        }
        MetricsRegistry::instance().setEnabled(true);
        SupervisorOptions sup;
        sup.shards = shards;
        sup.dir = dir;
        sup.maxRetries = flags.num("retries", 3);
        sup.backoffBaseTicks = flags.num("backoff", 100);
        sup.staleLeaseSeconds = flags.num("stale-secs", 900);
        sup.accuracyDropTolerance = opts.accuracyDropTolerance;
        sup.childArgs = {selfExePath(argv0), "dse", "--shard={shard}",
                         "--dir=" + dir,
                         "--tasks=" + std::to_string(opts.evalTasks),
                         "--every="
                             + std::to_string(opts.checkpointEvery)};
        if (flags.has("ranks"))
            sup.childArgs.push_back("--ranks=" + flags.str("ranks"));
        const SupervisorReport rep = superviseDse(sup);
        std::printf("status     %s\n", rep.status.ok()
                                           ? "completed"
                                           : rep.status.toString().c_str());
        std::printf("launched   %d\n", rep.launched);
        std::printf("retried    %d\n", rep.retried);
        std::printf("reclaimed  %d\n", rep.reclaimed);
        std::printf("skipped    %d\n", rep.skipped);
        std::printf("failed     %d\n", rep.failed);
        std::printf("merged     %d\n", rep.shardsMerged);
        std::printf("evals ever %lld\n",
                    static_cast<long long>(rep.evalsEver));
        std::printf("recomputed %lld\n",
                    static_cast<long long>(rep.recomputed));
        std::printf("orphan tmps %lld\n",
                    static_cast<long long>(rep.orphanTmpsSwept));
        if (!rep.status.ok())
            return dseExitCode(rep.status);
        printDseResult(rep.result);
        if (flags.has("out")) {
            const Status ws =
                writeDseResultFile(flags.str("out"), rep.result);
            if (!ws.ok()) {
                std::fprintf(stderr, "dse: %s\n", ws.toString().c_str());
                return exitCodeForStatus(ws);
            }
        }
        return 0;
    }

    if (flags.has("merge")) {
        const int shards = flags.num("merge", 0);
        if (shards < 1 || shards > 4096) {
            std::fprintf(stderr,
                         "dse: bad --merge '%s' (want 1..4096)\n",
                         flags.str("merge").c_str());
            usage();
            return 1;
        }
        MetricsRegistry::instance().setEnabled(true);
        Result<MergeReport> merge =
            mergeShardResults(dir, shards, opts.accuracyDropTolerance);
        if (!merge.ok()) {
            std::fprintf(stderr, "dse: %s\n",
                         merge.status().toString().c_str());
            return exitCodeForStatus(merge.status());
        }
        const MergeReport &rep = merge.value();
        std::printf("status     completed\n");
        std::printf("merged     %d\n", rep.shardsMerged);
        std::printf("evals ever %lld\n",
                    static_cast<long long>(rep.evalsEver));
        std::printf("recomputed %lld\n",
                    static_cast<long long>(rep.recomputed));
        printDseResult(rep.result);
        if (flags.has("out")) {
            const Status ws =
                writeDseResultFile(flags.str("out"), rep.result);
            if (!ws.ok()) {
                std::fprintf(stderr, "dse: %s\n", ws.toString().c_str());
                return exitCodeForStatus(ws);
            }
        }
        return 0;
    }

    if (flags.has("shard")) {
        Result<ShardSpec> spec = parseShardSpec(flags.str("shard"));
        if (!spec.ok()) {
            std::fprintf(stderr, "dse: %s\n",
                         spec.status().toString().c_str());
            usage();
            return 1;
        }
        MetricsRegistry::instance().setEnabled(true);
        TransformerModel model = pretrainedTinyLlama();
        Result<OptimizerResult> run = runDseShard(
            model.serialize(), defaultWorld(), opts, spec.value(), dir);
        if (!run.ok()) {
            std::fprintf(stderr, "dse: %s\n",
                         run.status().toString().c_str());
            return exitCodeForStatus(run.status());
        }
        const OptimizerResult &r = run.value();
        std::printf("status     completed\n");
        std::printf("shard      %d/%d: %zu of %lld candidates\n",
                    spec.value().index, spec.value().count,
                    r.explored.size(),
                    static_cast<long long>(r.gridSize));
        return 0;
    }

    TransformerModel model = pretrainedTinyLlama();
    const OptimizerResult r =
        optimizeDecomposition(model.serialize(), defaultWorld(), opts);
    std::printf("status     %s\n",
                r.cancelled ? (r.status.toString()
                               + " (resume with --resume)").c_str()
                            : "completed");
    printDseResult(r);
    if (flags.has("out") && !r.cancelled) {
        const Status ws = writeDseResultFile(flags.str("out"), r);
        if (!ws.ok()) {
            std::fprintf(stderr, "dse: %s\n", ws.toString().c_str());
            return exitCodeForStatus(ws);
        }
    }
    return exitCodeForStatus(r.status);
}

/**
 * Digest of the full response vector (ids, outcomes, score bit
 * patterns, settle ticks). Two serve runs of the same seed workload
 * must print the same CRC at any LRD_THREADS — scripts diff this
 * directly instead of parsing every response.
 */
uint32_t
responseDigest(const std::vector<ServeResponse> &responses)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(responses.size() * 24);
    const auto append = [&](const void *p, size_t n) {
        const auto *b = static_cast<const uint8_t *>(p);
        bytes.insert(bytes.end(), b, b + n);
    };
    for (const ServeResponse &resp : responses) {
        append(&resp.id, sizeof(resp.id));
        const auto outcome = static_cast<int32_t>(resp.outcome);
        append(&outcome, sizeof(outcome));
        const auto degraded = static_cast<int32_t>(resp.degraded);
        append(&degraded, sizeof(degraded));
        append(&resp.score, sizeof(resp.score));
        append(&resp.settledTick, sizeof(resp.settledTick));
    }
    return crc32(bytes);
}

/**
 * Drive the serving layer over a workload and report the outcome mix,
 * latency quantiles, and the degradation ladder's deepest rung.
 * Closed loop (serve): every request arrives at tick 0, so admission
 * control and the ladder face the full burst. Open loop (loadgen):
 * arrivals follow a seeded gap process at a configurable rate.
 */
int
runServeCommand(const Flags &flags, bool openLoop)
{
    // Serving reports through obs metrics (and the flight recorder
    // when LRD_TELEMETRY is set), so recording must be on.
    MetricsRegistry::instance().setEnabled(true);
    ServeOptions opts = ServeOptions::fromEnv();
    opts.queueCapacity =
        flags.num("queue", static_cast<int>(opts.queueCapacity));
    opts.maxBatch = flags.num("batch", static_cast<int>(opts.maxBatch));
    opts.maxClientAttempts =
        flags.num("retries", opts.maxClientAttempts);
    opts.retryBackoffBaseTicks = flags.num(
        "backoff", static_cast<int>(opts.retryBackoffBaseTicks));
    opts.fallbackRank = flags.num(
        "fallback-rank",
        static_cast<int>(opts.fallbackRank > 0 ? opts.fallbackRank : 2));
    opts.defaultDeadlineTicks = flags.num(
        "deadline", static_cast<int>(opts.defaultDeadlineTicks));

    // The untrained tiny model serves by default: synthetic workloads
    // only need deterministic scores, and chaos/CI runs should not
    // pay the train-once cache fill. --pretrained opts into the zoo.
    TransformerModel model =
        flags.has("pretrained")
            ? pretrainedTinyLlama()
            : TransformerModel(tinyLlamaConfig(), /*seed=*/1001);

    std::vector<ServeRequest> workload;
    if (flags.has("file")) {
        Result<std::vector<ServeRequest>> loaded = loadWorkloadFile(
            flags.str("file"), opts.defaultDeadlineTicks);
        if (!loaded.ok()) {
            std::fprintf(stderr, "serve: %s\n",
                         loaded.status().toString().c_str());
            return exitCodeForStatus(loaded.status());
        }
        workload = std::move(loaded).value();
    } else {
        WorkloadOptions w;
        w.numRequests = flags.num("requests", openLoop ? 96 : 48);
        w.tenants = flags.num("tenants", 4);
        w.deadlineTicks = opts.defaultDeadlineTicks;
        w.maxArrivalGapTicks = openLoop ? flags.num("gap", 2) : 0;
        w.seed = static_cast<uint64_t>(flags.num("seed", 42));
        workload = makeSyntheticWorkload(model.config(), w);
    }

    inform(strCat(openLoop ? "loadgen" : "serve", ": ", workload.size(),
                  " requests, queue ", opts.queueCapacity, ", batch ",
                  opts.maxBatch, ", ", parallelWorkers(),
                  " worker thread(s)"));
    Server server(model, opts);
    const ServeReport report = server.run(std::move(workload));
    const ServeStats &s = report.stats;

    TablePrinter outcomes("Serving outcomes");
    outcomes.setHeader({"outcome", "count"});
    outcomes.addRow({"responded",
                     strCat(s.responded, s.degradedResponses > 0
                                             ? strCat(" (",
                                                      s.degradedResponses,
                                                      " degraded)")
                                             : std::string())});
    outcomes.addRow({"shed", std::to_string(s.shed)});
    outcomes.addRow({"deadline-missed", std::to_string(s.deadlineMissed)});
    outcomes.addRow({"cancelled", std::to_string(s.cancelled)});
    outcomes.addRow({"unavailable", std::to_string(s.unavailable)});
    outcomes.print();

    const auto total = static_cast<double>(report.responses.size());
    std::printf("offers     %lld admitted / %lld total (%lld client "
                "retries)\n",
                static_cast<long long>(s.admitted),
                static_cast<long long>(s.offered),
                static_cast<long long>(s.clientRetries));
    std::printf("latency    p50 %.0f ticks, p99 %.0f ticks\n",
                s.p50LatencyTicks, s.p99LatencyTicks);
    std::printf("rates      shed %.1f%%  deadline-miss %.1f%%\n",
                100.0 * static_cast<double>(s.shed) / total,
                100.0 * static_cast<double>(s.deadlineMissed) / total);
    std::printf("throughput %.1f req/s (%lld batches over %lld ticks, "
                "%.3f s)\n",
                s.throughputRps, static_cast<long long>(s.batches),
                static_cast<long long>(s.ticks), s.wallSeconds);
    std::printf("ladder     deepest rung %s\n",
                serviceLevelName(
                    static_cast<ServiceLevel>(s.maxServiceLevel)));
    std::printf("responses  crc32 %08x\n",
                responseDigest(report.responses));
    std::printf("status     %s\n", report.status.ok()
                                       ? "completed"
                                       : report.status.toString().c_str());
    if (!report.status.ok())
        return exitCodeForStatus(report.status);
    if (s.unavailable > 0)
        return kExitUnavailable;
    return 0;
}

/** One flight-recorder file, split by record type. */
struct TelemetryFile
{
    bool hasManifest = false;
    RunManifest manifest;
    std::vector<JsonValue> samples;
    bool hasFinal = false;
    JsonValue finalRecord;
};

Result<std::string>
readFileText(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Status(StatusCode::NotFound, "telemetry.read",
                      strCat("cannot open ", path));
    std::string text;
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

/**
 * Load a telemetry JSONL file. A truncated final line (the record a
 * kill cut off mid-append) is tolerated; any earlier corruption is an
 * error.
 */
Result<TelemetryFile>
loadTelemetryFile(const std::string &path)
{
    Result<std::string> text = readFileText(path);
    if (!text.ok())
        return text.status();
    Result<std::vector<JsonValue>> records =
        parseJsonLines(text.value(), /*stopAtError=*/true);
    if (!records.ok())
        return records.status();
    TelemetryFile tf;
    for (JsonValue &rec : records.value()) {
        const std::string type = rec.stringOr("type", "");
        if (type == "manifest" && !tf.hasManifest) {
            Result<RunManifest> m = manifestFromJson(rec);
            if (m.ok()) {
                tf.manifest = std::move(m).value();
                tf.hasManifest = true;
            }
        } else if (type == "sample") {
            tf.samples.push_back(std::move(rec));
        } else if (type == "final") {
            tf.finalRecord = std::move(rec);
            tf.hasFinal = true;
        }
    }
    if (!tf.hasManifest)
        return Status(StatusCode::DataLoss, "telemetry.read",
                      strCat(path, ": no manifest record (not a "
                                   "flight-recorder file?)"));
    return tf;
}

void
printManifestSummary(const RunManifest &m)
{
    std::printf("run %s  (git %s, %s build)\n", m.runId.c_str(),
                m.gitSha.c_str(), m.buildType.c_str());
    std::printf("  cpu %s  simd %s  threads %d\n", m.cpuModel.c_str(),
                m.simdLevel.c_str(), m.threads);
    if (!m.commandLine.empty())
        std::printf("  cmd %s\n", m.commandLine.c_str());
}

/** Per-phase rollup of a run's samples. */
int
printPhaseTable(const TelemetryFile &tf)
{
    struct PhaseAgg
    {
        int64_t samples = 0;
        int64_t durMs = 0;
        int64_t macs = 0;
        int64_t rssMax = 0;
        int64_t arenaPeak = 0;
    };
    std::vector<std::pair<std::string, PhaseAgg>> phases;
    int64_t prevT = 0;
    for (const JsonValue &s : tf.samples) {
        std::string label = s.stringOr("phase", "");
        if (label.empty())
            label = "(idle)";
        auto it = std::find_if(phases.begin(), phases.end(),
                               [&](const auto &p) {
                                   return p.first == label;
                               });
        if (it == phases.end()) {
            phases.push_back({label, {}});
            it = std::prev(phases.end());
        }
        PhaseAgg &agg = it->second;
        const int64_t t = s.intOr("t_ms", prevT);
        agg.samples++;
        agg.durMs += t - prevT;
        prevT = t;
        if (const JsonValue *macs =
                s.findPath({"counters", "gemm.macs"}))
            agg.macs += macs->asInt();
        agg.rssMax = std::max(agg.rssMax, s.intOr("rss_bytes", 0));
        agg.arenaPeak =
            std::max(agg.arenaPeak, s.intOr("arena_peak_bytes", 0));
    }
    TablePrinter table("Per-phase telemetry");
    table.setHeader({"phase", "samples", "time (s)", "MACs (G)",
                     "G MACs/s", "RSS max (MB)", "arena peak (MB)"});
    for (const auto &[label, agg] : phases) {
        const double sec = static_cast<double>(agg.durMs) / 1e3;
        const double gmacs = static_cast<double>(agg.macs) / 1e9;
        table.addRow({label, std::to_string(agg.samples),
                      TablePrinter::num(sec, 2),
                      TablePrinter::num(gmacs, 2),
                      TablePrinter::num(sec > 0.0 ? gmacs / sec : 0.0, 2),
                      TablePrinter::num(
                          static_cast<double>(agg.rssMax) / 1e6, 1),
                      TablePrinter::num(
                          static_cast<double>(agg.arenaPeak) / 1e6, 1)});
    }
    table.print();
    // Serving runs get their own rollup: outcome counters, the
    // degradation ladder's resting level, and latency quantiles —
    // the operator view of admission control under load.
    if (tf.hasFinal) {
        const JsonValue &fin = tf.finalRecord;
        const auto counterAt = [&](const char *name) {
            const JsonValue *c = fin.findPath({"counters", name});
            return c != nullptr ? c->asInt() : 0;
        };
        if (counterAt("serve.ticks") > 0) {
            TablePrinter serve("Serving & admission control");
            serve.setHeader({"metric", "value"});
            serve.addRow({"admitted",
                          std::to_string(counterAt("serve.admitted"))});
            serve.addRow({"shed",
                          std::to_string(counterAt("serve.shed"))});
            serve.addRow({"responded",
                          std::to_string(counterAt("serve.responded"))});
            serve.addRow(
                {"deadline missed",
                 std::to_string(counterAt("serve.deadline.missed"))});
            serve.addRow({"cancelled",
                          std::to_string(counterAt("serve.cancelled"))});
            serve.addRow(
                {"unavailable",
                 std::to_string(counterAt("serve.unavailable"))});
            serve.addRow({"client retries",
                          std::to_string(
                              counterAt("serve.client.retries"))});
            serve.addRow(
                {"batches / ticks",
                 strCat(counterAt("serve.batches"), " / ",
                        counterAt("serve.ticks"))});
            const JsonValue *level =
                fin.findPath({"gauges", "serve.degrade.level"});
            serve.addRow(
                {"ladder level",
                 strCat(serviceLevelName(static_cast<ServiceLevel>(
                            level != nullptr
                                ? static_cast<int>(level->asNumber())
                                : 0)),
                        " (", counterAt("serve.degrade.transitions"),
                        " transitions)")});
            if (const JsonValue *lat =
                    fin.findPath({"hist", "serve.latency.ticks"}))
                serve.addRow(
                    {"latency ticks p50/p99",
                     strCat(TablePrinter::num(lat->numberOr("p50", 0.0),
                                              1),
                            " / ",
                            TablePrinter::num(lat->numberOr("p99", 0.0),
                                              1))});
            serve.print();
        }
        // Supervised sharded sweeps roll up their process-level
        // lifecycle: how many children launched, how often the
        // retry/backoff path fired, and how much work the merge saw
        // evaluated more than once.
        if (counterAt("dse.shard.launched") > 0) {
            TablePrinter shard("Sharded DSE supervision");
            shard.setHeader({"metric", "value"});
            shard.addRow(
                {"shards launched",
                 std::to_string(counterAt("dse.shard.launched"))});
            shard.addRow(
                {"retried",
                 std::to_string(counterAt("dse.shard.retried"))});
            shard.addRow(
                {"leases reclaimed",
                 std::to_string(counterAt("dse.shard.reclaimed"))});
            shard.addRow(
                {"failed past budget",
                 std::to_string(counterAt("dse.shard.failed"))});
            shard.addRow(
                {"shards merged",
                 std::to_string(counterAt("dse.shard.merged"))});
            shard.addRow(
                {"evals recomputed",
                 std::to_string(counterAt("dse.shard.recomputed"))});
            shard.addRow({"orphan tmps swept",
                          std::to_string(counterAt(
                              "checkpoint.orphanTmpSwept"))});
            shard.print();
        }
    }
    if (tf.hasFinal)
        std::printf("final: %lld samples over %.2f s (%lld rotations)\n",
                    static_cast<long long>(
                        tf.finalRecord.intOr("samples", 0)),
                    static_cast<double>(tf.finalRecord.intOr("t_ms", 0))
                        / 1e3,
                    static_cast<long long>(
                        tf.finalRecord.intOr("rotations", 0)));
    else
        std::printf("(no final record: run still live or killed "
                    "mid-write)\n");
    return 0;
}

/**
 * Summarize a flight-recorder file. With --follow, poll a live run
 * until its final record lands (or the file stops growing for 10 s),
 * echoing one status line per new sample batch.
 */
int
cmdMonitor(const std::string &path, bool follow)
{
    if (follow) {
        size_t lastSize = 0;
        size_t lastCount = 0;
        Timer sinceGrowth;
        for (;;) {
            Result<std::string> text = readFileText(path);
            if (text.ok() && text.value().size() != lastSize) {
                lastSize = text.value().size();
                sinceGrowth.reset();
            }
            Result<TelemetryFile> tf =
                text.ok() ? loadTelemetryFile(path)
                          : Result<TelemetryFile>(text.status());
            if (tf.ok()) {
                const TelemetryFile &t = tf.value();
                if (t.samples.size() != lastCount) {
                    lastCount = t.samples.size();
                    const JsonValue &s = t.samples.back();
                    std::printf("t=%8.2fs  phase=%-10s rss=%7.1f MB  "
                                "samples=%zu\n",
                                static_cast<double>(s.intOr("t_ms", 0))
                                    / 1e3,
                                s.stringOr("phase", "(idle)").c_str(),
                                static_cast<double>(
                                    s.intOr("rss_bytes", 0))
                                    / 1e6,
                                t.samples.size());
                }
                if (t.hasFinal)
                    break;
            }
            if (sinceGrowth.elapsedMillis() > 10000.0) {
                warn(strCat("monitor: ", path,
                            " stopped growing; giving up on --follow"));
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
    }
    Result<TelemetryFile> tf = loadTelemetryFile(path);
    if (!tf.ok()) {
        std::fprintf(stderr, "%s\n", tf.status().toString().c_str());
        return 1;
    }
    printManifestSummary(tf.value().manifest);
    return printPhaseTable(tf.value());
}

/** "+12.3%" delta cell; "n/a" when the baseline is zero. */
std::string
deltaCell(double a, double b)
{
    if (a == 0.0)
        return b == 0.0 ? "0.0%" : "n/a";
    const double pct = 100.0 * (b - a) / a;
    return strCat(pct >= 0.0 ? "+" : "", TablePrinter::num(pct, 1), "%");
}

/** Ordered union of the member names of two JSON objects. */
std::vector<std::string>
memberNameUnion(const JsonValue *a, const JsonValue *b)
{
    std::vector<std::string> names;
    for (const JsonValue *obj : {a, b}) {
        if (!obj || !obj->isObject())
            continue;
        for (const auto &[name, value] : obj->members()) {
            static_cast<void>(value);
            if (std::find(names.begin(), names.end(), name)
                == names.end())
                names.push_back(name);
        }
    }
    return names;
}

/**
 * Diff two flight-recorder runs: manifest provenance side by side,
 * then cumulative counters / gauges / histogram quantiles from the
 * final records.
 */
int
cmdCompare(const std::string &pathA, const std::string &pathB)
{
    Result<TelemetryFile> ra = loadTelemetryFile(pathA);
    Result<TelemetryFile> rb = loadTelemetryFile(pathB);
    if (!ra.ok() || !rb.ok()) {
        std::fprintf(stderr, "%s\n",
                     (!ra.ok() ? ra.status() : rb.status())
                         .toString()
                         .c_str());
        return 1;
    }
    const TelemetryFile &a = ra.value();
    const TelemetryFile &b = rb.value();

    TablePrinter manifest("Run manifests");
    manifest.setHeader({"field", "A", "B"});
    const RunManifest &ma = a.manifest;
    const RunManifest &mb = b.manifest;
    manifest.addRow({"runId", ma.runId, mb.runId});
    manifest.addRow({"gitSha", ma.gitSha, mb.gitSha});
    manifest.addRow({"buildType", ma.buildType, mb.buildType});
    manifest.addRow({"simdLevel", ma.simdLevel, mb.simdLevel});
    manifest.addRow({"threads", std::to_string(ma.threads),
                     std::to_string(mb.threads)});
    manifest.addRow({"commandLine", ma.commandLine, mb.commandLine});
    // Env rows only where the two runs disagree.
    std::map<std::string, std::pair<std::string, std::string>> env;
    for (const auto &[name, value] : ma.env)
        env[name].first = value;
    for (const auto &[name, value] : mb.env)
        env[name].second = value;
    for (const auto &[name, values] : env)
        if (values.first != values.second)
            manifest.addRow({name, values.first, values.second});
    manifest.print();

    if (!a.hasFinal || !b.hasFinal) {
        std::printf("\n(%s lacks a final record; metric diff needs "
                    "completed runs)\n",
                    !a.hasFinal ? pathA.c_str() : pathB.c_str());
        return 1;
    }
    const JsonValue &fa = a.finalRecord;
    const JsonValue &fb = b.finalRecord;

    TablePrinter totals("Run totals");
    totals.setHeader({"metric", "A", "B", "delta"});
    const double ta = static_cast<double>(fa.intOr("t_ms", 0)) / 1e3;
    const double tb = static_cast<double>(fb.intOr("t_ms", 0)) / 1e3;
    totals.addRow({"wall time (s)", TablePrinter::num(ta, 2),
                   TablePrinter::num(tb, 2), deltaCell(ta, tb)});
    for (const char *key : {"rss_peak_bytes", "arena_peak_bytes"}) {
        const double va = static_cast<double>(fa.intOr(key, 0));
        const double vb = static_cast<double>(fb.intOr(key, 0));
        totals.addRow({strCat(key, " (MB)"),
                       TablePrinter::num(va / 1e6, 1),
                       TablePrinter::num(vb / 1e6, 1),
                       deltaCell(va, vb)});
    }
    for (const std::string &name :
         memberNameUnion(fa.find("counters"), fb.find("counters"))) {
        const JsonValue *ca = fa.findPath({"counters", name});
        const JsonValue *cb = fb.findPath({"counters", name});
        const int64_t va = ca ? ca->asInt() : 0;
        const int64_t vb = cb ? cb->asInt() : 0;
        totals.addRow({name, std::to_string(va), std::to_string(vb),
                       deltaCell(static_cast<double>(va),
                                 static_cast<double>(vb))});
    }
    for (const std::string &name :
         memberNameUnion(fa.find("gauges"), fb.find("gauges"))) {
        const JsonValue *ga = fa.findPath({"gauges", name});
        const JsonValue *gb = fb.findPath({"gauges", name});
        const double va = ga ? ga->asNumber() : 0.0;
        const double vb = gb ? gb->asNumber() : 0.0;
        totals.addRow({name, TablePrinter::num(va),
                       TablePrinter::num(vb), deltaCell(va, vb)});
    }
    totals.print();

    const std::vector<std::string> histNames =
        memberNameUnion(fa.find("hist"), fb.find("hist"));
    if (!histNames.empty()) {
        TablePrinter hist("Histogram quantiles");
        hist.setHeader({"histogram", "A p50", "B p50", "d p50",
                        "A p99", "B p99", "d p99"});
        for (const std::string &name : histNames) {
            const JsonValue *ha = fa.findPath({"hist", name});
            const JsonValue *hb = fb.findPath({"hist", name});
            const double p50a = ha ? ha->numberOr("p50", 0.0) : 0.0;
            const double p50b = hb ? hb->numberOr("p50", 0.0) : 0.0;
            const double p99a = ha ? ha->numberOr("p99", 0.0) : 0.0;
            const double p99b = hb ? hb->numberOr("p99", 0.0) : 0.0;
            hist.addRow({name, TablePrinter::num(p50a, 1),
                         TablePrinter::num(p50b, 1),
                         deltaCell(p50a, p50b),
                         TablePrinter::num(p99a, 1),
                         TablePrinter::num(p99b, 1),
                         deltaCell(p99a, p99b)});
        }
        hist.print();
    }
    return 0;
}

/** Markdown table of every compiled-in fault-injection site. */
int
cmdFaults()
{
    std::printf("| site | kinds | fires in |\n");
    std::printf("| --- | --- | --- |\n");
    for (const FaultSiteInfo &info : registeredFaultSites())
        std::printf("| `%s` | %s | %s |\n", info.site, info.kinds,
                    info.description);
    return 0;
}

void
usage()
{
    std::printf(
        "usage: lrdtool <command> [args]\n"
        "  info <preset>\n"
        "  designspace <preset>\n"
        "  schedule <preset> <reduction-percent>\n"
        "  profile <preset> [reduction-percent]\n"
        "  breakeven <H> <W>\n"
        "  eval [reduction-percent]\n"
        "  stats [reduction-percent]     (default 50)\n"
        "  train [--steps=N] [--ckpt=FILE] [--every=N] [--resume]\n"
        "  dse   [--tasks=N] [--ckpt=FILE] [--every=N] [--resume]\n"
        "        [--ranks=R1,R2,...] [--out=FILE]\n"
        "        [--shard=I/N --dir=DIR]     run one shard of the sweep\n"
        "        [--supervise=N --dir=DIR [--retries=N] [--backoff=MS]\n"
        "         [--stale-secs=S]]          spawn+watch N shard children,\n"
        "                                    merge to serial-identical out\n"
        "        [--merge=N --dir=DIR]       merge an existing shard dir\n"
        "  serve [--requests=N] [--file=JSONL] [--queue=N] [--batch=N]\n"
        "        [--retries=N] [--backoff=N] [--fallback-rank=N]\n"
        "        [--deadline=N] [--seed=N] [--tenants=N] [--pretrained]\n"
        "                                closed-loop serving run\n"
        "  loadgen [serve flags] [--gap=N]\n"
        "                                open-loop seeded arrivals\n"
        "  faults                        fault-injection site table\n"
        "  monitor <file> [--follow]     per-phase summary of a\n"
        "                                flight-recorder JSONL file\n"
        "  compare <runA> <runB>         diff two flight-recorder runs\n"
        "environment:\n"
        "  LRD_THREADS=<n>     thread-pool size (default: all cores)\n"
        "  LRD_LOG=<level>[+ts]  debug|info|warn|error; +ts adds\n"
        "                      timestamp / worker prefixes\n"
        "  LRD_TRACE=<file>    write chrome://tracing JSON (and\n"
        "                      <file>.summary.csv) on exit\n"
        "  LRD_STATS=<file>    write metrics-registry JSON on exit\n"
        "                      ('-' = stdout)\n"
        "  LRD_TELEMETRY=<ms>[:path]\n"
        "                      flight recorder: sample counters/RSS/\n"
        "                      quantiles every <ms> into a JSONL file\n"
        "                      (default lrd_telemetry.jsonl)\n"
        "  LRD_ROBUST=<mode>   strict | degrade[:budget] |\n"
        "                      retry[:attempts[:budget]]\n"
        "                      (default degrade:0.1)\n"
        "  LRD_FAULT=<spec>    inject faults: <site>:<kind>[:<nth>],...\n"
        "                      kinds: nan nonconv truncate bitflip\n"
        "                      alloc cancel\n"
        "  LRD_DEADLINE=<spec> stop early: steps:<n> | items:<n>\n"
        "                      (deterministic work budgets) or\n"
        "                      wall:<secs> (wall clock)\n"
        "  LRD_WATCHDOG=<secs> report stalled pipelines after <secs>\n"
        "                      without progress (report-only)\n"
        "  LRD_SERVE_QUEUE=<n>     serve: bounded request-queue capacity\n"
        "  LRD_SERVE_BATCH=<n>     serve: max batch size per tick\n"
        "  LRD_SERVE_RETRIES=<n>   serve: admission attempts per request\n"
        "  LRD_SERVE_BACKOFF=<n>   serve: client backoff base (ticks)\n"
        "  LRD_SERVE_FALLBACK_RANK=<n>\n"
        "                      serve: pruned rank of the degradation-\n"
        "                      ladder fallback variant (0 = off)\n"
        "  LRD_SERVE_DEADLINE=<n>  serve: default per-request deadline\n"
        "                      (ticks after arrival)\n"
        "  LRD_SANITIZE        build-time option (see CMakeLists.txt)\n"
        "exit codes:\n"
        "  0 ok  1 error  2 degraded past failure budget  3 cancelled\n"
        "  4 deadline exceeded  5 corrupt checkpoint  6 non-convergence\n"
        "  7 response delivery unavailable\n"
        "  8 shard failed past its retry budget (dse --supervise)\n"
        "  (a second SIGINT/SIGTERM force-exits with 128+signo)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        initObservabilityFromEnv();
        initFaultsFromEnv();
        initCancelFromEnv();
        installSignalHandlers();
        // With tracing on, spawn the pool up front so every worker
        // emits its lane marker even for purely analytic commands.
        if (Tracer::enabled())
            ThreadPool::instance();
        {
            // Stamp runtime facts into the run manifest before the
            // sampler captures it. The command line doubles as the
            // run's label in `lrdtool compare`. Only a telemetry run
            // pays for materializing the pool here; analytic commands
            // without LRD_TELEMETRY stay thread-free.
            std::string cmdline;
            for (int i = 0; i < argc; ++i)
                cmdline += strCat(i ? " " : "", argv[i]);
            const int threads = obsTelemetryPath().empty()
                                    ? hardwareConcurrency()
                                    : ThreadPool::instance().numThreads();
            setManifestRuntimeInfo(
                simd::levelName(simd::activeLevel()), threads, cmdline);
        }
        startTelemetryFromEnv();

        int ret = -1;
        if (cmd == "info" && argc >= 3)
            ret = cmdInfo(argv[2]);
        else if (cmd == "designspace" && argc >= 3)
            ret = cmdDesignSpace(argv[2]);
        else if (cmd == "schedule" && argc >= 4)
            ret = cmdSchedule(argv[2], std::atof(argv[3]));
        else if (cmd == "profile" && argc >= 3)
            ret = cmdProfile(argv[2],
                             argc >= 4 ? std::atof(argv[3]) : 0.0);
        else if (cmd == "breakeven" && argc >= 4)
            ret = cmdBreakEven(std::atoll(argv[2]),
                               std::atoll(argv[3]));
        else if (cmd == "eval")
            ret = cmdEval(argc >= 3 ? std::atof(argv[2]) : 0.0);
        else if (cmd == "stats")
            ret = cmdStats(argc >= 3 ? std::atof(argv[2]) : 50.0);
        else if (cmd == "train")
            ret = cmdTrain(Flags::parse(argc, argv, 2));
        else if (cmd == "dse")
            ret = cmdDse(Flags::parse(argc, argv, 2), argv[0]);
        else if (cmd == "serve")
            ret = runServeCommand(Flags::parse(argc, argv, 2),
                                  /*openLoop=*/false);
        else if (cmd == "loadgen")
            ret = runServeCommand(Flags::parse(argc, argv, 2),
                                  /*openLoop=*/true);
        else if (cmd == "faults")
            ret = cmdFaults();
        else if (cmd == "monitor" && argc >= 3)
            ret = cmdMonitor(argv[2],
                             argc >= 4
                                 && std::strcmp(argv[3], "--follow")
                                        == 0);
        else if (cmd == "compare" && argc >= 4)
            ret = cmdCompare(argv[2], argv[3]);
        if (ret >= 0) {
            shutdownFlush();
            stopWatchdog();
            return ret;
        }
    } catch (const StatusError &e) {
        // Structured failures (failure budget, corrupt checkpoints)
        // map to their documented exit codes.
        std::fprintf(stderr, "%s\n", e.what());
        shutdownFlush();
        stopWatchdog();
        return exitCodeForStatus(e.status());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        shutdownFlush();
        stopWatchdog();
        return 1;
    }
    usage();
    return 1;
}
