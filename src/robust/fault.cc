#include "robust/fault.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace lrd {

namespace {

/** An armed spec plus its process-wide occurrence counter. */
struct ArmedFault
{
    FaultSpec spec;
    std::atomic<int> hits{0};
};

struct FaultState
{
    /** Fast-path gate; release-stored after every spec mutation. */
    std::atomic<bool> armed{false};
    std::mutex mu; ///< Serializes setFault/clearFaults.
    std::vector<std::unique_ptr<ArmedFault>> specs;
};

FaultState &
state()
{
    static FaultState s;
    return s;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Nan:
        return "nan";
    case FaultKind::NonConverge:
        return "nonconv";
    case FaultKind::Truncate:
        return "truncate";
    case FaultKind::BitFlip:
        return "bitflip";
    case FaultKind::Alloc:
        return "alloc";
    case FaultKind::Cancel:
        return "cancel";
    }
    return "unknown";
}

Result<FaultSpec>
parseFaultSpec(const std::string &text)
{
    const size_t c1 = text.find(':');
    if (c1 == std::string::npos || c1 == 0)
        return Status(StatusCode::InvalidArgument, "fault.parse",
                      "'" + text + "' is not <site>:<kind>[:<nth>]");
    const size_t c2 = text.find(':', c1 + 1);
    FaultSpec spec;
    spec.site = text.substr(0, c1);
    const std::string kind = c2 == std::string::npos
                                 ? text.substr(c1 + 1)
                                 : text.substr(c1 + 1, c2 - c1 - 1);
    bool known = false;
    for (FaultKind k :
         {FaultKind::Nan, FaultKind::NonConverge, FaultKind::Truncate,
          FaultKind::BitFlip, FaultKind::Alloc, FaultKind::Cancel}) {
        if (kind == faultKindName(k)) {
            spec.kind = k;
            known = true;
            break;
        }
    }
    if (!known)
        return Status(StatusCode::InvalidArgument, "fault.parse",
                      "unknown fault kind '" + kind
                          + "' (nan, nonconv, truncate, bitflip, alloc, "
                            "cancel)");
    if (c2 != std::string::npos) {
        const std::string nth = text.substr(c2 + 1);
        char *end = nullptr;
        const long n = std::strtol(nth.c_str(), &end, 10);
        if (nth.empty() || end == nullptr || *end != '\0' || n < 1)
            return Status(StatusCode::InvalidArgument, "fault.parse",
                          "nth must be a positive integer, got '" + nth
                              + "'");
        spec.nth = static_cast<int>(n);
    }
    return spec;
}

void
setFault(const FaultSpec &spec)
{
    FaultState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto armed = std::make_unique<ArmedFault>();
    armed->spec = spec;
    s.specs.push_back(std::move(armed));
    s.armed.store(true, std::memory_order_release);
}

void
clearFaults()
{
    FaultState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.armed.store(false, std::memory_order_release);
    s.specs.clear();
}

void
initFaultsFromEnv()
{
    const char *env = std::getenv("LRD_FAULT");
    if (env == nullptr || *env == '\0')
        return;
    const std::string all(env);
    size_t start = 0;
    while (start <= all.size()) {
        const size_t comma = all.find(',', start);
        const std::string one =
            all.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!one.empty()) {
            Result<FaultSpec> spec = parseFaultSpec(one);
            require(spec.ok(), "LRD_FAULT: " + spec.status().toString());
            setFault(spec.value());
            inform(strCat("fault injection armed: ", spec.value().site, ":",
                          faultKindName(spec.value().kind), ":",
                          spec.value().nth));
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

bool
faultInjectionEnabled()
{
    return state().armed.load(std::memory_order_acquire);
}

const std::vector<FaultSiteInfo> &
registeredFaultSites()
{
    static const std::vector<FaultSiteInfo> sites = {
        {"jacobi", "nonconv,cancel",
         "Jacobi eigensolver sweep loop (src/linalg)"},
        {"model.block", "nan,cancel",
         "Transformer block forward pass (src/model)"},
        {"eval.item", "alloc,cancel",
         "Per-item benchmark scoring (src/eval)"},
        {"train.step", "cancel",
         "Top of a trainer optimizer step (src/train)"},
        {"dse.batch", "cancel",
         "Top of a DSE candidate batch (src/dse)"},
        {"dse.shard.spawn", "alloc,cancel",
         "Shard child-process launch in the DSE supervisor (src/dse)"},
        {"dse.shard.merge", "alloc,cancel",
         "Per-shard result merge into the serial-identical fold "
         "(src/dse)"},
        {"ckpt.write", "alloc,truncate,bitflip,cancel",
         "Checkpoint serialization and atomic write (src/robust)"},
        {"ckpt.read", "alloc,cancel",
         "Checkpoint load and validation (src/robust)"},
        {"serve.admit", "alloc,cancel",
         "Request admission into the serve queue (src/serve)"},
        {"serve.batch", "nan,cancel",
         "Top of a serve batch execution (src/serve)"},
        {"serve.respond", "alloc,cancel",
         "Response delivery back to the client (src/serve)"},
    };
    return sites;
}

bool
faultAt(const char *site, FaultKind kind)
{
    FaultState &s = state();
    if (!s.armed.load(std::memory_order_acquire))
        return false;
    static Counter *fired =
        MetricsRegistry::instance().counter("robust.faultsInjected");
    bool hit = false;
    for (const auto &armed : s.specs) {
        if (armed->spec.kind != kind || armed->spec.site != site)
            continue;
        const int n =
            armed->hits.fetch_add(1, std::memory_order_relaxed) + 1;
        if (n == armed->spec.nth)
            hit = true;
    }
    if (hit)
        fired->inc();
    return hit;
}

} // namespace lrd
