/**
 * @file
 * Versioned, CRC-protected checkpoints for resumable long-running
 * pipelines (trainer, DSE sweep).
 *
 * On-disk format (all little-endian):
 *
 *   bytes 0..7   magic "LRDCKPT1"
 *   bytes 8..11  u32 user version (pipeline-specific)
 *   bytes 12..19 u64 payload size
 *   bytes 20..23 u32 CRC32 (IEEE, reflected) of the payload
 *   bytes 24..   payload
 *
 * Writes are atomic: the blob goes to <path>.<pid>.tmp, is fsync'd,
 * the previous checkpoint (if any) rotates to <path>.prev, and the
 * tmp file renames into place. The in-flight name carries the writer
 * pid so multiple processes checkpointing into one directory (e.g.
 * DSE shards) never clobber each other's half-written files; orphaned
 * tmps whose writer died are reclaimed by
 * sweepOrphanCheckpointTmps(). A truncated, bit-flipped, or otherwise
 * corrupt <path> is detected on read (DataLoss) and
 * readCheckpointWithFallback transparently falls back to the rotated
 * previous-good file.
 *
 * Fault-injection sites: "ckpt.write" (truncate, bitflip, alloc) and
 * "ckpt.read" (alloc).
 */

#ifndef LRD_ROBUST_CHECKPOINT_H
#define LRD_ROBUST_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lrd {

/** CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320). */
uint32_t crc32(const uint8_t *data, size_t n);
uint32_t crc32(const std::vector<uint8_t> &bytes);

/** Rotation target for the previous good checkpoint: <path>.prev. */
std::string checkpointPrevPath(const std::string &path);

/**
 * In-flight write target for this process: <path>.<pid>.tmp. The pid
 * component keeps concurrent writers in a shared directory from
 * racing on one tmp name (and from sweeping each other's live
 * writes).
 */
std::string checkpointTmpPath(const std::string &path);

/** Whether `pid` names a live process (EPERM counts as alive). */
bool processAlive(int64_t pid);

/**
 * Remove checkpoint temp files ("<name>.<pid>.tmp") in `dir` whose
 * writer process is no longer alive. A live sibling's in-flight write
 * is left untouched. Returns the number of orphans removed.
 */
int64_t sweepOrphanCheckpointTmps(const std::string &dir);

/**
 * Atomically write a checkpoint (write-tmp, fsync, rotate, rename).
 * `version` is the pipeline's payload-format version and must match
 * on read.
 */
Status writeCheckpoint(const std::string &path, uint32_t version,
                       const std::vector<uint8_t> &payload);

/**
 * Read and verify one checkpoint file. NotFound when missing,
 * DataLoss when truncated/corrupt, InvalidArgument on a version
 * mismatch.
 */
Result<std::vector<uint8_t>> readCheckpoint(const std::string &path,
                                            uint32_t version);

/**
 * readCheckpoint(path), falling back to <path>.prev when the primary
 * is missing or damaged. `usedFallback` (optional) reports whether
 * the previous-good file supplied the payload.
 */
Result<std::vector<uint8_t>>
readCheckpointWithFallback(const std::string &path, uint32_t version,
                           bool *usedFallback = nullptr);

} // namespace lrd

#endif // LRD_ROBUST_CHECKPOINT_H
