/**
 * @file
 * Bounded deterministic retry-with-reseed for transient numeric
 * failures. Attempt k draws its randomness from an Rng seeded purely
 * by (baseSeed, k), so the retry sequence — and therefore the final
 * result — depends only on the attempt number, never on timing,
 * thread identity, or how many other retries ran elsewhere.
 */

#ifndef LRD_ROBUST_RETRY_H
#define LRD_ROBUST_RETRY_H

#include <cstdint>

#include "robust/recovery.h"
#include "util/rng.h"

namespace lrd {

/**
 * Run fn(rng, attempt) up to maxAttempts times, stopping at the first
 * ok Status. Attempt 0 is the original try; each later attempt gets a
 * fresh Rng derived from baseSeed and the attempt index. Returns the
 * first ok Status, or the last failure when every attempt failed.
 */
/**
 * Exponential backoff in abstract work units ("ticks"): attempt k
 * (0-based) waits baseTicks * 2^k, capped at maxTicks. Pure integer
 * arithmetic on the attempt number — never wall clock — so a retry
 * schedule built from it is bitwise reproducible. Used by the serve
 * layer's client-side retry (a shed request re-offers itself at
 * tick + backoffTicks(base, attempt)).
 */
inline int64_t
backoffTicks(int64_t baseTicks, int attempt, int64_t maxTicks = 1 << 20)
{
    if (baseTicks <= 0)
        return 0;
    int64_t ticks = baseTicks;
    for (int k = 0; k < attempt && ticks < maxTicks; ++k)
        ticks *= 2;
    return ticks < maxTicks ? ticks : maxTicks;
}

/**
 * Block the calling thread for `ticks` milliseconds. The one
 * sanctioned sleep for process supervisors (shard relaunch backoff):
 * it lives in src/robust/ because pipeline and numeric code must
 * never sleep, and it only ever delays operational actions — never
 * anything that feeds a deterministic result.
 */
void sleepForBackoff(int64_t ticks);

template <class Fn>
Status
retryWithReseed(uint64_t baseSeed, int maxAttempts, const Fn &fn)
{
    Status last;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        if (attempt > 0)
            noteRetry();
        Rng rng(baseSeed
                ^ (0x9E3779B97F4A7C15ULL
                   * static_cast<uint64_t>(attempt + 1)));
        last = fn(rng, attempt);
        if (last.ok())
            return last;
    }
    return last;
}

} // namespace lrd

#endif // LRD_ROBUST_RETRY_H
