/**
 * @file
 * Graceful shutdown: POSIX signal handling, simulated kills, and the
 * Status → process-exit-code mapping.
 *
 * The first SIGINT/SIGTERM requests cooperative cancellation (see
 * robust/cancel.h) from an async-signal-safe handler — pipelines
 * drain in-flight chunks, write a final checkpoint, and surface a
 * Cancelled status that lrdtool maps to exit code kExitCancelled. A
 * second signal force-exits immediately with the POSIX convention
 * 128 + signo (130 for SIGINT, 143 for SIGTERM).
 *
 * Tests exercise the real handler path without an external killer:
 * pollCancelFault(site) turns an armed LRD_FAULT=<site>:cancel into
 * simulateKill(), which raises a real SIGINT when handlers are
 * installed and falls back to a direct requestCancel() otherwise.
 */

#ifndef LRD_ROBUST_SIGNAL_H
#define LRD_ROBUST_SIGNAL_H

#include "util/status.h"

namespace lrd {

// Process exit codes, documented in README.md. Scripts and CI key off
// these to distinguish outcomes without parsing logs.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;             ///< Generic failure.
inline constexpr int kExitDegraded = 2;          ///< Failure budget exceeded.
inline constexpr int kExitCancelled = 3;         ///< Signal / cancel request.
inline constexpr int kExitDeadline = 4;          ///< LRD_DEADLINE expired.
inline constexpr int kExitCorruptCheckpoint = 5; ///< Checkpoint data loss.
inline constexpr int kExitNonConvergence = 6;    ///< Kernel sweep cap hit.
inline constexpr int kExitUnavailable = 7;       ///< Response delivery failed.
inline constexpr int kExitShardFailed = 8;       ///< Shard died past retries.

/**
 * Map a pipeline Status to the documented process exit code.
 * kExitShardFailed is not produced here: it is reserved for the DSE
 * shard supervisor, which reports a shard that exhausted its retry
 * budget via a Status at site "dse.shard.retry" (see
 * dse/coordinator.h) that lrdtool maps to 8 explicitly.
 */
int exitCodeForStatus(const Status &status);

/**
 * Install the SIGINT/SIGTERM graceful-shutdown handlers (idempotent).
 * First signal: requestCancel(Signal). Second signal: immediate
 * _exit(128 + signo).
 */
void installSignalHandlers();

/** Whether installSignalHandlers() has run. */
bool signalHandlersInstalled();

/** Signals observed by the handlers since install / last reset. */
int signalsSeen();

/** Zero the signal counter so a test can deliver a fresh "first" signal. */
void resetSignalsForTest();

/**
 * Simulate an external kill at `site`: raise a real SIGINT when the
 * handlers are installed (exercising the genuine async path), else
 * request Test cancellation directly.
 */
void simulateKill(const char *site);

/** Injection point: LRD_FAULT=<site>:cancel triggers simulateKill(). */
void pollCancelFault(const char *site);

/**
 * Flush every observability artifact exactly once: stops the
 * telemetry sampler (final record + close) and writes any trace /
 * stats exports. Every lrdtool exit path — success, StatusError,
 * unexpected exception — funnels through this so a cancelled or
 * failing run still lands its flight-recorder data on disk.
 */
void shutdownFlush();

} // namespace lrd

#endif // LRD_ROBUST_SIGNAL_H
