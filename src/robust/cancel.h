/**
 * @file
 * Cooperative cancellation, deadlines, and the stall watchdog.
 *
 * One process-wide cancel token: anything (a signal handler, an
 * expired deadline, a test) can request cancellation, and every
 * long-running loop — the thread pool's chunk dispatcher, trainer
 * steps, evaluator items, DSE batches, Jacobi sweeps — polls
 * cancelRequested() (a single relaxed atomic load when idle) and
 * winds down cooperatively: in-flight chunks finish, partial outputs
 * are discarded or marked partial, final checkpoints are written, and
 * the cause surfaces as a Status (Cancelled / DeadlineExceeded).
 *
 * Deadlines come in two flavors (LRD_DEADLINE):
 *
 * - Work-unit budgets, `steps:<n>` / `items:<n>`: consumed only at
 *   serial program points (top of a trainer step, before an evaluator
 *   sweep, before a DSE batch) via consumeWorkBudget(), which
 *   admit-alls when called from inside a parallel region — so expiry
 *   lands at exactly the same work unit at any LRD_THREADS and the
 *   truncated run is bitwise reproducible.
 * - Wall clock, `wall:<secs>`: polled by checkCancellation() at
 *   pipeline boundaries only (never inside the numeric core), read
 *   off steady_clock.
 *
 * The watchdog (LRD_WATCHDOG=<secs>, opt-in) is a report-only
 * background thread: while any WatchdogSection is open it expects the
 * progress heartbeat (noteProgress(), fed by pool chunks, Jacobi
 * sweeps, and trainer steps) to keep advancing, and logs the stall
 * site plus metrics through obs when it does not.
 *
 * This module sits below src/parallel/ in the layering: the pool
 * includes cancel.h, never the reverse. Serial-point detection goes
 * through util/worker_lane.h.
 */

#ifndef LRD_ROBUST_CANCEL_H
#define LRD_ROBUST_CANCEL_H

#include <cstdint>
#include <string>

#include "util/status.h"

namespace lrd {

/** Who asked for the process to wind down. */
enum class CancelCause : int
{
    None = 0,
    Signal,   ///< SIGINT/SIGTERM arrived (robust/signal.h).
    Deadline, ///< An LRD_DEADLINE budget or wall limit expired.
    Watchdog, ///< Reserved: the watchdog is report-only today.
    Test,     ///< Simulated kill from an injected cancel fault.
};

/** Stable lowercase name for a cause ("signal", ...). */
const char *cancelCauseName(CancelCause cause);

/**
 * Whether cancellation has been requested. The disarmed fast path is
 * one relaxed atomic load — cheap enough for per-chunk and per-sweep
 * polling.
 */
bool cancelRequested();

/**
 * Request cooperative cancellation. The first cause wins; later
 * requests are no-ops. Async-signal-safe: performs only lock-free
 * atomic stores (the signal handler calls this directly). `site` must
 * be a string literal or other static-duration string.
 */
void requestCancel(CancelCause cause, const char *site);

/** The winning cause (None while not cancelled). */
CancelCause cancelCause();

/** Site that requested cancellation ("" while not cancelled). */
const char *cancelSite();

/**
 * The active cancellation as a Status at the observing `site`:
 * DeadlineExceeded for an expired deadline, Cancelled for a signal or
 * test kill, ok when no cancellation is pending.
 */
Status cancelStatus(const char *site);

/** Reset the token (tests, and in-process resume after a cancel). */
void clearCancelRequest();

// ---------------------------------------------------------------------
// Deadlines

/** Unit of an armed deadline. */
enum class DeadlineKind : int
{
    None = 0,
    Steps, ///< Trainer optimizer steps / DSE candidates.
    Items, ///< Evaluator benchmark items.
    Wall,  ///< Seconds of steady-clock wall time.
};

/** A parsed LRD_DEADLINE specification. */
struct Deadline
{
    DeadlineKind kind = DeadlineKind::None;
    int64_t budget = 0;      ///< Work units (Steps / Items).
    double wallSeconds = 0.0; ///< Limit in seconds (Wall).
};

/** Parse "steps:<n>", "items:<n>", or "wall:<secs>". */
Result<Deadline> parseDeadline(const std::string &text);

/** Arm `deadline` (resets the budget / restarts the wall timer). */
void setDeadline(const Deadline &deadline);

/** Disarm any deadline. */
void clearDeadline();

/** The armed deadline (kind None when disarmed). */
Deadline currentDeadline();

/**
 * Consume up to `n` units ("steps" / "items") from the armed budget
 * at a serial program point; returns how many were admitted. Returns
 * `n` unchanged when no matching budget is armed or when called from
 * inside a parallel region / a pool worker — budget accounting at
 * serial points only is what makes expiry deterministic at any
 * LRD_THREADS. Does NOT request cancellation: when fewer than `n`
 * units come back, finish the admitted prefix and then call
 * expireDeadline().
 */
int64_t consumeWorkBudget(const char *unit, int64_t n);

/** Request Deadline cancellation at `site` (budget ran dry). */
void expireDeadline(const char *site);

/**
 * Poll the wall-clock deadline (no-op unless `wall:` is armed and the
 * caller is at a serial point) and report the token: ok, or the
 * Cancelled / DeadlineExceeded status at `site`. This is the one call
 * pipelines make at their loop boundaries; the numeric core never
 * reads the wall clock.
 */
Status checkCancellation(const char *site);

/** Arm LRD_DEADLINE / start LRD_WATCHDOG from the environment. */
void initCancelFromEnv();

// ---------------------------------------------------------------------
// Watchdog

/**
 * Start the stall watchdog: while at least one WatchdogSection is
 * open, a missing progress heartbeat for `stallSeconds` logs the last
 * progress site and bumps the "watchdog.stalls" counter (report-only;
 * it never kills work). Restarts the monitor if already running.
 */
void startWatchdog(double stallSeconds);

/** Stop and join the watchdog thread (no-op when not running). */
void stopWatchdog();

/** Whether the watchdog thread is running. */
bool watchdogRunning();

/** Stalls detected since startWatchdog() (for tests and reports). */
int64_t watchdogStallCount();

/**
 * Progress heartbeat. One relaxed load when the watchdog is off; the
 * pool's chunk loop, Jacobi sweeps, and trainer steps call this.
 * `site` must be a string literal.
 */
void noteProgress(const char *site);

/**
 * RAII marker for a pipeline the watchdog should supervise. Doubles
 * as the telemetry phase label: the site name ("train", "eval",
 * "dse") tags every flight-recorder sample taken while the section
 * is open, and the previous phase is restored on exit so nested
 * sections attribute correctly.
 */
class WatchdogSection
{
  public:
    explicit WatchdogSection(const char *site);
    ~WatchdogSection();
    WatchdogSection(const WatchdogSection &) = delete;
    WatchdogSection &operator=(const WatchdogSection &) = delete;

  private:
    const char *prevPhase_;
};

} // namespace lrd

#endif // LRD_ROBUST_CANCEL_H
