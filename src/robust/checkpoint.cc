#include "robust/checkpoint.h"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace lrd {

namespace {

constexpr std::array<uint8_t, 8> kMagic = {'L', 'R', 'D', 'C',
                                           'K', 'P', 'T', '1'};
constexpr size_t kHeaderSize = 8 + 4 + 8 + 4;

void
putLe32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putLe64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

Status
writeAll(int fd, const uint8_t *data, size_t n, const std::string &path)
{
    size_t done = 0;
    while (done < n) {
        const ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0)
            return Status(StatusCode::Internal, "ckpt.write",
                          "write failed for " + path);
        done += static_cast<size_t>(w);
    }
    return Status();
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t n)
{
    // Bitwise reflected CRC32; checkpoints are small enough (model
    // weights a few MB) that a table-free loop is not a bottleneck.
    uint32_t crc = 0xFFFFFFFFU;
    for (size_t i = 0; i < n; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xEDB88320U & (0U - (crc & 1U)));
    }
    return crc ^ 0xFFFFFFFFU;
}

uint32_t
crc32(const std::vector<uint8_t> &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

std::string
checkpointPrevPath(const std::string &path)
{
    return path + ".prev";
}

std::string
checkpointTmpPath(const std::string &path)
{
    // lrd-lint: allow(hot-path-alloc) checkpoint writes are file I/O bound
    return path + "." + std::to_string(::getpid()) + ".tmp";
}

bool
processAlive(int64_t pid)
{
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    return errno == EPERM; // Alive, just not ours to signal.
}

int64_t
sweepOrphanCheckpointTmps(const std::string &dir)
{
    static Counter *orphansSwept =
        MetricsRegistry::instance().counter("checkpoint.orphanTmpSwept");
    std::error_code ec;
    int64_t swept = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        // Match "<anything>.<digits>.tmp" and extract the writer pid.
        if (name.size() < 5 || name.compare(name.size() - 4, 4, ".tmp") != 0)
            continue;
        const size_t pidEnd = name.size() - 4;
        const size_t pidDot = name.rfind('.', pidEnd - 1);
        if (pidDot == std::string::npos || pidDot + 1 == pidEnd)
            continue;
        const std::string pidText = name.substr(pidDot + 1,
                                                pidEnd - pidDot - 1);
        if (pidText.find_first_not_of("0123456789") != std::string::npos)
            continue;
        const int64_t pid = std::strtoll(pidText.c_str(), nullptr, 10);
        if (pid == static_cast<int64_t>(::getpid()) || processAlive(pid))
            continue; // Our own, or a live sibling's in-flight write.
        warn("checkpoint: sweeping orphaned temp file "
             + entry.path().string() + " (writer pid "
             + std::to_string(pid) + " is gone)");
        std::error_code rmEc;
        if (fs::remove(entry.path(), rmEc)) {
            orphansSwept->inc();
            ++swept;
        }
    }
    return swept;
}

Status
writeCheckpoint(const std::string &path, uint32_t version,
                const std::vector<uint8_t> &payload)
{
    LRD_TRACE_SPAN("ckpt.write");
    static Counter *writes =
        MetricsRegistry::instance().counter("checkpoint.writes");
    static Counter *staleSwept =
        MetricsRegistry::instance().counter("checkpoint.staleTmpSwept");

    if (faultAt("ckpt.write", FaultKind::Alloc))
        return Status(StatusCode::ResourceExhausted, "ckpt.write",
                      "injected allocation failure");

    // Sweep the leftover of one of *our* earlier writes that was
    // interrupted: a stale .tmp is never a valid resume source (it
    // was never renamed), only disk waste and confusion. The name is
    // pid-unique, so another live process's in-flight write in the
    // same directory is never touched; dead writers' orphans are
    // reclaimed separately by sweepOrphanCheckpointTmps().
    const std::string tmp = checkpointTmpPath(path);
    {
        std::error_code ec;
        if (fs::exists(tmp, ec)) {
            warn("checkpoint: sweeping stale temp file " + tmp
                 + " left by an interrupted writer");
            staleSwept->inc();
            fs::remove(tmp, ec);
        }
    }

    std::vector<uint8_t> blob;
    blob.reserve(kHeaderSize + payload.size());
    blob.insert(blob.end(), kMagic.begin(), kMagic.end());
    putLe32(blob, version);
    putLe64(blob, payload.size());
    putLe32(blob, crc32(payload));
    blob.insert(blob.end(), payload.begin(), payload.end());

    // Injected corruption happens after the CRC is computed, so the
    // damage is detectable on read — exactly like a real partial
    // write or medium error.
    if (faultAt("ckpt.write", FaultKind::BitFlip) && !payload.empty())
        blob[kHeaderSize + payload.size() / 2] ^= 0x10;
    size_t writeLen = blob.size();
    if (faultAt("ckpt.write", FaultKind::Truncate))
        writeLen = kHeaderSize + payload.size() / 2;

    // Injected kill mid-write: leave a half-written .tmp behind (never
    // renamed into place) exactly as a real killed writer would — the
    // sweep above reclaims it on the next write.
    if (faultAt("ckpt.write", FaultKind::Cancel)) {
        const int tmpFd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (tmpFd >= 0) {
            static_cast<void>(writeAll(tmpFd, blob.data(),
                                       kHeaderSize + payload.size() / 2,
                                       tmp));
            ::close(tmpFd);
        }
        return Status(StatusCode::Cancelled, "ckpt.write",
                      "injected kill during checkpoint write (stale .tmp "
                      "left behind)");
    }

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return Status(StatusCode::Internal, "ckpt.write",
                      "cannot open " + tmp);
    Status ws = writeAll(fd, blob.data(), writeLen, tmp);
    if (ws.ok() && ::fsync(fd) != 0)
        ws = Status(StatusCode::Internal, "ckpt.write",
                    "fsync failed for " + tmp);
    ::close(fd);
    if (!ws.ok())
        return ws;

    std::error_code ec;
    if (fs::exists(path, ec))
        fs::rename(path, checkpointPrevPath(path), ec);
    fs::rename(tmp, path, ec);
    if (ec)
        return Status(StatusCode::Internal, "ckpt.write",
                      "rename into " + path + " failed: " + ec.message());

    // Persist the rename itself: without an fsync of the parent
    // directory a crash right after the rename can roll the directory
    // entry back to the old checkpoint (or to nothing). Best-effort —
    // some filesystems refuse directory fsync.
    fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    const int dirFd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        if (::fsync(dirFd) != 0)
            warn("checkpoint: directory fsync failed for "
                 + parent.string());
        ::close(dirFd);
    } else {
        warn("checkpoint: cannot open parent directory " + parent.string()
             + " for fsync");
    }
    writes->inc();
    return Status();
}

Result<std::vector<uint8_t>>
readCheckpoint(const std::string &path, uint32_t version)
{
    LRD_TRACE_SPAN("ckpt.read");
    static Counter *corrupt =
        MetricsRegistry::instance().counter("checkpoint.corrupt");

    if (faultAt("ckpt.read", FaultKind::Alloc))
        return Status(StatusCode::ResourceExhausted, "ckpt.read",
                      "injected allocation failure");
    if (faultAt("ckpt.read", FaultKind::Cancel))
        return Status(StatusCode::Cancelled, "ckpt.read",
                      "injected cancellation during checkpoint read");

    std::ifstream ifs(path, std::ios::binary | std::ios::ate);
    if (!ifs)
        return Status(StatusCode::NotFound, "ckpt.read",
                      "no checkpoint at " + path);
    const auto size = static_cast<size_t>(ifs.tellg());
    ifs.seekg(0);
    std::vector<uint8_t> blob(size);
    ifs.read(reinterpret_cast<char *>(blob.data()),
             static_cast<std::streamsize>(size));
    if (!ifs)
        return Status(StatusCode::DataLoss, "ckpt.read",
                      "short read from " + path);

    if (size < kHeaderSize
        || !std::equal(kMagic.begin(), kMagic.end(), blob.begin())) {
        corrupt->inc();
        return Status(StatusCode::DataLoss, "ckpt.read",
                      path + " is not an lrd checkpoint (bad magic or "
                             "truncated header)");
    }
    const uint32_t gotVersion = getLe32(blob.data() + 8);
    if (gotVersion != version)
        return Status(StatusCode::InvalidArgument, "ckpt.read",
                      strCat(path, " has payload version ", gotVersion,
                             ", expected ", version));
    const uint64_t payloadSize = getLe64(blob.data() + 12);
    if (payloadSize != size - kHeaderSize) {
        corrupt->inc();
        return Status(StatusCode::DataLoss, "ckpt.read",
                      strCat(path, " truncated: header promises ",
                             payloadSize, " payload bytes, file has ",
                             size - kHeaderSize));
    }
    std::vector<uint8_t> payload(blob.begin()
                                     + static_cast<long>(kHeaderSize),
                                 blob.end());
    const uint32_t wantCrc = getLe32(blob.data() + 20);
    if (crc32(payload) != wantCrc) {
        corrupt->inc();
        return Status(StatusCode::DataLoss, "ckpt.read",
                      path + " failed its CRC32 check (corrupt payload)");
    }
    return payload;
}

Result<std::vector<uint8_t>>
readCheckpointWithFallback(const std::string &path, uint32_t version,
                           bool *usedFallback)
{
    static Counter *fallbacks =
        MetricsRegistry::instance().counter("checkpoint.fallbacks");
    if (usedFallback != nullptr)
        *usedFallback = false;
    Result<std::vector<uint8_t>> primary = readCheckpoint(path, version);
    if (primary.ok())
        return primary;
    Result<std::vector<uint8_t>> prev =
        readCheckpoint(checkpointPrevPath(path), version);
    if (prev.ok()) {
        warn("checkpoint: " + primary.status().toString()
             + "; using previous good checkpoint "
             + checkpointPrevPath(path));
        fallbacks->inc();
        if (usedFallback != nullptr)
            *usedFallback = true;
        return prev;
    }
    return primary;
}

} // namespace lrd
