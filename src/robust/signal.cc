#include "robust/signal.h"

#include <atomic>
#include <csignal>
#include <unistd.h>

#include "obs/obs.h"
#include "obs/sampler.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace lrd {

namespace {

std::atomic<bool> gInstalled{false};
std::atomic<int> gSignalsSeen{0};

extern "C" void
gracefulSignalHandler(int signo)
{
    // Async-signal-safe: atomics and _exit only. The first signal
    // requests cooperative cancellation; a second one means the user
    // is insisting, so force-exit with the POSIX 128+signo code.
    if (gSignalsSeen.fetch_add(1, std::memory_order_relaxed) >= 1)
        _exit(128 + signo);
    requestCancel(CancelCause::Signal, "signal");
    // One relaxed store: the telemetry sampler pushes a sample to
    // disk within its next wait slice, so an interrupted run keeps
    // its time series even if the cooperative drain never finishes.
    requestTelemetryFlush();
}

} // namespace

int
exitCodeForStatus(const Status &status)
{
    switch (status.code()) {
    case StatusCode::Ok:
        return kExitOk;
    case StatusCode::ResourceExhausted:
        return kExitDegraded;
    case StatusCode::Cancelled:
        return kExitCancelled;
    case StatusCode::DeadlineExceeded:
        return kExitDeadline;
    case StatusCode::DataLoss:
        return kExitCorruptCheckpoint;
    case StatusCode::NonConvergence:
        return kExitNonConvergence;
    case StatusCode::Unavailable:
        return kExitUnavailable;
    default:
        return kExitError;
    }
}

void
installSignalHandlers()
{
    if (gInstalled.exchange(true, std::memory_order_acq_rel))
        return;
    // Touch the cancel token now: its function-local static must be
    // constructed before the handler (which cannot safely construct
    // it) can possibly run.
    static_cast<void>(cancelRequested());
    struct sigaction sa = {};
    sa.sa_handler = gracefulSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // No SA_RESTART: let blocking syscalls wake up.
    if (sigaction(SIGINT, &sa, nullptr) != 0
        || sigaction(SIGTERM, &sa, nullptr) != 0)
        warn("installSignalHandlers: sigaction failed; "
             "graceful shutdown disabled");
}

bool
signalHandlersInstalled()
{
    return gInstalled.load(std::memory_order_acquire);
}

int
signalsSeen()
{
    return gSignalsSeen.load(std::memory_order_acquire);
}

void
resetSignalsForTest()
{
    gSignalsSeen.store(0, std::memory_order_release);
}

void
simulateKill(const char *site)
{
    if (signalHandlersInstalled()) {
        std::raise(SIGINT);
        return;
    }
    requestCancel(CancelCause::Test, site);
}

void
pollCancelFault(const char *site)
{
    if (faultAt(site, FaultKind::Cancel))
        simulateKill(site);
}

void
shutdownFlush()
{
    // flushObservability is itself idempotent (and stops the sampler
    // first), so racing exit paths are harmless.
    flushObservability();
}

} // namespace lrd
