/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * A fault is armed at a named site ("jacobi", "model.block",
 * "ckpt.write", ...) with a kind and an nth occurrence; the nth call
 * to faultAt(site, kind) — counted process-wide across threads —
 * reports the fault to exactly one caller. Injection points are
 * compiled in unconditionally but cost a single relaxed atomic load
 * and branch while nothing is armed.
 *
 * Armed either programmatically (tests) or from the environment:
 *
 *   LRD_FAULT=<site>:<kind>[:<nth>][,<site>:<kind>[:<nth>]...]
 *
 * with kinds nan, nonconv, truncate, bitflip, alloc, cancel and nth
 * defaulting to 1. setFault/clearFaults must not race with faultAt:
 * arm faults before the work under test starts.
 */

#ifndef LRD_ROBUST_FAULT_H
#define LRD_ROBUST_FAULT_H

#include <string>
#include <vector>

#include "util/status.h"

namespace lrd {

/** What the armed fault does at its injection point. */
enum class FaultKind : int
{
    Nan,         ///< Poison a value with a quiet NaN.
    NonConverge, ///< Force an iterative kernel to report non-convergence.
    Truncate,    ///< Cut a checkpoint file short (partial write).
    BitFlip,     ///< Flip one payload bit after the CRC is computed.
    Alloc,       ///< Simulate an allocation failure.
    Cancel,      ///< Stop a long-running loop mid-way (simulated kill).
};

/** Stable lowercase name used in LRD_FAULT ("nonconv", ...). */
const char *faultKindName(FaultKind kind);

/** One armed fault. */
struct FaultSpec
{
    std::string site;
    FaultKind kind = FaultKind::Nan;
    int nth = 1; ///< 1-based occurrence that fires.
};

/** Parse "<site>:<kind>[:<nth>]". */
Result<FaultSpec> parseFaultSpec(const std::string &text);

/** Arm one fault (additive; multiple specs may be live at once). */
void setFault(const FaultSpec &spec);

/** Disarm everything and reset all occurrence counters. */
void clearFaults();

/** Arm every comma-separated spec in $LRD_FAULT (fatal on bad spec). */
void initFaultsFromEnv();

/** Whether any fault is armed (one relaxed atomic load). */
bool faultInjectionEnabled();

/**
 * Count one occurrence at `site` for every armed spec of `kind`;
 * returns true when this call is a spec's nth occurrence. The cheap
 * disarmed path is a single atomic load + branch.
 */
bool faultAt(const char *site, FaultKind kind);

/** One compiled-in injection point (for docs and coverage tests). */
struct FaultSiteInfo
{
    const char *site;        ///< Name used in LRD_FAULT.
    const char *kinds;       ///< Comma-separated kinds the site honors.
    const char *description; ///< Where in the pipeline it fires.
};

/**
 * Every injection site compiled into the binary. `lrdtool faults`
 * renders this as the documented table, and tests/robust_test.cc
 * drives a cancel fault through each entry — adding a site without
 * registering it here fails that test.
 */
const std::vector<FaultSiteInfo> &registeredFaultSites();

} // namespace lrd

#endif // LRD_ROBUST_FAULT_H
