/**
 * @file
 * Recovery policy for faults surfaced as Status: strict (fail fast,
 * the historical behavior), degrade (record the failed item and keep
 * sweeping, bounded by a failure budget), or retry (bounded
 * deterministic re-execution before degrading).
 *
 * Selected via LRD_ROBUST:
 *
 *   LRD_ROBUST=strict
 *   LRD_ROBUST=degrade[:<budget-fraction>]      (default, budget 0.1)
 *   LRD_ROBUST=retry[:<attempts>[:<budget>]]    (attempts default 2)
 *
 * Also here: the thread-local numeric-fault slot that NaN/Inf layer
 * guards report into. A worker notes the first fault it sees while
 * scoring an item; the same thread takes the note at the item
 * boundary and records it into the item's fixed result slot, so the
 * outcome is identical no matter which pool worker ran the item.
 */

#ifndef LRD_ROBUST_RECOVERY_H
#define LRD_ROBUST_RECOVERY_H

#include <cstdint>
#include <string>

#include "util/status.h"

namespace lrd {

/** How pipelines react to a non-ok Status. */
enum class RobustMode : int
{
    Strict,  ///< fatal() at the detection site.
    Degrade, ///< Record the failure, continue, enforce the budget.
    Retry,   ///< Bounded deterministic retries, then degrade.
};

/** Stable lowercase name ("strict", "degrade", "retry"). */
const char *robustModeName(RobustMode mode);

/** Active recovery policy. */
struct RobustPolicy
{
    RobustMode mode = RobustMode::Degrade;
    double failureBudget = 0.10; ///< Max failed fraction per sweep.
    int maxRetries = 2;          ///< Bounded attempts in Retry mode.
};

/** Parse an LRD_ROBUST value. */
Result<RobustPolicy> parseRobustPolicy(const std::string &text);

/**
 * The process policy. First call reads $LRD_ROBUST (fatal on a bad
 * value); later calls return the cached or test-overridden policy.
 */
RobustPolicy robustPolicy();

/** Override the policy (tests; call between parallel regions). */
void setRobustPolicy(const RobustPolicy &policy);

/** Absolute item budget for a sweep of n items: ceil(budget * n). */
int64_t failureBudgetItems(const RobustPolicy &policy, int64_t n);

/**
 * Fatal when numFailed exceeds the policy budget for a sweep of
 * `total` items; otherwise logs the degradation summary. No-op when
 * numFailed is 0. `example` is the first failure's Status.
 */
void enforceFailureBudget(const char *site, int64_t numFailed,
                          int64_t total, const Status &example);

/** @name Thread-local numeric-fault slot
 *  @{
 */
/** Note a fault for the current item; first note wins. */
void noteNumericFault(Status status);

/** Take (and clear) the current thread's noted fault; ok when none. */
Status takeNumericFault();

/** Whether the current thread has an untaken noted fault. */
bool numericFaultPending();
/** @} */

/** Count one bounded retry (robust.retries). */
void noteRetry();

/**
 * Index of the first non-finite value in p[0..n), or -1. The common
 * all-finite case is one vectorizable |x| accumulation; the exact
 * element-wise scan runs only when that sum comes back non-finite.
 */
int64_t firstNonFinite(const float *p, int64_t n);

/**
 * Handle a non-finite value detected at `site` (layer `layer`, flat
 * element `index`): strict mode fails fast with the location; the
 * other modes note the fault for the current item and let the caller
 * degrade or retry at the item boundary.
 */
void reportNonFinite(const char *site, int64_t layer, int64_t index);

} // namespace lrd

#endif // LRD_ROBUST_RECOVERY_H
