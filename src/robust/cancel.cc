#include "robust/cancel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/worker_lane.h"

namespace lrd {

namespace {

/**
 * The process-wide cancel token. Everything the signal handler
 * touches is a lock-free atomic; the deadline fields are guarded by
 * mu and mirrored into atomics for the fast paths.
 */
struct CancelState
{
    std::atomic<int> cause{0}; ///< CancelCause; 0 = not cancelled.
    std::atomic<const char *> site{""};

    std::mutex mu; ///< Serializes deadline (re)configuration.
    Deadline deadline;
    Timer wallTimer;
    std::atomic<bool> stepsArmed{false};
    std::atomic<bool> itemsArmed{false};
    std::atomic<bool> wallArmed{false};
    std::atomic<int64_t> unitsLeft{0};
};

CancelState &
state()
{
    static CancelState s;
    return s;
}

/** True at a serial program point (not inside / below a pool region). */
bool
atSerialPoint()
{
    return !inParallelRegion() && workerLane() == 0;
}

} // namespace

const char *
cancelCauseName(CancelCause cause)
{
    switch (cause) {
    case CancelCause::None:
        return "none";
    case CancelCause::Signal:
        return "signal";
    case CancelCause::Deadline:
        return "deadline";
    case CancelCause::Watchdog:
        return "watchdog";
    case CancelCause::Test:
        return "test";
    }
    return "unknown";
}

bool
cancelRequested()
{
    return state().cause.load(std::memory_order_relaxed) != 0;
}

void
requestCancel(CancelCause cause, const char *site)
{
    if (cause == CancelCause::None)
        return;
    CancelState &s = state();
    int expected = 0;
    // First cause wins. Async-signal-safe: CAS + store only — no
    // locks, no allocation, no logging.
    if (s.cause.compare_exchange_strong(expected, static_cast<int>(cause),
                                        std::memory_order_acq_rel))
        s.site.store(site, std::memory_order_release);
}

CancelCause
cancelCause()
{
    return static_cast<CancelCause>(
        state().cause.load(std::memory_order_acquire));
}

const char *
cancelSite()
{
    return state().site.load(std::memory_order_acquire);
}

Status
cancelStatus(const char *site)
{
    const CancelCause cause = cancelCause();
    if (cause == CancelCause::None)
        return Status();
    const StatusCode code = cause == CancelCause::Deadline
                                ? StatusCode::DeadlineExceeded
                                : StatusCode::Cancelled;
    return Status(code, site,
                  strCat("cancellation requested (", cancelCauseName(cause),
                         ") at ", cancelSite()));
}

void
clearCancelRequest()
{
    CancelState &s = state();
    s.cause.store(0, std::memory_order_release);
    s.site.store("", std::memory_order_release);
}

// ---------------------------------------------------------------------
// Deadlines

Result<Deadline>
parseDeadline(const std::string &text)
{
    const size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0)
        return Status(StatusCode::InvalidArgument, "deadline.parse",
                      "'" + text
                          + "' is not steps:<n>, items:<n>, or wall:<secs>");
    const std::string unit = text.substr(0, colon);
    const std::string amount = text.substr(colon + 1);
    Deadline d;
    if (unit == "steps")
        d.kind = DeadlineKind::Steps;
    else if (unit == "items")
        d.kind = DeadlineKind::Items;
    else if (unit == "wall")
        d.kind = DeadlineKind::Wall;
    else
        return Status(StatusCode::InvalidArgument, "deadline.parse",
                      "unknown deadline unit '" + unit
                          + "' (steps, items, wall)");
    char *end = nullptr;
    if (d.kind == DeadlineKind::Wall) {
        d.wallSeconds = std::strtod(amount.c_str(), &end);
        if (amount.empty() || end == nullptr || *end != '\0'
            || !(d.wallSeconds > 0.0))
            return Status(StatusCode::InvalidArgument, "deadline.parse",
                          "wall seconds must be a positive number, got '"
                              + amount + "'");
    } else {
        const long long n = std::strtoll(amount.c_str(), &end, 10);
        if (amount.empty() || end == nullptr || *end != '\0' || n < 1)
            return Status(StatusCode::InvalidArgument, "deadline.parse",
                          "budget must be a positive integer, got '" + amount
                              + "'");
        d.budget = static_cast<int64_t>(n);
    }
    return d;
}

void
setDeadline(const Deadline &deadline)
{
    CancelState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.deadline = deadline;
    s.unitsLeft.store(deadline.budget, std::memory_order_release);
    s.wallTimer.reset();
    s.stepsArmed.store(deadline.kind == DeadlineKind::Steps,
                       std::memory_order_release);
    s.itemsArmed.store(deadline.kind == DeadlineKind::Items,
                       std::memory_order_release);
    s.wallArmed.store(deadline.kind == DeadlineKind::Wall,
                      std::memory_order_release);
}

void
clearDeadline()
{
    setDeadline(Deadline{});
}

Deadline
currentDeadline()
{
    CancelState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.deadline;
}

int64_t
consumeWorkBudget(const char *unit, int64_t n)
{
    CancelState &s = state();
    const bool steps = unit[0] == 's';
    const bool armed =
        steps ? s.stepsArmed.load(std::memory_order_acquire)
              : s.itemsArmed.load(std::memory_order_acquire);
    if (!armed || n <= 0)
        return n;
    // Budget accounting happens only at serial program points; a
    // nested consumer (e.g. an evaluator running inside a DSE
    // candidate on a pool worker) admits everything, so expiry lands
    // at the same outer work unit at any LRD_THREADS.
    if (!atSerialPoint())
        return n;
    int64_t left = s.unitsLeft.load(std::memory_order_acquire);
    while (true) {
        const int64_t admit = left < n ? left : n;
        if (admit <= 0)
            return 0;
        if (s.unitsLeft.compare_exchange_weak(left, left - admit,
                                              std::memory_order_acq_rel))
            return admit;
    }
}

void
expireDeadline(const char *site)
{
    static Counter *expiries =
        MetricsRegistry::instance().counter("cancel.deadlineExpiries");
    expiries->inc();
    requestCancel(CancelCause::Deadline, site);
}

namespace {

void
pollWallDeadline()
{
    CancelState &s = state();
    if (!s.wallArmed.load(std::memory_order_acquire) || !atSerialPoint())
        return;
    double limit = 0.0;
    double elapsed = 0.0;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        limit = s.deadline.wallSeconds;
        elapsed = s.wallTimer.elapsedSeconds();
    }
    if (elapsed >= limit)
        expireDeadline("deadline.wall");
}

} // namespace

Status
checkCancellation(const char *site)
{
    pollWallDeadline();
    if (!cancelRequested())
        return Status();
    return cancelStatus(site);
}

void
initCancelFromEnv()
{
    const char *deadline = std::getenv("LRD_DEADLINE");
    if (deadline != nullptr && *deadline != '\0') {
        Result<Deadline> parsed = parseDeadline(deadline);
        require(parsed.ok(), "LRD_DEADLINE: " + parsed.status().toString());
        setDeadline(parsed.value());
        inform(strCat("deadline armed: ", deadline));
    }
    const char *watchdog = std::getenv("LRD_WATCHDOG");
    if (watchdog != nullptr && *watchdog != '\0') {
        char *end = nullptr;
        const double secs = std::strtod(watchdog, &end);
        require(end != nullptr && *end == '\0' && secs > 0.0,
                strCat("LRD_WATCHDOG must be a positive number of seconds, "
                       "got '",
                       watchdog, "'"));
        startWatchdog(secs);
    }
}

// ---------------------------------------------------------------------
// Watchdog

namespace {

/**
 * Watchdog state. The monitor thread is report-only: it watches the
 * progress heartbeat while sections are open and logs stalls, but
 * never cancels or kills work itself.
 */
struct WatchdogState
{
    std::atomic<bool> armed{false}; ///< Gates the noteProgress fast path.
    std::atomic<int64_t> progress{0};
    std::atomic<const char *> lastSite{""};
    std::atomic<int> activeSections{0};
    std::atomic<const char *> sectionSite{""};
    std::atomic<int64_t> stalls{0};

    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    double stallSeconds = 0.0;
    std::thread monitor; // lrd-lint: allow(thread-outside-parallel)
};

WatchdogState &
watchdogState()
{
    static WatchdogState s;
    return s;
}

void
watchdogMain()
{
    WatchdogState &w = watchdogState();
    static Counter *stallCounter =
        MetricsRegistry::instance().counter("watchdog.stalls");
    static Gauge *stallGauge =
        MetricsRegistry::instance().gauge("watchdog.lastStallSeconds");
    double stallSeconds = 0.0;
    {
        std::lock_guard<std::mutex> lock(w.mu);
        stallSeconds = w.stallSeconds;
    }
    const double tickSeconds =
        stallSeconds / 4.0 < 0.01 ? 0.01
        : stallSeconds / 4.0 > 1.0 ? 1.0
                                   : stallSeconds / 4.0;
    const auto tick = std::chrono::duration<double>(tickSeconds);
    int64_t lastSeen = w.progress.load(std::memory_order_acquire);
    Timer sinceProgress;
    bool reported = false;
    std::unique_lock<std::mutex> lock(w.mu);
    while (!w.stopping) {
        w.cv.wait_for(lock, tick);
        if (w.stopping)
            break;
        const int64_t now = w.progress.load(std::memory_order_acquire);
        if (now != lastSeen
            || w.activeSections.load(std::memory_order_acquire) == 0) {
            lastSeen = now;
            sinceProgress.reset();
            reported = false;
            continue;
        }
        const double stalled = sinceProgress.elapsedSeconds();
        if (stalled < stallSeconds || reported)
            continue;
        // One report per stall episode; the next heartbeat re-arms it.
        reported = true;
        w.stalls.fetch_add(1, std::memory_order_acq_rel);
        stallCounter->inc();
        stallGauge->set(stalled);
        warn(strCat("watchdog: no progress for ", stalled,
                    "s in section '",
                    w.sectionSite.load(std::memory_order_acquire),
                    "' (last progress at '",
                    w.lastSite.load(std::memory_order_acquire), "')"));
    }
}

} // namespace

void
startWatchdog(double stallSeconds)
{
    require(stallSeconds > 0.0,
            "startWatchdog: stallSeconds must be positive");
    stopWatchdog();
    WatchdogState &w = watchdogState();
    {
        std::lock_guard<std::mutex> lock(w.mu);
        w.stopping = false;
        w.stallSeconds = stallSeconds;
        // The monitor is a supervisor, not a worker: it never computes,
        // so it lives outside the pool's deterministic lane structure.
        // lrd-lint: allow(thread-outside-parallel)
        w.monitor = std::thread(watchdogMain);
    }
    w.armed.store(true, std::memory_order_release);
    inform(strCat("watchdog armed: stall threshold ", stallSeconds, "s"));
}

void
stopWatchdog()
{
    WatchdogState &w = watchdogState();
    std::thread monitor; // lrd-lint: allow(thread-outside-parallel)
    {
        std::lock_guard<std::mutex> lock(w.mu);
        if (!w.monitor.joinable())
            return;
        w.stopping = true;
        monitor = std::move(w.monitor);
    }
    w.armed.store(false, std::memory_order_release);
    w.cv.notify_all();
    monitor.join();
}

bool
watchdogRunning()
{
    WatchdogState &w = watchdogState();
    std::lock_guard<std::mutex> lock(w.mu);
    return w.monitor.joinable();
}

int64_t
watchdogStallCount()
{
    return watchdogState().stalls.load(std::memory_order_acquire);
}

void
noteProgress(const char *site)
{
    WatchdogState &w = watchdogState();
    if (!w.armed.load(std::memory_order_relaxed))
        return;
    w.lastSite.store(site, std::memory_order_release);
    w.progress.fetch_add(1, std::memory_order_acq_rel);
}

WatchdogSection::WatchdogSection(const char *site)
    : prevPhase_(setTelemetryPhase(site))
{
    WatchdogState &w = watchdogState();
    w.sectionSite.store(site, std::memory_order_release);
    w.activeSections.fetch_add(1, std::memory_order_acq_rel);
    noteProgress(site);
}

WatchdogSection::~WatchdogSection()
{
    WatchdogState &w = watchdogState();
    w.activeSections.fetch_sub(1, std::memory_order_acq_rel);
    noteProgress("section.exit");
    setTelemetryPhase(prevPhase_);
}

} // namespace lrd
