#include "robust/recovery.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "robust/retry.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace lrd {

namespace {

struct PolicyState
{
    std::mutex mu;
    RobustPolicy policy;
    bool initialized = false;
};

PolicyState &
policyState()
{
    static PolicyState s;
    return s;
}

thread_local bool tlHasFault = false;
thread_local Status tlFault;

/** Parse a strictly positive double, or -1 on failure. */
double
parseFraction(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0' || v < 0.0
        || v > 1.0 || !std::isfinite(v))
        return -1.0;
    return v;
}

} // namespace

const char *
robustModeName(RobustMode mode)
{
    switch (mode) {
    case RobustMode::Strict:
        return "strict";
    case RobustMode::Degrade:
        return "degrade";
    case RobustMode::Retry:
        return "retry";
    }
    return "unknown";
}

Result<RobustPolicy>
parseRobustPolicy(const std::string &text)
{
    RobustPolicy p;
    const size_t c1 = text.find(':');
    const std::string mode =
        c1 == std::string::npos ? text : text.substr(0, c1);
    std::string rest =
        c1 == std::string::npos ? std::string() : text.substr(c1 + 1);

    if (mode == "strict") {
        p.mode = RobustMode::Strict;
        if (!rest.empty())
            return Status(StatusCode::InvalidArgument, "robust.parse",
                          "strict takes no arguments");
        return p;
    }
    if (mode == "degrade") {
        p.mode = RobustMode::Degrade;
        if (!rest.empty()) {
            const double budget = parseFraction(rest);
            if (budget < 0.0)
                return Status(StatusCode::InvalidArgument, "robust.parse",
                              "degrade budget must be a fraction in "
                              "[0, 1], got '" + rest + "'");
            p.failureBudget = budget;
        }
        return p;
    }
    if (mode == "retry") {
        p.mode = RobustMode::Retry;
        if (!rest.empty()) {
            const size_t c2 = rest.find(':');
            const std::string attempts =
                c2 == std::string::npos ? rest : rest.substr(0, c2);
            char *end = nullptr;
            const long n = std::strtol(attempts.c_str(), &end, 10);
            if (attempts.empty() || end == nullptr || *end != '\0'
                || n < 1)
                return Status(StatusCode::InvalidArgument, "robust.parse",
                              "retry attempts must be a positive "
                              "integer, got '" + attempts + "'");
            p.maxRetries = static_cast<int>(n);
            if (c2 != std::string::npos) {
                const double budget = parseFraction(rest.substr(c2 + 1));
                if (budget < 0.0)
                    return Status(StatusCode::InvalidArgument,
                                  "robust.parse",
                                  "retry budget must be a fraction in "
                                  "[0, 1]");
                p.failureBudget = budget;
            }
        }
        return p;
    }
    return Status(StatusCode::InvalidArgument, "robust.parse",
                  "unknown mode '" + mode
                      + "' (strict, degrade[:<budget>], "
                        "retry[:<attempts>[:<budget>]])");
}

RobustPolicy
robustPolicy()
{
    PolicyState &s = policyState();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.initialized) {
        s.initialized = true;
        const char *env = std::getenv("LRD_ROBUST");
        if (env != nullptr && *env != '\0') {
            Result<RobustPolicy> parsed = parseRobustPolicy(env);
            require(parsed.ok(),
                    "LRD_ROBUST: " + parsed.status().toString());
            s.policy = parsed.value();
        }
    }
    return s.policy;
}

void
setRobustPolicy(const RobustPolicy &policy)
{
    PolicyState &s = policyState();
    std::lock_guard<std::mutex> lock(s.mu);
    s.policy = policy;
    s.initialized = true;
}

int64_t
failureBudgetItems(const RobustPolicy &policy, int64_t n)
{
    return static_cast<int64_t>(
        std::ceil(policy.failureBudget * static_cast<double>(n)));
}

void
enforceFailureBudget(const char *site, int64_t numFailed, int64_t total,
                     const Status &example)
{
    if (numFailed == 0)
        return;
    static Counter *degraded =
        MetricsRegistry::instance().counter("robust.degradedItems");
    degraded->add(numFailed);
    const RobustPolicy policy = robustPolicy();
    const int64_t budget = failureBudgetItems(policy, total);
    if (numFailed > budget)
        // Carries the structured code through the unwind so lrdtool
        // can exit with the documented degraded-past-budget code.
        throwStatus(Status(
            StatusCode::ResourceExhausted, site,
            strCat(numFailed, " of ", total,
                   " items failed, exceeding the failure budget of ",
                   budget, " (LRD_ROBUST=", robustModeName(policy.mode),
                   ", budget ", policy.failureBudget, "); first: ",
                   example.toString())));
    warn(strCat(site, ": degraded ", numFailed, " of ", total,
                " items (budget ", budget, "); first: ",
                example.toString()));
}

void
noteNumericFault(Status status)
{
    if (tlHasFault || status.ok())
        return;
    tlFault = std::move(status);
    tlHasFault = true;
}

Status
takeNumericFault()
{
    if (!tlHasFault)
        return Status();
    tlHasFault = false;
    Status s = std::move(tlFault);
    tlFault = Status();
    return s;
}

bool
numericFaultPending()
{
    return tlHasFault;
}

void
noteRetry()
{
    static Counter *retries =
        MetricsRegistry::instance().counter("robust.retries");
    retries->inc();
}

int64_t
firstNonFinite(const float *p, int64_t n)
{
    // |x| accumulation: any NaN or Inf poisons the sum, and the
    // library's activation magnitudes cannot overflow a float sum.
    float acc = 0.0F;
    for (int64_t i = 0; i < n; ++i)
        acc += std::fabs(p[i]);
    if (std::isfinite(acc))
        return -1;
    for (int64_t i = 0; i < n; ++i)
        if (!std::isfinite(p[i]))
            return i;
    return -1; // Sum overflowed without a non-finite element.
}

void
sleepForBackoff(int64_t ticks)
{
    if (ticks <= 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(ticks));
}

void
reportNonFinite(const char *site, int64_t layer, int64_t index)
{
    static Counter *nonfinite =
        MetricsRegistry::instance().counter("robust.nonfinite");
    nonfinite->inc();
    Status status(StatusCode::NonFinite, site,
                  strCat("first non-finite value in layer ", layer,
                         " at flat index ", index));
    if (robustPolicy().mode == RobustMode::Strict)
        fatal(status.toString());
    noteNumericFault(std::move(status));
}

} // namespace lrd
