#include "linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/signal.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

QrResult
qrDecompose(const Tensor &a)
{
    require(a.rank() == 2, "qrDecompose: input must be a matrix");
    const int64_t m = a.dim(0), n = a.dim(1);
    const int64_t k = std::min(m, n);

    // Work in double for stability; R accumulates in-place.
    std::vector<double> r(static_cast<size_t>(m * n));
    for (int64_t i = 0; i < m * n; ++i)
        r[static_cast<size_t>(i)] = a[i];

    // Householder vectors stored per reflection.
    std::vector<std::vector<double>> vs;
    vs.reserve(static_cast<size_t>(k));

    for (int64_t j = 0; j < k; ++j) {
        // Build reflector for column j, rows j..m-1.
        double normx = 0.0;
        for (int64_t i = j; i < m; ++i) {
            const double x = r[static_cast<size_t>(i * n + j)];
            normx += x * x;
        }
        normx = std::sqrt(normx);
        std::vector<double> v(static_cast<size_t>(m - j), 0.0);
        const double x0 = r[static_cast<size_t>(j * n + j)];
        if (normx == 0.0) {
            // Degenerate column: identity reflector.
            vs.push_back(std::move(v));
            continue;
        }
        const double alpha = x0 >= 0.0 ? -normx : normx;
        v[0] = x0 - alpha;
        for (int64_t i = j + 1; i < m; ++i)
            v[static_cast<size_t>(i - j)] = r[static_cast<size_t>(i * n + j)];
        double vnorm2 = 0.0;
        for (double x : v)
            vnorm2 += x * x;
        if (vnorm2 == 0.0) {
            vs.push_back(std::move(v));
            continue;
        }
        // Apply H = I - 2 v v^T / (v^T v) to trailing columns.
        for (int64_t c = j; c < n; ++c) {
            double proj = 0.0;
            for (int64_t i = j; i < m; ++i)
                proj += v[static_cast<size_t>(i - j)]
                        * r[static_cast<size_t>(i * n + c)];
            const double f = 2.0 * proj / vnorm2;
            for (int64_t i = j; i < m; ++i)
                r[static_cast<size_t>(i * n + c)]
                    -= f * v[static_cast<size_t>(i - j)];
        }
        vs.push_back(std::move(v));
    }

    // Q = H_0 H_1 ... H_{k-1} applied to the thin identity.
    std::vector<double> q(static_cast<size_t>(m * k), 0.0);
    for (int64_t i = 0; i < k; ++i)
        q[static_cast<size_t>(i * k + i)] = 1.0;
    for (int64_t j = k - 1; j >= 0; --j) {
        const auto &v = vs[static_cast<size_t>(j)];
        double vnorm2 = 0.0;
        for (double x : v)
            vnorm2 += x * x;
        if (vnorm2 == 0.0)
            continue;
        for (int64_t c = 0; c < k; ++c) {
            double proj = 0.0;
            for (int64_t i = j; i < m; ++i)
                proj += v[static_cast<size_t>(i - j)]
                        * q[static_cast<size_t>(i * k + c)];
            const double f = 2.0 * proj / vnorm2;
            for (int64_t i = j; i < m; ++i)
                q[static_cast<size_t>(i * k + c)]
                    -= f * v[static_cast<size_t>(i - j)];
        }
    }

    QrResult out{Tensor({m, k}), Tensor({k, n})};
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < k; ++j)
            out.q(i, j) = static_cast<float>(q[static_cast<size_t>(i * k + j)]);
    for (int64_t i = 0; i < k; ++i)
        for (int64_t j = 0; j < n; ++j)
            out.r(i, j) =
                j >= i ? static_cast<float>(r[static_cast<size_t>(i * n + j)])
                       : 0.0F;
    return out;
}

EigenResult
symmetricEigen(const Tensor &s, int maxSweeps)
{
    require(s.rank() == 2 && s.dim(0) == s.dim(1),
            "symmetricEigen: input must be square");
    const int64_t n = s.dim(0);

    // Copy into double, enforcing symmetry.
    std::vector<double> a(static_cast<size_t>(n * n));
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < n; ++j)
            a[static_cast<size_t>(i * n + j)] =
                0.5 * (static_cast<double>(s(i, j)) + s(j, i));

    std::vector<double> v(static_cast<size_t>(n * n), 0.0);
    for (int64_t i = 0; i < n; ++i)
        v[static_cast<size_t>(i * n + i)] = 1.0;

    auto off = [&]() {
        double sum = 0.0;
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = i + 1; j < n; ++j)
                sum += a[static_cast<size_t>(i * n + j)]
                       * a[static_cast<size_t>(i * n + j)];
        return sum;
    };

    double normA = 0.0;
    for (double x : a)
        normA += x * x;
    const double tol = 1e-24 * (normA > 0.0 ? normA : 1.0);

    struct JacobiMetrics
    {
        Counter *sweeps;
        Counter *nonconverged;
        Histogram *sweepsPerCall;
    };
    static JacobiMetrics jm = [] {
        MetricsRegistry &reg = MetricsRegistry::instance();
        return JacobiMetrics{reg.counter("jacobi.sweeps"),
                             reg.counter("jacobi.nonconverged"),
                             reg.histogram("jacobi.sweepsPerCall")};
    }();

    // Injected non-convergence: run zero sweeps so the loop exits with
    // the off-diagonal norm untouched and the status path below fires.
    const bool forceNonConverge = faultAt("jacobi", FaultKind::NonConverge);
    if (forceNonConverge)
        maxSweeps = 0;
    pollCancelFault("jacobi");

    // Evaluate the off-diagonal norm once up front and once after each
    // sweep: the same sequence of off() evaluations as the plain
    // `off() > tol` loop condition, so results stay bitwise identical,
    // but the current norm is available as a trace-span payload.
    int sweepsDone = 0;
    bool cancelled = false;
    double offNow = off();
    for (int sweep = 0; sweep < maxSweeps && offNow > tol; ++sweep) {
        // Sweep boundaries are the eigensolver's cancellation points:
        // a partially rotated matrix only ever escapes with a
        // Cancelled status telling the caller to discard it.
        if (cancelRequested()) {
            cancelled = true;
            break;
        }
        LRD_TRACE_SPAN("jacobi.sweep", offNow);
        for (int64_t p = 0; p < n - 1; ++p) {
            for (int64_t q = p + 1; q < n; ++q) {
                const double apq = a[static_cast<size_t>(p * n + q)];
                if (std::abs(apq) < 1e-300)
                    continue;
                const double app = a[static_cast<size_t>(p * n + p)];
                const double aqq = a[static_cast<size_t>(q * n + q)];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0)
                                 / (std::abs(theta)
                                    + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double sn = t * c;
                // Rotate rows/cols p and q of A. Each index touches
                // disjoint elements, so the loops parallelize for
                // large matrices (the 2048 grain keeps small Jacobi
                // problems dispatch-free and inline).
                parallelFor(0, n, 2048, [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                        const double aip =
                            a[static_cast<size_t>(i * n + p)];
                        const double aiq =
                            a[static_cast<size_t>(i * n + q)];
                        a[static_cast<size_t>(i * n + p)] =
                            c * aip - sn * aiq;
                        a[static_cast<size_t>(i * n + q)] =
                            sn * aip + c * aiq;
                    }
                });
                parallelFor(0, n, 2048, [&](int64_t lo, int64_t hi) {
                    for (int64_t j = lo; j < hi; ++j) {
                        const double apj =
                            a[static_cast<size_t>(p * n + j)];
                        const double aqj =
                            a[static_cast<size_t>(q * n + j)];
                        a[static_cast<size_t>(p * n + j)] =
                            c * apj - sn * aqj;
                        a[static_cast<size_t>(q * n + j)] =
                            sn * apj + c * aqj;
                    }
                });
                // Accumulate eigenvectors.
                parallelFor(0, n, 2048, [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                        const double vip =
                            v[static_cast<size_t>(i * n + p)];
                        const double viq =
                            v[static_cast<size_t>(i * n + q)];
                        v[static_cast<size_t>(i * n + p)] =
                            c * vip - sn * viq;
                        v[static_cast<size_t>(i * n + q)] =
                            sn * vip + c * viq;
                    }
                });
            }
        }
        ++sweepsDone;
        jm.sweeps->inc();
        noteProgress("jacobi.sweep");
        offNow = off();
    }
    jm.sweepsPerCall->record(sweepsDone);

    Status convergence;
    if (cancelled) {
        convergence = cancelStatus("jacobi");
    } else if (forceNonConverge || offNow > tol) {
        jm.nonconverged->inc();
        convergence = Status(
            StatusCode::NonConvergence, "jacobi",
            strCat("off-diagonal norm ", offNow, " above tolerance ", tol,
                   " after ", sweepsDone, " sweeps"));
    }

    // Sort descending by eigenvalue.
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
        return a[static_cast<size_t>(x * n + x)]
               > a[static_cast<size_t>(y * n + y)];
    });

    EigenResult out;
    out.status = std::move(convergence);
    out.sweeps = sweepsDone;
    out.values.resize(static_cast<size_t>(n));
    out.vectors = Tensor({n, n});
    for (int64_t j = 0; j < n; ++j) {
        const int64_t src = order[static_cast<size_t>(j)];
        out.values[static_cast<size_t>(j)] =
            a[static_cast<size_t>(src * n + src)];
        for (int64_t i = 0; i < n; ++i)
            out.vectors(i, j) =
                static_cast<float>(v[static_cast<size_t>(i * n + src)]);
    }
    return out;
}

Tensor
SvdResult::reconstruct() const
{
    // U diag(s) V^T computed as (U * diag(s)) * V^T.
    Tensor us = u;
    const int64_t m = u.dim(0), k = u.dim(1);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < k; ++j)
            us(i, j) *= static_cast<float>(s[static_cast<size_t>(j)]);
    return matmulTransB(us, v);
}

namespace {

/**
 * SVD core for matrices where m <= n: eigendecompose A A^T (m x m),
 * then V = A^T U / sigma. Columns with (near-)zero singular values get
 * zero right vectors; they carry no energy in the reconstruction.
 */
SvdResult
svdShortFat(const Tensor &a)
{
    const int64_t m = a.dim(0), n = a.dim(1);
    Tensor gram = matmulTransB(a, a); // (m x m)
    EigenResult eig = symmetricEigen(gram);

    SvdResult out;
    out.status = eig.status;
    out.u = eig.vectors; // (m x m)
    out.s.resize(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i)
        out.s[static_cast<size_t>(i)] =
            std::sqrt(std::max(0.0, eig.values[static_cast<size_t>(i)]));

    // V = A^T U scaled by 1/sigma.
    Tensor v = matmulTransA(a, out.u); // (n x m)
    const double eps = 1e-12 * (out.s.empty() ? 1.0 : out.s[0] + 1.0);
    for (int64_t j = 0; j < m; ++j) {
        const double sj = out.s[static_cast<size_t>(j)];
        const float inv = sj > eps ? static_cast<float>(1.0 / sj) : 0.0F;
        for (int64_t i = 0; i < n; ++i)
            v(i, j) *= inv;
    }
    out.v = std::move(v);
    return out;
}

} // namespace

SvdResult
svd(const Tensor &a)
{
    LRD_TRACE_SPAN("svd");
    static Counter *calls =
        MetricsRegistry::instance().counter("svd.calls");
    calls->inc();
    require(a.rank() == 2, "svd: input must be a matrix");
    const int64_t m = a.dim(0), n = a.dim(1);
    require(m > 0 && n > 0, "svd: empty matrix");
    if (m <= n)
        return svdShortFat(a);
    // Tall: factor the transpose and swap U <-> V.
    SvdResult t = svdShortFat(transpose2d(a));
    SvdResult out;
    out.status = std::move(t.status);
    out.u = std::move(t.v);
    out.v = std::move(t.u);
    out.s = std::move(t.s);
    return out;
}

SvdResult
truncatedSvd(const Tensor &a, int64_t k)
{
    require(a.rank() == 2, "truncatedSvd: input must be a matrix");
    const int64_t m = a.dim(0), n = a.dim(1);
    require(k >= 1 && k <= std::min(m, n),
            strCat("truncatedSvd: rank ", k, " invalid for ",
                   shapeToString(a.shape())));
    SvdResult full = svd(a);
    SvdResult out;
    out.status = std::move(full.status);
    out.u = Tensor({m, k});
    out.v = Tensor({n, k});
    out.s.assign(full.s.begin(), full.s.begin() + k);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < k; ++j)
            out.u(i, j) = full.u(i, j);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < k; ++j)
            out.v(i, j) = full.v(i, j);
    return out;
}

Tensor
leftSingularVectors(const Tensor &a, int64_t k, Status *convergence)
{
    require(a.rank() == 2, "leftSingularVectors: input must be a matrix");
    require(k >= 1 && k <= a.dim(0),
            strCat("leftSingularVectors: rank ", k, " invalid for ",
                   shapeToString(a.shape())));
    // Always via the (m x m) Gram matrix: we only need U.
    Tensor gram = matmulTransB(a, a);
    EigenResult eig = symmetricEigen(gram);
    if (convergence != nullptr && convergence->ok() && !eig.status.ok())
        *convergence = eig.status;
    Tensor u({a.dim(0), k});
    for (int64_t i = 0; i < a.dim(0); ++i)
        for (int64_t j = 0; j < k; ++j)
            u(i, j) = eig.vectors(i, j);
    return u;
}

SvdResult
randomizedSvd(const Tensor &a, int64_t k, Rng &rng, int64_t oversample,
              int powerIters)
{
    require(a.rank() == 2, "randomizedSvd: input must be a matrix");
    const int64_t m = a.dim(0), n = a.dim(1);
    require(k >= 1 && k <= std::min(m, n),
            strCat("randomizedSvd: rank ", k, " invalid for ",
                   shapeToString(a.shape())));
    const int64_t l = std::min(k + oversample, std::min(m, n));

    // Range finder: Q approximates the column space of A.
    Tensor omega = Tensor::randn({n, l}, rng);
    Tensor y = matmul(a, omega); // (m x l)
    Tensor q = qrDecompose(y).q;
    for (int iter = 0; iter < powerIters; ++iter) {
        Tensor z = matmulTransA(a, q); // (n x l)
        Tensor qz = qrDecompose(z).q;
        y = matmul(a, qz);
        q = qrDecompose(y).q;
    }

    // Project and factor the small matrix B = Q^T A (l x n).
    Tensor b = matmulTransA(q, a);
    SvdResult small = truncatedSvd(b, k);

    SvdResult out;
    out.status = std::move(small.status);
    out.u = matmul(q, small.u);
    out.s = std::move(small.s);
    out.v = std::move(small.v);
    return out;
}

double
orthonormalityError(const Tensor &q)
{
    require(q.rank() == 2, "orthonormalityError: input must be a matrix");
    Tensor gram = matmulTransA(q, q);
    const int64_t k = gram.dim(0);
    double err = 0.0;
    for (int64_t i = 0; i < k; ++i) {
        for (int64_t j = 0; j < k; ++j) {
            const double target = i == j ? 1.0 : 0.0;
            const double d = gram(i, j) - target;
            err += d * d;
        }
    }
    return std::sqrt(err);
}

Tensor
randomOrthonormal(int64_t m, int64_t k, Rng &rng)
{
    require(k >= 1 && k <= m,
            strCat("randomOrthonormal: invalid dims (", m, ", ", k, ")"));
    Tensor g = Tensor::randn({m, k}, rng);
    return qrDecompose(g).q;
}

} // namespace lrd
