/**
 * @file
 * Dense linear-algebra kernels implemented from scratch: Householder
 * QR, cyclic-Jacobi symmetric eigendecomposition, full and truncated
 * SVD, and a randomized range-finder SVD used as an ablation.
 *
 * These are the numerical workhorses of Tucker/SVD decomposition
 * (Algorithm 1 in the paper). Matrices are rank-2 Tensors.
 */

#ifndef LRD_LINALG_LINALG_H
#define LRD_LINALG_LINALG_H

#include "tensor/tensor.h"
#include "util/status.h"

namespace lrd {

/** Result of a thin QR decomposition A (m x n) = Q (m x k) R (k x n),
 *  k = min(m, n). */
struct QrResult
{
    Tensor q; ///< Orthonormal columns.
    Tensor r; ///< Upper triangular.
};

/** Thin Householder QR of an arbitrary (m x n) matrix. */
QrResult qrDecompose(const Tensor &a);

/** Result of a symmetric eigendecomposition S = V diag(w) V^T. */
struct EigenResult
{
    std::vector<double> values; ///< Eigenvalues, descending.
    Tensor vectors;             ///< Columns are eigenvectors (n x n).
    Status status;              ///< NonConvergence when sweeps ran out.
    int sweeps = 0;             ///< Jacobi sweeps actually performed.
};

/**
 * Cyclic Jacobi eigendecomposition of a symmetric matrix.
 *
 * When the off-diagonal norm is still above tolerance after maxSweeps,
 * the factors computed so far are returned with a NonConvergence
 * status (site "jacobi") — callers decide whether a best-effort
 * factorization is usable.
 *
 * @param s Symmetric (n x n) matrix; symmetry is enforced by averaging.
 */
EigenResult symmetricEigen(const Tensor &s, int maxSweeps = 60);

/** Result of a (possibly truncated) singular value decomposition
 *  A (m x n) approx= U (m x k) diag(s) V^T (k x n). */
struct SvdResult
{
    Tensor u;                     ///< Left singular vectors (m x k).
    std::vector<double> s;        ///< Singular values, descending.
    Tensor v;                     ///< Right singular vectors (n x k).
    Status status;                ///< Propagated Jacobi convergence.

    /** Reconstruct U diag(s) V^T. */
    Tensor reconstruct() const;
};

/**
 * Full SVD via eigendecomposition of the Gram matrix of the smaller
 * side. Exact up to Jacobi convergence; suitable for the dimensions
 * in this library (<= a few thousand on the small side).
 */
SvdResult svd(const Tensor &a);

/**
 * Rank-k truncated SVD (Eckart-Young optimal k-rank approximation).
 * @param k Target rank, 1 <= k <= min(m, n).
 */
SvdResult truncatedSvd(const Tensor &a, int64_t k);

/**
 * Top-k left singular vectors of A — the `SVD(k, .)` primitive in
 * Algorithm 1 (HOI). Returns an (m x k) matrix with orthonormal
 * columns. When `convergence` is non-null it receives the underlying
 * Jacobi status (first failure wins if the caller reuses one slot).
 */
Tensor leftSingularVectors(const Tensor &a, int64_t k,
                           Status *convergence = nullptr);

/**
 * Randomized truncated SVD (Halko-Martinsson-Tropp range finder with
 * power iterations). Used by the ablation bench comparing exact vs
 * randomized factorization cost/quality.
 *
 * @param oversample Extra columns in the sketch (default 8).
 * @param powerIters Subspace power iterations (default 2).
 */
SvdResult randomizedSvd(const Tensor &a, int64_t k, Rng &rng,
                        int64_t oversample = 8, int powerIters = 2);

/** Orthonormality defect || Q^T Q - I ||_F of a column set. */
double orthonormalityError(const Tensor &q);

/**
 * Random matrix with orthonormal columns (m x k, k <= m), produced by
 * QR of a Gaussian matrix; used to initialize HOI factors.
 */
Tensor randomOrthonormal(int64_t m, int64_t k, Rng &rng);

} // namespace lrd

#endif // LRD_LINALG_LINALG_H
