#include "device.h"

#include "tensor/simd/simd.h"

namespace lrd {

DeviceSpec
a100_80gb()
{
    DeviceSpec d;
    d.name = "A100-80GB";
    d.peakMacsPerSec = 156e12; // 312 TFLOPS FP16 (dense)
    d.memBandwidthBps = 2.039e12;
    d.powerWatts = 300.0; // paper Section 4.3: pinned at max power
    d.memCapacityBytes = 80e9;
    return d;
}

DeviceSpec
h100_80gb()
{
    DeviceSpec d;
    d.name = "H100-80GB";
    d.peakMacsPerSec = 495e12; // ~990 TFLOPS FP16 (dense)
    d.memBandwidthBps = 3.35e12;
    d.powerWatts = 700.0;
    d.memCapacityBytes = 80e9;
    return d;
}

DeviceSpec
cpuCore()
{
    // Peak scales with the SIMD level the dispatcher selected: FP32
    // FMA lanes per cycle (SSE-class scalar fallback 4, NEON 8 across
    // two pipes, AVX2 16, AVX-512 32) at a nominal 2.5 GHz server
    // clock. Keeps the roofline cross-checks honest when the suite is
    // pinned with LRD_SIMD.
    double macsPerCycle = 4.0;
    const char *isa = "scalar";
    switch (simd::activeLevel()) {
    case simd::Level::Scalar:
        break;
    case simd::Level::Neon:
        macsPerCycle = 8.0;
        isa = "neon";
        break;
    case simd::Level::Avx2:
        macsPerCycle = 16.0;
        isa = "avx2";
        break;
    case simd::Level::Avx512:
        macsPerCycle = 32.0;
        isa = "avx512";
        break;
    }
    DeviceSpec d;
    d.name = std::string("CPU-core-") + isa;
    d.peakMacsPerSec = macsPerCycle * 2.5e9; // one core, FP32
    d.memBandwidthBps = 20e9;
    d.powerWatts = 15.0;
    d.memCapacityBytes = 16e9;
    d.computeEfficiency = 0.5;
    d.bandwidthEfficiency = 0.6;
    return d;
}

} // namespace lrd
