#include "device.h"

namespace lrd {

DeviceSpec
a100_80gb()
{
    DeviceSpec d;
    d.name = "A100-80GB";
    d.peakMacsPerSec = 156e12; // 312 TFLOPS FP16 (dense)
    d.memBandwidthBps = 2.039e12;
    d.powerWatts = 300.0; // paper Section 4.3: pinned at max power
    d.memCapacityBytes = 80e9;
    return d;
}

DeviceSpec
h100_80gb()
{
    DeviceSpec d;
    d.name = "H100-80GB";
    d.peakMacsPerSec = 495e12; // ~990 TFLOPS FP16 (dense)
    d.memBandwidthBps = 3.35e12;
    d.powerWatts = 700.0;
    d.memCapacityBytes = 80e9;
    return d;
}

DeviceSpec
cpuCore()
{
    DeviceSpec d;
    d.name = "CPU-core";
    d.peakMacsPerSec = 8e9;       // one AVX2 core, FP32
    d.memBandwidthBps = 20e9;
    d.powerWatts = 15.0;
    d.memCapacityBytes = 16e9;
    d.computeEfficiency = 0.5;
    d.bandwidthEfficiency = 0.6;
    return d;
}

} // namespace lrd
