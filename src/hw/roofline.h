/**
 * @file
 * Roofline latency / energy / memory-footprint model.
 *
 * The paper observes (Section 4.3) that LLM inference pins the GPU at
 * maximum power, so energy = P_max x latency; and that inference is
 * memory-bound, so the decode latency tracks weight + KV traffic.
 * This model reproduces those relationships analytically for the
 * full-size model shapes the paper measures.
 */

#ifndef LRD_HW_ROOFLINE_H
#define LRD_HW_ROOFLINE_H

#include "model/decomp_config.h"
#include "hw/device.h"
#include "hw/opcount.h"

namespace lrd {

/** Compute-vs-memory timing of one kernel/pass. */
struct RooflineResult
{
    double computeSec = 0;
    double memorySec = 0;
    double latencySec = 0; ///< max(computeSec, memorySec).
    bool memoryBound = false;
};

/** Core roofline: time to execute `macs` touching `bytes`. */
RooflineResult roofline(int64_t macs, int64_t bytes,
                        const DeviceSpec &dev);

/** Workload for an end-to-end generation estimate. */
struct GenerationWorkload
{
    int64_t batch = 16;
    int64_t promptLen = 512;
    int64_t decodeTokens = 128;
    int bytesPerParam = 2;
};

/** End-to-end estimate of one generation batch. */
struct InferenceEstimate
{
    double prefillSec = 0;
    double decodeSec = 0;
    double latencySec = 0; ///< prefill + decode.
    double energyJoules = 0;
    double memBytes = 0; ///< Peak device memory footprint.
    double tokensPerSec = 0;
};

/**
 * Estimate latency / energy / memory of a generation workload for a
 * model under a decomposition gamma on a device.
 */
InferenceEstimate estimateGeneration(const ModelConfig &cfg,
                                     const DecompConfig &gamma,
                                     const DeviceSpec &dev,
                                     const GenerationWorkload &wl);

/**
 * Peak memory footprint: weights + KV cache + activation workspace +
 * fixed runtime overhead (CUDA context, framework buffers).
 */
double memoryFootprintBytes(const ModelConfig &cfg,
                            const DecompConfig &gamma,
                            const GenerationWorkload &wl);

/** Aggregate estimate for a data-parallel multi-GPU deployment. */
struct MultiGpuEstimate
{
    InferenceEstimate perGpu; ///< One replica's estimate.
    int numGpus = 1;
    double aggregateTokensPerSec = 0;
    double totalEnergyJoules = 0;
    double totalMemBytes = 0;
};

/**
 * Data-parallel serving across `numGpus` replicas (the paper's 4x
 * A100 testbed): each GPU holds a full model copy and serves its own
 * batch, so latency matches the single-GPU estimate while throughput
 * and energy scale with the replica count.
 */
MultiGpuEstimate estimateGenerationMultiGpu(const ModelConfig &cfg,
                                            const DecompConfig &gamma,
                                            const DeviceSpec &dev,
                                            const GenerationWorkload &wl,
                                            int numGpus);

} // namespace lrd

#endif // LRD_HW_ROOFLINE_H
