#include "roofline.h"

#include <algorithm>

#include "util/logging.h"

namespace lrd {

namespace {
/** Fixed runtime overhead: CUDA context + framework workspace. */
constexpr double kRuntimeOverheadBytes = 2.0e9;
} // namespace

RooflineResult
roofline(int64_t macs, int64_t bytes, const DeviceSpec &dev)
{
    require(dev.peakMacsPerSec > 0 && dev.memBandwidthBps > 0,
            "roofline: device peaks must be positive");
    RooflineResult r;
    r.computeSec = static_cast<double>(macs)
                   / (dev.peakMacsPerSec * dev.computeEfficiency);
    r.memorySec = static_cast<double>(bytes)
                  / (dev.memBandwidthBps * dev.bandwidthEfficiency);
    r.memoryBound = r.memorySec >= r.computeSec;
    r.latencySec = std::max(r.computeSec, r.memorySec);
    return r;
}

double
memoryFootprintBytes(const ModelConfig &cfg, const DecompConfig &gamma,
                     const GenerationWorkload &wl)
{
    const double weights = static_cast<double>(
        transformerWeightBytes(cfg, gamma, wl.bytesPerParam));
    const double kv =
        static_cast<double>(kvCacheBytesPerToken(cfg, wl.bytesPerParam))
        * static_cast<double>(wl.batch)
        * static_cast<double>(wl.promptLen + wl.decodeTokens);
    // Activation workspace: a few residual-width buffers plus the
    // logits for one forward of the prompt.
    const double acts =
        static_cast<double>(wl.batch) * static_cast<double>(wl.promptLen)
            * (4.0 * static_cast<double>(cfg.dModel) +
               static_cast<double>(cfg.dFf))
            * wl.bytesPerParam
        + static_cast<double>(wl.batch) * static_cast<double>(cfg.vocabSize)
            * wl.bytesPerParam;
    return weights + kv + acts + kRuntimeOverheadBytes;
}

InferenceEstimate
estimateGeneration(const ModelConfig &cfg, const DecompConfig &gamma,
                   const DeviceSpec &dev, const GenerationWorkload &wl)
{
    WorkloadParams prefill;
    prefill.batch = wl.batch;
    prefill.seqLen = wl.promptLen;
    prefill.bytesPerParam = wl.bytesPerParam;

    const int64_t weightBytes =
        transformerWeightBytes(cfg, gamma, wl.bytesPerParam);

    // Prefill: compute-heavy; traffic = weights once + activations.
    const int64_t prefillMacs = transformerMacs(cfg, gamma, prefill);
    const int64_t prefillBytes =
        weightBytes
        + wl.batch * wl.promptLen * (4 * cfg.dModel + cfg.dFf)
              * wl.bytesPerParam;
    const RooflineResult pre = roofline(prefillMacs, prefillBytes, dev);

    // Decode: one step per generated token; weights re-read each
    // step (the memory-bound regime the paper describes), plus the
    // growing KV cache.
    double decodeSec = 0;
    const int64_t kvPerTok = kvCacheBytesPerToken(cfg, wl.bytesPerParam);
    for (int64_t t = 0; t < wl.decodeTokens; ++t) {
        const int64_t ctx = wl.promptLen + t;
        const int64_t macs =
            transformerDecodeMacs(cfg, gamma, wl.batch, ctx);
        const int64_t bytes = weightBytes + wl.batch * ctx * kvPerTok;
        decodeSec += roofline(macs, bytes, dev).latencySec;
    }

    InferenceEstimate est;
    est.prefillSec = pre.latencySec;
    est.decodeSec = decodeSec;
    est.latencySec = est.prefillSec + est.decodeSec;
    est.energyJoules = est.latencySec * dev.powerWatts;
    est.memBytes = memoryFootprintBytes(cfg, gamma, wl);
    est.tokensPerSec =
        static_cast<double>(wl.batch * wl.decodeTokens) / est.latencySec;
    return est;
}

MultiGpuEstimate
estimateGenerationMultiGpu(const ModelConfig &cfg,
                           const DecompConfig &gamma,
                           const DeviceSpec &dev,
                           const GenerationWorkload &wl, int numGpus)
{
    require(numGpus >= 1,
            "estimateGenerationMultiGpu: need at least one GPU");
    MultiGpuEstimate est;
    est.perGpu = estimateGeneration(cfg, gamma, dev, wl);
    est.numGpus = numGpus;
    est.aggregateTokensPerSec = est.perGpu.tokensPerSec * numGpus;
    est.totalEnergyJoules = est.perGpu.energyJoules * numGpus;
    est.totalMemBytes = est.perGpu.memBytes * numGpus;
    return est;
}

} // namespace lrd
