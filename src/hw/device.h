/**
 * @file
 * Hardware device specifications for the analytical performance
 * model. The A100 spec mirrors the paper's testbed (4x NVIDIA
 * A100-80GB; nvidia-smi reported 300 W at full utilization).
 */

#ifndef LRD_HW_DEVICE_H
#define LRD_HW_DEVICE_H

#include <string>

namespace lrd {

/** An accelerator (or CPU) for the roofline model. */
struct DeviceSpec
{
    std::string name;
    double peakMacsPerSec = 0;  ///< Dense FP16 MACs/s.
    double memBandwidthBps = 0; ///< HBM/DRAM bandwidth, bytes/s.
    double powerWatts = 0;      ///< Steady-state board power.
    double memCapacityBytes = 0;
    /** Achievable fractions of peak (kernel efficiency). */
    double computeEfficiency = 0.6;
    double bandwidthEfficiency = 0.8;
};

/** NVIDIA A100-80GB (the paper's GPU; 312 TFLOPS FP16 = 156 T MAC/s,
 *  2.039 TB/s HBM2e, 300 W observed at 100% utilization). */
DeviceSpec a100_80gb();

/** NVIDIA H100-80GB SXM (for what-if sweeps). */
DeviceSpec h100_80gb();

/** A single server-class CPU core (for cross-checking against the
 *  repository's real CPU measurements). ISA-aware: the name carries
 *  the active SIMD dispatch level (e.g. "CPU-core-avx2") and
 *  peakMacsPerSec scales with that level's FP32 FMA width. */
DeviceSpec cpuCore();

} // namespace lrd

#endif // LRD_HW_DEVICE_H
