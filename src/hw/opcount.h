/**
 * @file
 * Analytical operation and byte counting for transformer models
 * (optionally under a decomposition configuration) and for the
 * ResNet-50 baseline of the paper's Table 1.
 *
 * MACs follow the paper's convention (one multiply-accumulate = one
 * MAC); model sizes assume FP16 weights unless overridden.
 */

#ifndef LRD_HW_OPCOUNT_H
#define LRD_HW_OPCOUNT_H

#include <string>
#include <vector>

#include "model/decomp_config.h"
#include "model/config.h"

namespace lrd {

/** One operator's cost in a forward pass. */
struct OpProfile
{
    std::string name;
    int64_t macs = 0;        ///< Multiply-accumulates.
    int64_t weightBytes = 0; ///< Parameter bytes touched.
};

/** Inference workload shape. */
struct WorkloadParams
{
    int64_t batch = 1;
    int64_t seqLen = 128;
    int bytesPerParam = 2; ///< FP16.
};

/**
 * Per-operator profile of one full forward pass (prefill-style) of a
 * transformer under an optional decomposition. Pass the identity
 * config for the dense model.
 */
std::vector<OpProfile> profileTransformer(const ModelConfig &cfg,
                                          const DecompConfig &gamma,
                                          const WorkloadParams &wl);

/** Total MACs of one forward pass. */
int64_t transformerMacs(const ModelConfig &cfg, const DecompConfig &gamma,
                        const WorkloadParams &wl);

/** Weight bytes of the whole model under the decomposition. */
int64_t transformerWeightBytes(const ModelConfig &cfg,
                               const DecompConfig &gamma,
                               int bytesPerParam = 2);

/** Per-token KV-cache bytes across all layers. */
int64_t kvCacheBytesPerToken(const ModelConfig &cfg, int bytesPerParam = 2);

/**
 * MACs of one *decode step* at a given context length (weight reuse
 * = batch only; attention reads the cached context).
 */
int64_t transformerDecodeMacs(const ModelConfig &cfg,
                              const DecompConfig &gamma, int64_t batch,
                              int64_t contextLen);

/** @name ResNet-50 baseline (Table 1)
 *  @{
 */
int64_t resnet50Params();
/** MACs for one 224x224 image. */
int64_t resnet50Macs();
/** @} */

} // namespace lrd

#endif // LRD_HW_OPCOUNT_H
