#include "opcount.h"

#include <algorithm>

#include "decomp/tucker.h"
#include "util/logging.h"

namespace lrd {

namespace {

/** MACs for one application of a (possibly decomposed) weight of
 *  shape (out, in) to `tokens` activations. */
int64_t
linearMacs(int64_t out, int64_t in, int64_t rank, int64_t tokens)
{
    if (rank <= 0) // dense
        return tokens * out * in;
    return tokens * (in * rank + rank * rank + rank * out);
}

/** Parameter count of a (possibly decomposed) weight. */
int64_t
linearParams(int64_t out, int64_t in, int64_t rank)
{
    if (rank <= 0)
        return denseParams(out, in);
    return decomposedParams(out, in, rank);
}

/** Rank for (layer, kind) under gamma; 0 when not decomposed. */
int64_t
effectiveRank(const DecompConfig &gamma, int layer, WeightKind kind)
{
    if (std::find(gamma.layers.begin(), gamma.layers.end(), layer)
        == gamma.layers.end())
        return 0;
    if (std::find(gamma.tensors.begin(), gamma.tensors.end(), kind)
        == gamma.tensors.end())
        return 0;
    return gamma.rankFor(layer, kind);
}

} // namespace

std::vector<OpProfile>
profileTransformer(const ModelConfig &cfg, const DecompConfig &gamma,
                   const WorkloadParams &wl)
{
    std::string why;
    require(gamma.valid(cfg, &why),
            "profileTransformer: invalid gamma: " + why);
    const int64_t tokens = wl.batch * wl.seqLen;
    const int64_t bp = wl.bytesPerParam;
    std::vector<OpProfile> ops;

    // Embedding lookup: no MACs, touches seqLen rows.
    ops.push_back({"embedding", 0, tokens * cfg.dModel * bp});

    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            const auto shape = cfg.weightShape(kind);
            const int64_t rank =
                effectiveRank(gamma, static_cast<int>(l), kind);
            ops.push_back(
                {strCat("layer", l, ".", weightKindName(kind)),
                 linearMacs(shape[0], shape[1], rank, tokens),
                 linearParams(shape[0], shape[1], rank) * bp});
        }
        // Attention BMMs: QK^T and PV, each batch*heads*T*T*headDim.
        const int64_t bmm =
            wl.batch * cfg.nHeads * wl.seqLen * wl.seqLen * cfg.headDim();
        ops.push_back({strCat("layer", l, ".bmm_qk"), bmm, 0});
        ops.push_back({strCat("layer", l, ".bmm_pv"), bmm, 0});
    }

    // LM head.
    ops.push_back({"lm_head", tokens * cfg.dModel * cfg.vocabSize,
                   cfg.dModel * cfg.vocabSize * bp});
    return ops;
}

int64_t
transformerMacs(const ModelConfig &cfg, const DecompConfig &gamma,
                const WorkloadParams &wl)
{
    int64_t total = 0;
    for (const OpProfile &op : profileTransformer(cfg, gamma, wl))
        total += op.macs;
    return total;
}

int64_t
transformerWeightBytes(const ModelConfig &cfg, const DecompConfig &gamma,
                       int bytesPerParam)
{
    std::string why;
    require(gamma.valid(cfg, &why),
            "transformerWeightBytes: invalid gamma: " + why);
    // Total params minus the savings of the decomposed tensors.
    const int64_t saved = gamma.paramsBefore(cfg) - gamma.paramsAfter(cfg);
    return (cfg.totalParams() - saved) * bytesPerParam;
}

int64_t
kvCacheBytesPerToken(const ModelConfig &cfg, int bytesPerParam)
{
    // K + V rows are kvDim wide (smaller than dModel under GQA).
    return 2 * cfg.nLayers * cfg.kvDim() * bytesPerParam;
}

int64_t
transformerDecodeMacs(const ModelConfig &cfg, const DecompConfig &gamma,
                      int64_t batch, int64_t contextLen)
{
    // One token per sequence: every linear runs once per sequence;
    // attention reads `contextLen` cached positions.
    int64_t total = 0;
    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            const auto shape = cfg.weightShape(kind);
            const int64_t rank =
                effectiveRank(gamma, static_cast<int>(l), kind);
            total += linearMacs(shape[0], shape[1], rank, batch);
        }
        total += 2 * batch * cfg.nHeads * contextLen * cfg.headDim();
    }
    total += batch * cfg.dModel * cfg.vocabSize;
    return total;
}

namespace {

/** A convolution layer spec for analytical counting. */
struct ConvSpec
{
    int64_t inC, outC, kernel, outHW;
};

/** ResNet-50 as a flat list of convolutions + the final FC.
 *  Bottleneck blocks: 1x1 reduce, 3x3, 1x1 expand; the first block of
 *  each stage adds a 1x1 projection shortcut. */
std::vector<ConvSpec>
resnet50Convs()
{
    std::vector<ConvSpec> convs;
    convs.push_back({3, 64, 7, 112}); // stem

    struct Stage { int64_t mid, out, blocks, hw; };
    const std::vector<Stage> stages = {
        {64, 256, 3, 56},
        {128, 512, 4, 28},
        {256, 1024, 6, 14},
        {512, 2048, 3, 7},
    };
    int64_t inC = 64;
    for (const Stage &s : stages) {
        for (int64_t b = 0; b < s.blocks; ++b) {
            convs.push_back({inC, s.mid, 1, s.hw});
            convs.push_back({s.mid, s.mid, 3, s.hw});
            convs.push_back({s.mid, s.out, 1, s.hw});
            if (b == 0)
                convs.push_back({inC, s.out, 1, s.hw}); // projection
            inC = s.out;
        }
    }
    return convs;
}

} // namespace

int64_t
resnet50Params()
{
    int64_t params = 0;
    for (const ConvSpec &c : resnet50Convs()) {
        params += c.inC * c.outC * c.kernel * c.kernel;
        params += 2 * c.outC; // batch-norm scale + shift
    }
    params += 2048 * 1000 + 1000; // final FC
    return params;
}

int64_t
resnet50Macs()
{
    int64_t macs = 0;
    for (const ConvSpec &c : resnet50Convs())
        macs += c.inC * c.outC * c.kernel * c.kernel * c.outHW * c.outHW;
    macs += 2048 * 1000;
    return macs;
}

} // namespace lrd
