/**
 * @file
 * Persistent thread pool with a deterministic parallel-for primitive.
 *
 * Design rules (see docs/ARCHITECTURE.md, "Threading model"):
 *
 * - One process-wide pool, created on first use and sized by the
 *   LRD_THREADS environment variable (default: hardware concurrency).
 * - parallelFor() splits [begin, end) into fixed chunks of `grain`
 *   iterations. The chunk boundaries depend only on (begin, end,
 *   grain) — never on the thread count — so any parallel region whose
 *   chunks write disjoint outputs (or that reduces per-chunk partials
 *   in chunk order) produces bitwise-identical results at any thread
 *   count.
 * - Nested parallelFor() calls run inline and serially on the calling
 *   thread; only the outermost region fans out.
 * - There is no work stealing and no dynamic splitting: chunks are
 *   handed out from a shared cursor, so which *thread* runs a chunk
 *   is nondeterministic, but what the chunk *computes* is not.
 */

#ifndef LRD_PARALLEL_THREAD_POOL_H
#define LRD_PARALLEL_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lrd {

class Counter;
class Gauge;

/** Body of a parallel region: fn(chunkIndex, lo, hi) over [lo, hi). */
using ChunkFn = std::function<void(int64_t, int64_t, int64_t)>;

class ThreadPool
{
  public:
    /**
     * The process-wide pool. Created on first use with LRD_THREADS
     * threads (default std::thread::hardware_concurrency, minimum 1).
     */
    static ThreadPool &instance();

    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute chunks (workers + the caller). */
    int numThreads() const { return numThreads_; }

    /**
     * Re-size the pool (joins and respawns workers). Intended for
     * tests and benchmarks; must not be called from inside a parallel
     * region.
     */
    void resize(int n);

    /**
     * Index of the calling thread for worker-local storage: 0 for the
     * thread that issued the parallelFor (and for any external
     * thread), 1..numThreads()-1 for pool workers. Stable for the
     * lifetime of a worker thread.
     */
    static int workerIndex();

    /** True while the calling thread is executing a chunk body. */
    static bool inParallelRegion();

    /**
     * Run body(lo, hi) over fixed chunks of [begin, end). Blocks until
     * every chunk has completed. Safe to call from inside another
     * parallel region (runs inline and serially in that case).
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &body);

    /**
     * As parallelFor(), but the body also receives the chunk index —
     * use it to store per-chunk partials that a serial, fixed-order
     * fold then reduces deterministically.
     */
    void parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                           const ChunkFn &body);

    /** Number of chunks parallelFor{,Chunks} will create. */
    static int64_t numChunks(int64_t begin, int64_t end, int64_t grain);

  private:
    explicit ThreadPool(int n);

    void spawnWorkers();
    void joinWorkers();
    void workerMain(int index);
    /** Grab-and-run loop shared by workers and the posting thread. */
    void runAvailableChunks(std::unique_lock<std::mutex> &lock);

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< Wakes workers when a job lands.
    std::condition_variable doneCv_; ///< Wakes posters on completion.

    // Current job; guarded by mu_. One job at a time: concurrent
    // external posters queue on doneCv_, nested posters run inline.
    const ChunkFn *body_ = nullptr;
    int64_t jobBegin_ = 0;
    int64_t jobEnd_ = 0;
    int64_t jobGrain_ = 1;
    int64_t jobChunks_ = 0;
    int64_t nextChunk_ = 0;
    int64_t chunksLeft_ = 0;
    /** First exception thrown by a chunk body; rethrown by the poster. */
    std::exception_ptr jobError_;

    bool shutdown_ = false;
    int numThreads_ = 1;
    /** Workers that have finished startup (lane + trace marker);
     *  spawnWorkers blocks until all have checked in. */
    int workersStarted_ = 0;
    std::vector<std::thread> workers_;

    // Metric handles, resolved once in the constructor (before any
    // worker spawns) so the hot path never touches the registry lock.
    Counter *chunksCounter_ = nullptr;    ///< "pool.chunks" (per lane).
    Counter *idleWaitsCounter_ = nullptr; ///< "pool.idleWaits".
    Gauge *threadsGauge_ = nullptr;       ///< "pool.threads".
};

/** parallelFor on the global pool. */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &body);

/** parallelForChunks on the global pool. */
void parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       const ChunkFn &body);

/** Thread count of the global pool. */
int parallelWorkers();

/**
 * Hardware thread count (>= 1). The one sanctioned way to ask the
 * machine for its concurrency outside src/parallel/ — everything
 * else about threading goes through the pool.
 */
int hardwareConcurrency();

} // namespace lrd

#endif // LRD_PARALLEL_THREAD_POOL_H
