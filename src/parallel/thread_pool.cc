#include "thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "util/logging.h"
#include "util/worker_lane.h"

namespace lrd {

namespace {

int
defaultThreadCount()
{
    if (const char *env = std::getenv("LRD_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<int>(v);
        warn(strCat("LRD_THREADS='", env, "' is not a valid thread "
                    "count; using hardware concurrency"));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

ThreadPool::ThreadPool(int n) : numThreads_(n > 0 ? n : 1)
{
    // Resolve metric handles before any worker can run a chunk.
    MetricsRegistry &reg = MetricsRegistry::instance();
    chunksCounter_ = reg.counter("pool.chunks", /*perLane=*/true);
    idleWaitsCounter_ = reg.counter("pool.idleWaits");
    threadsGauge_ = reg.gauge("pool.threads");
    threadsGauge_->set(numThreads_);
    spawnWorkers();
}

ThreadPool::~ThreadPool()
{
    joinWorkers();
}

void
ThreadPool::spawnWorkers()
{
    workersStarted_ = 0;
    workers_.reserve(static_cast<size_t>(numThreads_ - 1));
    for (int i = 1; i < numThreads_; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
    // Wait for every worker to finish startup (set its lane, record
    // its trace marker): exported traces then always show one lane
    // per worker, even for runs that never dispatch a chunk.
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock,
                 [this] { return workersStarted_ == numThreads_ - 1; });
}

void
ThreadPool::joinWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    shutdown_ = false;
}

void
ThreadPool::resize(int n)
{
    require(!lrd::inParallelRegion() && workerLane() == 0,
            "ThreadPool::resize: cannot resize from inside a parallel "
            "region");
    require(n >= 1, "ThreadPool::resize: thread count must be >= 1");
    {
        std::lock_guard<std::mutex> lock(mu_);
        require(body_ == nullptr,
                "ThreadPool::resize: a parallel region is active");
    }
    if (n == numThreads_)
        return;
    joinWorkers();
    numThreads_ = n;
    threadsGauge_->set(numThreads_);
    spawnWorkers();
}

int
ThreadPool::workerIndex()
{
    return workerLane();
}

bool
ThreadPool::inParallelRegion()
{
    return lrd::inParallelRegion();
}

int64_t
ThreadPool::numChunks(int64_t begin, int64_t end, int64_t grain)
{
    if (end <= begin)
        return 0;
    const int64_t g = grain > 0 ? grain : 1;
    return (end - begin + g - 1) / g;
}

void
ThreadPool::runAvailableChunks(std::unique_lock<std::mutex> &lock)
{
    while (body_ != nullptr && nextChunk_ < jobChunks_) {
        // Cooperative drain: once cancellation is requested, unclaimed
        // chunks are dropped (in-flight ones finish normally) and the
        // poster wakes with the region "complete". Callers observe the
        // token after the region and discard partial output.
        if (cancelRequested()) {
            chunksLeft_ -= jobChunks_ - nextChunk_;
            nextChunk_ = jobChunks_;
            if (chunksLeft_ == 0) {
                body_ = nullptr;
                doneCv_.notify_all();
            }
            break;
        }
        const int64_t chunk = nextChunk_++;
        const ChunkFn *body = body_;
        const int64_t lo = jobBegin_ + chunk * jobGrain_;
        const int64_t hi = std::min(jobEnd_, lo + jobGrain_);
        lock.unlock();
        const bool wasIn = lrd::inParallelRegion();
        setInParallelRegion(true);
        chunksCounter_->inc();
        std::exception_ptr error;
        try {
            LRD_TRACE_SPAN("pool.chunk");
            (*body)(chunk, lo, hi);
        } catch (...) {
            error = std::current_exception();
        }
        setInParallelRegion(wasIn);
        noteProgress("pool.chunk");
        lock.lock();
        if (error && !jobError_)
            jobError_ = error;
        if (--chunksLeft_ == 0) {
            body_ = nullptr;
            doneCv_.notify_all();
        }
    }
}

void
ThreadPool::workerMain(int index)
{
    setWorkerLane(index);
    // A zero-length marker event puts one lane per worker into the
    // exported trace even when this worker never receives a chunk.
    if (Tracer::enabled())
        Tracer::instance().record("pool.workerStart", Tracer::nowNs(),
                                  0, 0.0, false);
    std::unique_lock<std::mutex> lock(mu_);
    ++workersStarted_;
    doneCv_.notify_all();
    for (;;) {
        runAvailableChunks(lock);
        if (shutdown_)
            return;
        idleWaitsCounter_->inc();
        workCv_.wait(lock, [this] {
            return shutdown_
                   || (body_ != nullptr && nextChunk_ < jobChunks_);
        });
    }
}

void
ThreadPool::parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                              const ChunkFn &body)
{
    const int64_t chunks = numChunks(begin, end, grain);
    if (chunks == 0)
        return;
    const int64_t g = grain > 0 ? grain : 1;

    // Serial cases: a single chunk, a 1-thread pool, or a nested call
    // from inside a running region. Chunk boundaries are identical to
    // the parallel path, so results are bitwise the same.
    if (chunks == 1 || numThreads_ == 1 || lrd::inParallelRegion()
        || workerLane() != 0) {
        const bool wasIn = lrd::inParallelRegion();
        setInParallelRegion(true);
        try {
            for (int64_t c = 0; c < chunks; ++c) {
                if (cancelRequested())
                    break; // Same drain semantics as the pooled path.
                const int64_t lo = begin + c * g;
                chunksCounter_->inc();
                LRD_TRACE_SPAN("pool.chunk");
                body(c, lo, std::min(end, lo + g));
                noteProgress("pool.chunk");
            }
        } catch (...) {
            setInParallelRegion(wasIn);
            throw; // lrd-lint: allow(naked-throw) -- rethrow, not a report
        }
        setInParallelRegion(wasIn);
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    // One job at a time: a concurrent poster from another external
    // thread waits for the active job to drain.
    doneCv_.wait(lock, [this] { return body_ == nullptr; });
    body_ = &body;
    jobBegin_ = begin;
    jobEnd_ = end;
    jobGrain_ = g;
    jobChunks_ = chunks;
    nextChunk_ = 0;
    chunksLeft_ = chunks;
    jobError_ = nullptr;
    workCv_.notify_all();

    runAvailableChunks(lock);
    doneCv_.wait(lock, [this, &body] { return body_ != &body; });
    if (jobError_) {
        std::exception_ptr error = jobError_;
        jobError_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &body)
{
    parallelForChunks(begin, end, grain,
                      [&body](int64_t, int64_t lo, int64_t hi) {
                          body(lo, hi);
                      });
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &body)
{
    ThreadPool::instance().parallelFor(begin, end, grain, body);
}

void
parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                  const ChunkFn &body)
{
    ThreadPool::instance().parallelForChunks(begin, end, grain, body);
}

int
parallelWorkers()
{
    return ThreadPool::instance().numThreads();
}

int
hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace lrd
