/**
 * @file
 * Tucker decomposition: Higher-Order Orthogonal Iteration (Algorithm 1
 * of the paper) for arbitrary-order tensors, the 2D three-factor form
 * used to compress transformer weight matrices (Section 2.3), and the
 * compression-ratio arithmetic.
 */

#ifndef LRD_DECOMP_TUCKER_H
#define LRD_DECOMP_TUCKER_H

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace lrd {

/** Core tensor plus one factor matrix per mode; factors[i] is
 *  (n_i x r_i) with orthonormal columns. */
struct TuckerResult
{
    Tensor core;                 ///< Shape (r_0, ..., r_{N-1}).
    std::vector<Tensor> factors; ///< Per-mode (n_i x r_i) factors.
    Status status;               ///< First Jacobi non-convergence, if any.

    /** Reconstruct core x_0 U^0 x_1 U^1 ... back to full shape. */
    Tensor reconstruct() const;

    /** Total parameter count of core + factors. */
    int64_t paramCount() const;
};

/** Options controlling the HOI iteration. */
struct HoiOptions
{
    int maxIters = 30;      ///< Maximum alternating sweeps.
    double tol = 1e-7;      ///< Stop when fit improves less than this.
    bool hosvdInit = true;  ///< Init factors via truncated HOSVD
                            ///< (false: random orthonormal).
    uint64_t seed = 42;     ///< Seed for random init.
};

/**
 * Truncated higher-order SVD: factor i is the top-r_i left singular
 * vectors of the mode-i unfolding. Used both standalone and as the
 * HOI initializer.
 */
TuckerResult hosvd(const Tensor &t, const std::vector<int64_t> &ranks);

/**
 * Tucker decomposition via Higher Order Orthogonal Iteration
 * (Algorithm 1). @param ranks one target rank per mode, each in
 * [1, n_i].
 *
 * A Jacobi non-convergence inside any factor update surfaces in the
 * result's status. Under LRD_ROBUST=retry the iteration deterministically
 * re-runs with a reseeded random initialization (bounded attempts)
 * before reporting failure.
 */
TuckerResult hooi(const Tensor &t, const std::vector<int64_t> &ranks,
                  const HoiOptions &opts = {});

/**
 * The paper's 2D weight factorization (Section 2.3):
 * W (H x W) approx= U1 (H x pr) * core (pr x pr) * U2 (pr x W).
 * For 2D tensors Tucker reduces to SVD with the singular values
 * folded into the core.
 */
struct Tucker2d
{
    Tensor u1;   ///< (H x pr).
    Tensor core; ///< (pr x pr), diagonal by construction.
    Tensor u2;   ///< (pr x W).
    Status status; ///< Propagated SVD convergence status.

    /** Reconstruct u1 * core * u2. */
    Tensor reconstruct() const;

    /** H*pr + pr*pr + pr*W. */
    int64_t paramCount() const;
};

/** Rank-pruned 2D Tucker of a weight matrix via truncated SVD. */
Tucker2d tucker2dDecompose(const Tensor &w, int64_t prunedRank);

/** @name Compression arithmetic (Section 2.3)
 *  @{
 */
/** Parameters of the dense (H x W) matrix. */
int64_t denseParams(int64_t h, int64_t w);
/** Parameters after decomposition with pruned rank pr. */
int64_t decomposedParams(int64_t h, int64_t w, int64_t pr);
/** Dense / decomposed parameter ratio. */
double compressionRatio(int64_t h, int64_t w, int64_t pr);
/**
 * Largest pruned rank that still shrinks the matrix:
 * pr < (sqrt((H+W)^2 + 4HW) - (H+W)) / 2.
 */
int64_t breakEvenRank(int64_t h, int64_t w);
/** @} */

} // namespace lrd

#endif // LRD_DECOMP_TUCKER_H
