#include "tucker.h"

#include <cmath>

#include "linalg/linalg.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/recovery.h"
#include "robust/retry.h"
#include "tensor/ops.h"
#include "tensor/unfold.h"
#include "util/logging.h"

namespace lrd {

namespace {

void
checkRanks(const Tensor &t, const std::vector<int64_t> &ranks)
{
    require(static_cast<int64_t>(ranks.size()) == t.rank(),
            strCat("tucker: ", ranks.size(), " ranks given for order-",
                   t.rank(), " tensor"));
    for (size_t i = 0; i < ranks.size(); ++i)
        require(ranks[i] >= 1 && ranks[i] <= t.dim(static_cast<int64_t>(i)),
                strCat("tucker: rank ", ranks[i], " invalid for mode ", i,
                       " extent ", t.dim(static_cast<int64_t>(i))));
}

/** Contract t with the transposes of all factors except `skip`. */
Tensor
projectAllBut(const Tensor &t, const std::vector<Tensor> &factors,
              int64_t skip)
{
    Tensor p = t;
    for (int64_t m = 0; m < t.rank(); ++m) {
        if (m == skip)
            continue;
        // U_m is (n_m x r_m); U_m^T is (r_m x n_m) and shrinks mode m.
        p = modeProduct(p, transpose2d(factors[static_cast<size_t>(m)]), m);
    }
    return p;
}

} // namespace

Tensor
TuckerResult::reconstruct() const
{
    Tensor t = core;
    for (int64_t m = 0; m < static_cast<int64_t>(factors.size()); ++m)
        t = modeProduct(t, factors[static_cast<size_t>(m)], m);
    return t;
}

int64_t
TuckerResult::paramCount() const
{
    int64_t n = core.size();
    for (const auto &f : factors)
        n += f.size();
    return n;
}

TuckerResult
hosvd(const Tensor &t, const std::vector<int64_t> &ranks)
{
    checkRanks(t, ranks);
    TuckerResult out;
    out.factors.reserve(ranks.size());
    for (int64_t m = 0; m < t.rank(); ++m)
        out.factors.push_back(leftSingularVectors(
            unfold(t, m), ranks[static_cast<size_t>(m)], &out.status));
    // Core = T x_0 U0^T x_1 U1^T ...
    out.core = projectAllBut(t, out.factors, /*skip=*/-1);
    return out;
}

namespace {

/** One full HOI run; the retry policy wraps this. */
TuckerResult
hooiOnce(const Tensor &t, const std::vector<int64_t> &ranks,
         const HoiOptions &opts)
{
    TuckerResult cur;
    if (opts.hosvdInit) {
        cur = hosvd(t, ranks);
    } else {
        Rng rng(opts.seed);
        cur.factors.reserve(ranks.size());
        for (int64_t m = 0; m < t.rank(); ++m)
            cur.factors.push_back(randomOrthonormal(
                t.dim(m), ranks[static_cast<size_t>(m)], rng));
        cur.core = projectAllBut(t, cur.factors, -1);
    }

    const double normT = t.norm();
    double prevFit = -1.0;
    for (int iter = 0; iter < opts.maxIters; ++iter) {
        // One alternating sweep: refresh each factor from the
        // projection that holds all *other* factors fixed
        // (lines 3-8 of Algorithm 1).
        for (int64_t m = 0; m < t.rank(); ++m) {
            Tensor p = projectAllBut(t, cur.factors, m);
            cur.factors[static_cast<size_t>(m)] = leftSingularVectors(
                unfold(p, m), ranks[static_cast<size_t>(m)], &cur.status);
        }
        cur.core = projectAllBut(t, cur.factors, -1);

        // Fit = 1 - ||T - reconstruction|| / ||T||. With orthonormal
        // factors, ||residual||^2 = ||T||^2 - ||core||^2.
        const double normCore = cur.core.norm();
        const double resid2 =
            std::max(0.0, normT * normT - normCore * normCore);
        const double fit =
            normT > 0.0 ? 1.0 - std::sqrt(resid2) / normT : 1.0;
        if (prevFit >= 0.0 && std::abs(fit - prevFit) < opts.tol)
            break;
        prevFit = fit;
    }
    return cur;
}

} // namespace

TuckerResult
hooi(const Tensor &t, const std::vector<int64_t> &ranks,
     const HoiOptions &opts)
{
    checkRanks(t, ranks);
    require(opts.maxIters >= 1, "hooi: maxIters must be >= 1");

    TuckerResult cur = hooiOnce(t, ranks, opts);
    const RobustPolicy policy = robustPolicy();
    if (cur.status.ok() || policy.mode != RobustMode::Retry)
        return cur;

    // Attempt 0 replays the failure already in hand; later attempts
    // re-run HOI from a reseeded random initialization so the retry
    // sequence depends only on (opts.seed, attempt index).
    // The outcome is folded into cur.status by the lambda; the
    // returned copy carries no extra information.
    (void)retryWithReseed(opts.seed, policy.maxRetries + 1,
                    [&](Rng &rng, int attempt) -> Status {
                        if (attempt == 0)
                            return cur.status;
                        HoiOptions ropts = opts;
                        ropts.hosvdInit = false;
                        ropts.seed = rng.next();
                        TuckerResult again = hooiOnce(t, ranks, ropts);
                        if (again.status.ok())
                            cur = std::move(again);
                        return cur.status;
                    });
    return cur;
}

Tensor
Tucker2d::reconstruct() const
{
    return matmul(matmul(u1, core), u2);
}

int64_t
Tucker2d::paramCount() const
{
    return u1.size() + core.size() + u2.size();
}

Tucker2d
tucker2dDecompose(const Tensor &w, int64_t prunedRank)
{
    LRD_TRACE_SPAN("tucker2d");
    static Counter *calls =
        MetricsRegistry::instance().counter("tucker2d.calls");
    calls->inc();
    require(w.rank() == 2, "tucker2dDecompose: weight must be a matrix");
    const int64_t h = w.dim(0), wd = w.dim(1);
    require(prunedRank >= 1 && prunedRank <= std::min(h, wd),
            strCat("tucker2dDecompose: pruned rank ", prunedRank,
                   " invalid for ", shapeToString(w.shape())));
    SvdResult s = truncatedSvd(w, prunedRank);
    Tucker2d out;
    out.status = std::move(s.status);
    out.u1 = std::move(s.u);
    out.core = Tensor({prunedRank, prunedRank});
    for (int64_t i = 0; i < prunedRank; ++i)
        out.core(i, i) = static_cast<float>(s.s[static_cast<size_t>(i)]);
    out.u2 = transpose2d(s.v);
    return out;
}

int64_t
denseParams(int64_t h, int64_t w)
{
    return h * w;
}

int64_t
decomposedParams(int64_t h, int64_t w, int64_t pr)
{
    return h * pr + pr * pr + pr * w;
}

double
compressionRatio(int64_t h, int64_t w, int64_t pr)
{
    return static_cast<double>(denseParams(h, w))
           / static_cast<double>(decomposedParams(h, w, pr));
}

int64_t
breakEvenRank(int64_t h, int64_t w)
{
    const double hw = static_cast<double>(h) + static_cast<double>(w);
    const double disc =
        std::sqrt(hw * hw +
                  4.0 * static_cast<double>(h) * static_cast<double>(w));
    const double bound = (disc - hw) / 2.0;
    // Strictly-less-than bound: the largest integer rank that still
    // reduces parameters.
    auto pr = static_cast<int64_t>(std::ceil(bound) - 1);
    return std::max<int64_t>(pr, 0);
}

} // namespace lrd
