/**
 * @file
 * Synthetic training-corpus generator over a World: emits fact,
 * rumor, arithmetic, pattern and agreement sentences, and assembles
 * them into fixed-length training documents.
 */

#ifndef LRD_TRAIN_CORPUS_H
#define LRD_TRAIN_CORPUS_H

#include "train/world.h"

namespace lrd {

/** Pattern families used by pattern sentences and the HellaSwag-style
 *  benchmark. */
enum class PatternFamily {
    Alternation, ///< X Y X Y ...
    Repetition,  ///< X X X X ...
    Counting,    ///< NUM_k NUM_{k+1} ...
    Countdown,   ///< NUM_k NUM_{k-1} ...
    PeriodThree, ///< X X Y X X Y ...
};

/** Number of pattern families. */
constexpr int kNumPatternFamilies = 5;

/** Random sentence/document sampler over a World. */
class CorpusGenerator
{
  public:
    CorpusGenerator(const World &world, uint64_t seed);

    /** One random sentence from the mixture; ends with <sep>. */
    TokenSeq sentence();

    /** "<bos> s1 <sep> s2 <sep> ..." cropped to exactly `len` tokens. */
    TokenSeq document(int len);

    /** @name Individual sentence emitters
     *  @{
     */
    /** "E HAS_COLOR colorOf(E) <sep>" — the *true* fact. */
    TokenSeq colorFact(int entity) const;
    /**
     * Plain color sentence as it actually circulates: for
     * myth-dominant entities the myth color appears more often than
     * the truth (and vice versa). This is the TruthfulQA mechanism.
     */
    TokenSeq colorSentenceSampled(int entity, Rng &rng) const;
    /** "E IS_A categoryOf(E) <sep>". */
    TokenSeq categoryFact(int entity) const;
    /** "E LIVES_IN placeOf(E) <sep>". */
    TokenSeq placeFact(int entity) const;
    /** "RUMOR E HAS_COLOR mythColorOf(E) <sep>". */
    TokenSeq rumorSentence(int entity) const;
    /** "NUM_a PLUS NUM_b EQUALS NUM_{a+b} <sep>"; a + b in range. */
    TokenSeq additionFact(int a, int b) const;
    /** "NUM_a PLUS NUM_b PLUS NUM_c EQUALS NUM_{a+b+c} <sep>". */
    TokenSeq additionChain(int a, int b, int c) const;
    /** Deterministic 8-symbol pattern + <sep>. The seed symbols are
     *  the family's free parameters. */
    TokenSeq patternSentence(PatternFamily family, int sym0,
                             int sym1) const;
    /** "E verb pronoun(gender(E)) <sep>". */
    TokenSeq agreementSentence(int entity, int verb) const;
    /** @} */

    const World &world() const { return world_; }
    Rng &rng() { return rng_; }

  private:
    const World &world_;
    Rng rng_;
};

} // namespace lrd

#endif // LRD_TRAIN_CORPUS_H
