#include "trainer.h"

#include <cmath>

#include "util/logging.h"
#include "util/timer.h"

namespace lrd {

Trainer::Trainer(TransformerModel &model, const World &world,
                 TrainOptions opts)
    : model_(model), world_(world), opts_(opts),
      gen_(world, opts.seed), maskRng_(opts.seed ^ 0xABCD1234U)
{
    require(opts_.seqLen <= model_.config().maxSeq,
            "Trainer: seqLen exceeds model maxSeq");
    require(world_.vocabSize() <= model_.config().vocabSize,
            "Trainer: world vocabulary exceeds model vocabulary");
}

void
Trainer::makeExample(TokenSeq &tokens, std::vector<int> &targets)
{
    tokens = gen_.document(opts_.seqLen);
    targets.assign(tokens.size(), -1);
    if (model_.config().arch == Arch::LlamaStyle) {
        // Next-token prediction.
        for (size_t i = 0; i + 1 < tokens.size(); ++i)
            targets[i] = tokens[i + 1];
        return;
    }
    // Masked-LM: corrupt ~mlmProb of the positions. 80% <mask>,
    // 10% random token, 10% unchanged; supervise all selected
    // positions with the original token.
    for (size_t i = 1; i < tokens.size(); ++i) {
        if (!maskRng_.bernoulli(opts_.mlmProb))
            continue;
        targets[i] = tokens[i];
        const double roll = maskRng_.uniform();
        if (roll < 0.8) {
            tokens[i] = world_.maskToken();
        } else if (roll < 0.9) {
            tokens[i] = static_cast<int>(maskRng_.uniformInt(
                static_cast<uint64_t>(world_.vocabSize())));
        }
    }
    // Guarantee at least one supervised position.
    if (targets[1] < 0) {
        targets[1] = tokens[1];
        tokens[1] = world_.maskToken();
    }
}

double
Trainer::run()
{
    AdamOptions aopts;
    aopts.lr = opts_.lr;
    AdamW optimizer(model_.parameters(), aopts);

    Timer timer;
    double lastLoss = 0.0;
    for (int step = 0; step < opts_.steps; ++step) {
        model_.zeroGrad();
        double lossSum = 0.0;
        for (int b = 0; b < opts_.batchSeqs; ++b) {
            TokenSeq tokens;
            std::vector<int> targets;
            makeExample(tokens, targets);
            lossSum += model_.lossAndGrad(tokens, targets);
        }
        // Average the accumulated gradients over the batch.
        for (Parameter *p : model_.parameters())
            for (int64_t i = 0; i < p->grad.size(); ++i)
                p->grad[i] /= static_cast<float>(opts_.batchSeqs);
        lastLoss = lossSum / opts_.batchSeqs;
        optimizer.step(
            cosineSchedule(step, opts_.warmupSteps, opts_.steps));
        if (opts_.logEvery > 0
            && (step % opts_.logEvery == 0 || step == opts_.steps - 1)) {
            inform(strCat("train[", model_.config().name, "] step ", step,
                          "/", opts_.steps, " loss ", lastLoss, " (",
                          static_cast<int>(timer.elapsedSeconds()),
                          "s elapsed)"));
        }
    }
    model_.clearCache();
    return lastLoss;
}

double
Trainer::evalLoss(int numDocs, uint64_t seed)
{
    CorpusGenerator heldOut(world_, seed);
    double sum = 0.0;
    for (int d = 0; d < numDocs; ++d) {
        TokenSeq tokens = heldOut.document(opts_.seqLen);
        std::vector<int> targets(tokens.size(), -1);
        if (model_.config().arch == Arch::LlamaStyle) {
            for (size_t i = 0; i + 1 < tokens.size(); ++i)
                targets[i] = tokens[i + 1];
        } else {
            Rng mr(seed + static_cast<uint64_t>(d));
            for (size_t i = 1; i < tokens.size(); ++i) {
                if (mr.bernoulli(opts_.mlmProb)) {
                    targets[i] = tokens[i];
                    tokens[i] = world_.maskToken();
                }
            }
            if (targets[1] < 0) {
                targets[1] = tokens[1];
                tokens[1] = world_.maskToken();
            }
        }
        sum += model_.loss(tokens, targets);
    }
    model_.clearCache();
    return sum / numDocs;
}

} // namespace lrd
