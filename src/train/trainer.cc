#include "trainer.h"

#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lrd {

Trainer::Trainer(TransformerModel &model, const World &world,
                 TrainOptions opts)
    : model_(model), world_(world), opts_(opts),
      gen_(world, opts.seed), maskRng_(opts.seed ^ 0xABCD1234U)
{
    require(opts_.seqLen <= model_.config().maxSeq,
            "Trainer: seqLen exceeds model maxSeq");
    require(world_.vocabSize() <= model_.config().vocabSize,
            "Trainer: world vocabulary exceeds model vocabulary");
}

void
Trainer::makeExample(TokenSeq &tokens, std::vector<int> &targets)
{
    tokens = gen_.document(opts_.seqLen);
    targets.assign(tokens.size(), -1);
    if (model_.config().arch == Arch::LlamaStyle) {
        // Next-token prediction.
        for (size_t i = 0; i + 1 < tokens.size(); ++i)
            targets[i] = tokens[i + 1];
        return;
    }
    // Masked-LM: corrupt ~mlmProb of the positions. 80% <mask>,
    // 10% random token, 10% unchanged; supervise all selected
    // positions with the original token.
    for (size_t i = 1; i < tokens.size(); ++i) {
        if (!maskRng_.bernoulli(opts_.mlmProb))
            continue;
        targets[i] = tokens[i];
        const double roll = maskRng_.uniform();
        if (roll < 0.8) {
            tokens[i] = world_.maskToken();
        } else if (roll < 0.9) {
            tokens[i] = static_cast<int>(maskRng_.uniformInt(
                static_cast<uint64_t>(world_.vocabSize())));
        }
    }
    // Guarantee at least one supervised position.
    if (targets[1] < 0) {
        targets[1] = tokens[1];
        tokens[1] = world_.maskToken();
    }
}

namespace {

/** Copy a model's accumulated gradients into one flat buffer. */
void
extractGrads(const std::vector<Parameter *> &params,
             std::vector<float> &out)
{
    out.clear();
    for (Parameter *p : params)
        out.insert(out.end(), p->grad.storage().begin(),
                   p->grad.storage().end());
}

} // namespace

double
Trainer::run()
{
    AdamOptions aopts;
    aopts.lr = opts_.lr;
    AdamW optimizer(model_.parameters(), aopts);

    /*
     * Batch items are independent given the example stream, so each
     * item's gradient is computed into its own buffer (on a private
     * model replica when the pool has more than one thread) and the
     * buffers are reduced in fixed item order. The summation tree is
     * therefore identical at every LRD_THREADS setting: bitwise
     * deterministic training. Examples are always drawn serially so
     * the corpus/mask RNG streams match the sequential trainer.
     */
    ThreadPool &pool = ThreadPool::instance();
    const int numWorkers = std::min(pool.numThreads(), opts_.batchSeqs);
    std::vector<std::unique_ptr<TransformerModel>> replicas;
    if (numWorkers > 1) {
        const std::vector<uint8_t> snapshot = model_.serialize();
        replicas.resize(static_cast<size_t>(pool.numThreads()));
        for (int w = 1; w < pool.numThreads(); ++w)
            replicas[static_cast<size_t>(w)] =
                std::make_unique<TransformerModel>(
                    TransformerModel::deserialize(snapshot));
    }
    const std::vector<Parameter *> masterParams = model_.parameters();

    Timer timer;
    double lastLoss = 0.0;
    std::vector<TokenSeq> tokens(static_cast<size_t>(opts_.batchSeqs));
    std::vector<std::vector<int>> targets(
        static_cast<size_t>(opts_.batchSeqs));
    std::vector<std::vector<float>> itemGrads(
        static_cast<size_t>(opts_.batchSeqs));
    std::vector<double> itemLoss(static_cast<size_t>(opts_.batchSeqs));

    static Counter *stepCounter =
        MetricsRegistry::instance().counter("train.steps");
    for (int step = 0; step < opts_.steps; ++step) {
        LRD_TRACE_SPAN("train.step");
        stepCounter->inc();
        for (int b = 0; b < opts_.batchSeqs; ++b)
            makeExample(tokens[static_cast<size_t>(b)],
                        targets[static_cast<size_t>(b)]);

        // Push the optimizer's latest weights into every replica.
        for (auto &replica : replicas) {
            if (!replica)
                continue;
            const auto rp = replica->parameters();
            for (size_t j = 0; j < masterParams.size(); ++j)
                rp[j]->value.storage() =
                    masterParams[j]->value.storage();
        }

        pool.parallelFor(0, opts_.batchSeqs, 1,
                         [&](int64_t lo, int64_t hi) {
            const auto w =
                static_cast<size_t>(ThreadPool::workerIndex());
            TransformerModel &m = (w == 0 || replicas.empty()
                                   || !replicas[w])
                                      ? model_
                                      : *replicas[w];
            const auto params = m.parameters();
            for (int64_t b = lo; b < hi; ++b) {
                LRD_TRACE_SPAN("train.item");
                m.zeroGrad();
                itemLoss[static_cast<size_t>(b)] = m.lossAndGrad(
                    tokens[static_cast<size_t>(b)],
                    targets[static_cast<size_t>(b)]);
                extractGrads(params,
                             itemGrads[static_cast<size_t>(b)]);
            }
        });

        // Fixed-order reduction: grads and loss fold in item order.
        model_.zeroGrad();
        double lossSum = 0.0;
        for (int b = 0; b < opts_.batchSeqs; ++b) {
            const std::vector<float> &g =
                itemGrads[static_cast<size_t>(b)];
            size_t off = 0;
            for (Parameter *p : masterParams) {
                float *pg = p->grad.data();
                for (int64_t i = 0; i < p->grad.size(); ++i)
                    pg[i] += g[off++];
            }
            lossSum += itemLoss[static_cast<size_t>(b)];
        }
        // Average the accumulated gradients over the batch.
        for (Parameter *p : masterParams)
            for (int64_t i = 0; i < p->grad.size(); ++i)
                p->grad[i] /= static_cast<float>(opts_.batchSeqs);
        lastLoss = lossSum / opts_.batchSeqs;
        optimizer.step(
            cosineSchedule(step, opts_.warmupSteps, opts_.steps));
        if (opts_.logEvery > 0
            && (step % opts_.logEvery == 0 || step == opts_.steps - 1)) {
            inform(strCat("train[", model_.config().name, "] step ", step,
                          "/", opts_.steps, " loss ", lastLoss, " (",
                          static_cast<int>(timer.elapsedSeconds()),
                          "s elapsed)"));
        }
    }
    model_.clearCache();
    return lastLoss;
}

double
Trainer::evalLoss(int numDocs, uint64_t seed)
{
    CorpusGenerator heldOut(world_, seed);
    double sum = 0.0;
    for (int d = 0; d < numDocs; ++d) {
        TokenSeq tokens = heldOut.document(opts_.seqLen);
        std::vector<int> targets(tokens.size(), -1);
        if (model_.config().arch == Arch::LlamaStyle) {
            for (size_t i = 0; i + 1 < tokens.size(); ++i)
                targets[i] = tokens[i + 1];
        } else {
            Rng mr(seed + static_cast<uint64_t>(d));
            for (size_t i = 1; i < tokens.size(); ++i) {
                if (mr.bernoulli(opts_.mlmProb)) {
                    targets[i] = tokens[i];
                    tokens[i] = world_.maskToken();
                }
            }
            if (targets[1] < 0) {
                targets[1] = tokens[1];
                tokens[1] = world_.maskToken();
            }
        }
        sum += model_.loss(tokens, targets);
    }
    model_.clearCache();
    return sum / numDocs;
}

} // namespace lrd
