#include "trainer.h"

#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lrd {

namespace {

/** Payload-format version of trainer checkpoints. */
constexpr uint32_t kTrainCkptVersion = 1;

void
putRngState(ByteWriter &w, const RngState &st)
{
    for (uint64_t s : st.s)
        w.putU64(s);
    w.putU32(st.hasCachedNormal ? 1 : 0);
    w.putF64(st.cachedNormal);
}

RngState
getRngState(ByteReader &r)
{
    RngState st;
    for (uint64_t &s : st.s)
        s = r.getU64();
    st.hasCachedNormal = r.getU32() != 0;
    st.cachedNormal = r.getF64();
    return st;
}

} // namespace

Trainer::Trainer(TransformerModel &model, const World &world,
                 TrainOptions opts)
    : model_(model), world_(world), opts_(opts),
      gen_(world, opts.seed), maskRng_(opts.seed ^ 0xABCD1234U)
{
    require(opts_.seqLen <= model_.config().maxSeq,
            "Trainer: seqLen exceeds model maxSeq");
    require(world_.vocabSize() <= model_.config().vocabSize,
            "Trainer: world vocabulary exceeds model vocabulary");
}

void
Trainer::makeExample(TokenSeq &tokens, std::vector<int> &targets)
{
    tokens = gen_.document(opts_.seqLen);
    targets.assign(tokens.size(), -1);
    if (model_.config().arch == Arch::LlamaStyle) {
        // Next-token prediction.
        for (size_t i = 0; i + 1 < tokens.size(); ++i)
            targets[i] = tokens[i + 1];
        return;
    }
    // Masked-LM: corrupt ~mlmProb of the positions. 80% <mask>,
    // 10% random token, 10% unchanged; supervise all selected
    // positions with the original token.
    for (size_t i = 1; i < tokens.size(); ++i) {
        if (!maskRng_.bernoulli(opts_.mlmProb))
            continue;
        targets[i] = tokens[i];
        const double roll = maskRng_.uniform();
        if (roll < 0.8) {
            tokens[i] = world_.maskToken();
        } else if (roll < 0.9) {
            tokens[i] = static_cast<int>(maskRng_.uniformInt(
                static_cast<uint64_t>(world_.vocabSize())));
        }
    }
    // Guarantee at least one supervised position.
    if (targets[1] < 0) {
        targets[1] = tokens[1];
        tokens[1] = world_.maskToken();
    }
}

namespace {

/** Copy a model's accumulated gradients into one flat buffer. */
void
extractGrads(const std::vector<Parameter *> &params,
             std::vector<float> &out)
{
    out.clear();
    for (Parameter *p : params)
        out.insert(out.end(), p->grad.storage().begin(),
                   p->grad.storage().end());
}

} // namespace

void
Trainer::writeTrainCheckpoint(const AdamW &optimizer, int nextStep)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(nextStep));
    w.putBytes(model_.serialize());
    optimizer.serializeState(w);
    putRngState(w, gen_.rng().state());
    putRngState(w, maskRng_.state());
    Status s =
        writeCheckpoint(opts_.checkpointPath, kTrainCkptVersion, w.bytes());
    if (!s.ok()) {
        if (robustPolicy().mode == RobustMode::Strict)
            fatal("trainer: checkpoint failed: " + s.toString());
        warn("trainer: checkpoint skipped; " + s.toString());
    }
}

Status
Trainer::restoreFromCheckpoint(AdamW &optimizer, int &startStep)
{
    Result<std::vector<uint8_t>> payload = readCheckpointWithFallback(
        opts_.checkpointPath, kTrainCkptVersion);
    if (!payload.ok())
        return payload.status();
    ByteReader r(std::move(payload).value());
    const auto nextStep = static_cast<int>(r.getU64());
    TransformerModel restored = TransformerModel::deserialize(r.getBytes());
    const auto restoredParams = restored.parameters();
    const auto params = model_.parameters();
    if (restoredParams.size() != params.size())
        return Status(StatusCode::InvalidArgument, "train.resume",
                      strCat("checkpoint has ", restoredParams.size(),
                             " parameters, this model has ",
                             params.size()));
    for (size_t i = 0; i < params.size(); ++i)
        if (restoredParams[i]->value.storage().size()
            != params[i]->value.storage().size())
            return Status(StatusCode::InvalidArgument, "train.resume",
                          "parameter " + params[i]->name
                              + " shape mismatch against checkpoint");
    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value.storage() = restoredParams[i]->value.storage();
    Status os = optimizer.restoreState(r);
    if (!os.ok())
        return os;
    gen_.rng().setState(getRngState(r));
    maskRng_.setState(getRngState(r));
    startStep = nextStep;
    return Status();
}

double
Trainer::run()
{
    status_ = Status();
    AdamOptions aopts;
    aopts.lr = opts_.lr;
    AdamW optimizer(model_.parameters(), aopts);

    int startStep = 0;
    if (opts_.resume && !opts_.checkpointPath.empty()) {
        Status rs = restoreFromCheckpoint(optimizer, startStep);
        if (rs.ok())
            inform(strCat("trainer: resumed ", opts_.checkpointPath,
                          " at step ", startStep));
        else if (rs.code() == StatusCode::NotFound)
            inform("trainer: no checkpoint yet; starting fresh");
        else
            fatal("trainer: cannot resume: " + rs.toString());
    }

    /*
     * Batch items are independent given the example stream, so each
     * item's gradient is computed into its own buffer (on a private
     * model replica when the pool has more than one thread) and the
     * buffers are reduced in fixed item order. The summation tree is
     * therefore identical at every LRD_THREADS setting: bitwise
     * deterministic training. Examples are always drawn serially so
     * the corpus/mask RNG streams match the sequential trainer.
     */
    ThreadPool &pool = ThreadPool::instance();
    const int numWorkers = std::min(pool.numThreads(), opts_.batchSeqs);
    std::vector<std::unique_ptr<TransformerModel>> replicas;
    if (numWorkers > 1) {
        const std::vector<uint8_t> snapshot = model_.serialize();
        // lrd-lint: allow(hot-path-alloc) per-worker replicas: sized once per run, before the epoch loop
        replicas.resize(static_cast<size_t>(pool.numThreads()));
        for (int w = 1; w < pool.numThreads(); ++w)
            replicas[static_cast<size_t>(w)] =
                // lrd-lint: allow(hot-path-alloc) per-worker replica, once per run
                std::make_unique<TransformerModel>(
                    TransformerModel::deserialize(snapshot));
    }
    const std::vector<Parameter *> masterParams = model_.parameters();

    Timer timer;
    double lastLoss = 0.0;
    std::vector<TokenSeq> tokens(static_cast<size_t>(opts_.batchSeqs));
    std::vector<std::vector<int>> targets(
        static_cast<size_t>(opts_.batchSeqs));
    std::vector<std::vector<float>> itemGrads(
        static_cast<size_t>(opts_.batchSeqs));
    std::vector<double> itemLoss(static_cast<size_t>(opts_.batchSeqs));
    std::vector<Status> itemStatus(static_cast<size_t>(opts_.batchSeqs));

    static Counter *stepCounter =
        MetricsRegistry::instance().counter("train.steps");
    WatchdogSection watched("train");
    for (int step = startStep; step < opts_.steps; ++step) {
        // Top-of-step is the trainer's cancellation point: the state
        // here equals the end of the previous step, so the final
        // checkpoint written on the way out resumes bitwise
        // identically to an uninterrupted run.
        pollCancelFault("train.step");
        Status cancel = checkCancellation("train.step");
        if (cancel.ok() && consumeWorkBudget("steps", 1) < 1) {
            expireDeadline("train.step");
            cancel = cancelStatus("train.step");
        }
        if (!cancel.ok()) {
            status_ = cancel;
            if (!opts_.checkpointPath.empty())
                writeTrainCheckpoint(optimizer, step);
            break;
        }
        LRD_TRACE_SPAN("train.step");
        stepCounter->inc();
        // Snapshot the example streams: if a signal lands mid-batch
        // the partially computed step is discarded and the RNGs roll
        // back so the checkpoint matches top-of-step state.
        const RngState genState = gen_.rng().state();
        const RngState maskState = maskRng_.state();
        for (int b = 0; b < opts_.batchSeqs; ++b)
            makeExample(tokens[static_cast<size_t>(b)],
                        targets[static_cast<size_t>(b)]);

        // Push the optimizer's latest weights into every replica.
        for (auto &replica : replicas) {
            if (!replica)
                continue;
            const auto rp = replica->parameters();
            for (size_t j = 0; j < masterParams.size(); ++j)
                rp[j]->value.storage() =
                    masterParams[j]->value.storage();
        }

        pool.parallelFor(0, opts_.batchSeqs, 1,
                         [&](int64_t lo, int64_t hi) {
            const auto w =
                static_cast<size_t>(ThreadPool::workerIndex());
            TransformerModel &m = (w == 0 || replicas.empty()
                                   || !replicas[w])
                                      ? model_
                                      : *replicas[w];
            const auto params = m.parameters();
            for (int64_t b = lo; b < hi; ++b) {
                LRD_TRACE_SPAN("train.item");
                // The recovery policy resolves each item on the
                // worker that owns it: the noted numeric fault (or a
                // non-finite loss) marks the item's fixed slot, and
                // retry re-runs the item in place — injected faults
                // are consumed by their counters, so a retry clears.
                (void)takeNumericFault();
                const RobustPolicy policy = robustPolicy();
                const int attempts =
                    policy.mode == RobustMode::Retry
                        ? policy.maxRetries + 1
                        : 1;
                Status st;
                for (int attempt = 0; attempt < attempts; ++attempt) {
                    if (attempt > 0)
                        noteRetry();
                    m.zeroGrad();
                    itemLoss[static_cast<size_t>(b)] = m.lossAndGrad(
                        tokens[static_cast<size_t>(b)],
                        targets[static_cast<size_t>(b)]);
                    st = takeNumericFault();
                    if (st.ok()
                        && !std::isfinite(
                            itemLoss[static_cast<size_t>(b)]))
                        st = Status(
                            StatusCode::NonFinite, "train.item",
                            strCat("non-finite loss at batch item ", b));
                    if (st.ok()) {
                        extractGrads(params,
                                     itemGrads[static_cast<size_t>(b)]);
                        break;
                    }
                }
                itemStatus[static_cast<size_t>(b)] = st;
            }
        });

        if (cancelRequested()) {
            // Cancelled mid-batch: the pool dropped unclaimed chunks,
            // so item buffers are incomplete. Discard the step.
            gen_.rng().setState(genState);
            maskRng_.setState(maskState);
            status_ = cancelStatus("train.step");
            if (!opts_.checkpointPath.empty())
                writeTrainCheckpoint(optimizer, step);
            break;
        }

        // Fixed-order reduction: grads and loss fold in item order.
        // Failed items are skipped entirely, so the summation tree for
        // the surviving items is still identical at every thread count.
        model_.zeroGrad();
        double lossSum = 0.0;
        int numGood = 0;
        Status firstBad;
        for (int b = 0; b < opts_.batchSeqs; ++b) {
            if (!itemStatus[static_cast<size_t>(b)].ok()) {
                if (firstBad.ok())
                    firstBad = itemStatus[static_cast<size_t>(b)];
                continue;
            }
            ++numGood;
            const std::vector<float> &g =
                itemGrads[static_cast<size_t>(b)];
            size_t off = 0;
            for (Parameter *p : masterParams) {
                float *pg = p->grad.data();
                for (int64_t i = 0; i < p->grad.size(); ++i)
                    pg[i] += g[off++];
            }
            lossSum += itemLoss[static_cast<size_t>(b)];
        }
        if (!firstBad.ok()) {
            if (robustPolicy().mode == RobustMode::Strict)
                fatal("trainer: " + firstBad.toString());
            require(numGood > 0,
                    "trainer: every batch item failed at step "
                        + strCat(step, "; first: ", firstBad.toString()));
            enforceFailureBudget("train.step",
                                 opts_.batchSeqs - numGood,
                                 opts_.batchSeqs, firstBad);
        }
        // Average the accumulated gradients over the surviving items.
        for (Parameter *p : masterParams)
            for (int64_t i = 0; i < p->grad.size(); ++i)
                p->grad[i] /= static_cast<float>(numGood);
        lastLoss = lossSum / numGood;
        optimizer.step(
            cosineSchedule(step, opts_.warmupSteps, opts_.steps));
        const int next = step + 1;
        if (!opts_.checkpointPath.empty() && opts_.checkpointEvery > 0
            && (next % opts_.checkpointEvery == 0 || next == opts_.steps))
            writeTrainCheckpoint(optimizer, next);
        if (opts_.logEvery > 0
            && (step % opts_.logEvery == 0 || step == opts_.steps - 1)) {
            inform(strCat("train[", model_.config().name, "] step ", step,
                          "/", opts_.steps, " loss ", lastLoss, " (",
                          static_cast<int>(timer.elapsedSeconds()),
                          "s elapsed)"));
        }
        noteProgress("train.step");
    }
    model_.clearCache();
    return lastLoss;
}

double
Trainer::evalLoss(int numDocs, uint64_t seed)
{
    CorpusGenerator heldOut(world_, seed);
    double sum = 0.0;
    for (int d = 0; d < numDocs; ++d) {
        TokenSeq tokens = heldOut.document(opts_.seqLen);
        std::vector<int> targets(tokens.size(), -1);
        if (model_.config().arch == Arch::LlamaStyle) {
            for (size_t i = 0; i + 1 < tokens.size(); ++i)
                targets[i] = tokens[i + 1];
        } else {
            Rng mr(seed + static_cast<uint64_t>(d));
            for (size_t i = 1; i < tokens.size(); ++i) {
                if (mr.bernoulli(opts_.mlmProb)) {
                    targets[i] = tokens[i];
                    tokens[i] = world_.maskToken();
                }
            }
            if (targets[1] < 0) {
                targets[1] = tokens[1];
                tokens[1] = world_.maskToken();
            }
        }
        sum += model_.loss(tokens, targets);
    }
    model_.clearCache();
    return sum / numDocs;
}

} // namespace lrd
