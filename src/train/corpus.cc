#include "corpus.h"

#include <algorithm>

#include "util/logging.h"

namespace lrd {

CorpusGenerator::CorpusGenerator(const World &world, uint64_t seed)
    : world_(world), rng_(seed)
{
}

TokenSeq
CorpusGenerator::colorFact(int entity) const
{
    return {world_.entityToken(entity), world_.hasColorToken(),
            world_.colorToken(world_.colorOf(entity)), world_.sepToken()};
}

TokenSeq
CorpusGenerator::colorSentenceSampled(int entity, Rng &rng) const
{
    // Myth-dominant entities: the false color is stated twice as
    // often as the true one; otherwise the truth strongly dominates.
    const double pMyth = world_.mythDominant(entity) ? 2.0 / 3.0 : 0.1;
    const int color = rng.bernoulli(pMyth) ? world_.mythColorOf(entity)
                                           : world_.colorOf(entity);
    return {world_.entityToken(entity), world_.hasColorToken(),
            world_.colorToken(color), world_.sepToken()};
}

TokenSeq
CorpusGenerator::categoryFact(int entity) const
{
    return {world_.entityToken(entity), world_.isAToken(),
            world_.categoryToken(world_.categoryOf(entity)),
            world_.sepToken()};
}

TokenSeq
CorpusGenerator::placeFact(int entity) const
{
    return {world_.entityToken(entity), world_.livesInToken(),
            world_.placeToken(world_.placeOf(entity)), world_.sepToken()};
}

TokenSeq
CorpusGenerator::rumorSentence(int entity) const
{
    return {world_.rumorToken(), world_.entityToken(entity),
            world_.hasColorToken(),
            world_.colorToken(world_.mythColorOf(entity)),
            world_.sepToken()};
}

TokenSeq
CorpusGenerator::additionFact(int a, int b) const
{
    const int max = world_.spec().numNumbers;
    require(a >= 0 && b >= 0 && a + b < max,
            "CorpusGenerator::additionFact: sum out of range");
    return {world_.numberToken(a), world_.plusToken(),
            world_.numberToken(b), world_.equalsToken(),
            world_.numberToken(a + b), world_.sepToken()};
}

TokenSeq
CorpusGenerator::additionChain(int a, int b, int c) const
{
    const int max = world_.spec().numNumbers;
    require(a >= 0 && b >= 0 && c >= 0 && a + b + c < max,
            "CorpusGenerator::additionChain: sum out of range");
    return {world_.numberToken(a), world_.plusToken(),
            world_.numberToken(b), world_.plusToken(),
            world_.numberToken(c), world_.equalsToken(),
            world_.numberToken(a + b + c), world_.sepToken()};
}

TokenSeq
CorpusGenerator::patternSentence(PatternFamily family, int sym0,
                                 int sym1) const
{
    constexpr int kLen = 8;
    TokenSeq out;
    switch (family) {
      case PatternFamily::Alternation:
        for (int i = 0; i < kLen; ++i)
            out.push_back(world_.patternToken(i % 2 == 0 ? sym0 : sym1));
        break;
      case PatternFamily::Repetition:
        for (int i = 0; i < kLen; ++i)
            out.push_back(world_.patternToken(sym0));
        break;
      case PatternFamily::Counting: {
        const int max = world_.spec().numNumbers;
        const int start = sym0 % std::max(1, max - kLen);
        for (int i = 0; i < kLen; ++i)
            out.push_back(world_.numberToken(start + i));
        break;
      }
      case PatternFamily::Countdown: {
        const int max = world_.spec().numNumbers;
        const int start =
            kLen - 1 + sym0 % std::max(1, max - kLen + 1);
        for (int i = 0; i < kLen; ++i)
            out.push_back(world_.numberToken(start - i));
        break;
      }
      case PatternFamily::PeriodThree:
        for (int i = 0; i < kLen; ++i)
            out.push_back(
                world_.patternToken(i % 3 == 2 ? sym1 : sym0));
        break;
    }
    out.push_back(world_.sepToken());
    return out;
}

TokenSeq
CorpusGenerator::agreementSentence(int entity, int verb) const
{
    return {world_.entityToken(entity), world_.verbToken(verb),
            world_.pronounToken(world_.genderOf(entity)),
            world_.sepToken()};
}

TokenSeq
CorpusGenerator::sentence()
{
    // Mixture weights tuned so every benchmark's supporting facts
    // appear with useful frequency; rumors are *more* frequent than
    // true color facts, which is what makes the TruthfulQA-style
    // probe adversarial.
    static const std::vector<double> kWeights = {
        4.0, // plain color sentence (frequency-skewed truth/myth)
        2.0, // category fact
        2.0, // place fact
        2.0, // rumor (explicitly marked myth)
        2.0, // addition
        1.0, // addition chain
        3.0, // pattern
        2.0, // agreement
    };
    const size_t kind = rng_.categorical(kWeights);
    const WorldSpec &spec = world_.spec();
    switch (kind) {
      case 0:
        return colorSentenceSampled(world_.sampleEntityZipf(rng_), rng_);
      case 1: return categoryFact(world_.sampleEntityZipf(rng_));
      case 2: return placeFact(world_.sampleEntityZipf(rng_));
      case 3: return rumorSentence(world_.sampleEntityZipf(rng_));
      case 4: {
        const int a = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(spec.numNumbers / 2)));
        const int b = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(spec.numNumbers - a)));
        return additionFact(a, b);
      }
      case 5: {
        const int third = spec.numNumbers / 3;
        const int a = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(third)));
        const int b = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(third)));
        const int c = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(third)));
        return additionChain(a, b, c);
      }
      case 6: {
        const auto family = static_cast<PatternFamily>(
            rng_.uniformInt(kNumPatternFamilies));
        const int nSym = spec.numPatternSymbols;
        const int s0 = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(nSym)));
        int s1 = static_cast<int>(
            rng_.uniformInt(static_cast<uint64_t>(nSym - 1)));
        if (s1 >= s0)
            ++s1;
        TokenSeq s = patternSentence(family, s0, s1);
        // Corrupt one position with probability 1/4 so patterns are
        // learned imperfectly (keeps the HellaSwag-style benchmark
        // off the accuracy ceiling).
        if (rng_.bernoulli(0.25)) {
            const size_t pos = rng_.uniformInt(s.size() - 1);
            s[pos] = world_.patternToken(static_cast<int>(
                rng_.uniformInt(static_cast<uint64_t>(nSym))));
        }
        return s;
      }
      default:
        return agreementSentence(
            world_.sampleEntityZipf(rng_),
            static_cast<int>(rng_.uniformInt(
                static_cast<uint64_t>(spec.numVerbs))));
    }
}

TokenSeq
CorpusGenerator::document(int len)
{
    require(len >= 2, "CorpusGenerator::document: length too small");
    TokenSeq doc = {world_.bosToken()};
    while (static_cast<int>(doc.size()) < len) {
        const TokenSeq s = sentence();
        doc.insert(doc.end(), s.begin(), s.end());
    }
    doc.resize(static_cast<size_t>(len));
    return doc;
}

} // namespace lrd
