/**
 * @file
 * The synthetic "world" that substitutes for the paper's natural-
 * language training data and benchmark suites.
 *
 * The world defines a small vocabulary over entities, attributes
 * (colors, categories, places), numbers, verbs/pronouns and pattern
 * tokens, plus a ground-truth relational database:
 *
 *  - every entity has a true color / category / place / gender;
 *  - every entity also has a "myth" color distinct from its true
 *    color, circulated in RUMOR-marked sentences (the mechanism behind
 *    the TruthfulQA-style benchmark and its reverse accuracy trend);
 *  - numbers support small additions (the GSM8K-style benchmark);
 *  - pattern families (alternation, repetition, counting) provide
 *    sentence-completion structure (the HellaSwag-style benchmark).
 *
 * Entity mention frequency in the corpus is Zipfian, so facts about
 * tail entities are learned weakly — the MMLU-style benchmark draws
 * from the tail, which is what makes it the hardest accuracy probe,
 * mirroring the paper's benchmark difficulty ordering.
 */

#ifndef LRD_TRAIN_WORLD_H
#define LRD_TRAIN_WORLD_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/embedding.h"
#include "util/rng.h"

namespace lrd {

/** Size knobs for the synthetic world. */
struct WorldSpec
{
    int numEntities = 200;
    int numColors = 16;
    int numCategories = 16;
    int numPlaces = 16;
    int numNumbers = 21; ///< Tokens NUM_0 .. NUM_{numNumbers-1}.
    int numVerbs = 8;
    int numPatternSymbols = 12;
    /** Probability that an entity's myth color dominates its true
     *  color in the plain (unmarked) corpus — the TruthfulQA-style
     *  misconception rate. */
    double mythDominanceProb = 0.7;
    uint64_t seed = 2024;
};

/** Vocabulary layout + ground-truth relations of the synthetic world. */
class World
{
  public:
    explicit World(const WorldSpec &spec = {});

    const WorldSpec &spec() const { return spec_; }
    int vocabSize() const { return vocabSize_; }

    /** @name Special tokens
     *  @{
     */
    int padToken() const { return 0; }
    int bosToken() const { return 1; }
    int sepToken() const { return 2; }
    int maskToken() const { return 3; }
    /** @} */

    /** @name Structural tokens (relations, operators, markers)
     *  @{
     */
    int hasColorToken() const { return 4; }
    int isAToken() const { return 5; }
    int livesInToken() const { return 6; }
    int plusToken() const { return 7; }
    int equalsToken() const { return 8; }
    int rumorToken() const { return 9; }
    int becauseToken() const { return 10; }
    /** @} */

    /** @name Content tokens
     *  @{
     */
    int entityToken(int i) const;
    int colorToken(int i) const;
    int categoryToken(int i) const;
    int placeToken(int i) const;
    int numberToken(int n) const;
    int verbToken(int i) const;
    int pronounToken(int gender) const; ///< gender in {0, 1}.
    int patternToken(int i) const;
    /** @} */

    /** @name Ground truth
     *  @{
     */
    int colorOf(int entity) const;
    int categoryOf(int entity) const;
    int placeOf(int entity) const;
    int genderOf(int entity) const;
    /** Widely-circulated false color, always != colorOf(entity). */
    int mythColorOf(int entity) const;
    /** Whether the myth dominates the plain corpus for this entity. */
    bool mythDominant(int entity) const;
    /** @} */

    /**
     * Sample an entity index with Zipfian frequency (head entities are
     * mentioned far more often than tail entities).
     */
    int sampleEntityZipf(Rng &rng) const;

    /** Human-readable token name, for debugging and examples. */
    std::string tokenName(int token) const;

  private:
    WorldSpec spec_;
    int vocabSize_;
    std::vector<int> colorOf_;
    std::vector<int> categoryOf_;
    std::vector<int> placeOf_;
    std::vector<int> genderOf_;
    std::vector<int> mythColorOf_;
    std::vector<bool> mythDominant_;
    std::vector<double> zipfWeights_;
};

} // namespace lrd

#endif // LRD_TRAIN_WORLD_H
