/**
 * @file
 * AdamW optimizer with global-norm gradient clipping and a
 * warmup + cosine learning-rate schedule.
 */

#ifndef LRD_TRAIN_ADAM_H
#define LRD_TRAIN_ADAM_H

#include <vector>

#include "model/parameter.h"
#include "util/cache.h"
#include "util/status.h"

namespace lrd {

/** AdamW hyperparameters. */
struct AdamOptions
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.95;
    double eps = 1e-8;
    double weightDecay = 0.01;
    double clipNorm = 1.0; ///< Global gradient-norm clip (0 disables).
};

/** AdamW over an externally-owned parameter list. */
class AdamW
{
  public:
    AdamW(std::vector<Parameter *> params, AdamOptions opts = {});

    /**
     * Apply one update from the accumulated gradients.
     * @param lrScale Multiplier on the base learning rate (schedule).
     */
    void step(double lrScale = 1.0);

    /** Pre-clip global gradient norm of the last step() call. */
    double lastGradNorm() const { return lastGradNorm_; }

    int64_t stepCount() const { return t_; }

    /** Append the moment estimates and step count to a checkpoint. */
    void serializeState(ByteWriter &w) const;

    /**
     * Restore state written by serializeState. InvalidArgument when
     * the checkpoint was taken with a different parameter list.
     */
    Status restoreState(ByteReader &r);

  private:
    std::vector<Parameter *> params_;
    AdamOptions opts_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    int64_t t_ = 0;
    double lastGradNorm_ = 0.0;
};

/** Warmup + cosine decay multiplier in [minScale, 1]. */
double cosineSchedule(int64_t step, int64_t warmupSteps, int64_t totalSteps,
                      double minScale = 0.1);

} // namespace lrd

#endif // LRD_TRAIN_ADAM_H
