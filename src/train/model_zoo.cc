#include "model_zoo.h"

#include "util/cache.h"
#include "util/logging.h"

namespace lrd {

const World &
defaultWorld()
{
    static World world{WorldSpec{}};
    return world;
}

TrainOptions
zooTrainOptions(Arch arch)
{
    TrainOptions t;
    if (arch == Arch::LlamaStyle) {
        t.steps = 700;
        t.batchSeqs = 8;
        t.seqLen = 64;
        t.lr = 3e-3;
        t.seed = 31337;
    } else {
        t.steps = 2200;
        t.batchSeqs = 8;
        t.seqLen = 64;
        t.lr = 3e-3;
        t.mlmProb = 0.25;
        t.seed = 97531;
    }
    return t;
}

namespace {

/** Cache key versioned by recipe so stale checkpoints self-invalidate. */
std::string
zooCacheKey(const ModelConfig &cfg, const TrainOptions &t)
{
    return strCat("zoo-", cfg.name, "-v7-d", cfg.dModel, "-l", cfg.nLayers,
                  "-s", t.steps, "x", t.batchSeqs, ".bin");
}

TransformerModel
trainOrLoad(const ModelConfig &cfg)
{
    const TrainOptions t = zooTrainOptions(cfg.arch);
    const std::string key = zooCacheKey(cfg, t);
    if (cacheHas(key)) {
        Result<std::vector<uint8_t>> cached = cacheRead(key);
        if (cached.ok())
            return TransformerModel::deserialize(cached.value());
        warn("model zoo: " + cached.status().toString()
             + "; retraining");
    }
    inform(strCat("model zoo: training ", cfg.name,
                  " from scratch (cached afterwards at ", cachePath(key),
                  ")"));
    TransformerModel model(cfg, /*seed=*/cfg.arch == Arch::LlamaStyle
                                    ? 1001
                                    : 2002);
    Trainer trainer(model, defaultWorld(), t);
    const double finalLoss = trainer.run();
    inform(strCat("model zoo: ", cfg.name, " final train loss ",
                  finalLoss));
    cacheWrite(key, model.serialize());
    return model;
}

} // namespace

TransformerModel
pretrainedTinyLlama()
{
    return trainOrLoad(tinyLlamaConfig());
}

TransformerModel
pretrainedTinyBert()
{
    return trainOrLoad(tinyBertConfig());
}

TransformerModel
pretrainedModel(const std::string &name)
{
    if (name == "tiny-llama")
        return pretrainedTinyLlama();
    if (name == "tiny-bert")
        return pretrainedTinyBert();
    fatal("pretrainedModel: unknown preset " + name);
}

} // namespace lrd
