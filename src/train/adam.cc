#include "adam.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

AdamW::AdamW(std::vector<Parameter *> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts)
{
    require(!params_.empty(), "AdamW: no parameters");
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter *p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void
AdamW::step(double lrScale)
{
    ++t_;

    double norm2 = 0.0;
    for (Parameter *p : params_)
        for (int64_t i = 0; i < p->grad.size(); ++i)
            norm2 += static_cast<double>(p->grad[i]) * p->grad[i];
    lastGradNorm_ = std::sqrt(norm2);

    double clipScale = 1.0;
    if (opts_.clipNorm > 0.0 && lastGradNorm_ > opts_.clipNorm)
        clipScale = opts_.clipNorm / lastGradNorm_;

    const double lr = opts_.lr * lrScale;
    const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));

    for (size_t k = 0; k < params_.size(); ++k) {
        Parameter *p = params_[k];
        Tensor &m = m_[k];
        Tensor &v = v_[k];
        for (int64_t i = 0; i < p->value.size(); ++i) {
            const double g = p->grad[i] * clipScale;
            m[i] = static_cast<float>(opts_.beta1 * m[i]
                                      + (1.0 - opts_.beta1) * g);
            v[i] = static_cast<float>(opts_.beta2 * v[i]
                                      + (1.0 - opts_.beta2) * g * g);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            double update = mhat / (std::sqrt(vhat) + opts_.eps);
            // Decoupled weight decay (not applied to 1-D params:
            // norms and biases).
            if (p->value.rank() >= 2)
                update += opts_.weightDecay * p->value[i];
            p->value[i] -= static_cast<float>(lr * update);
        }
    }
}

void
AdamW::serializeState(ByteWriter &w) const
{
    w.putU64(static_cast<uint64_t>(t_));
    w.putU64(m_.size());
    for (size_t k = 0; k < m_.size(); ++k) {
        w.putFloats(m_[k].storage());
        w.putFloats(v_[k].storage());
    }
}

Status
AdamW::restoreState(ByteReader &r)
{
    const auto t = static_cast<int64_t>(r.getU64());
    const uint64_t count = r.getU64();
    if (count != m_.size())
        return Status(StatusCode::InvalidArgument, "adam.restore",
                      strCat("checkpoint has ", count,
                             " optimizer slots, this model has ",
                             m_.size()));
    std::vector<std::vector<float>> ms(count);
    std::vector<std::vector<float>> vs(count);
    for (size_t k = 0; k < count; ++k) {
        ms[k] = r.getFloats();
        vs[k] = r.getFloats();
        if (ms[k].size() != m_[k].storage().size()
            || vs[k].size() != v_[k].storage().size())
            return Status(StatusCode::InvalidArgument, "adam.restore",
                          strCat("optimizer slot ", k,
                                 " shape mismatch against checkpoint"));
    }
    for (size_t k = 0; k < count; ++k) {
        m_[k].storage() = std::move(ms[k]);
        v_[k].storage() = std::move(vs[k]);
    }
    t_ = t;
    return Status();
}

double
cosineSchedule(int64_t step, int64_t warmupSteps, int64_t totalSteps,
               double minScale)
{
    require(totalSteps > 0, "cosineSchedule: totalSteps must be positive");
    if (warmupSteps > 0 && step < warmupSteps)
        return static_cast<double>(step + 1) /
               static_cast<double>(warmupSteps);
    const double progress =
        static_cast<double>(step - warmupSteps)
        / static_cast<double>(std::max<int64_t>(1, totalSteps - warmupSteps));
    const double clamped = std::min(1.0, std::max(0.0, progress));
    return minScale
           + (1.0 - minScale) * 0.5 * (1.0 + std::cos(M_PI * clamped));
}

} // namespace lrd
