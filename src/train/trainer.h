/**
 * @file
 * Training loop: causal-LM training for LlamaStyle models and
 * masked-LM training for BertStyle models, over the synthetic corpus.
 */

#ifndef LRD_TRAIN_TRAINER_H
#define LRD_TRAIN_TRAINER_H

#include "model/transformer.h"
#include "train/adam.h"
#include "train/corpus.h"

namespace lrd {

/** Knobs for a training run. */
struct TrainOptions
{
    int steps = 600;        ///< Optimizer steps.
    int batchSeqs = 8;      ///< Sequences per step (grad accumulation).
    int seqLen = 64;        ///< Training sequence length.
    int warmupSteps = 40;
    double lr = 3e-3;
    double mlmProb = 0.15;  ///< BERT-style masking probability.
    uint64_t seed = 31337;
    int logEvery = 100;     ///< 0 disables progress logging.
};

/** Drives AdamW over the synthetic corpus. */
class Trainer
{
  public:
    Trainer(TransformerModel &model, const World &world, TrainOptions opts);

    /** Run the configured number of steps; returns the final loss. */
    double run();

    /** Mean loss over `numDocs` held-out documents (no grads). */
    double evalLoss(int numDocs, uint64_t seed = 555);

  private:
    /** Build (tokens, targets) for one training sequence. */
    void makeExample(TokenSeq &tokens, std::vector<int> &targets);

    TransformerModel &model_;
    const World &world_;
    TrainOptions opts_;
    CorpusGenerator gen_;
    Rng maskRng_;
};

} // namespace lrd

#endif // LRD_TRAIN_TRAINER_H
