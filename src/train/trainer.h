/**
 * @file
 * Training loop: causal-LM training for LlamaStyle models and
 * masked-LM training for BertStyle models, over the synthetic corpus.
 */

#ifndef LRD_TRAIN_TRAINER_H
#define LRD_TRAIN_TRAINER_H

#include "model/transformer.h"
#include "train/adam.h"
#include "train/corpus.h"

namespace lrd {

/** Knobs for a training run. */
struct TrainOptions
{
    int steps = 600;        ///< Optimizer steps.
    int batchSeqs = 8;      ///< Sequences per step (grad accumulation).
    int seqLen = 64;        ///< Training sequence length.
    int warmupSteps = 40;
    double lr = 3e-3;
    double mlmProb = 0.15;  ///< BERT-style masking probability.
    uint64_t seed = 31337;
    int logEvery = 100;     ///< 0 disables progress logging.

    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;
    /** Steps between checkpoints (0 disables; final step included). */
    int checkpointEvery = 0;
    /** Resume from checkpointPath when it exists. */
    bool resume = false;
};

/**
 * Drives AdamW over the synthetic corpus.
 *
 * With checkpointing enabled, the full training state — weights,
 * optimizer moments, and both RNG streams — is snapshotted, so an
 * interrupted run resumed from its last checkpoint produces bitwise
 * the same model as the uninterrupted run at any LRD_THREADS.
 */
class Trainer
{
  public:
    Trainer(TransformerModel &model, const World &world, TrainOptions opts);

    /** Run the configured number of steps; returns the final loss. */
    double run();

    /** Mean loss over `numDocs` held-out documents (no grads). */
    double evalLoss(int numDocs, uint64_t seed = 555);

    /**
     * Status of the last run(): ok on full completion; Cancelled when
     * a signal or injected "train.step" cancel stopped the loop early;
     * DeadlineExceeded when an LRD_DEADLINE expired. In every early
     * stop a final checkpoint (when checkpointing is enabled) carries
     * the completed prefix, so the run is resumable.
     */
    const Status &runStatus() const { return status_; }

  private:
    /** Build (tokens, targets) for one training sequence. */
    void makeExample(TokenSeq &tokens, std::vector<int> &targets);

    /** Write the full training state for resumption after `nextStep`. */
    void writeTrainCheckpoint(const AdamW &optimizer, int nextStep);

    /**
     * Restore state from opts_.checkpointPath (falling back to the
     * rotated previous checkpoint). Sets startStep; NotFound leaves
     * the fresh-start state untouched.
     */
    Status restoreFromCheckpoint(AdamW &optimizer, int &startStep);

    TransformerModel &model_;
    const World &world_;
    TrainOptions opts_;
    CorpusGenerator gen_;
    Rng maskRng_;
    Status status_;
};

} // namespace lrd

#endif // LRD_TRAIN_TRAINER_H
