#include "world.h"

#include "util/logging.h"

namespace lrd {

namespace {
constexpr int kNumStructural = 11; ///< Tokens 0..10 are fixed.
}

World::World(const WorldSpec &spec) : spec_(spec)
{
    require(spec_.numEntities > 1 && spec_.numColors > 2
                && spec_.numCategories > 1 && spec_.numPlaces > 1
                && spec_.numNumbers > 4 && spec_.numVerbs > 0
                && spec_.numPatternSymbols > 3,
            "World: spec dimensions too small");

    vocabSize_ = kNumStructural + spec_.numEntities + spec_.numColors
                 + spec_.numCategories + spec_.numPlaces
                 + spec_.numNumbers + spec_.numVerbs + 2 /*pronouns*/
                 + spec_.numPatternSymbols;

    Rng rng(spec_.seed);
    colorOf_.resize(static_cast<size_t>(spec_.numEntities));
    categoryOf_.resize(colorOf_.size());
    placeOf_.resize(colorOf_.size());
    genderOf_.resize(colorOf_.size());
    mythColorOf_.resize(colorOf_.size());
    mythDominant_.resize(colorOf_.size());
    for (int e = 0; e < spec_.numEntities; ++e) {
        colorOf_[static_cast<size_t>(e)] = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(spec_.numColors)));
        categoryOf_[static_cast<size_t>(e)] = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(spec_.numCategories)));
        placeOf_[static_cast<size_t>(e)] = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(spec_.numPlaces)));
        genderOf_[static_cast<size_t>(e)] =
            static_cast<int>(rng.uniformInt(2));
        // Myth color: uniformly among the non-true colors.
        int myth = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(spec_.numColors - 1)));
        if (myth >= colorOf_[static_cast<size_t>(e)])
            ++myth;
        mythColorOf_[static_cast<size_t>(e)] = myth;
        mythDominant_[static_cast<size_t>(e)] =
            rng.bernoulli(spec_.mythDominanceProb);
    }

    zipfWeights_.resize(static_cast<size_t>(spec_.numEntities));
    for (int e = 0; e < spec_.numEntities; ++e)
        zipfWeights_[static_cast<size_t>(e)] = 1.0 / (1.0 + e);
}

int
World::entityToken(int i) const
{
    require(i >= 0 && i < spec_.numEntities, "World: bad entity index");
    return kNumStructural + i;
}

int
World::colorToken(int i) const
{
    require(i >= 0 && i < spec_.numColors, "World: bad color index");
    return kNumStructural + spec_.numEntities + i;
}

int
World::categoryToken(int i) const
{
    require(i >= 0 && i < spec_.numCategories, "World: bad category index");
    return kNumStructural + spec_.numEntities + spec_.numColors + i;
}

int
World::placeToken(int i) const
{
    require(i >= 0 && i < spec_.numPlaces, "World: bad place index");
    return kNumStructural + spec_.numEntities + spec_.numColors
           + spec_.numCategories + i;
}

int
World::numberToken(int n) const
{
    require(n >= 0 && n < spec_.numNumbers, "World: bad number");
    return kNumStructural + spec_.numEntities + spec_.numColors
           + spec_.numCategories + spec_.numPlaces + n;
}

int
World::verbToken(int i) const
{
    require(i >= 0 && i < spec_.numVerbs, "World: bad verb index");
    return kNumStructural + spec_.numEntities + spec_.numColors
           + spec_.numCategories + spec_.numPlaces + spec_.numNumbers + i;
}

int
World::pronounToken(int gender) const
{
    require(gender == 0 || gender == 1, "World: bad gender");
    return kNumStructural + spec_.numEntities + spec_.numColors
           + spec_.numCategories + spec_.numPlaces + spec_.numNumbers
           + spec_.numVerbs + gender;
}

int
World::patternToken(int i) const
{
    require(i >= 0 && i < spec_.numPatternSymbols,
            "World: bad pattern symbol");
    return kNumStructural + spec_.numEntities + spec_.numColors
           + spec_.numCategories + spec_.numPlaces + spec_.numNumbers
           + spec_.numVerbs + 2 + i;
}

int
World::colorOf(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return colorOf_[static_cast<size_t>(entity)];
}

int
World::categoryOf(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return categoryOf_[static_cast<size_t>(entity)];
}

int
World::placeOf(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return placeOf_[static_cast<size_t>(entity)];
}

int
World::genderOf(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return genderOf_[static_cast<size_t>(entity)];
}

int
World::mythColorOf(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return mythColorOf_[static_cast<size_t>(entity)];
}

bool
World::mythDominant(int entity) const
{
    require(entity >= 0 && entity < spec_.numEntities, "World: bad entity");
    return mythDominant_[static_cast<size_t>(entity)];
}

int
World::sampleEntityZipf(Rng &rng) const
{
    return static_cast<int>(rng.categorical(zipfWeights_));
}

std::string
World::tokenName(int token) const
{
    require(token >= 0 && token < vocabSize_, "World: token out of range");
    switch (token) {
      case 0: return "<pad>";
      case 1: return "<bos>";
      case 2: return "<sep>";
      case 3: return "<mask>";
      case 4: return "HAS_COLOR";
      case 5: return "IS_A";
      case 6: return "LIVES_IN";
      case 7: return "PLUS";
      case 8: return "EQUALS";
      case 9: return "RUMOR";
      case 10: return "BECAUSE";
      default: break;
    }
    int i = token - kNumStructural;
    if (i < spec_.numEntities)
        return strCat("ent", i);
    i -= spec_.numEntities;
    if (i < spec_.numColors)
        return strCat("color", i);
    i -= spec_.numColors;
    if (i < spec_.numCategories)
        return strCat("kind", i);
    i -= spec_.numCategories;
    if (i < spec_.numPlaces)
        return strCat("place", i);
    i -= spec_.numPlaces;
    if (i < spec_.numNumbers)
        return strCat("num", i);
    i -= spec_.numNumbers;
    if (i < spec_.numVerbs)
        return strCat("verb", i);
    i -= spec_.numVerbs;
    if (i < 2)
        return i == 0 ? "he" : "she";
    i -= 2;
    return strCat("sym", i);
}

} // namespace lrd
