/**
 * @file
 * Train-once-and-cache access to the pretrained tiny models that
 * stand in for the paper's HuggingFace checkpoints.
 *
 * The first call trains the model on the synthetic corpus (a few
 * minutes on one core) and serializes it to the artifact cache; later
 * calls (and later processes: benches, examples) deserialize it.
 */

#ifndef LRD_TRAIN_MODEL_ZOO_H
#define LRD_TRAIN_MODEL_ZOO_H

#include "model/transformer.h"
#include "train/trainer.h"
#include "train/world.h"

namespace lrd {

/** The world shared by all pretrained models and benchmarks. */
const World &defaultWorld();

/** Training recipe used for the cached checkpoints. */
TrainOptions zooTrainOptions(Arch arch);

/**
 * The pretrained tiny Llama-style decoder (the stand-in for
 * Llama-2-7B in all accuracy case studies). Trains and caches on
 * first use.
 */
TransformerModel pretrainedTinyLlama();

/** The pretrained tiny BERT-style encoder (stand-in for BERT-Base). */
TransformerModel pretrainedTinyBert();

/**
 * Fresh copy of a cached model by preset name ("tiny-llama" or
 * "tiny-bert"); used by harnesses that decompose destructively.
 */
TransformerModel pretrainedModel(const std::string &name);

} // namespace lrd

#endif // LRD_TRAIN_MODEL_ZOO_H
