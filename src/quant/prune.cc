#include "prune.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lrd {

Tensor
magnitudePrune(const Tensor &w, double sparsity)
{
    require(w.rank() == 2, "magnitudePrune: weight must be a matrix");
    require(sparsity >= 0.0 && sparsity <= 1.0,
            "magnitudePrune: sparsity must be in [0, 1]");
    Tensor out = w;
    const auto n = static_cast<size_t>(out.size());
    const auto k = static_cast<size_t>(
        std::llround(sparsity * static_cast<double>(n)));
    if (k == 0)
        return out;
    std::vector<float> mags(n);
    for (size_t i = 0; i < n; ++i)
        mags[i] = std::abs(out.data()[i]);
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     sorted.end());
    const float threshold = sorted[k - 1];
    // Zero everything strictly below the threshold, then zero
    // at-threshold entries until exactly k are pruned (ties).
    size_t pruned = 0;
    for (size_t i = 0; i < n; ++i) {
        if (mags[i] < threshold) {
            out.data()[i] = 0.0F;
            ++pruned;
        }
    }
    for (size_t i = 0; i < n && pruned < k; ++i) {
        if (mags[i] == threshold && out.data()[i] != 0.0F) {
            out.data()[i] = 0.0F;
            ++pruned;
        }
    }
    return out;
}

double
sparsityOf(const Tensor &w)
{
    int64_t zeros = 0;
    for (int64_t i = 0; i < w.size(); ++i)
        zeros += w[i] == 0.0F;
    return w.size() == 0
               ? 0.0
               : static_cast<double>(zeros)
                     / static_cast<double>(w.size());
}

void
applyMagnitudePruning(TransformerModel &model, double sparsity)
{
    const ModelConfig &cfg = model.config();
    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            Linear &lin = model.linear(l, kind);
            require(!lin.isFactorized(),
                    "applyMagnitudePruning: pruning factorized layers "
                    "is not supported");
            lin.weight().value =
                magnitudePrune(lin.weight().value, sparsity);
        }
    }
}

int64_t
sparseMatrixBytes(int64_t rows, int64_t cols, double sparsity)
{
    const auto nnz = static_cast<int64_t>(
        std::llround((1.0 - sparsity)
                     * static_cast<double>(rows * cols)));
    return nnz * (2 + 2) + (rows + 1) * 4;
}

int64_t
prunedModelBytes(const ModelConfig &cfg, double sparsity,
                 int bytesPerParam)
{
    int64_t total = cfg.totalParams() * bytesPerParam;
    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            const auto shape = cfg.weightShape(kind);
            total -= shape[0] * shape[1] * bytesPerParam;
            total += sparseMatrixBytes(shape[0], shape[1], sparsity);
        }
    }
    return total;
}

} // namespace lrd
