/**
 * @file
 * Weight quantization baseline (the compression technique the paper
 * positions low-rank decomposition against).
 *
 * Per-row symmetric linear quantization to b bits. For accuracy
 * studies the quantization is *simulated* (quantize-dequantize in
 * place — "fake quant"), which exercises exactly the numerical error
 * real quantized inference sees while reusing the FP32 engine; model
 * size is accounted analytically.
 */

#ifndef LRD_QUANT_QUANTIZE_H
#define LRD_QUANT_QUANTIZE_H

#include "model/transformer.h"
#include "tensor/tensor.h"

namespace lrd {

/** A per-row symmetrically quantized matrix. */
struct QuantizedTensor
{
    int bits = 8;
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> q;   ///< Quantized codes, row-major.
    std::vector<float> scale; ///< Per-row scale (dequant = q * scale).

    /** Storage bytes of the quantized form (codes + FP16 scales). */
    int64_t storageBytes() const;
};

/**
 * Quantize a matrix per-row to `bits` (2..8) symmetric levels.
 */
QuantizedTensor quantizeWeight(const Tensor &w, int bits);

/** Reconstruct the dense matrix from its quantized form. */
Tensor dequantizeWeight(const QuantizedTensor &q);

/** Quantize-dequantize round trip (the simulation primitive). */
Tensor fakeQuantize(const Tensor &w, int bits);

/**
 * Simulate quantizing every decomposable weight tensor of the model
 * to `bits` bits (in place). Norms, embeddings and the LM head are
 * left in full precision, mirroring common weight-only PTQ.
 */
void applyFakeQuantization(TransformerModel &model, int bits);

/**
 * Model bytes when decomposable tensors are stored at `bits` bits
 * (plus per-row FP16 scales) and the rest at bytesPerParam.
 */
int64_t quantizedModelBytes(const ModelConfig &cfg, int bits,
                            int bytesPerParam = 2);

} // namespace lrd

#endif // LRD_QUANT_QUANTIZE_H
