#include "quantize.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

int64_t
QuantizedTensor::storageBytes() const
{
    // Codes are packed at `bits` per weight; scales stored FP16.
    const int64_t codeBits = rows * cols * bits;
    return (codeBits + 7) / 8 + rows * 2;
}

QuantizedTensor
quantizeWeight(const Tensor &w, int bits)
{
    require(w.rank() == 2, "quantizeWeight: weight must be a matrix");
    require(bits >= 2 && bits <= 8,
            strCat("quantizeWeight: bits ", bits, " out of [2, 8]"));
    const int64_t rows = w.dim(0), cols = w.dim(1);
    const int32_t qmax = (1 << (bits - 1)) - 1;

    QuantizedTensor out;
    out.bits = bits;
    out.rows = rows;
    out.cols = cols;
    out.q.resize(static_cast<size_t>(rows * cols));
    out.scale.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
        const float *row = w.data() + r * cols;
        float amax = 0.0F;
        for (int64_t c = 0; c < cols; ++c)
            amax = std::max(amax, std::abs(row[c]));
        const float scale = amax > 0.0F
                                ? amax / static_cast<float>(qmax)
                                : 1.0F;
        out.scale[static_cast<size_t>(r)] = scale;
        for (int64_t c = 0; c < cols; ++c) {
            const auto code = static_cast<int32_t>(
                std::lround(row[c] / scale));
            out.q[static_cast<size_t>(r * cols + c)] =
                std::min(qmax, std::max(-qmax - 1, code));
        }
    }
    return out;
}

Tensor
dequantizeWeight(const QuantizedTensor &q)
{
    Tensor w({q.rows, q.cols});
    for (int64_t r = 0; r < q.rows; ++r) {
        const float scale = q.scale[static_cast<size_t>(r)];
        float *row = w.data() + r * q.cols;
        for (int64_t c = 0; c < q.cols; ++c)
            row[c] = static_cast<float>(
                         q.q[static_cast<size_t>(r * q.cols + c)])
                     * scale;
    }
    return w;
}

Tensor
fakeQuantize(const Tensor &w, int bits)
{
    return dequantizeWeight(quantizeWeight(w, bits));
}

void
applyFakeQuantization(TransformerModel &model, int bits)
{
    const ModelConfig &cfg = model.config();
    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            Linear &lin = model.linear(l, kind);
            require(!lin.isFactorized(),
                    "applyFakeQuantization: quantizing factorized "
                    "layers is not supported");
            lin.weight().value = fakeQuantize(lin.weight().value, bits);
        }
    }
}

int64_t
quantizedModelBytes(const ModelConfig &cfg, int bits, int bytesPerParam)
{
    int64_t total = cfg.totalParams() * bytesPerParam;
    for (int64_t l = 0; l < cfg.nLayers; ++l) {
        for (WeightKind kind : decomposableKinds(cfg.arch)) {
            const auto shape = cfg.weightShape(kind);
            QuantizedTensor q;
            q.bits = bits;
            q.rows = shape[0];
            q.cols = shape[1];
            total -= shape[0] * shape[1] * bytesPerParam;
            total += q.storageBytes();
        }
    }
    return total;
}

} // namespace lrd
