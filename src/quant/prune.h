/**
 * @file
 * Magnitude (unstructured sparsity) pruning baseline — the other
 * compression family the paper contrasts with low-rank decomposition.
 *
 * Pruning is simulated by zeroing the smallest-magnitude weights in
 * place; model size is accounted as an ideal sparse format
 * (values + per-nonzero column index + row pointers).
 */

#ifndef LRD_QUANT_PRUNE_H
#define LRD_QUANT_PRUNE_H

#include "model/transformer.h"
#include "tensor/tensor.h"

namespace lrd {

/** Zero the `sparsity` fraction of smallest-|w| entries of a matrix. */
Tensor magnitudePrune(const Tensor &w, double sparsity);

/** Fraction of exactly-zero entries. */
double sparsityOf(const Tensor &w);

/**
 * Magnitude-prune every decomposable weight tensor of the model in
 * place to the given sparsity.
 */
void applyMagnitudePruning(TransformerModel &model, double sparsity);

/**
 * Bytes of a (rows x cols) matrix at the given sparsity in an ideal
 * CSR-style format: FP16 value + 16-bit column index per nonzero,
 * plus 32-bit row pointers.
 */
int64_t sparseMatrixBytes(int64_t rows, int64_t cols, double sparsity);

/** Model bytes with decomposable tensors stored sparse. */
int64_t prunedModelBytes(const ModelConfig &cfg, double sparsity,
                         int bytesPerParam = 2);

} // namespace lrd

#endif // LRD_QUANT_PRUNE_H
