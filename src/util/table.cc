#include "table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "logging.h"

namespace lrd {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void
TablePrinter::setHeader(const std::vector<std::string> &header)
{
    header_ = header;
}

void
TablePrinter::addRow(const std::vector<std::string> &row)
{
    require(header_.empty() || row.size() == header_.size(),
            strCat("TablePrinter: row width ", row.size(),
                   " != header width ", header_.size()));
    rows_.push_back(row);
}

std::string
TablePrinter::toMarkdown() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream oss;
    oss << "### " << title_ << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        oss << "|";
        for (size_t i = 0; i < row.size(); ++i)
            oss << " " << std::left << std::setw(static_cast<int>(widths[i]))
                << row[i] << " |";
        oss << "\n";
    };
    emit(header_);
    oss << "|";
    for (size_t w : widths)
        oss << std::string(w + 2, '-') << "|";
    oss << "\n";
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

std::string
TablePrinter::toCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << ",";
            // Quote cells containing separators.
            if (row[i].find_first_of(",\"\n") != std::string::npos) {
                oss << '"';
                for (char c : row[i]) {
                    if (c == '"')
                        oss << '"';
                    oss << c;
                }
                oss << '"';
            } else {
                oss << row[i];
            }
        }
        oss << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::cout << toMarkdown() << std::endl;
}

void
TablePrinter::writeCsv(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs) {
        warn("TablePrinter: cannot write " + path);
        return;
    }
    ofs << toCsv();
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace lrd
