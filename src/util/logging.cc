#include "logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "worker_lane.h"

namespace lrd {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<bool> g_timestamps{false};

/** Steady-clock anchor for the elapsed-seconds prefix. */
std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/** Build and emit one log line in a single stream write, so lines
 *  from concurrent workers never interleave mid-line. */
void
emit(const char *tag, const std::string &msg)
{
    std::string line;
    if (g_timestamps.load(std::memory_order_relaxed)) {
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now()
                                          - processEpoch())
                .count();
        char prefix[48];
        std::snprintf(prefix, sizeof(prefix), "[%9.3fs w%d] ", secs,
                      workerLane());
        line += prefix;
    }
    line += tag;
    line += msg;
    line += '\n';
    std::cerr << line;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool on)
{
    g_timestamps.store(on, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return g_timestamps.load(std::memory_order_relaxed);
}

LogSpec
parseLogSpec(const std::string &spec)
{
    LogSpec out;
    std::string level = spec;
    const size_t plus = spec.find('+');
    if (plus != std::string::npos) {
        level = spec.substr(0, plus);
        const std::string suffix = spec.substr(plus + 1);
        if (suffix == "ts")
            out.timestamps = true;
        else
            fatal(strCat("LRD_LOG: unknown suffix '+", suffix,
                         "' (only '+ts' is recognized)"));
    }
    if (level == "debug")
        out.level = LogLevel::Debug;
    else if (level == "info")
        out.level = LogLevel::Info;
    else if (level == "warn")
        out.level = LogLevel::Warn;
    else if (level == "error")
        out.level = LogLevel::Error;
    else
        fatal(strCat("LRD_LOG: unknown level '", level,
                     "' (expected debug|info|warn|error, optionally "
                     "with '+ts')"));
    return out;
}

void
inform(const std::string &msg)
{
    if (logLevel() <= LogLevel::Info)
        emit("info: ", msg);
}

void
warn(const std::string &msg)
{
    if (logLevel() <= LogLevel::Warn)
        emit("warn: ", msg);
}

void
debug(const std::string &msg)
{
    if (logLevel() <= LogLevel::Debug)
        emit("debug: ", msg);
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace lrd
