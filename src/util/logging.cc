#include "logging.h"

#include <iostream>

namespace lrd {

namespace {
LogLevel g_level = LogLevel::Info;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string &msg)
{
    if (g_level <= LogLevel::Info)
        std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    if (g_level <= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
debug(const std::string &msg)
{
    if (g_level <= LogLevel::Debug)
        std::cerr << "debug: " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace lrd
