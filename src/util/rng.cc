#include "rng.h"

#include <cmath>
#include <stdexcept>

namespace lrd {

namespace {

/** SplitMix64 step used for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + static_cast<float>(uniform()) * (hi - lo);
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    if (n == 0)
        throw std::invalid_argument("Rng::uniformInt: n must be > 0");
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument("Rng::categorical: negative weight");
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("Rng::categorical: all weights zero");
    double target = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA3C59AC2EB0AA5F7ULL);
}

RngState
Rng::state() const
{
    RngState st;
    for (size_t i = 0; i < st.s.size(); ++i)
        st.s[i] = s_[i];
    st.hasCachedNormal = hasCachedNormal_;
    st.cachedNormal = cachedNormal_;
    return st;
}

void
Rng::setState(const RngState &state)
{
    for (size_t i = 0; i < state.s.size(); ++i)
        s_[i] = state.s[i];
    hasCachedNormal_ = state.hasCachedNormal;
    cachedNormal_ = state.cachedNormal;
}

} // namespace lrd
