/**
 * @file
 * Wall-clock timing utilities for latency measurement.
 */

#ifndef LRD_UTIL_TIMER_H
#define LRD_UTIL_TIMER_H

#include <chrono>

namespace lrd {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds since construction or last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace lrd

#endif // LRD_UTIL_TIMER_H
