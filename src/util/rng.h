/**
 * @file
 * Deterministic pseudo-random number generation for the lrd library.
 *
 * Every stochastic component in the library (weight init, corpus
 * generation, benchmark task sampling) draws from an explicitly seeded
 * Rng so that experiments are bit-reproducible across runs.
 */

#ifndef LRD_UTIL_RNG_H
#define LRD_UTIL_RNG_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lrd {

/** Complete serializable Rng state (see Rng::state / Rng::setState). */
struct RngState
{
    std::array<uint64_t, 4> s{};
    bool hasCachedNormal = false;
    double cachedNormal = 0.0;
};

/**
 * Xoshiro256** pseudo-random generator seeded via SplitMix64.
 *
 * Chosen over std::mt19937 for speed, a tiny state, and a guaranteed
 * stable sequence across standard-library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the seed is expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Uniform integer in [0, n) for n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal variate (Box-Muller, cached second value). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @param weights Non-negative weights; at least one must be positive.
     */
    size_t categorical(const std::vector<double> &weights);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Snapshot / restore the full generator state, including the
     * Box-Muller cache, so a checkpointed pipeline resumes with a
     * bitwise-identical draw sequence.
     */
    RngState state() const;
    void setState(const RngState &state);

  private:
    uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace lrd

#endif // LRD_UTIL_RNG_H
