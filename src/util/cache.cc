#include "cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "logging.h"

namespace fs = std::filesystem;

namespace lrd {

std::string
cacheDir()
{
    static std::string dir = [] {
        const char *env = std::getenv("LRD_CACHE_DIR");
        fs::path p = env != nullptr
                         ? fs::path(env)
                         : fs::temp_directory_path() / "lrd-cache";
        std::error_code ec;
        fs::create_directories(p, ec);
        if (ec)
            warn("cacheDir: cannot create " + p.string() + ": "
                 + ec.message());
        return p.string();
    }();
    return dir;
}

std::string
cachePath(const std::string &name)
{
    return (fs::path(cacheDir()) / name).string();
}

bool
cacheHas(const std::string &name)
{
    return fs::exists(cachePath(name));
}

void
cacheWrite(const std::string &name, const std::vector<uint8_t> &bytes)
{
    const std::string path = cachePath(name);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream ofs(tmp, std::ios::binary);
        require(static_cast<bool>(ofs), "cacheWrite: cannot open " + tmp);
        ofs.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        require(static_cast<bool>(ofs), "cacheWrite: short write to " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    require(!ec, "cacheWrite: rename failed: " + ec.message());
}

Result<std::vector<uint8_t>>
cacheRead(const std::string &name)
{
    const std::string path = cachePath(name);
    std::ifstream ifs(path, std::ios::binary | std::ios::ate);
    if (!ifs)
        return Status(StatusCode::NotFound, "cache.read",
                      "missing entry " + path);
    const auto size = static_cast<size_t>(ifs.tellg());
    ifs.seekg(0);
    std::vector<uint8_t> bytes(size);
    ifs.read(reinterpret_cast<char *>(bytes.data()),
             static_cast<std::streamsize>(size));
    if (!ifs)
        return Status(StatusCode::DataLoss, "cache.read",
                      "short read from " + path);
    return bytes;
}

void
cacheErase(const std::string &name)
{
    std::error_code ec;
    fs::remove(cachePath(name), ec);
}

void
ByteWriter::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putF32(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(bits);
}

void
ByteWriter::putF64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
ByteWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
ByteWriter::putFloats(const std::vector<float> &v)
{
    putU64(v.size());
    const size_t off = buf_.size();
    buf_.resize(off + v.size() * sizeof(float));
    std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(float));
}

void
ByteWriter::putBytes(const std::vector<uint8_t> &v)
{
    putU64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

ByteReader::ByteReader(std::vector<uint8_t> bytes) : buf_(std::move(bytes)) {}

void
ByteReader::need(size_t n) const
{
    if (pos_ + n > buf_.size())
        fatal("ByteReader: truncated stream");
}

uint32_t
ByteReader::getU32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::getU64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

float
ByteReader::getF32()
{
    uint32_t bits = getU32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

double
ByteReader::getF64()
{
    uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::getString()
{
    const uint64_t n = getU64();
    need(n);
    std::string s(reinterpret_cast<const char *>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
}

std::vector<float>
ByteReader::getFloats()
{
    const uint64_t n = getU64();
    need(n * sizeof(float));
    std::vector<float> v(n);
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return v;
}

std::vector<uint8_t>
ByteReader::getBytes()
{
    const uint64_t n = getU64();
    need(n);
    std::vector<uint8_t> v(buf_.begin() + static_cast<long>(pos_),
                           buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return v;
}

} // namespace lrd
