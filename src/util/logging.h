/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * - inform(): normal operating message.
 * - warn():   something questionable but survivable.
 * - fatal():  user error (bad configuration / arguments); throws
 *             std::runtime_error so callers and tests can catch it.
 * - panic():  internal invariant violation (a library bug); throws
 *             std::logic_error.
 */

#ifndef LRD_UTIL_LOGGING_H
#define LRD_UTIL_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace lrd {

/** Severity levels for log output. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Global minimum level actually printed (default: Info). The level is
 * stored atomically: pool workers log concurrently with tests or the
 * CLI adjusting verbosity.
 */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Prefix every log line with elapsed seconds and the worker lane,
 * e.g. "[  1.042s w3] info: ...". Off by default; enabled by the
 * "+ts" suffix of LRD_LOG (see parseLogSpec).
 */
void setLogTimestamps(bool on);
bool logTimestamps();

/** A parsed LRD_LOG specification. */
struct LogSpec
{
    LogLevel level = LogLevel::Info;
    bool timestamps = false;
};

/**
 * Parse an LRD_LOG value: one of debug|info|warn|error, optionally
 * suffixed with "+ts" to enable timestamp + worker-index prefixes
 * (e.g. "debug+ts").
 * @throws std::runtime_error (via fatal()) on unknown values.
 */
LogSpec parseLogSpec(const std::string &spec);

/** Print an informational message to stderr (when level permits). */
void inform(const std::string &msg);

/** Print a warning message to stderr (when level permits). */
void warn(const std::string &msg);

/** Print a debug message to stderr (when level permits). */
void debug(const std::string &msg);

/**
 * Report an unrecoverable user-facing error.
 * @throws std::runtime_error always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation.
 * @throws std::logic_error always.
 */
[[noreturn]] void panic(const std::string &msg);

/** Require a condition; calls fatal() with the message when violated. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/** Variadic stream-style message builder: strCat(1, " + ", 2.5). */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    static_cast<void>((oss << ... << args));
    return oss.str();
}

} // namespace lrd

#endif // LRD_UTIL_LOGGING_H
