/**
 * @file
 * On-disk artifact cache for expensive derived objects (trained model
 * weights, baseline evaluation results). Keyed by a user-provided name;
 * lives under $LRD_CACHE_DIR or <tmp>/lrd-cache by default.
 */

#ifndef LRD_UTIL_CACHE_H
#define LRD_UTIL_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lrd {

/** Directory used for cached artifacts; created on first use. */
std::string cacheDir();

/** Full path for a named cache entry. */
std::string cachePath(const std::string &name);

/** Whether a named cache entry exists. */
bool cacheHas(const std::string &name);

/** Write a raw byte blob to a named entry (atomic via rename). */
void cacheWrite(const std::string &name, const std::vector<uint8_t> &bytes);

/** Read a named entry; NotFound status when missing or unreadable. */
Result<std::vector<uint8_t>> cacheRead(const std::string &name);

/** Remove a named entry if present. */
void cacheErase(const std::string &name);

/**
 * Binary serialization helpers used by weight (de)serialization.
 * All values are little-endian; this library only targets one host.
 */
class ByteWriter
{
  public:
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putF32(float v);
    void putF64(double v);
    void putString(const std::string &s);
    void putFloats(const std::vector<float> &v);
    void putBytes(const std::vector<uint8_t> &v);
    const std::vector<uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Cursor-based reader matching ByteWriter's format. */
class ByteReader
{
  public:
    explicit ByteReader(std::vector<uint8_t> bytes);
    uint32_t getU32();
    uint64_t getU64();
    float getF32();
    double getF64();
    std::string getString();
    std::vector<float> getFloats();
    std::vector<uint8_t> getBytes();
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    void need(size_t n) const;
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
};

} // namespace lrd

#endif // LRD_UTIL_CACHE_H
