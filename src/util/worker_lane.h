/**
 * @file
 * Thread-lane identity shared by logging and the observability layer.
 *
 * A "lane" is a small integer naming the calling thread: 0 for the
 * main/posting thread (and any external thread), 1..N-1 for the
 * thread-pool workers. The pool assigns lanes at worker startup via
 * setWorkerLane(); everything below the pool in the layering (log
 * prefixes, metric shards, trace buffers) reads workerLane() without
 * depending on lrd_parallel.
 */

#ifndef LRD_UTIL_WORKER_LANE_H
#define LRD_UTIL_WORKER_LANE_H

namespace lrd {

/** Lane of the calling thread: 0 unless setWorkerLane() was called. */
int workerLane();

/** Assign this thread's lane; called once per pool worker at spawn. */
void setWorkerLane(int lane);

/**
 * True while the calling thread is executing a parallel-region chunk
 * body (or posting one). Maintained by the thread pool; readable
 * below it — the cancellation layer uses it to restrict deterministic
 * deadline accounting to serial program points.
 */
bool inParallelRegion();

/** Pool-internal: mark parallel-region entry/exit for this thread. */
void setInParallelRegion(bool in);

} // namespace lrd

#endif // LRD_UTIL_WORKER_LANE_H
