/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The repo emits several JSON artifacts (metrics registry, chrome
 * traces, BENCH_*.json, telemetry JSONL) but until the flight
 * recorder nothing needed to *read* one back. This parser exists for
 * the consumers that now do: `lrdtool monitor` / `lrdtool compare`
 * (telemetry JSONL), the RunManifest round-trip, and schema checks in
 * tests. It accepts the RFC 8259 grammar, preserves object key order
 * (deterministic iteration — no unordered containers), and reports
 * malformed input as a Status instead of throwing.
 *
 * It is deliberately small: no writer (emitters build strings
 * directly, as metrics.cc always has), no \uXXXX decoding beyond
 * passing the escape through verbatim, and numbers are doubles.
 */

#ifndef LRD_UTIL_JSON_H
#define LRD_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace lrd {

/** One parsed JSON value; a tree of these is a document. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Typed readers; return the fallback on a kind mismatch. */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    int64_t asInt(int64_t fallback = 0) const;
    const std::string &asString() const { return string_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<Member> &members() const { return members_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &elements() const { return elements_; }

    /** First member with the given key, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /** Nested lookup: find(a) then ->find(b)...; nullptr anywhere. */
    const JsonValue *findPath(const std::vector<std::string> &keys) const;

    /** Convenience: the string / number / int at `key`, or fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    int64_t intOr(const std::string &key, int64_t fallback) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Member> members_;
    std::vector<JsonValue> elements_;
};

/**
 * Parse one JSON document. Trailing content after the first complete
 * value is an error (use parseJsonLines for JSONL).
 * @return the document, or an InvalidArgument Status with the byte
 *         offset of the first error.
 */
Result<JsonValue> parseJson(const std::string &text);

/**
 * Parse newline-delimited JSON: one document per non-empty line.
 * Fails on the first malformed line (reporting its line number) —
 * a telemetry file whose *last* line was cut off mid-write by a kill
 * is still readable via `stopAtError`.
 * @param stopAtError When true, a malformed or truncated final line
 *        is tolerated: parsing stops there and the complete prefix is
 *        returned. Malformed lines before the last remain errors.
 */
Result<std::vector<JsonValue>> parseJsonLines(const std::string &text,
                                              bool stopAtError = false);

/** Escape and quote a string for embedding in emitted JSON. */
std::string jsonQuote(const std::string &s);

} // namespace lrd

#endif // LRD_UTIL_JSON_H
