/**
 * @file
 * Process memory accounting for the flight recorder: an OS-level RSS
 * probe and the tensor-arena byte counters.
 *
 * Two complementary views of memory:
 *
 * - sampleProcMem() reads /proc/self/status (VmRSS / VmHWM) — what
 *   the kernel actually charges the process, including code, stacks,
 *   allocator slack, and the model cache. Zeroes on non-Linux hosts.
 * - The tensor arena counters track bytes owned by live Tensor
 *   objects. Tensor's constructors and destructor (src/tensor/) call
 *   tensorArenaRecordAlloc/Free; the counters live here in util
 *   (layer 0) so the telemetry sampler in src/obs/ (layer 1) can read
 *   them without an obs → tensor layering back-edge.
 *
 * All counters are relaxed atomics: cheap enough to leave always-on
 * (one fetch_add per Tensor construction — construction itself is an
 * O(n) zero-fill), and safe to read from the sampler thread. The peak
 * is maintained with a CAS loop on the allocation path only.
 */

#ifndef LRD_UTIL_MEMPROBE_H
#define LRD_UTIL_MEMPROBE_H

#include <cstdint>

namespace lrd {

/** Kernel-reported process memory at one instant. */
struct ProcMemSample
{
    int64_t rssBytes = 0;     ///< VmRSS: current resident set.
    int64_t peakRssBytes = 0; ///< VmHWM: resident-set high-water mark.
};

/** Read /proc/self/status; all-zero when unreadable (non-Linux). */
ProcMemSample sampleProcMem();

/** Cumulative + live byte accounting of Tensor storage. */
struct TensorArenaStats
{
    int64_t allocCount = 0;    ///< Tensors ever constructed.
    int64_t allocBytes = 0;    ///< Cumulative bytes allocated.
    int64_t freedBytes = 0;    ///< Cumulative bytes released.
    int64_t liveBytes = 0;     ///< allocBytes - freedBytes.
    int64_t peakLiveBytes = 0; ///< High-water mark of liveBytes.
};

/** Record `bytes` entering the arena (Tensor construction). */
void tensorArenaRecordAlloc(int64_t bytes);

/** Record `bytes` leaving the arena (Tensor destruction). */
void tensorArenaRecordFree(int64_t bytes);

/** Coherent-enough snapshot of the counters (relaxed loads). */
TensorArenaStats tensorArenaStats();

/** Reset the peak to the current live level (tests). */
void tensorArenaResetPeakForTest();

} // namespace lrd

#endif // LRD_UTIL_MEMPROBE_H
