#include "worker_lane.h"

namespace lrd {

namespace {
thread_local int tlLane = 0;
thread_local bool tlInParallel = false;
} // namespace

int
workerLane()
{
    return tlLane;
}

void
setWorkerLane(int lane)
{
    tlLane = lane >= 0 ? lane : 0;
}

bool
inParallelRegion()
{
    return tlInParallel;
}

void
setInParallelRegion(bool in)
{
    tlInParallel = in;
}

} // namespace lrd
