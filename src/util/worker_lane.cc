#include "worker_lane.h"

namespace lrd {

namespace {
thread_local int tlLane = 0;
} // namespace

int
workerLane()
{
    return tlLane;
}

void
setWorkerLane(int lane)
{
    tlLane = lane >= 0 ? lane : 0;
}

} // namespace lrd
