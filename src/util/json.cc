#include "json.h"

#include <cstdlib>

namespace lrd {

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
JsonValue::asNumber(double fallback) const
{
    return kind_ == Kind::Number ? number_ : fallback;
}

int64_t
JsonValue::asInt(int64_t fallback) const
{
    return kind_ == Kind::Number ? static_cast<int64_t>(number_)
                                 : fallback;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const JsonValue *
JsonValue::findPath(const std::vector<std::string> &keys) const
{
    const JsonValue *v = this;
    for (const std::string &key : keys) {
        v = v->find(key);
        if (!v)
            return nullptr;
    }
    return v;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->asString() : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asNumber(fallback) : fallback;
}

int64_t
JsonValue::intOr(const std::string &key, int64_t fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asInt(fallback) : fallback;
}

/** Recursive-descent parser over a [begin, end) byte range. */
class JsonParser
{
  public:
    JsonParser(const char *begin, const char *end)
        : begin_(begin), p_(begin), end_(end)
    {
    }

    /** Parse one complete document; trailing bytes are an error. */
    Result<JsonValue>
    document()
    {
        JsonValue v;
        if (!value(v, 0))
            return errorStatus();
        skipWs();
        if (p_ != end_) {
            fail("trailing content after JSON value");
            return errorStatus();
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    const char *begin_;
    const char *p_;
    const char *end_;
    std::string error_;

    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = strCat(what, " at byte ", p_ - begin_);
    }

    Status
    errorStatus() const
    {
        return Status(StatusCode::InvalidArgument, "json.parse", error_);
    }

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n'
                              || *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *lit)
    {
        for (; *lit; ++lit, ++p_)
            if (p_ == end_ || *p_ != *lit) {
                fail("bad literal");
                return false;
            }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p_ == end_ || *p_ != '"') {
            fail("expected '\"'");
            return false;
        }
        ++p_;
        out.clear();
        while (p_ != end_ && *p_ != '"') {
            char c = *p_;
            if (c == '\\') {
                ++p_;
                if (p_ == end_) {
                    fail("unterminated escape");
                    return false;
                }
                switch (*p_) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // Pass \uXXXX through verbatim: no emitter in
                    // this repo produces them, and a round-trip that
                    // preserves the escape is good enough for tools.
                    out += '\\';
                    c = 'u';
                    break;
                  default:
                    fail("unknown escape");
                    return false;
                }
            }
            out += c;
            ++p_;
        }
        if (p_ == end_) {
            fail("unterminated string");
            return false;
        }
        ++p_; // closing quote
        return true;
    }

    bool
    parseNumber(double &out)
    {
        char *after = nullptr;
        // strtod accepts a superset (hex, inf) but every number the
        // repo's emitters write is valid for it; the length check
        // below keeps us inside the buffer.
        out = std::strtod(p_, &after);
        if (after == p_ || after > end_) {
            fail("bad number");
            return false;
        }
        p_ = after;
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        skipWs();
        if (p_ == end_) {
            fail("unexpected end of input");
            return false;
        }
        switch (*p_) {
          case '{': return object(out, depth);
          case '[': return array(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return literal("true");
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return literal("false");
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null");
          default:
            out.kind_ = JsonValue::Kind::Number;
            return parseNumber(out.number_);
        }
    }

    bool
    object(JsonValue &out, int depth)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue::Member m;
            if (!parseString(m.first))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':') {
                fail("expected ':'");
                return false;
            }
            ++p_;
            if (!value(m.second, depth + 1))
                return false;
            out.members_.push_back(std::move(m));
            skipWs();
            if (p_ != end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ != end_ && *p_ == '}') {
                ++p_;
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    bool
    array(JsonValue &out, int depth)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v, depth + 1))
                return false;
            out.elements_.push_back(std::move(v));
            skipWs();
            if (p_ != end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ != end_ && *p_ == ']') {
                ++p_;
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }
};

Result<JsonValue>
parseJson(const std::string &text)
{
    JsonParser parser(text.data(), text.data() + text.size());
    return parser.document();
}

Result<std::vector<JsonValue>>
parseJsonLines(const std::string &text, bool stopAtError)
{
    std::vector<JsonValue> out;
    size_t lineNo = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        const bool lastLine = nl == std::string::npos;
        const std::string line =
            text.substr(pos, lastLine ? std::string::npos : nl - pos);
        pos = lastLine ? text.size() : nl + 1;
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Result<JsonValue> doc = parseJson(line);
        if (!doc.ok()) {
            // A kill mid-append can only truncate the final line;
            // callers that expect that tolerate exactly that case.
            if (stopAtError && pos >= text.size())
                break;
            return Status(StatusCode::DataLoss, "json.lines",
                          strCat("line ", lineNo, ": ",
                                 doc.status().message()));
        }
        out.push_back(std::move(doc).value());
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += ch;
        }
    }
    out += '"';
    return out;
}

} // namespace lrd
