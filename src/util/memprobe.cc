#include "memprobe.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace lrd {

namespace {

/** "VmRSS:    123 kB" -> bytes; -1 when the key is not this line. */
int64_t
parseStatusLine(const char *line, const char *key)
{
    const size_t keyLen = std::strlen(key);
    if (std::strncmp(line, key, keyLen) != 0)
        return -1;
    long long kb = 0;
    if (std::sscanf(line + keyLen, " %lld", &kb) != 1)
        return -1;
    return static_cast<int64_t>(kb) * 1024;
}

struct ArenaCounters
{
    std::atomic<int64_t> allocCount{0};
    std::atomic<int64_t> allocBytes{0};
    std::atomic<int64_t> freedBytes{0};
    std::atomic<int64_t> liveBytes{0};
    std::atomic<int64_t> peakLiveBytes{0};
};

ArenaCounters &
arena()
{
    // Leaked: tensors owned by function-local statics (the model
    // cache) destruct after main, and their accounting must still
    // find live counters.
    static ArenaCounters *c = new ArenaCounters; // lrd-lint: allow(hot-path-alloc) lazy singleton
    return *c;
}

} // namespace

ProcMemSample
sampleProcMem()
{
    ProcMemSample out;
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return out;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        int64_t v = parseStatusLine(line, "VmRSS:");
        if (v >= 0)
            out.rssBytes = v;
        v = parseStatusLine(line, "VmHWM:");
        if (v >= 0)
            out.peakRssBytes = v;
        if (out.rssBytes > 0 && out.peakRssBytes > 0)
            break;
    }
    std::fclose(f);
    return out;
}

void
tensorArenaRecordAlloc(int64_t bytes)
{
    ArenaCounters &c = arena();
    c.allocCount.fetch_add(1, std::memory_order_relaxed);
    c.allocBytes.fetch_add(bytes, std::memory_order_relaxed);
    const int64_t live =
        c.liveBytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = c.peakLiveBytes.load(std::memory_order_relaxed);
    while (live > peak
           && !c.peakLiveBytes.compare_exchange_weak(
               peak, live, std::memory_order_relaxed))
        ;
}

void
tensorArenaRecordFree(int64_t bytes)
{
    ArenaCounters &c = arena();
    c.freedBytes.fetch_add(bytes, std::memory_order_relaxed);
    c.liveBytes.fetch_sub(bytes, std::memory_order_relaxed);
}

TensorArenaStats
tensorArenaStats()
{
    ArenaCounters &c = arena();
    TensorArenaStats out;
    out.allocCount = c.allocCount.load(std::memory_order_relaxed);
    out.allocBytes = c.allocBytes.load(std::memory_order_relaxed);
    out.freedBytes = c.freedBytes.load(std::memory_order_relaxed);
    out.liveBytes = c.liveBytes.load(std::memory_order_relaxed);
    out.peakLiveBytes = c.peakLiveBytes.load(std::memory_order_relaxed);
    return out;
}

void
tensorArenaResetPeakForTest()
{
    ArenaCounters &c = arena();
    c.peakLiveBytes.store(c.liveBytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

} // namespace lrd
