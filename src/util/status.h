/**
 * @file
 * Structured error propagation for the numeric core and the
 * long-running pipelines: a Status (code + site + message) and a
 * Result<T> (value or Status).
 *
 * Status lives in util (layer 0) so that everything above it — the
 * cache, linalg, decomposition, trainer, evaluator, DSE optimizer —
 * can return one without a layering back-edge. The recovery policies
 * that *act* on a Status (degrade, retry, checkpoint fallback) live
 * one module up in src/robust/.
 *
 * The ok path allocates nothing: a default-constructed Status is code
 * Ok with an empty const-char site and an empty (SSO) message.
 */

#ifndef LRD_UTIL_STATUS_H
#define LRD_UTIL_STATUS_H

#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.h"

namespace lrd {

/** Failure category carried by a Status. */
enum class StatusCode : int
{
    Ok = 0,
    InvalidArgument,   ///< Caller passed something unusable.
    NotFound,          ///< Named artifact does not exist.
    DataLoss,          ///< Artifact exists but is corrupt/truncated.
    ResourceExhausted, ///< Allocation or budget failure.
    NonConvergence,    ///< Iterative kernel hit its sweep cap.
    NonFinite,         ///< NaN/Inf appeared in a numeric pipeline.
    Cancelled,         ///< Work stopped before completion.
    DeadlineExceeded,  ///< A work-unit or wall-clock deadline expired.
    Unavailable,       ///< Transient delivery failure; retry later.
    Internal,          ///< Invariant violation / unexpected error.
};

/** Stable lowercase name for a code ("non-convergence", ...). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "ok";
    case StatusCode::InvalidArgument:
        return "invalid-argument";
    case StatusCode::NotFound:
        return "not-found";
    case StatusCode::DataLoss:
        return "data-loss";
    case StatusCode::ResourceExhausted:
        return "resource-exhausted";
    case StatusCode::NonConvergence:
        return "non-convergence";
    case StatusCode::NonFinite:
        return "non-finite";
    case StatusCode::Cancelled:
        return "cancelled";
    case StatusCode::DeadlineExceeded:
        return "deadline-exceeded";
    case StatusCode::Unavailable:
        return "unavailable";
    case StatusCode::Internal:
        return "internal";
    }
    return "unknown";
}

/**
 * Error outcome of an operation. `site` identifies the injection /
 * detection point ("jacobi", "ckpt.write", "model.block") and must be
 * a string literal or other static-duration string — Status stores
 * the pointer, not a copy, so the ok path stays heap-free.
 */
class [[nodiscard]] Status
{
  public:
    /** Ok status; no allocation. */
    Status() = default;

    Status(StatusCode code, const char *site, std::string message)
        : code_(code), site_(site), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const char *site() const { return site_; }
    const std::string &message() const { return message_; }

    /** "non-convergence at jacobi: ..." (or "ok"). */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        std::string s = statusCodeName(code_);
        s += " at ";
        s += site_;
        if (!message_.empty()) {
            s += ": ";
            s += message_;
        }
        return s;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    const char *site_ = "";
    std::string message_;
};

/**
 * Exception form of a Status, for the few places (failure budgets,
 * strict-mode aborts) where an error must unwind through code that
 * has no Status return channel. Derives from std::runtime_error so
 * callers that only know about fatal()'s exception type still catch
 * it; callers that know better (lrdtool's exit-code mapping) can
 * recover the structured Status.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/** Throw `status` as a StatusError (the Status-carrying fatal()). */
[[noreturn]] inline void
throwStatus(Status status)
{
    throw StatusError(std::move(status));
}

/**
 * A T or the Status explaining why there is none. T must be
 * default-constructible (the error arm holds a default T).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /*implicit*/ Result(T value) : value_(std::move(value)) {}

    /*implicit*/ Result(Status status) : status_(std::move(status))
    {
        require(!status_.ok(),
                "Result: the error constructor needs a non-ok Status");
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        checkOk();
        return value_;
    }

    T &
    value() &
    {
        checkOk();
        return value_;
    }

    T &&
    value() &&
    {
        checkOk();
        return std::move(value_);
    }

    /** The value, or `fallback` when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? value_ : std::move(fallback);
    }

  private:
    void
    checkOk() const
    {
        if (!ok())
            fatal("Result::value() on error: " + status_.toString());
    }

    Status status_;
    T value_{};
};

} // namespace lrd

#endif // LRD_UTIL_STATUS_H
