/**
 * @file
 * Tabular result formatting for benchmark harnesses.
 *
 * Each reproduction bench prints one or more tables; TablePrinter
 * renders them as aligned markdown (human-readable) and optionally
 * dumps CSV next to the binary for plotting.
 */

#ifndef LRD_UTIL_TABLE_H
#define LRD_UTIL_TABLE_H

#include <string>
#include <vector>

namespace lrd {

/** A simple column-aligned table builder with markdown and CSV output. */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the header row (defines the column count). */
    void setHeader(const std::vector<std::string> &header);

    /** Append a data row; must match the header width. */
    void addRow(const std::vector<std::string> &row);

    /** Render as an aligned markdown table (with title). */
    std::string toMarkdown() const;

    /** Render as CSV (no title). */
    std::string toCsv() const;

    /** Print the markdown rendering to stdout. */
    void print() const;

    /** Write the CSV rendering to the given path; warns on failure. */
    void writeCsv(const std::string &path) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lrd

#endif // LRD_UTIL_TABLE_H
