/**
 * @file
 * Bounded MPMC queue with explicit overflow reporting.
 *
 * The admission side of the serving layer: producers offer work with
 * tryPush() (never blocks — a full queue is an *admission decision*,
 * surfaced to the caller, not an invisible stall), consumers take
 * work with tryPop()/popWait(). close() wakes every waiter; a closed,
 * drained queue pops nothing.
 *
 * Mutex + condition variable rather than a lock-free ring: the serve
 * control loop pops at tick granularity (hundreds of microseconds of
 * model math per item), so queue overhead is noise — and a mutex
 * keeps the TSan story trivial for the producer/consumer storm test.
 * The deterministic scheduling guarantee does not come from the
 * queue; it comes from the server making every decision at serial
 * points on the control thread.
 */

#ifndef LRD_SERVE_QUEUE_H
#define LRD_SERVE_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace lrd {

template <typename T>
class BoundedMpmcQueue
{
  public:
    explicit BoundedMpmcQueue(int64_t capacity) : capacity_(capacity)
    {
        require(capacity > 0,
                "BoundedMpmcQueue: capacity must be positive");
    }

    /**
     * Offer one item. Returns false — without blocking — when the
     * queue is at capacity or closed; the item is untouched and the
     * caller owns the shed/retry decision.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || static_cast<int64_t>(items_.size()) >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        nonEmpty_.notify_one();
        return true;
    }

    /** Pop the oldest item, or nullopt when empty (never blocks). */
    std::optional<T>
    tryPop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /**
     * Pop the oldest item, waiting while the queue is empty and open.
     * Returns nullopt only once the queue is closed *and* drained, so
     * a consumer loop `while (auto item = q.popWait())` exits exactly
     * when no item can ever arrive again.
     */
    std::optional<T>
    popWait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        nonEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Stop admitting and wake every waiting consumer (idempotent). */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        nonEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    int64_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<int64_t>(items_.size());
    }

    int64_t capacity() const { return capacity_; }

  private:
    const int64_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable nonEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace lrd

#endif // LRD_SERVE_QUEUE_H
