#include "serve/batcher.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace lrd {

Batcher::Batcher(TransformerModel &primary, TransformerModel *fallback)
{
    primary_.model = &primary;
    fallback_.model = fallback != nullptr ? fallback : &primary;
}

void
Batcher::execute(const std::vector<ServeRequest> &batch, bool useFallback,
                 int64_t tick, std::vector<ServeResponse *> &out)
{
    require(batch.size() == out.size(),
            "Batcher: batch and response slots must pair up");
    if (batch.empty())
        return;
    static Counter *items =
        MetricsRegistry::instance().counter("serve.batch.items");
    static Histogram *sizes =
        MetricsRegistry::instance().histogram("serve.batch.size");
    items->add(static_cast<int64_t>(batch.size()));
    sizes->record(static_cast<int64_t>(batch.size()));

    // Serial point: consume the fault counter once per batch so the
    // poisoned item is the same at any LRD_THREADS.
    const bool poisonFirst = faultAt("serve.batch", FaultKind::Nan);
    Variant &variant = useFallback ? fallback_ : primary_;
    executeOn(variant, batch, useFallback, poisonFirst, tick, out);
}

void
Batcher::executeOn(Variant &variant, const std::vector<ServeRequest> &batch,
                   bool degraded, bool poisonFirst, int64_t tick,
                   std::vector<ServeResponse *> &out)
{
    const auto n = static_cast<int64_t>(batch.size());
    const auto scoreItem = [&](int64_t i, TransformerModel &m) {
        LRD_TRACE_SPAN("serve.item");
        const ServeRequest &req = batch[static_cast<size_t>(i)];
        ServeResponse &resp = *out[static_cast<size_t>(i)];
        resp.id = req.id;
        resp.outcome = ServeOutcome::Responded;
        resp.degraded = degraded;
        resp.settledTick = tick;
        if (poisonFirst && i == 0) {
            resp.score = std::numeric_limits<double>::quiet_NaN();
            resp.status = Status(StatusCode::NonFinite, "serve.batch",
                                 "injected numeric fault");
            return;
        }
        resp.score = scoreContinuation(m, req.context, req.continuation);
        if (!std::isfinite(resp.score))
            resp.status = Status(StatusCode::NonFinite, "serve.batch",
                                 "non-finite continuation score");
    };

    ThreadPool &pool = ThreadPool::instance();
    if (pool.numThreads() <= 1 || n <= 1 || ThreadPool::inParallelRegion()
        || ThreadPool::workerIndex() != 0) {
        for (int64_t i = 0; i < n; ++i)
            scoreItem(i, *variant.model);
        return;
    }

    // Lazy, once per variant: the snapshot every worker replica is
    // deserialized from. Taken here (a serial point) so replicas are
    // bitwise copies of the model as of its first parallel batch —
    // serve never mutates weights, so the snapshot stays valid.
    if (variant.snapshot.empty())
        variant.snapshot = variant.model->serialize();
    if (variant.replicas.size()
        != static_cast<size_t>(pool.numThreads()))
        variant.replicas.resize(static_cast<size_t>(pool.numThreads()));

    pool.parallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
        const auto w = static_cast<size_t>(ThreadPool::workerIndex());
        TransformerModel *m = variant.model;
        if (w != 0) {
            // Each worker index is owned by exactly one live thread,
            // so lazy slot initialization is race-free.
            if (!variant.replicas[w])
                // lrd-lint: allow(hot-path-alloc) per-worker model replica: one allocation per worker per server lifetime
                variant.replicas[w] = std::make_unique<TransformerModel>(
                    TransformerModel::deserialize(variant.snapshot));
            m = variant.replicas[w].get();
        }
        for (int64_t i = lo; i < hi; ++i)
            scoreItem(i, *m);
    });
}

void
Batcher::clearCaches()
{
    primary_.model->clearCache();
    if (fallback_.model != primary_.model)
        fallback_.model->clearCache();
}

} // namespace lrd
