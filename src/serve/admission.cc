#include "serve/admission.h"

#include "obs/metrics.h"
#include "robust/fault.h"
#include "util/logging.h"

namespace lrd {

AdmissionController::AdmissionController(int64_t queueCapacity,
                                         int64_t maxBatch)
    : queueCapacity_(queueCapacity), maxBatch_(maxBatch)
{
    require(queueCapacity > 0,
            "AdmissionController: queueCapacity must be positive");
    require(maxBatch > 0, "AdmissionController: maxBatch must be positive");
}

AdmitDecision
AdmissionController::offer(int64_t queueDepth)
{
    static Counter *admitted =
        MetricsRegistry::instance().counter("serve.admitted");
    static Counter *shed = MetricsRegistry::instance().counter("serve.shed");

    AdmitDecision decision;
    const bool injectedShed = faultAt("serve.admit", FaultKind::Alloc);
    if (!injectedShed && queueDepth < queueCapacity_) {
        decision.admitted = true;
        admitted->inc();
        return decision;
    }
    // Retry-after: ticks for the batcher to drain the present backlog
    // at the full batch rate, at least one. Computed, not guessed, so
    // a well-behaved client re-offering after the hint lands in a
    // queue with room (absent new arrivals).
    const int64_t backlog = queueDepth > 0 ? queueDepth : 1;
    decision.retryAfterTicks = (backlog + maxBatch_ - 1) / maxBatch_;
    decision.status =
        Status(StatusCode::ResourceExhausted, "serve.admit",
               injectedShed ? "injected admission failure"
                            : "queue at capacity");
    shed->inc();
    return decision;
}

} // namespace lrd
