/**
 * @file
 * Request / response shapes for the serving layer.
 *
 * Time in the serving layer is counted in *ticks*: one tick is one
 * pass of the server control loop (admission, batch formation, batch
 * execution, delivery). Arrival times, deadlines, and retry backoff
 * are all expressed in ticks, which is what makes every scheduling
 * decision — shed, deadline-miss, degradation transitions — a pure
 * function of the workload and the configuration, bitwise
 * reproducible at any LRD_THREADS. Wall-clock latency is *recorded*
 * (serve.latency.us histogram) but never drives a decision.
 */

#ifndef LRD_SERVE_REQUEST_H
#define LRD_SERVE_REQUEST_H

#include <cstdint>

#include "model/embedding.h"
#include "util/status.h"

namespace lrd {

/** Terminal (and initial) states of a request's lifecycle. */
enum class ServeOutcome : int
{
    Pending = 0,    ///< Not yet settled (never appears in a report).
    Responded,      ///< Scored and delivered (status may be degraded).
    Shed,           ///< Rejected at admission after bounded retries.
    DeadlineMissed, ///< Expired before its batch executed.
    Cancelled,      ///< Drained by a shutdown before scoring.
    Unavailable,    ///< Scored but delivery failed after retries.
};

/** Stable lowercase name for an outcome ("responded", ...). */
const char *serveOutcomeName(ServeOutcome outcome);

/** Whether an outcome is terminal (everything except Pending). */
inline bool
serveOutcomeTerminal(ServeOutcome outcome)
{
    return outcome != ServeOutcome::Pending;
}

/** One sequence-scoring request (the serving unit of work). */
struct ServeRequest
{
    int64_t id = 0;          ///< Dense [0, n) index into the report.
    int tenant = 0;          ///< Originating tenant (for fairness stats).
    TokenSeq context;        ///< Conditioning prefix.
    TokenSeq continuation;   ///< Tokens to score given the prefix.
    int64_t arrivalTick = 0; ///< First tick this request may be offered.
    /** Absolute tick after which the request is worthless. */
    int64_t deadlineTick = 0;
    int attempt = 0; ///< Client-side admission attempts so far.
};

/** The settled result of one request. */
struct ServeResponse
{
    int64_t id = -1;
    ServeOutcome outcome = ServeOutcome::Pending;
    /** Summed continuation log-probability (Responded only). */
    double score = 0.0;
    /** True when scored by the lower-rank fallback variant. */
    bool degraded = false;
    /** Tick at which the outcome settled. */
    int64_t settledTick = 0;
    /** Shed only: suggested ticks to wait before re-offering. */
    int64_t retryAfterTicks = 0;
    /** Non-ok for every outcome except a clean Responded. */
    Status status;
};

} // namespace lrd

#endif // LRD_SERVE_REQUEST_H
