/**
 * @file
 * The continuous batcher: executes one tick's batch of sequence-
 * scoring requests on the thread pool, replica-per-worker, writing
 * each response into its request's fixed slot.
 *
 * Determinism contract (same as the evaluator's, PR 5): worker 0
 * scores on the live model; workers 1..N-1 score on private replicas
 * deserialized from one serialize() snapshot, so weights are bitwise
 * identical everywhere, items are independent, and each item writes
 * only its own slot — response content is invariant under
 * LRD_THREADS. Replicas and snapshots are cached across batches (a
 * server scores thousands of batches; re-serializing per batch would
 * dwarf the model math).
 *
 * Fault hook: the serve.batch nan site is checked ONCE per batch on
 * the control thread before the parallel region, and deterministically
 * poisons the batch's first item — the injected numeric failure lands
 * on the same request at any thread count.
 */

#ifndef LRD_SERVE_BATCHER_H
#define LRD_SERVE_BATCHER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "model/transformer.h"
#include "serve/request.h"

namespace lrd {

class Batcher
{
  public:
    /**
     * @param primary Full-rank serving model (borrowed; must outlive
     *        the batcher).
     * @param fallback Optional lower-rank variant for the degradation
     *        ladder's RankFallback rung (borrowed; may be null, in
     *        which case fallback execution uses the primary).
     */
    Batcher(TransformerModel &primary, TransformerModel *fallback);

    /**
     * Score `batch` and write outcome/score/status into the matching
     * slots of `out` (indexed by position in `batch`). Every slot is
     * settled as Responded; an injected serve.batch numeric fault
     * settles item 0 with a NonFinite status instead of a score.
     */
    void execute(const std::vector<ServeRequest> &batch, bool useFallback,
                 int64_t tick, std::vector<ServeResponse *> &out);

    /** Drop cached activation state on the live models (drain path). */
    void clearCaches();

  private:
    struct Variant
    {
        TransformerModel *model = nullptr;
        std::vector<uint8_t> snapshot; ///< Lazy; empty until needed.
        std::vector<std::unique_ptr<TransformerModel>> replicas;
    };

    void executeOn(Variant &variant, const std::vector<ServeRequest> &batch,
                   bool degraded, bool poisonFirst, int64_t tick,
                   std::vector<ServeResponse *> &out);

    Variant primary_;
    Variant fallback_;
};

} // namespace lrd

#endif // LRD_SERVE_BATCHER_H
