#include "serve/workload.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"

namespace lrd {

std::vector<ServeRequest>
makeSyntheticWorkload(const ModelConfig &cfg, const WorkloadOptions &opts)
{
    require(opts.numRequests > 0,
            "makeSyntheticWorkload: numRequests must be positive");
    require(cfg.vocabSize > 0,
            "makeSyntheticWorkload: model vocabulary is empty");
    Rng rng(opts.seed);
    const auto vocab = static_cast<uint64_t>(cfg.vocabSize);
    std::vector<ServeRequest> out;
    out.reserve(static_cast<size_t>(opts.numRequests));
    int64_t arrival = 0;
    for (int i = 0; i < opts.numRequests; ++i) {
        ServeRequest req;
        req.id = i;
        req.tenant = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(opts.tenants)));
        const auto ctxLen = static_cast<size_t>(
            1 + rng.uniformInt(static_cast<uint64_t>(opts.maxContextLen)));
        const auto contLen = static_cast<size_t>(
            1
            + rng.uniformInt(
                static_cast<uint64_t>(opts.maxContinuationLen)));
        req.context.reserve(ctxLen);
        for (size_t t = 0; t < ctxLen; ++t)
            req.context.push_back(static_cast<int>(rng.uniformInt(vocab)));
        req.continuation.reserve(contLen);
        for (size_t t = 0; t < contLen; ++t)
            req.continuation.push_back(
                static_cast<int>(rng.uniformInt(vocab)));
        if (opts.maxArrivalGapTicks > 0 && i > 0)
            arrival += static_cast<int64_t>(rng.uniformInt(
                static_cast<uint64_t>(opts.maxArrivalGapTicks + 1)));
        req.arrivalTick = arrival;
        req.deadlineTick = arrival + opts.deadlineTicks;
        out.push_back(std::move(req));
    }
    return out;
}

namespace {

Result<TokenSeq>
tokenArray(const JsonValue &obj, const std::string &key, int64_t line)
{
    const JsonValue *arr = obj.find(key);
    if (arr == nullptr || !arr->isArray() || arr->elements().empty())
        return Status(StatusCode::InvalidArgument, "serve.workload",
                      strCat("line ", line, ": '", key,
                             "' must be a non-empty token array"));
    TokenSeq seq;
    seq.reserve(arr->elements().size());
    for (const JsonValue &el : arr->elements()) {
        if (!el.isNumber())
            return Status(StatusCode::InvalidArgument, "serve.workload",
                          strCat("line ", line, ": '", key,
                                 "' holds a non-numeric token"));
        seq.push_back(static_cast<int>(el.asInt()));
    }
    return seq;
}

} // namespace

Result<std::vector<ServeRequest>>
loadWorkloadFile(const std::string &path, int64_t defaultDeadlineTicks)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status(StatusCode::NotFound, "serve.workload",
                      "cannot open request file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<std::vector<JsonValue>> lines = parseJsonLines(buf.str());
    if (!lines.ok())
        return lines.status();

    std::vector<ServeRequest> out;
    out.reserve(lines.value().size());
    for (size_t i = 0; i < lines.value().size(); ++i) {
        const JsonValue &obj = lines.value()[i];
        const auto line = static_cast<int64_t>(i + 1);
        if (!obj.isObject())
            return Status(StatusCode::InvalidArgument, "serve.workload",
                          strCat("line ", line, ": expected an object"));
        ServeRequest req;
        req.id = static_cast<int64_t>(i);
        req.tenant = static_cast<int>(obj.intOr("tenant", 0));
        Result<TokenSeq> ctx = tokenArray(obj, "context", line);
        if (!ctx.ok())
            return ctx.status();
        req.context = std::move(ctx).value();
        Result<TokenSeq> cont = tokenArray(obj, "continuation", line);
        if (!cont.ok())
            return cont.status();
        req.continuation = std::move(cont).value();
        req.arrivalTick = obj.intOr("arrival", 0);
        req.deadlineTick =
            obj.intOr("deadline", req.arrivalTick + defaultDeadlineTicks);
        out.push_back(std::move(req));
    }
    if (out.empty())
        return Status(StatusCode::InvalidArgument, "serve.workload",
                      "request file '" + path + "' holds no requests");
    return out;
}

} // namespace lrd
