/**
 * @file
 * The request server: a single control loop that ties the bounded
 * queue, admission control, the degradation ladder, the continuous
 * batcher, client-side retry, and graceful drain into one
 * deterministic scheduler.
 *
 * Control-loop contract: every scheduling decision — admit/shed,
 * ladder transitions, batch membership, deadline excision, drain —
 * happens on the control thread at tick boundaries (serial points in
 * the robust/cancel sense). The thread pool is entered only inside
 * Batcher::execute, where items are independent and write fixed
 * slots. Together this makes the full response vector, including
 * which requests were shed or missed their deadline, bitwise
 * identical at any LRD_THREADS.
 *
 * Robustness integration:
 *  - SIGINT/SIGTERM or an injected cancel at serve.admit /
 *    serve.batch / serve.respond flips the process cancel token; the
 *    loop finishes the in-flight batch, then drains — unscored
 *    requests settle as Cancelled, telemetry flushes through the
 *    normal lrdtool exit path, and the report carries the Cancelled
 *    status (exit code 3).
 *  - LRD_DEADLINE=items:<n> budgets serve work exactly like eval
 *    work: the batch that exhausts the budget is truncated at a
 *    serial point and the run winds down as DeadlineExceeded.
 *  - The watchdog supervises the loop (WatchdogSection "serve" +
 *    a per-tick heartbeat), so a wedged batcher is reported like a
 *    wedged trainer.
 */

#ifndef LRD_SERVE_SERVER_H
#define LRD_SERVE_SERVER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "model/transformer.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/load_control.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "util/status.h"

namespace lrd {

struct ServeOptions
{
    int64_t queueCapacity = 16;
    int64_t maxBatch = 4;
    /** Admission attempts per request (first offer + retries). */
    int maxClientAttempts = 3;
    /** Backoff base: attempt k re-offers after base * 2^k ticks. */
    int64_t retryBackoffBaseTicks = 2;
    /** Delivery attempts per response at serve.respond. */
    int responderAttempts = 3;
    /**
     * Pruned rank of the degradation-ladder fallback variant
     * (DecompConfig::allTensors over every layer). 0 disables the
     * fallback model; the RankFallback rung then only shrinks
     * batches.
     */
    int64_t fallbackRank = 0;
    /** Deadline assigned to workloads that do not carry one. */
    int64_t defaultDeadlineTicks = 64;
    /** Seed for the deterministic delivery-retry stream. */
    uint64_t retrySeed = 0x5EEDu;
    LoadControlOptions ladder;

    /** Defaults overridden by LRD_SERVE_* environment variables. */
    static ServeOptions fromEnv();
};

/** Aggregate outcome counts and latency quantiles of one run. */
struct ServeStats
{
    int64_t offered = 0;   ///< Admission offers (includes re-offers).
    int64_t admitted = 0;  ///< Offers that entered the queue.
    int64_t responded = 0; ///< Requests with outcome Responded.
    int64_t degradedResponses = 0; ///< Responded via the fallback model.
    int64_t shed = 0;              ///< Terminal sheds (retries exhausted).
    int64_t deadlineMissed = 0;
    int64_t cancelled = 0;
    int64_t unavailable = 0;
    int64_t clientRetries = 0; ///< Backoff re-offers scheduled.
    int64_t batches = 0;
    int64_t ticks = 0;
    int64_t maxServiceLevel = 0; ///< Deepest ladder rung reached.
    double p50LatencyTicks = 0.0; ///< Responded requests only.
    double p99LatencyTicks = 0.0;
    double wallSeconds = 0.0;
    double throughputRps = 0.0; ///< Responded / wallSeconds.
};

struct ServeReport
{
    ServeStats stats;
    /** One slot per request id; every outcome is terminal. */
    std::vector<ServeResponse> responses;
    /** Ok for a natural drain; Cancelled/DeadlineExceeded otherwise. */
    Status status;
};

class Server
{
  public:
    /**
     * @param model The serving model (borrowed; must outlive the
     *        server). Never mutated; the fallback variant is built
     *        from a deserialized copy.
     */
    Server(TransformerModel &model, ServeOptions opts);

    /**
     * Serve `workload` to completion or drain. Requests must carry
     * dense ids [0, n); arrival order is (arrivalTick, id).
     */
    ServeReport run(std::vector<ServeRequest> workload);

    /** Whether the fallback variant was built (fallbackRank valid). */
    bool hasFallbackModel() const { return fallback_ != nullptr; }

  private:
    TransformerModel &model_;
    ServeOptions opts_;
    std::unique_ptr<TransformerModel> fallback_;
};

} // namespace lrd

#endif // LRD_SERVE_SERVER_H
