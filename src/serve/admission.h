/**
 * @file
 * Admission control: the decision, made at a serial point on the
 * server control thread, of whether an offered request enters the
 * bounded queue or is shed with a computed retry-after hint.
 *
 * Shedding is deterministic — a pure function of the queue depth at
 * the tick the request is offered — and always explicit: a shed
 * request carries StatusCode::ResourceExhausted plus a retry-after
 * hint sized to the current backlog, never a silent drop.
 */

#ifndef LRD_SERVE_ADMISSION_H
#define LRD_SERVE_ADMISSION_H

#include <cstdint>

#include "util/status.h"

namespace lrd {

/** Outcome of offering one request to admission control. */
struct AdmitDecision
{
    bool admitted = false;
    /** Shed only: ticks until the backlog should have drained. */
    int64_t retryAfterTicks = 0;
    /** Shed only: ResourceExhausted at serve.admit. */
    Status status;
};

/**
 * Stateless admission policy over a bounded queue. Lives in its own
 * class (rather than inline in the server loop) so the shed rule and
 * its fault hook are unit-testable without a model or a queue.
 */
class AdmissionController
{
  public:
    /**
     * @param queueCapacity Bound of the request queue.
     * @param maxBatch Requests retired per tick at full batch size;
     *        sets the retry-after scale (backlog / drain rate).
     */
    AdmissionController(int64_t queueCapacity, int64_t maxBatch);

    /**
     * Decide admission for one request given the queue depth at this
     * tick. Checks the serve.admit fault site: an injected alloc
     * fault sheds the request exactly as a full queue would, so chaos
     * runs exercise the shed path at any load. Bumps serve.admitted /
     * serve.shed.
     */
    AdmitDecision offer(int64_t queueDepth);

    int64_t queueCapacity() const { return queueCapacity_; }

  private:
    int64_t queueCapacity_;
    int64_t maxBatch_;
};

} // namespace lrd

#endif // LRD_SERVE_ADMISSION_H
