#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "model/decomp_config.h"
#include "obs/metrics.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/retry.h"
#include "robust/signal.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lrd {

namespace {

int64_t
envInt64(const char *name, int64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    require(end != nullptr && *end == '\0',
            strCat(name, ": '", env, "' is not an integer"));
    return static_cast<int64_t>(v);
}

/** Quantile of a sorted sample set (nearest-rank; deterministic). */
double
sortedQuantile(const std::vector<int64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<size_t>(q * n);
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return static_cast<double>(sorted[rank]);
}

/** A shed request waiting out its client-side backoff. */
struct RetryEntry
{
    int64_t dueTick = 0;
    ServeRequest req;
};

} // namespace

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions opts;
    opts.queueCapacity = envInt64("LRD_SERVE_QUEUE", opts.queueCapacity);
    opts.maxBatch = envInt64("LRD_SERVE_BATCH", opts.maxBatch);
    opts.maxClientAttempts = static_cast<int>(
        envInt64("LRD_SERVE_RETRIES", opts.maxClientAttempts));
    opts.retryBackoffBaseTicks =
        envInt64("LRD_SERVE_BACKOFF", opts.retryBackoffBaseTicks);
    opts.fallbackRank = envInt64("LRD_SERVE_FALLBACK_RANK", opts.fallbackRank);
    opts.defaultDeadlineTicks =
        envInt64("LRD_SERVE_DEADLINE", opts.defaultDeadlineTicks);
    require(opts.queueCapacity > 0 && opts.maxBatch > 0
                && opts.maxClientAttempts > 0,
            "LRD_SERVE_*: queue, batch, and retries must be positive");
    return opts;
}

Server::Server(TransformerModel &model, ServeOptions opts)
    : model_(model), opts_(opts)
{
    if (opts_.fallbackRank <= 0)
        return;
    const ModelConfig &cfg = model_.config();
    std::vector<int> layers(static_cast<size_t>(cfg.nLayers));
    for (size_t l = 0; l < layers.size(); ++l)
        layers[l] = static_cast<int>(l);
    const DecompConfig gamma = DecompConfig::allTensors(
        cfg, std::move(layers), opts_.fallbackRank);
    std::string why;
    if (!gamma.valid(cfg, &why)) {
        warn("serve: fallback rank " + std::to_string(opts_.fallbackRank)
             + " invalid for this model (" + why
             + "); degradation ladder will shrink batches only");
        return;
    }
    // lrd-lint: allow(hot-path-alloc) fallback variant: one copy at server construction
    auto fallback = std::make_unique<TransformerModel>(
        TransformerModel::deserialize(model_.serialize()));
    const Status applied = gamma.applyTo(*fallback);
    if (!applied.ok())
        // Under the degrade policy a failed tensor stays dense; the
        // variant is still consistent and usable.
        warn("serve: fallback factorization degraded: "
             + applied.toString());
    fallback_ = std::move(fallback);
    inform(strCat("serve: fallback variant ready (", gamma.describe(),
                  ", parameter reduction ",
                  gamma.parameterReduction(cfg), ")"));
}

ServeReport
Server::run(std::vector<ServeRequest> workload)
{
    static Counter *ticksCtr =
        MetricsRegistry::instance().counter("serve.ticks");
    static Counter *batchesCtr =
        MetricsRegistry::instance().counter("serve.batches");
    static Counter *respondedCtr =
        MetricsRegistry::instance().counter("serve.responded");
    static Counter *missedCtr =
        MetricsRegistry::instance().counter("serve.deadline.missed");
    static Counter *cancelledCtr =
        MetricsRegistry::instance().counter("serve.cancelled");
    static Counter *unavailableCtr =
        MetricsRegistry::instance().counter("serve.unavailable");
    static Counter *retriesCtr =
        MetricsRegistry::instance().counter("serve.client.retries");
    static Gauge *depthGauge =
        MetricsRegistry::instance().gauge("serve.queue.depth");
    static Histogram *latencyTicksHist =
        MetricsRegistry::instance().histogram("serve.latency.ticks");
    static Histogram *latencyUsHist =
        MetricsRegistry::instance().histogram("serve.latency.us");

    const auto n = static_cast<int64_t>(workload.size());
    require(n > 0, "Server::run: workload is empty");
    std::stable_sort(workload.begin(), workload.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrivalTick != b.arrivalTick
                                    ? a.arrivalTick < b.arrivalTick
                                    : a.id < b.id;
                     });
    ServeReport report;
    report.responses.resize(static_cast<size_t>(n));
    std::vector<int64_t> arrivalOf(static_cast<size_t>(n), 0);
    std::vector<double> offerWallSeconds(static_cast<size_t>(n), 0.0);
    for (const ServeRequest &req : workload) {
        require(req.id >= 0 && req.id < n,
                "Server::run: request ids must be dense [0, n)");
        arrivalOf[static_cast<size_t>(req.id)] = req.arrivalTick;
    }

    // Exactly-one-terminal-outcome invariant: every settle goes
    // through here, and a second settle of the same id is a bug.
    const auto settle = [&](int64_t id, ServeOutcome outcome,
                            Status status, int64_t tick) {
        ServeResponse &slot = report.responses[static_cast<size_t>(id)];
        require(slot.outcome == ServeOutcome::Pending,
                strCat("Server: request ", id, " settled twice"));
        slot.id = id;
        slot.outcome = outcome;
        slot.status = std::move(status);
        slot.settledTick = tick;
    };

    WatchdogSection watched("serve");
    Timer wall;
    BoundedMpmcQueue<ServeRequest> queue(opts_.queueCapacity);
    AdmissionController admission(opts_.queueCapacity, opts_.maxBatch);
    LoadController ladder(opts_.ladder);
    Batcher batcher(model_, fallback_.get());
    ServeStats &stats = report.stats;

    size_t nextArrival = 0;
    std::vector<RetryEntry> backlog; // Sorted by (dueTick, id).
    std::vector<ServeRequest> truncated; // Cut by an items budget.
    int64_t tick = 0;
    bool budgetExpired = false;

    const auto offerOne = [&](ServeRequest req) {
        if (req.deadlineTick < tick) {
            missedCtr->inc();
            settle(req.id, ServeOutcome::DeadlineMissed,
                   Status(StatusCode::DeadlineExceeded, "serve.admit",
                          "deadline expired during client backoff"),
                   tick);
            return;
        }
        ++stats.offered;
        const AdmitDecision decision = admission.offer(queue.size());
        if (decision.admitted) {
            if (offerWallSeconds[static_cast<size_t>(req.id)] == 0.0)
                offerWallSeconds[static_cast<size_t>(req.id)] =
                    wall.elapsedSeconds();
            ++stats.admitted;
            require(queue.tryPush(std::move(req)),
                    "Server: admission admitted into a full queue");
            return;
        }
        if (req.attempt + 1 < opts_.maxClientAttempts) {
            RetryEntry entry;
            entry.dueTick = tick
                            + backoffTicks(opts_.retryBackoffBaseTicks,
                                           req.attempt);
            entry.req = std::move(req);
            ++entry.req.attempt;
            ++stats.clientRetries;
            retriesCtr->inc();
            const auto pos = std::upper_bound(
                backlog.begin(), backlog.end(), entry,
                [](const RetryEntry &a, const RetryEntry &b) {
                    return a.dueTick != b.dueTick ? a.dueTick < b.dueTick
                                                  : a.req.id < b.req.id;
                });
            backlog.insert(pos, std::move(entry));
            return;
        }
        ++stats.shed;
        ServeResponse &slot = report.responses[static_cast<size_t>(req.id)];
        settle(req.id, ServeOutcome::Shed, decision.status, tick);
        slot.retryAfterTicks = decision.retryAfterTicks;
    };

    for (;;) {
        const bool workRemains = nextArrival < workload.size()
                                 || !backlog.empty() || queue.size() > 0;
        if (!workRemains)
            break;
        pollCancelFault("serve.admit");
        if (cancelRequested() || budgetExpired)
            break;

        // Offer phase (serial point): due backoff re-offers first
        // (they are older), then due arrivals, each in id order.
        while (!backlog.empty() && backlog.front().dueTick <= tick) {
            RetryEntry entry = std::move(backlog.front());
            backlog.erase(backlog.begin());
            offerOne(std::move(entry.req));
        }
        while (nextArrival < workload.size()
               && workload[nextArrival].arrivalTick <= tick) {
            offerOne(std::move(workload[nextArrival]));
            ++nextArrival;
        }
        depthGauge->set(static_cast<double>(queue.size()));

        // Degradation ladder, then batch formation with deadline
        // excision — all still on the control thread.
        ladder.update(queue.size(), opts_.queueCapacity);
        stats.maxServiceLevel =
            std::max(stats.maxServiceLevel,
                     static_cast<int64_t>(ladder.level()));
        const int64_t maxBatch = ladder.maxBatch(opts_.maxBatch);
        std::vector<ServeRequest> batch;
        while (static_cast<int64_t>(batch.size()) < maxBatch) {
            std::optional<ServeRequest> item = queue.tryPop();
            if (!item)
                break;
            if (item->deadlineTick < tick) {
                missedCtr->inc();
                ++stats.deadlineMissed;
                settle(item->id, ServeOutcome::DeadlineMissed,
                       Status(StatusCode::DeadlineExceeded, "serve.batch",
                              "deadline expired before batch execution"),
                       tick);
                continue;
            }
            batch.push_back(std::move(*item));
        }

        // LRD_DEADLINE=items:<n>: the batch that exhausts the budget
        // is truncated here, at a serial point, so the cut lands on
        // the same request at any LRD_THREADS.
        const auto formed = static_cast<int64_t>(batch.size());
        const int64_t admittedUnits = consumeWorkBudget("items", formed);
        if (admittedUnits < formed) {
            truncated.assign(
                std::make_move_iterator(batch.begin() + admittedUnits),
                std::make_move_iterator(batch.end()));
            batch.resize(static_cast<size_t>(admittedUnits));
            budgetExpired = true;
        }

        if (!batch.empty()) {
            // A formed batch is in-flight: even if this poll (or an
            // earlier signal) requested cancellation, it executes and
            // its responses are delivered before the drain below —
            // an accepted request never loses its response.
            pollCancelFault("serve.batch");
            std::vector<ServeResponse *> slots;
            slots.reserve(batch.size());
            for (const ServeRequest &req : batch)
                slots.push_back(
                    &report.responses[static_cast<size_t>(req.id)]);
            // The RankFallback rung only degrades responses when a
            // fallback variant actually exists; otherwise the rung
            // still shrinks batches but scoring stays full-rank.
            batcher.execute(batch,
                            ladder.useFallbackModel() && fallback_ != nullptr,
                            tick, slots);
            ++stats.batches;
            batchesCtr->inc();

            // Delivery phase: serial, per-response, with bounded
            // deterministic retry at the serve.respond fault site.
            pollCancelFault("serve.respond");
            for (size_t i = 0; i < batch.size(); ++i) {
                ServeResponse &resp = *slots[i];
                const Status delivered = retryWithReseed(
                    opts_.retrySeed
                        ^ static_cast<uint64_t>(batch[i].id),
                    opts_.responderAttempts, [&](Rng &, int) {
                        if (faultAt("serve.respond", FaultKind::Alloc))
                            return Status(StatusCode::Unavailable,
                                          "serve.respond",
                                          "injected delivery failure");
                        return Status();
                    });
                if (!delivered.ok()) {
                    resp.outcome = ServeOutcome::Unavailable;
                    resp.status = delivered;
                    ++stats.unavailable;
                    unavailableCtr->inc();
                    continue;
                }
                ++stats.responded;
                if (resp.degraded)
                    ++stats.degradedResponses;
                respondedCtr->inc();
                const int64_t latency =
                    tick - arrivalOf[static_cast<size_t>(batch[i].id)];
                latencyTicksHist->record(latency);
                const double offeredAt =
                    offerWallSeconds[static_cast<size_t>(batch[i].id)];
                latencyUsHist->record(static_cast<int64_t>(
                    (wall.elapsedSeconds() - offeredAt) * 1e6));
            }
        }

        ++tick;
        ticksCtr->inc();
        noteProgress("serve.batch");

        // Open-loop fast-forward: with nothing queued and nothing
        // due, jump straight to the next arrival / backoff event
        // instead of spinning empty ticks.
        if (batch.empty() && queue.size() == 0) {
            int64_t nextEvent = tick;
            bool have = false;
            if (nextArrival < workload.size()) {
                nextEvent = workload[nextArrival].arrivalTick;
                have = true;
            }
            if (!backlog.empty())
                nextEvent = have ? std::min(nextEvent,
                                            backlog.front().dueTick)
                                 : backlog.front().dueTick;
            if (nextEvent > tick)
                tick = nextEvent;
        }
    }

    // Drain (serial point): stop admitting, then give every still-
    // pending request its terminal outcome. Reached on cancellation,
    // budget expiry, or natural completion (where it settles nothing).
    queue.close();
    if (budgetExpired)
        expireDeadline("serve.batch");
    const Status drainStatus = cancelStatus("serve.drain");
    const auto settleDrained = [&](const ServeRequest &req,
                                   const char *what) {
        ++stats.cancelled;
        cancelledCtr->inc();
        settle(req.id, ServeOutcome::Cancelled,
               drainStatus.ok()
                   ? Status(StatusCode::Cancelled, "serve.drain", what)
                   : drainStatus,
               tick);
    };
    while (std::optional<ServeRequest> item = queue.tryPop())
        settleDrained(*item, "drained from the queue");
    for (const ServeRequest &req : truncated)
        settleDrained(req, "cut by the items budget");
    for (const RetryEntry &entry : backlog)
        settleDrained(entry.req, "drained during client backoff");
    for (; nextArrival < workload.size(); ++nextArrival)
        settleDrained(workload[nextArrival], "never offered");
    report.status = drainStatus;
    batcher.clearCaches();

    // Report: deterministic nearest-rank quantiles over tick
    // latencies of responded requests.
    std::vector<int64_t> latencies;
    latencies.reserve(static_cast<size_t>(stats.responded));
    for (const ServeResponse &resp : report.responses) {
        require(serveOutcomeTerminal(resp.outcome),
                "Server: a request finished without a terminal outcome");
        if (resp.outcome == ServeOutcome::Responded)
            latencies.push_back(
                resp.settledTick
                - arrivalOf[static_cast<size_t>(resp.id)]);
    }
    std::sort(latencies.begin(), latencies.end());
    stats.ticks = tick;
    stats.p50LatencyTicks = sortedQuantile(latencies, 0.50);
    stats.p99LatencyTicks = sortedQuantile(latencies, 0.99);
    stats.wallSeconds = wall.elapsedSeconds();
    stats.throughputRps =
        stats.wallSeconds > 0.0
            ? static_cast<double>(stats.responded) / stats.wallSeconds
            : 0.0;
    return report;
}

const char *
serveOutcomeName(ServeOutcome outcome)
{
    switch (outcome) {
    case ServeOutcome::Pending:
        return "pending";
    case ServeOutcome::Responded:
        return "responded";
    case ServeOutcome::Shed:
        return "shed";
    case ServeOutcome::DeadlineMissed:
        return "deadline-missed";
    case ServeOutcome::Cancelled:
        return "cancelled";
    case ServeOutcome::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

} // namespace lrd
