/**
 * @file
 * The graceful-degradation ladder: a load controller that watches
 * queue occupancy at tick boundaries and steps the server through
 *
 *   Normal -> BatchShrink -> RankFallback
 *
 * before admission control sheds anything. BatchShrink halves the
 * batch ceiling so per-tick latency stays bounded; RankFallback
 * additionally routes scoring to a lower-rank variant of the model
 * (a DecompConfig-factorized copy — the paper's accuracy/efficiency
 * trade-off applied as an overload valve). Transitions use
 * hysteresis (enter above `high`, leave below `low`) so occupancy
 * noise near a threshold cannot flap the ladder, and every
 * transition is logged and counted (serve.degrade.transitions,
 * serve.degrade.level).
 */

#ifndef LRD_SERVE_LOAD_CONTROL_H
#define LRD_SERVE_LOAD_CONTROL_H

#include <cstdint>

namespace lrd {

/** Rung of the degradation ladder (ordered by severity). */
enum class ServiceLevel : int
{
    Normal = 0,
    BatchShrink = 1,
    RankFallback = 2,
};

/** Stable lowercase name for a level ("batch-shrink", ...). */
const char *serviceLevelName(ServiceLevel level);

/** Hysteresis thresholds as fractions of queue capacity. */
struct LoadControlOptions
{
    double shrinkHigh = 0.50;   ///< Enter BatchShrink at/above this.
    double shrinkLow = 0.25;    ///< Leave BatchShrink below this.
    double fallbackHigh = 0.80; ///< Enter RankFallback at/above this.
    double fallbackLow = 0.50;  ///< Leave RankFallback below this.
};

class LoadController
{
  public:
    explicit LoadController(LoadControlOptions opts);

    /**
     * Re-evaluate the ladder for this tick's queue occupancy.
     * Called once per tick from the control thread (a serial point),
     * so the level sequence is a pure function of the occupancy
     * sequence. Returns the (possibly unchanged) level.
     */
    ServiceLevel update(int64_t queueDepth, int64_t queueCapacity);

    ServiceLevel level() const { return level_; }

    /** Batch ceiling at the current level (halved under shrink). */
    int64_t maxBatch(int64_t configuredMax) const;

    /** Whether scoring should use the lower-rank fallback model. */
    bool
    useFallbackModel() const
    {
        return level_ == ServiceLevel::RankFallback;
    }

    int64_t transitions() const { return transitions_; }

  private:
    LoadControlOptions opts_;
    ServiceLevel level_ = ServiceLevel::Normal;
    int64_t transitions_ = 0;
};

} // namespace lrd

#endif // LRD_SERVE_LOAD_CONTROL_H
