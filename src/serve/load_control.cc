#include "serve/load_control.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace lrd {

const char *
serviceLevelName(ServiceLevel level)
{
    switch (level) {
    case ServiceLevel::Normal:
        return "normal";
    case ServiceLevel::BatchShrink:
        return "batch-shrink";
    case ServiceLevel::RankFallback:
        return "rank-fallback";
    }
    return "unknown";
}

LoadController::LoadController(LoadControlOptions opts) : opts_(opts)
{
    require(opts.shrinkLow <= opts.shrinkHigh
                && opts.shrinkHigh <= opts.fallbackHigh
                && opts.fallbackLow <= opts.fallbackHigh,
            "LoadController: thresholds must be ordered "
            "shrinkLow <= shrinkHigh <= fallbackHigh, "
            "fallbackLow <= fallbackHigh");
}

ServiceLevel
LoadController::update(int64_t queueDepth, int64_t queueCapacity)
{
    static Counter *transitions =
        MetricsRegistry::instance().counter("serve.degrade.transitions");
    static Gauge *levelGauge =
        MetricsRegistry::instance().gauge("serve.degrade.level");

    const double occupancy = queueCapacity > 0
                                 ? static_cast<double>(queueDepth)
                                       / static_cast<double>(queueCapacity)
                                 : 0.0;
    ServiceLevel next = level_;
    switch (level_) {
    case ServiceLevel::Normal:
        if (occupancy >= opts_.fallbackHigh)
            next = ServiceLevel::RankFallback;
        else if (occupancy >= opts_.shrinkHigh)
            next = ServiceLevel::BatchShrink;
        break;
    case ServiceLevel::BatchShrink:
        if (occupancy >= opts_.fallbackHigh)
            next = ServiceLevel::RankFallback;
        else if (occupancy < opts_.shrinkLow)
            next = ServiceLevel::Normal;
        break;
    case ServiceLevel::RankFallback:
        if (occupancy < opts_.fallbackLow)
            next = occupancy < opts_.shrinkLow ? ServiceLevel::Normal
                                               : ServiceLevel::BatchShrink;
        break;
    }
    if (next != level_) {
        inform(strCat("serve: degradation ladder ",
                      serviceLevelName(level_), " -> ",
                      serviceLevelName(next), " (queue ", queueDepth, "/",
                      queueCapacity, ")"));
        level_ = next;
        ++transitions_;
        transitions->inc();
    }
    levelGauge->set(static_cast<double>(static_cast<int>(level_)));
    return level_;
}

int64_t
LoadController::maxBatch(int64_t configuredMax) const
{
    if (level_ == ServiceLevel::Normal)
        return configuredMax;
    const int64_t shrunk = configuredMax / 2;
    return shrunk > 0 ? shrunk : 1;
}

} // namespace lrd
