/**
 * @file
 * Workload sources for the serving layer: a seeded synthetic
 * generator (closed-loop bursts or an open-loop arrival process) and
 * a JSONL request-file loader, both producing the same ServeRequest
 * stream shape so `lrdtool serve` and the tests drive one code path.
 *
 * Everything is derived from lrd::Rng with a caller-supplied seed —
 * the arrival process included — so a workload is a pure function of
 * its options and two runs of the same spec are identical.
 */

#ifndef LRD_SERVE_WORKLOAD_H
#define LRD_SERVE_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.h"
#include "serve/request.h"
#include "util/status.h"

namespace lrd {

struct WorkloadOptions
{
    int numRequests = 32;
    int tenants = 4;
    /** Context lengths are drawn from [1, maxContextLen]. */
    int maxContextLen = 12;
    /** Continuation lengths are drawn from [1, maxContinuationLen]. */
    int maxContinuationLen = 4;
    /** Ticks from arrival to deadline for every request. */
    int64_t deadlineTicks = 64;
    /**
     * Open-loop arrival process: requests arrive with seeded gaps of
     * [0, maxArrivalGapTicks] ticks. 0 = closed-loop (everything
     * arrives at tick 0 — the overload case).
     */
    int64_t maxArrivalGapTicks = 0;
    uint64_t seed = 42;
};

/**
 * Generate a deterministic synthetic workload: uniform token ids in
 * [0, cfg.vocabSize), lengths and tenants drawn from one Rng stream,
 * ids dense [0, numRequests) in arrival order.
 */
std::vector<ServeRequest> makeSyntheticWorkload(const ModelConfig &cfg,
                                                const WorkloadOptions &opts);

/**
 * Load a JSONL request file: one object per line with "context" and
 * "continuation" token arrays and optional "tenant", "arrival", and
 * "deadline" (absolute tick; defaults to arrival + defaultDeadline).
 * Ids are assigned densely in file order.
 */
Result<std::vector<ServeRequest>>
loadWorkloadFile(const std::string &path, int64_t defaultDeadlineTicks);

} // namespace lrd

#endif // LRD_SERVE_WORKLOAD_H
