/**
 * @file
 * The paper's Definition 1 design goal:
 *
 *   argmin_{gamma : max(Acc_orig - Acc(gamma), 0) < tau}
 *       Latency(gamma) x Energy(gamma)
 *
 * Searching the raw design space is intractable (Theorem 3.2), so the
 * optimizer searches the characterization-pruned space (Section 3.4):
 * rank-1, all tensors per decomposed layer, spread-apart interior
 * layer schedules — O(nLayers) candidates instead of O(2^37).
 */

#ifndef LRD_DSE_OPTIMIZER_H
#define LRD_DSE_OPTIMIZER_H

#include <vector>

#include "model/decomp_config.h"
#include "eval/evaluator.h"
#include "hw/roofline.h"
#include "train/world.h"

namespace lrd {

/** Search knobs for the Definition 1 optimizer. */
struct OptimizerOptions
{
    double accuracyDropTolerance = 0.05; ///< tau.
    int evalTasks = 80;                  ///< Items per benchmark.
    uint64_t evalSeed = 991;
    std::vector<int64_t> candidateRanks = {1}; ///< Insight: rank-1.
    DeviceSpec device;                         ///< Default: A100.
    GenerationWorkload workload;               ///< EDP workload.
    /**
     * When true, EDP is projected onto the full-size Llama2-7B shape
     * at the candidate's parameter-reduction rate (accuracy is still
     * measured on the live stand-in model). This mirrors the repo's
     * substitution methodology: accuracy from the trainable model,
     * efficiency from the paper's real model shape.
     */
    bool projectEdpOnLlama7b = true;

    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;
    /** Candidates evaluated between checkpoints (0 disables). */
    int checkpointEvery = 8;
    /** Resume from checkpointPath when it exists. */
    bool resume = false;

    /**
     * Sharded-sweep membership: this process owns the grid slots
     * whose stable candidate-key hash lands on shardIndex (see
     * dse/shard.h). shardCount 1 = unsharded; the partition depends
     * only on (rank, count, shardCount), never on LRD_THREADS.
     */
    int shardIndex = 0;
    int shardCount = 1;
    /**
     * Heartbeat lease file (sharded runs): rewritten at every batch
     * boundary with this pid and the cumulative evaluation count, so
     * a supervisor can tell a live shard from a dead one by mtime and
     * a merge can report recomputed work. Empty disables.
     */
    std::string leasePath;
    /** Evaluations performed by earlier attempts of this shard. */
    int64_t evalsEverBase = 0;

    OptimizerOptions();
};

/** One explored candidate and its measured/estimated metrics. */
struct CandidateRecord
{
    DecompConfig config;
    /** Slot in the enumeration-order candidate grid. Lets shard
     *  result files land records back in their serial position. */
    int64_t gridIndex = 0;
    double accuracy = 0;   ///< Aggregate benchmark accuracy.
    double latencySec = 0;
    double energyJ = 0;
    double edp = 0;        ///< latency x energy.
    double reduction = 0;  ///< Parameter reduction fraction.
    bool feasible = false; ///< Accuracy constraint satisfied.
    bool failed = false;   ///< Candidate faulted; degraded (infeasible).
    std::string failure;   ///< Failure description when failed.
};

/** Search outcome. */
struct OptimizerResult
{
    CandidateRecord best;       ///< Min-EDP feasible candidate.
    double baselineAccuracy = 0;
    double baselineEdp = 0;
    std::vector<CandidateRecord> explored;
    int numFailed = 0;     ///< Degraded candidates (within budget).
    /** True when a signal, injected cancel, or deadline stopped the
     *  sweep; the checkpoint then carries the completed prefix. */
    bool cancelled = false;
    /** Cancelled/DeadlineExceeded when the sweep stopped early. */
    Status status;
    /** Candidates evaluated by this run (excludes slots restored from
     *  a checkpoint) — the shard lease's progress delta. */
    int64_t evaluatedThisRun = 0;
    /** Full candidate-grid size (all shards), for coverage checks. */
    int64_t gridSize = 0;
};

/**
 * The serial tail of the search, shared with the shard merge: given
 * every evaluated record in grid-enumeration order, compute
 * feasibility against tau, pick the min-EDP feasible candidate
 * (falling back to the identity when nothing is feasible), and count
 * failures. Pure — same inputs, bitwise-same OptimizerResult — which
 * is what makes a sharded merge byte-identical to a serial sweep.
 * Does NOT enforce the failure budget; callers that sweep do.
 */
OptimizerResult foldCandidateRecords(double baselineAccuracy,
                                     double baselineEdp,
                                     double accuracyDropTolerance,
                                     std::vector<CandidateRecord> records);

/**
 * Run the Definition 1 search.
 *
 * @param modelBytes Serialized dense checkpoint (each candidate gets
 *                   a fresh copy, since decomposition is destructive).
 * @param world      The benchmark world.
 */
OptimizerResult optimizeDecomposition(
    const std::vector<uint8_t> &modelBytes, const World &world,
    const OptimizerOptions &opts = OptimizerOptions());

} // namespace lrd

#endif // LRD_DSE_OPTIMIZER_H
