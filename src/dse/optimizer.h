/**
 * @file
 * The paper's Definition 1 design goal:
 *
 *   argmin_{gamma : max(Acc_orig - Acc(gamma), 0) < tau}
 *       Latency(gamma) x Energy(gamma)
 *
 * Searching the raw design space is intractable (Theorem 3.2), so the
 * optimizer searches the characterization-pruned space (Section 3.4):
 * rank-1, all tensors per decomposed layer, spread-apart interior
 * layer schedules — O(nLayers) candidates instead of O(2^37).
 */

#ifndef LRD_DSE_OPTIMIZER_H
#define LRD_DSE_OPTIMIZER_H

#include <vector>

#include "model/decomp_config.h"
#include "eval/evaluator.h"
#include "hw/roofline.h"
#include "train/world.h"

namespace lrd {

/** Search knobs for the Definition 1 optimizer. */
struct OptimizerOptions
{
    double accuracyDropTolerance = 0.05; ///< tau.
    int evalTasks = 80;                  ///< Items per benchmark.
    uint64_t evalSeed = 991;
    std::vector<int64_t> candidateRanks = {1}; ///< Insight: rank-1.
    DeviceSpec device;                         ///< Default: A100.
    GenerationWorkload workload;               ///< EDP workload.
    /**
     * When true, EDP is projected onto the full-size Llama2-7B shape
     * at the candidate's parameter-reduction rate (accuracy is still
     * measured on the live stand-in model). This mirrors the repo's
     * substitution methodology: accuracy from the trainable model,
     * efficiency from the paper's real model shape.
     */
    bool projectEdpOnLlama7b = true;

    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;
    /** Candidates evaluated between checkpoints (0 disables). */
    int checkpointEvery = 8;
    /** Resume from checkpointPath when it exists. */
    bool resume = false;

    OptimizerOptions();
};

/** One explored candidate and its measured/estimated metrics. */
struct CandidateRecord
{
    DecompConfig config;
    double accuracy = 0;   ///< Aggregate benchmark accuracy.
    double latencySec = 0;
    double energyJ = 0;
    double edp = 0;        ///< latency x energy.
    double reduction = 0;  ///< Parameter reduction fraction.
    bool feasible = false; ///< Accuracy constraint satisfied.
    bool failed = false;   ///< Candidate faulted; degraded (infeasible).
    std::string failure;   ///< Failure description when failed.
};

/** Search outcome. */
struct OptimizerResult
{
    CandidateRecord best;       ///< Min-EDP feasible candidate.
    double baselineAccuracy = 0;
    double baselineEdp = 0;
    std::vector<CandidateRecord> explored;
    int numFailed = 0;     ///< Degraded candidates (within budget).
    /** True when a signal, injected cancel, or deadline stopped the
     *  sweep; the checkpoint then carries the completed prefix. */
    bool cancelled = false;
    /** Cancelled/DeadlineExceeded when the sweep stopped early. */
    Status status;
};

/**
 * Run the Definition 1 search.
 *
 * @param modelBytes Serialized dense checkpoint (each candidate gets
 *                   a fresh copy, since decomposition is destructive).
 * @param world      The benchmark world.
 */
OptimizerResult optimizeDecomposition(
    const std::vector<uint8_t> &modelBytes, const World &world,
    const OptimizerOptions &opts = OptimizerOptions());

} // namespace lrd

#endif // LRD_DSE_OPTIMIZER_H
