#include "optimizer.h"

#include <limits>

#include "dse/schedules.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace lrd {

OptimizerOptions::OptimizerOptions()
    : device(a100_80gb())
{
}

OptimizerResult
optimizeDecomposition(const std::vector<uint8_t> &modelBytes,
                      const World &world, const OptimizerOptions &opts)
{
    require(opts.accuracyDropTolerance >= 0.0,
            "optimizeDecomposition: tau must be >= 0");
    require(!opts.candidateRanks.empty(),
            "optimizeDecomposition: no candidate ranks");

    OptimizerResult result;

    // EDP is computed either on the probe model's own shape or
    // projected onto the full Llama2-7B shape at the same reduction.
    const ModelConfig edpShape = llama2_7bConfig();
    auto edpEstimate = [&](const ModelConfig &probeCfg,
                           const DecompConfig &gamma) {
        if (!opts.projectEdpOnLlama7b)
            return estimateGeneration(probeCfg, gamma, opts.device,
                                      opts.workload);
        const DecompConfig projected = scheduleForReduction(
            edpShape, gamma.parameterReduction(probeCfg));
        return estimateGeneration(edpShape, projected, opts.device,
                                  opts.workload);
    };

    // Baseline accuracy and EDP on the dense model.
    ModelConfig probeCfg;
    {
        TransformerModel dense = TransformerModel::deserialize(modelBytes);
        probeCfg = dense.config();
        Evaluator ev(dense, world,
                     EvalOptions{opts.evalTasks, opts.evalSeed, false});
        result.baselineAccuracy = ev.aggregateAccuracy();
        const InferenceEstimate est =
            edpEstimate(probeCfg, DecompConfig::identity());
        result.baselineEdp = est.latencySec * est.energyJoules;
    }

    // Pruned candidate family (Section 3.4 insights): all tensors,
    // spread interior layer schedules, small ranks. Candidates are
    // independent (each deserializes its own probe model), so the
    // enumeration fans out across the pool; records land in a fixed
    // grid slot and the feasibility/best fold below runs serially in
    // enumeration order, keeping the result thread-count invariant.
    TransformerModel probe = TransformerModel::deserialize(modelBytes);
    const ModelConfig cfg = probe.config();
    struct Candidate
    {
        int64_t rank;
        int count;
    };
    std::vector<Candidate> grid;
    for (int64_t rank : opts.candidateRanks)
        for (int count = 1; count <= cfg.nLayers; ++count)
            grid.push_back({rank, count});

    std::vector<CandidateRecord> records(grid.size());
    parallelFor(
        0, static_cast<int64_t>(grid.size()), 1,
        [&](int64_t lo, int64_t hi) {
            static Counter *candidates =
                MetricsRegistry::instance().counter("dse.candidates");
            for (int64_t idx = lo; idx < hi; ++idx) {
                LRD_TRACE_SPAN("dse.candidate");
                candidates->inc();
                const Candidate &cand =
                    grid[static_cast<size_t>(idx)];
                DecompConfig gamma = DecompConfig::allTensors(
                    cfg,
                    spreadSchedule(static_cast<int>(cfg.nLayers),
                                   cand.count),
                    cand.rank);

                TransformerModel model =
                    TransformerModel::deserialize(modelBytes);
                gamma.applyTo(model);
                Evaluator ev(model, world,
                             EvalOptions{opts.evalTasks, opts.evalSeed,
                                         false});

                CandidateRecord rec;
                rec.config = gamma;
                rec.accuracy = ev.aggregateAccuracy();
                rec.reduction = gamma.parameterReduction(cfg);
                const InferenceEstimate est = edpEstimate(cfg, gamma);
                rec.latencySec = est.latencySec;
                rec.energyJ = est.energyJoules;
                rec.edp = est.latencySec * est.energyJoules;
                records[static_cast<size_t>(idx)] = std::move(rec);
            }
        });

    double bestEdp = std::numeric_limits<double>::infinity();
    bool haveBest = false;
    for (CandidateRecord &rec : records) {
        rec.feasible =
            std::max(result.baselineAccuracy - rec.accuracy, 0.0)
            < opts.accuracyDropTolerance;
        if (rec.feasible && rec.edp < bestEdp) {
            bestEdp = rec.edp;
            result.best = rec;
            haveBest = true;
        }
        result.explored.push_back(std::move(rec));
    }

    if (!haveBest) {
        // No decomposition satisfies tau: the identity is the answer.
        CandidateRecord identity;
        identity.config = DecompConfig::identity();
        identity.accuracy = result.baselineAccuracy;
        identity.edp = result.baselineEdp;
        identity.feasible = true;
        result.best = identity;
    }
    return result;
}

} // namespace lrd
